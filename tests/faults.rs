//! Targeted fault-recovery tests: one fault at a time, with the
//! expected recovery mechanism asserted explicitly (the chaos harness in
//! `chaos.rs` covers composed faults).

use dt_dctcp::core::MarkingScheme;
use dt_dctcp::sim::{
    Capacity, FaultPlan, FlowId, LinkSpec, NodeId, QueueConfig, SimDuration, SimTime, Simulator,
    TopologyBuilder,
};
use dt_dctcp::tcp::{ScheduledFlow, TcpConfig, TransportHost};
use dt_dctcp::trace::{oracle, TraceConfig, TraceLog};

/// Replays a recorded fault-run trace through the invariant oracle.
fn assert_oracle_clean(log: &TraceLog, label: &str) {
    let violations = oracle::check_log(log);
    assert!(
        violations.is_empty(),
        "{label}: {} invariant violations, first: {}",
        violations.len(),
        violations[0]
    );
}

fn one_flow_sim(
    tcp: TcpConfig,
    bytes: u64,
    buffer_pkts: u32,
) -> (Simulator, NodeId, NodeId, dt_dctcp::sim::LinkId) {
    let mut b = TopologyBuilder::new();
    let rx = b.host("rx", Box::new(TransportHost::new(tcp)));
    let mut host = TransportHost::new(tcp);
    host.schedule(ScheduledFlow {
        flow: FlowId(1),
        dst: rx,
        bytes: Some(bytes),
        at: SimTime::ZERO,
        cfg: tcp,
    });
    let tx = b.host("tx", Box::new(host));
    let sw = b.switch("sw");
    // 10 Gb/s access into a 1 Gb/s bottleneck: the switch queue is where
    // marking, bleaching and overflow happen.
    b.link(
        tx,
        sw,
        LinkSpec::gbps(10.0, 20),
        QueueConfig::host_nic(),
        QueueConfig::host_nic(),
    )
    .unwrap();
    let bottleneck = b
        .link(
            sw,
            rx,
            LinkSpec::gbps(1.0, 20),
            QueueConfig::switch(
                Capacity::Packets(buffer_pkts),
                MarkingScheme::dctcp_packets(20),
            ),
            QueueConfig::host_nic(),
        )
        .unwrap();
    (Simulator::new(b.build().unwrap()), tx, rx, bottleneck)
}

fn completion_secs(sim: &Simulator, tx: NodeId) -> Option<f64> {
    let host: &TransportHost = sim.agent(tx).unwrap();
    host.sender(FlowId(1)).unwrap().stats().completion_time()
}

#[test]
fn transfer_recovers_from_a_link_flap() {
    let tcp = TcpConfig::dctcp(1.0 / 16.0).with_rto_min(SimDuration::from_millis(10));
    let bytes = 2 * 1024 * 1024;

    let (mut clean, clean_tx, _, _) = one_flow_sim(tcp, bytes, 200);
    clean.run_for(SimDuration::from_secs(5)).unwrap();
    let clean_ct = completion_secs(&clean, clean_tx).expect("clean run completes");

    let (mut faulty, tx, _, bottleneck) = one_flow_sim(tcp, bytes, 200);
    faulty.enable_trace(TraceConfig::all());
    // A 50 ms outage right in the middle of the transfer.
    let plan = FaultPlan::new().flap(
        bottleneck,
        SimTime::ZERO + SimDuration::from_millis(5),
        SimDuration::from_millis(50),
        SimDuration::from_secs(1),
        1,
    );
    faulty.install_faults(&plan).unwrap();
    faulty.run_for(SimDuration::from_secs(5)).unwrap();
    let log = faulty.take_trace();
    assert_oracle_clean(&log, "link flap");
    assert_eq!(log.digest().count("fault"), 2, "one down + one up");
    let faulty_ct = completion_secs(&faulty, tx).expect("transfer must survive the flap");

    // The flap costs at least the outage length (plus RTO recovery),
    // but the connection must come back instead of stalling forever.
    assert!(
        faulty_ct > clean_ct + 0.045,
        "flap too cheap: {clean_ct}s clean vs {faulty_ct}s flapped"
    );
    assert!(
        faulty_ct < clean_ct + 1.0,
        "recovery too slow after a 50 ms outage: {faulty_ct}s"
    );
    let host: &TransportHost = faulty.agent(tx).unwrap();
    assert!(
        host.sender(FlowId(1)).unwrap().stats().timeouts > 0,
        "a mid-transfer outage must cost at least one RTO"
    );
}

#[test]
fn ecn_bleach_fallback_keeps_the_flow_alive() {
    let tcp = TcpConfig::dctcp(1.0 / 16.0)
        .with_rto_min(SimDuration::from_millis(10))
        .with_ecn_fallback(2);
    let (mut sim, tx, rx, bottleneck) = one_flow_sim(tcp, 4 * 1024 * 1024, 40);
    sim.enable_trace(TraceConfig::all());
    // Bleach the bottleneck for the entire run: DCTCP's congestion
    // signal is gone, so the sender must detect it and degrade to
    // loss-based control rather than blast an unmanaged queue forever.
    let plan = FaultPlan::new().bleach_window(
        bottleneck,
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::from_secs(60),
    );
    sim.install_faults(&plan).unwrap();
    sim.run_for(SimDuration::from_secs(10)).unwrap();
    assert_oracle_clean(&sim.take_trace(), "full bleach");

    let host: &TransportHost = sim.agent(tx).unwrap();
    let s = host.sender(FlowId(1)).unwrap();
    assert!(s.is_complete(), "4 MB must complete on a bleached path");
    assert!(!s.ecn_active(), "sender never detected the bleached path");
    assert!(
        s.stats().ecn_cuts == 0,
        "no ECE can arrive through a fully bleached bottleneck"
    );
    let rx_host: &TransportHost = sim.agent(rx).unwrap();
    assert_eq!(
        rx_host.receiver(FlowId(1)).unwrap().bytes_received(),
        4 * 1024 * 1024
    );
}

#[test]
fn bleach_window_end_restores_ecn_marking() {
    // Bleach only the first 5 ms; after the window closes, marks flow
    // again and DCTCP resumes ECN cuts (no fallback configured).
    let tcp = TcpConfig::dctcp(1.0 / 16.0).with_rto_min(SimDuration::from_millis(10));
    let (mut sim, tx, _, bottleneck) = one_flow_sim(tcp, 8 * 1024 * 1024, 200);
    sim.enable_trace(TraceConfig::all());
    let plan = FaultPlan::new().bleach_window(
        bottleneck,
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::from_millis(5),
    );
    sim.install_faults(&plan).unwrap();
    sim.run_for(SimDuration::from_secs(10)).unwrap();
    assert_oracle_clean(&sim.take_trace(), "bleach window");

    let host: &TransportHost = sim.agent(tx).unwrap();
    let s = host.sender(FlowId(1)).unwrap();
    assert!(s.is_complete());
    assert!(s.ecn_active(), "no fallback configured, ECN must stay on");
    assert!(
        s.stats().ecn_cuts > 0,
        "marking must resume once the bleach window closes"
    );
}
