//! Integration tests of the extension features: D²TCP deadline
//! differentiation, fairness, and the CoDel baseline.

use dt_dctcp::core::MarkingScheme;
use dt_dctcp::sim::{
    Capacity, FlowId, LinkSpec, QueueConfig, SimDuration, SimTime, Simulator, TopologyBuilder,
};
use dt_dctcp::stats::jain_fairness_index;
use dt_dctcp::tcp::{ScheduledFlow, TcpConfig, TransportHost};
use dt_dctcp::workloads::LongLivedScenario;

/// Two long-lived flows share a marked bottleneck; the near-deadline
/// D²TCP flow (d = 2) must end up with more bandwidth than the
/// far-deadline one (d = 0.5).
#[test]
fn d2tcp_differentiates_by_deadline_urgency() {
    let near = TcpConfig::d2tcp(1.0 / 16.0, 2.0);
    let far = TcpConfig::d2tcp(1.0 / 16.0, 0.5);

    let mut b = TopologyBuilder::new();
    let rx = b.host("rx", Box::new(TransportHost::new(near)));
    let sw = b.switch("sw");
    let spec = LinkSpec::gbps(1.0, 25);

    for (i, cfg) in [near, far].into_iter().enumerate() {
        let mut host = TransportHost::new(cfg);
        host.schedule(ScheduledFlow {
            flow: FlowId(i as u64 + 1),
            dst: rx,
            bytes: None,
            at: SimTime::ZERO,
            cfg,
        });
        let h = b.host(format!("tx{i}"), Box::new(host));
        b.link(
            h,
            sw,
            spec,
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
    }
    b.link(
        sw,
        rx,
        spec,
        QueueConfig::switch(Capacity::Packets(200), MarkingScheme::dctcp_packets(20)),
        QueueConfig::host_nic(),
    )
    .unwrap();

    let mut sim = Simulator::new(b.build().unwrap());
    sim.run_for(SimDuration::from_millis(200)).unwrap();

    let rx_host: &TransportHost = sim.agent(rx).unwrap();
    let near_bytes = rx_host.receiver(FlowId(1)).unwrap().stats().bytes_received;
    let far_bytes = rx_host.receiver(FlowId(2)).unwrap().stats().bytes_received;
    assert!(
        near_bytes as f64 > 1.2 * far_bytes as f64,
        "near-deadline flow should outpace far-deadline: {near_bytes} vs {far_bytes}"
    );
    // Together they still saturate the link.
    let total = (near_bytes + far_bytes) as f64 * 8.0 / 0.2;
    assert!(total > 0.85e9, "aggregate {total:.3e} bps too low");
}

/// Equal-configuration DCTCP flows share the bottleneck fairly
/// (Jain index close to 1 at the receiver).
#[test]
fn dctcp_flows_share_fairly() {
    // Reuse the star scenario but read per-flow receiver bytes.
    let cfg = TcpConfig::dctcp(1.0 / 16.0);
    let n = 8u64;
    let mut b = TopologyBuilder::new();
    let rx = b.host("rx", Box::new(TransportHost::new(cfg)));
    let sw = b.switch("sw");
    let spec = LinkSpec::gbps(1.0, 25);
    for i in 0..n {
        let mut host = TransportHost::new(cfg);
        host.schedule(ScheduledFlow {
            flow: FlowId(i + 1),
            dst: rx,
            bytes: None,
            at: SimTime::ZERO,
            cfg,
        });
        let h = b.host(format!("tx{i}"), Box::new(host));
        b.link(
            h,
            sw,
            spec,
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
    }
    b.link(
        sw,
        rx,
        spec,
        QueueConfig::switch(Capacity::Packets(200), MarkingScheme::dctcp_packets(20)),
        QueueConfig::host_nic(),
    )
    .unwrap();
    let mut sim = Simulator::new(b.build().unwrap());
    sim.run_for(SimDuration::from_millis(300)).unwrap();

    let rx_host: &TransportHost = sim.agent(rx).unwrap();
    let shares: Vec<f64> = (1..=n)
        .map(|f| rx_host.receiver(FlowId(f)).unwrap().stats().bytes_received as f64)
        .collect();
    let j = jain_fairness_index(&shares).unwrap();
    assert!(j > 0.9, "Jain index {j:.3} too unfair: {shares:?}");
}

/// The CoDel baseline holds the queue near its sojourn target under
/// long-lived DCTCP flows.
#[test]
fn codel_controls_the_standing_queue() {
    let report = LongLivedScenario::builder()
        .flows(4)
        .bottleneck_gbps(1.0)
        .marking(MarkingScheme::codel_datacenter())
        .warmup_secs(0.02)
        .duration_secs(0.05)
        .build()
        .unwrap()
        .run();
    assert!(report.marks > 0, "CoDel must mark under load");
    // 50 us target at 1 Gb/s is ~4 packets; allow slack for the control
    // law's duty cycle.
    assert!(
        report.queue.mean < 40.0,
        "CoDel queue mean {:.1} far above target",
        report.queue.mean
    );
    assert!(report.goodput_bps > 0.85e9);
}
