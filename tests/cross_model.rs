//! Cross-model consistency: the fluid model, the packet simulator, and
//! the describing-function analysis must tell the same story about the
//! same configuration.

use dt_dctcp::control::{critical_gain, AnalysisGrid, HysteresisDf, PlantParams, RelayDf};
use dt_dctcp::core::MarkingScheme;
use dt_dctcp::fluid::{
    equilibrium, oscillation_metrics, DdeModel, FluidMarking, FluidModel, FluidParams,
};
use dt_dctcp::workloads::LongLivedScenario;

const RTT: f64 = 300e-6;

fn fluid_std(n: f64, marking: FluidMarking) -> f64 {
    let mut params = FluidParams::paper_defaults(n, marking);
    params.rtt = RTT;
    let sol = FluidModel::new(params).unwrap().run_sampled(0.25, 1e-6, 10);
    let m = oscillation_metrics(&sol.q.window(0.12, 0.25));
    assert!(m.mean < 1_000.0, "fluid diverged (mean {})", m.mean);
    m.std
}

fn packet_std(n: u32, scheme: MarkingScheme) -> f64 {
    LongLivedScenario::builder()
        .flows(n)
        .marking(scheme)
        .rtt_us(RTT * 1e6)
        .warmup_secs(0.04)
        .duration_secs(0.08)
        .build()
        .unwrap()
        .run()
        .queue
        .std
}

/// All three models agree that the hysteresis oscillates less at high
/// flow counts.
#[test]
fn all_models_agree_dt_is_steadier() {
    let n = 70;

    // Fluid domain.
    let fluid_relay = fluid_std(n as f64, FluidMarking::Relay { k: 40.0 });
    let fluid_hyst = fluid_std(n as f64, FluidMarking::Hysteresis { k1: 30.0, k2: 50.0 });
    assert!(
        fluid_hyst < fluid_relay,
        "fluid: {fluid_hyst:.1} !< {fluid_relay:.1}"
    );

    // Packet domain.
    let pkt_relay = packet_std(n, MarkingScheme::dctcp_packets(40));
    let pkt_hyst = packet_std(n, MarkingScheme::dt_dctcp_packets(30, 50));
    assert!(
        pkt_hyst < pkt_relay,
        "packet: {pkt_hyst:.1} !< {pkt_relay:.1}"
    );

    // Frequency domain: more gain margin for the hysteresis.
    let grid = AnalysisGrid {
        w_points: 1200,
        x_points: 500,
        ..AnalysisGrid::default()
    };
    let mut plant = PlantParams::paper_defaults(n as f64);
    plant.rtt = RTT;
    let m_relay = critical_gain(&plant, &RelayDf::new(40.0).unwrap(), &grid).unwrap();
    let m_hyst = critical_gain(&plant, &HysteresisDf::new(30.0, 50.0).unwrap(), &grid).unwrap();
    assert!(m_hyst > m_relay, "margins: {m_hyst:.2} !> {m_relay:.2}");
}

/// The fluid model's oscillation grows with N just like the packet
/// simulator's (the Section III observation, cross-checked).
#[test]
fn oscillation_grows_with_n_in_both_dynamics_models() {
    let fluid_small = fluid_std(10.0, FluidMarking::Relay { k: 40.0 });
    let fluid_large = fluid_std(80.0, FluidMarking::Relay { k: 40.0 });
    assert!(
        fluid_large > fluid_small,
        "fluid: {fluid_small:.1} -> {fluid_large:.1}"
    );

    let pkt_small = packet_std(10, MarkingScheme::dctcp_packets(40));
    let pkt_large = packet_std(80, MarkingScheme::dctcp_packets(40));
    assert!(
        pkt_large > pkt_small,
        "packet: {pkt_small:.1} -> {pkt_large:.1}"
    );
}

/// The fluid limit-cycle frequency and the DF-predicted frequency agree
/// within an order of magnitude (the DF is a first-harmonic
/// approximation; exact agreement is not expected).
#[test]
fn limit_cycle_frequency_is_consistent() {
    let n = 70.0;
    let mut params = FluidParams::paper_defaults(n, FluidMarking::Relay { k: 40.0 });
    params.rtt = RTT;
    let sol = FluidModel::new(params).unwrap().run_sampled(0.3, 1e-6, 10);
    let metrics = oscillation_metrics(&sol.q.window(0.15, 0.3));
    let fluid_period = metrics.period.expect("fluid limit cycle exists");
    let fluid_w = 2.0 * std::f64::consts::PI / fluid_period;

    let grid = AnalysisGrid::default();
    let mut plant = PlantParams::paper_defaults(n);
    plant.rtt = RTT;
    // Push the gain just past the critical point so an intersection
    // exists, and read its frequency.
    let relay = RelayDf::new(40.0).unwrap();
    let critical = critical_gain(&plant, &relay, &grid).expect("finite");
    let report = dt_dctcp::control::analyze(&plant.with_gain(critical * 1.05), &relay, &grid);
    let lc = report
        .limit_cycle
        .expect("limit cycle at supercritical gain");

    let ratio = lc.frequency / fluid_w;
    assert!(
        (0.1..=10.0).contains(&ratio),
        "DF frequency {:.0} rad/s vs fluid {:.0} rad/s (ratio {ratio:.2})",
        lc.frequency,
        fluid_w
    );
}

/// The DDE model and the queue-corrected plant linearization agree: the
/// closed-form equilibrium queue feeds `PlantParams::at_operating_point`,
/// and the DF limit-cycle frequency predicted by that plant brackets the
/// frequency the DDE integrator actually produces.
#[test]
fn dde_limit_cycle_matches_queue_corrected_linearization() {
    let n = 70.0;
    let mut params = FluidParams::paper_defaults(n, FluidMarking::Relay { k: 40.0 });
    params.rtt = RTT;

    // DDE-domain measurement.
    let sol = DdeModel::new(params).unwrap().run_sampled(0.3, 1e-6, 10);
    let metrics = oscillation_metrics(&sol.q.window(0.15, 0.3));
    let dde_period = metrics.period.expect("DDE limit cycle exists");
    let dde_w = 2.0 * std::f64::consts::PI / dde_period;

    // Frequency-domain prediction at the DDE operating point: the
    // equilibrium queue stretches every lag term to R* = R0 + q*/C.
    let eq = equilibrium(&params);
    assert!(!eq.saturated);
    let mut plant = PlantParams::paper_defaults(n);
    plant.rtt = RTT;
    let plant = plant.at_operating_point(eq.q);
    assert!(plant.rtt > RTT, "operating point must stretch the delay");

    let grid = AnalysisGrid::default();
    let relay = RelayDf::new(40.0).unwrap();
    let critical = critical_gain(&plant, &relay, &grid).expect("finite");
    let report = dt_dctcp::control::analyze(&plant.with_gain(critical * 1.05), &relay, &grid);
    let lc = report
        .limit_cycle
        .expect("limit cycle at supercritical gain");

    let ratio = lc.frequency / dde_w;
    assert!(
        (0.1..=10.0).contains(&ratio),
        "queue-corrected DF frequency {:.0} rad/s vs DDE {:.0} rad/s (ratio {ratio:.2})",
        lc.frequency,
        dde_w
    );
}
