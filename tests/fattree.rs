//! Fat-tree/ECMP correctness suite: seeded ECMP property tests (path
//! determinism, validity, balance), serial↔sharded bit-identical parity
//! on a k=4 allreduce, and trace-oracle invariants on every tier.

use std::collections::BTreeMap;

use dt_dctcp::core::MarkingScheme;
use dt_dctcp::sim::{
    Capacity, FatTree, FatTreeIds, FatTreeNet, FlowId, LinkSpec, Network, NodeId, Packet,
    QueueConfig, ShardedSimulator, SimDuration, SimError, SimTime, TierSpec,
};
use dt_dctcp::tcp::{ScheduledFlow, TcpConfig, TransportHost};
use dt_dctcp::trace::{oracle, TraceConfig, TraceDigest};
use dt_dctcp::workloads::CollectivePattern;

fn tcp() -> TcpConfig {
    TcpConfig::dctcp(1.0 / 16.0).with_rto_min(SimDuration::from_millis(10))
}

/// A k=4 fat-tree with explicit per-tier links (delays 5/10/20 µs, so
/// the sharder can split along the high-delay core tier) and DCTCP
/// switch queues.
fn fabric(ecmp_seed: u64, mut agents: impl FnMut(usize) -> TransportHost) -> FatTreeNet {
    let q = QueueConfig::switch(Capacity::Packets(100), MarkingScheme::dctcp_packets(20));
    FatTree::new(4, 2)
        .with_tiers(
            TierSpec::new(LinkSpec::gbps(1.0, 5), q),
            TierSpec::new(LinkSpec::gbps(1.0, 10), q),
            TierSpec::new(LinkSpec::gbps(1.0, 20), q),
        )
        .ecmp_seed(ecmp_seed)
        .build(|i| Box::new(agents(i)))
        .unwrap()
}

fn idle_fabric(ecmp_seed: u64) -> FatTreeNet {
    fabric(ecmp_seed, |_| TransportHost::new(tcp()))
}

/// Walks the ECMP tables from `src` to `dst` for one packet, asserting
/// each hop is a real link incident to the current node and that no
/// node repeats. Returns the node path (src..=dst).
fn walk(net: &Network, pkt: &Packet) -> Vec<NodeId> {
    let mut path = vec![pkt.src];
    let mut at = pkt.src;
    while at != pkt.dst {
        let (link, end) = net
            .routes()
            .select(at, pkt)
            .unwrap_or_else(|| panic!("no route at {} toward {}", at, pkt.dst));
        let (a, b) = net.link_ends(link);
        // Validity: the selected link leaves the node we are at, from
        // the queue end that belongs to it.
        let next = match end {
            0 => {
                assert_eq!(a, at, "end 0 of {link} is not {at}");
                b
            }
            _ => {
                assert_eq!(b, at, "end 1 of {link} is not {at}");
                a
            }
        };
        assert!(!path.contains(&next), "loop through {next}: {path:?}");
        path.push(next);
        at = next;
        assert!(path.len() <= 7, "path too long: {path:?}");
    }
    path
}

fn data(flow: u64, src: NodeId, dst: NodeId) -> Packet {
    Packet::data(FlowId(flow), src, dst, 0, 1460)
}

/// Same 5-tuple ⇒ same path, across runs and across independently
/// built replicas of the fabric (what different threads and shards
/// observe); a different ECMP seed re-rolls the choices.
#[test]
fn ecmp_paths_are_deterministic_and_seeded() {
    let a = idle_fabric(7);
    let b = idle_fabric(7);
    let reseeded = idle_fabric(8);
    let hosts = &a.ids.hosts;
    let mut moved = 0usize;
    for flow in 1..=200u64 {
        let src = hosts[(flow as usize * 5) % hosts.len()];
        let dst = hosts[(flow as usize * 11 + 3) % hosts.len()];
        if src == dst {
            continue;
        }
        let pkt = data(flow, src, dst);
        let first = walk(&a.network, &pkt);
        // Re-walking the same tables is a pure function...
        assert_eq!(first, walk(&a.network, &pkt));
        // ...and an independently constructed replica (a shard's clone,
        // another thread's build) selects the exact same path.
        assert_eq!(first, walk(&b.network, &pkt));
        if first != walk(&reseeded.network, &pkt) {
            moved += 1;
        }
    }
    assert!(moved > 0, "changing the ECMP seed never moved a path");
}

/// Every selected path is loop-free, uses only real links, respects the
/// tier ordering (up through edge/agg/core, then down), and has exactly
/// the equal-cost shortest length for the pair's relationship.
#[test]
fn ecmp_paths_are_valid_and_equal_cost_on_every_pair() {
    let FatTreeNet { network, ids } = idle_fabric(1);
    let hpe = 2usize;
    let half = 2usize; // k/2
    let edge_of = |h: usize| h / hpe;
    let pod_of = |h: usize| edge_of(h) / half;
    for (si, &src) in ids.hosts.iter().enumerate() {
        for (di, &dst) in ids.hosts.iter().enumerate() {
            if si == di {
                continue;
            }
            for flow in 1..=4u64 {
                let path = walk(&network, &data(flow, src, dst));
                let expected = if edge_of(si) == edge_of(di) {
                    3 // host, shared edge, host
                } else if pod_of(si) == pod_of(di) {
                    5 // up to an agg and back down
                } else {
                    7 // through a core switch
                };
                assert_eq!(path.len(), expected, "{src}->{dst}: {path:?}");
                // Tier ordering: hosts only at the endpoints, the
                // middle node of a max-length path is a core switch.
                for n in &path[1..path.len() - 1] {
                    assert!(!ids.hosts.contains(n), "host {n} mid-path: {path:?}");
                }
                if expected == 7 {
                    assert!(ids.cores.contains(&path[3]), "no core mid: {path:?}");
                }
            }
        }
    }
}

/// Chi-square-style balance: across ≥1k flows between inter-pod pairs,
/// each of an edge switch's two equal-cost uplinks takes a fair share.
#[test]
fn ecmp_balance_across_a_thousand_flows() {
    let FatTreeNet { network, ids } = idle_fabric(1);
    // First hop off edge0_0 for inter-pod traffic: 2 candidates.
    let src = ids.hosts[0];
    let dst = ids.hosts[15]; // last pod
    let edge = ids.edges[0];
    assert_eq!(network.equal_cost_routes(edge, dst).len(), 2);
    let mut counts: BTreeMap<(u64, usize), u64> = BTreeMap::new();
    let n_flows = 1000u64;
    for flow in 1..=n_flows {
        let pkt = data(flow, src, dst);
        let (link, end) = network.routes().select(edge, &pkt).unwrap();
        *counts.entry((link.index() as u64, end)).or_default() += 1;
    }
    assert_eq!(counts.len(), 2, "only one uplink ever chosen: {counts:?}");
    // Chi-square against the uniform split, 1 degree of freedom: the
    // p = 0.001 critical value is 10.83; a healthy hash sits far under.
    let expected = n_flows as f64 / 2.0;
    let chi2: f64 = counts
        .values()
        .map(|&o| (o as f64 - expected).powi(2) / expected)
        .sum();
    assert!(chi2 < 10.83, "uplink skew chi2 = {chi2:.2}: {counts:?}");
}

/// Everything observable about a finished fat-tree run.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    digest: TraceDigest,
    events: u64,
    ended_at_ns: u64,
    bytes_received: u64,
    tier_enqueued: [u64; 3],
}

/// Runs a ring allreduce over all 16 hosts of the k=4 fabric at the
/// given shard target, checking the trace oracle, and fingerprints the
/// run (the digest is the `merge_logs`-merged multi-shard trace).
fn run_allreduce(target: usize) -> (Fingerprint, usize) {
    let bytes = 16 * 1024u64;
    let steps = CollectivePattern::RingAllreduce
        .transfers(16, bytes, 0, 1)
        .unwrap();
    let mut per_host: Vec<Vec<ScheduledFlow>> = vec![Vec::new(); 16];
    let mut expected: Vec<(usize, FlowId, u64)> = Vec::new();
    let mut next = 1u64;
    for (s, step) in steps.iter().enumerate() {
        for &(src, dst, bytes) in step {
            let flow = FlowId(next);
            next += 1;
            per_host[src as usize].push(ScheduledFlow {
                flow,
                dst: NodeId::from_index(dst as usize),
                bytes: Some(bytes),
                at: SimTime::ZERO + SimDuration::from_millis(1) * s as u64,
                cfg: tcp(),
            });
            expected.push((dst as usize, flow, bytes));
        }
    }
    let FatTreeNet { network, ids } = fabric(7, |i| {
        let mut host = TransportHost::new(tcp());
        for sf in per_host[i].drain(..) {
            host.schedule(sf);
        }
        host
    });
    let mut sim = ShardedSimulator::with_shards(network, target).unwrap();
    sim.enable_trace(TraceConfig::all());
    sim.run_for(SimDuration::from_millis(120)).unwrap();
    let log = sim.take_trace();
    let violations = oracle::check_log(&log);
    assert!(
        violations.is_empty(),
        "target {target} violated trace invariants, first: {}",
        violations[0]
    );
    let mut bytes_received = 0u64;
    for &(dst, flow, bytes) in &expected {
        let host: &TransportHost = sim.agent(ids.hosts[dst]).unwrap();
        let got = host.receiver(flow).map_or(0, |r| r.bytes_received());
        assert_eq!(got, bytes, "flow {flow:?} incomplete at target {target}");
        bytes_received += got;
    }
    let tier_enqueued = tier_counters(&sim, &ids);
    (
        Fingerprint {
            digest: log.digest(),
            events: sim.events_processed(),
            ended_at_ns: sim.now().as_nanos(),
            bytes_received,
            tier_enqueued,
        },
        sim.shard_count(),
    )
}

/// Sums the switch-port enqueue counters per tier (host-access, pod
/// fabric, core).
fn tier_counters(sim: &ShardedSimulator, ids: &FatTreeIds) -> [u64; 3] {
    let half = 2usize;
    let mut out = [0u64; 3];
    for (i, &link) in ids.host_links.iter().enumerate() {
        out[0] += sim.queue_report(link, ids.edges[i / 2]).counters.enqueued;
    }
    for (i, &link) in ids.pod_links.iter().enumerate() {
        let edge = ids.edges[i / half];
        let agg = ids.aggs[(i / (half * half)) * half + i % half];
        out[1] += sim.queue_report(link, edge).counters.enqueued;
        out[1] += sim.queue_report(link, agg).counters.enqueued;
    }
    for (i, &link) in ids.core_links.iter().enumerate() {
        let agg = ids.aggs[i / half];
        let core = ids.cores[(i / half % half) * half + i % half];
        out[2] += sim.queue_report(link, agg).counters.enqueued;
        out[2] += sim.queue_report(link, core).counters.enqueued;
    }
    out
}

/// The differential headline: a k=4 fat-tree allreduce is byte-identical
/// between the serial engine and the sharded engine at 1/2/4 shards —
/// merged trace digests, event counts, transport outcomes and every
/// tier's queue accounting.
#[test]
fn allreduce_parity_serial_vs_sharded_at_1_2_4() {
    let (serial, n) = run_allreduce(1);
    assert_eq!(n, 1, "target 1 must use the serial engine");
    // Every tier carried traffic, so the oracle pass above really
    // covered host, aggregation and core queues.
    for (tier, &enq) in serial.tier_enqueued.iter().enumerate() {
        assert!(enq > 0, "tier {tier} saw no traffic");
    }
    for target in [2, 4] {
        let (sharded, n) = run_allreduce(target);
        assert!(n >= 2, "target {target} fell back to serial");
        assert_eq!(serial, sharded, "target {target} diverged from serial");
    }
}

/// Invalid construction surfaces as typed errors through the public
/// facade, not panics.
#[test]
fn invalid_fat_trees_are_typed_errors() {
    for ft in [
        FatTree::new(5, 2),  // odd arity
        FatTree::new(2, 2),  // arity below 4
        FatTree::new(18, 2), // arity above 16
        FatTree::new(4, 0),  // zero hosts per edge
    ] {
        let err = ft
            .build(|_| Box::new(TransportHost::new(tcp())))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
    }
    // Zero-capacity tier queues are mismatched tier configuration.
    let q = QueueConfig::switch(Capacity::Packets(0), MarkingScheme::dctcp_packets(20));
    let t = TierSpec::new(LinkSpec::gbps(1.0, 5), q);
    let err = FatTree::new(4, 2)
        .with_tiers(t, t, t)
        .build(|_| Box::new(TransportHost::new(tcp())))
        .unwrap_err();
    assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
}
