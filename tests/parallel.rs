//! Parallel-driver determinism: fanning independent simulation runs out
//! over `dt_dctcp::parallel` must produce bit-identical results to the
//! serial loop — same values, same order — regardless of thread count.
//! Each simulation owns its state and RNG streams, so the only way
//! parallelism could leak in is result (mis)ordering; these tests pin
//! that down with full-struct equality.

use dt_dctcp::core::MarkingScheme;
use dt_dctcp::parallel::par_map;
use dt_dctcp::sim::{
    Capacity, FaultPlan, FlowId, LinkSpec, QueueConfig, SimDuration, SimTime, Simulator,
    TopologyBuilder,
};
use dt_dctcp::tcp::{FlowError, ScheduledFlow, TcpConfig, TransportHost};
use dt_dctcp::trace::{oracle, TraceConfig, TraceDigest};
use dt_dctcp::workloads::experiments::{queue_sweep_with_threads, Scale};
use dt_dctcp::workloads::{run_query_rounds_with_threads, QueryWorkload, TestbedConfig};

const MB: u64 = 1024 * 1024;

/// Sender-side outcome of one chaos run; `PartialEq` over every field
/// makes "bit-identical" a one-line assertion.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    completed: bool,
    error: Option<FlowError>,
    bytes_received: u64,
    segments_sent: u64,
    timeouts: u64,
    bottleneck_counters: dt_dctcp::sim::QueueCounters,
    events_processed: u64,
    ended_at_ns: u64,
    trace_digest: TraceDigest,
}

/// A tx — sw — rx dumbbell with seeded Gilbert-Elliott loss, seeded
/// reordering, and a seed-randomized fault plan: the same chaos recipe
/// `tests/chaos.rs` replays, run here under the parallel driver.
fn run_dumbbell_chaos(seed: u64, horizon: SimDuration) -> Fingerprint {
    let tcp = TcpConfig::dctcp(1.0 / 16.0)
        .with_rto_min(SimDuration::from_millis(10))
        .with_max_consecutive_rtos(10)
        .with_ecn_fallback(4);
    let q = QueueConfig::switch(Capacity::Packets(100), MarkingScheme::dctcp_packets(20))
        .with_gilbert_elliott(0.01, 0.2, 0.001, 0.3, seed)
        .unwrap()
        .with_reorder(3, 0.02, seed ^ 0xdead)
        .unwrap();
    let mut b = TopologyBuilder::new();
    let rx = b.host("rx", Box::new(TransportHost::new(tcp)));
    let mut host = TransportHost::new(tcp);
    host.schedule(ScheduledFlow {
        flow: FlowId(1),
        dst: rx,
        bytes: Some(MB / 2),
        at: SimTime::ZERO,
        cfg: tcp,
    });
    let tx = b.host("tx", Box::new(host));
    let sw = b.switch("sw");
    let access = b
        .link(
            tx,
            sw,
            LinkSpec::gbps(10.0, 20),
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
    let bottleneck = b
        .link(sw, rx, LinkSpec::gbps(1.0, 20), q, QueueConfig::host_nic())
        .unwrap();
    let mut sim = Simulator::new(b.build().unwrap());
    sim.enable_trace(TraceConfig::all());
    let plan = FaultPlan::randomized(seed, &[access, bottleneck], horizon);
    sim.install_faults(&plan).unwrap();
    sim.run_for(horizon).unwrap();
    let log = sim.take_trace();
    let violations = oracle::check_log(&log);
    assert!(
        violations.is_empty(),
        "seed {seed}: {} invariant violations, first: {}",
        violations.len(),
        violations[0]
    );
    let trace_digest = log.digest();

    let rx_host: &TransportHost = sim.agent(rx).unwrap();
    let bytes_received = rx_host
        .receiver(FlowId(1))
        .map_or(0, |r| r.bytes_received());
    let tx_host: &TransportHost = sim.agent(tx).unwrap();
    let s = tx_host.sender(FlowId(1)).unwrap();
    Fingerprint {
        completed: s.is_complete(),
        error: s.error(),
        bytes_received,
        segments_sent: s.stats().segments_sent,
        timeouts: s.stats().timeouts,
        bottleneck_counters: sim.queue_report(bottleneck, sw).counters,
        events_processed: sim.events_processed(),
        ended_at_ns: sim.now().as_nanos(),
        trace_digest,
    }
}

#[test]
fn multi_seed_chaos_sweep_is_bit_identical_across_thread_counts() {
    let horizon = SimDuration::from_secs(2);
    let seeds: Vec<u64> = (1..=6).collect();

    let serial: Vec<Fingerprint> = seeds
        .iter()
        .map(|&s| run_dumbbell_chaos(s, horizon))
        .collect();
    // Thread counts beyond the machine's core count still exercise the
    // claim-by-index path; determinism must not depend on parallelism
    // actually being available.
    for threads in [1, 2, 4, 8] {
        let parallel = par_map(seeds.clone(), threads, |_, s| {
            run_dumbbell_chaos(s, horizon)
        });
        assert_eq!(
            serial, parallel,
            "chaos sweep diverged from serial at {threads} threads"
        );
    }
    // The sweep must contain real work, not six identical no-op runs.
    assert!(serial.iter().any(|f| f.bytes_received > 0));
    assert!(
        serial
            .windows(2)
            .any(|w| w[0].bottleneck_counters != w[1].bottleneck_counters),
        "all seeds produced identical runs — chaos plan ignored the seed?"
    );
}

#[test]
fn query_rounds_parallel_matches_serial() {
    let cfg = TestbedConfig::paper(MarkingScheme::dctcp_bytes(32 * 1024));
    let workload = QueryWorkload::incast(8, 4);
    let serial = run_query_rounds_with_threads(&cfg, &workload, 1).unwrap();
    let parallel = run_query_rounds_with_threads(&cfg, &workload, 4).unwrap();
    assert_eq!(serial, parallel, "query rounds diverged from serial");
    assert_eq!(serial.rounds.len(), workload.rounds as usize);
}

#[test]
fn queue_sweep_parallel_matches_serial() {
    let serial = queue_sweep_with_threads(Scale::Quick, 1);
    let parallel = queue_sweep_with_threads(Scale::Quick, 4);
    assert_eq!(serial, parallel, "queue sweep diverged from serial");
    assert!(!serial.points.is_empty());
}

#[test]
fn par_map_respects_jobs_env_override() {
    // DCTCP_JOBS steers available_threads(); par_map itself takes the
    // count explicitly, so this only checks the env plumbing once here
    // rather than in every driver.
    std::env::set_var("DCTCP_JOBS", "3");
    assert_eq!(dt_dctcp::parallel::available_threads(), 3);
    std::env::remove_var("DCTCP_JOBS");
    assert!(dt_dctcp::parallel::available_threads() >= 1);
}
