//! Headline reproduction checks across the whole stack, at quick scale:
//! each of the paper's main claims, exercised through the public façade.

use dt_dctcp::control::{critical_gain, AnalysisGrid, HysteresisDf, PlantParams, RelayDf};
use dt_dctcp::core::MarkingScheme;
use dt_dctcp::workloads::experiments::{fig1, fig9, queue_sweep, Scale};
use dt_dctcp::workloads::{run_query_rounds, QueryWorkload, TestbedConfig};

/// Section III observation: DCTCP's queue oscillation grows with the
/// number of flows.
#[test]
fn oscillation_grows_with_flows() {
    let r = fig1(Scale::Quick);
    let dc = MarkingScheme::dctcp_packets(40);
    let at10 = r.trace(dc, 10).expect("N=10 trace").std;
    let at100 = r.trace(dc, 100).expect("N=100 trace").std;
    assert!(
        at100 > 1.5 * at10,
        "queue std must grow with N: {at10:.2} -> {at100:.2}"
    );
}

/// The core claim (Figs. 10–11): DT-DCTCP holds a steadier queue than
/// DCTCP as flows grow.
#[test]
fn dt_dctcp_is_steadier_across_the_sweep() {
    let sweep = queue_sweep(Scale::Quick);
    let dc = sweep.scheme_points(MarkingScheme::dctcp_packets(40));
    let dt = sweep.scheme_points(MarkingScheme::dt_dctcp_packets(30, 50));
    assert_eq!(dc.len(), dt.len());
    // At every sampled N above the baseline, DT's std is at most DCTCP's
    // (allowing a small tolerance at the lowest N where both are tiny).
    let mut wins = 0;
    for (a, b) in dc.iter().zip(&dt) {
        assert_eq!(a.flows, b.flows);
        if b.queue_std < a.queue_std {
            wins += 1;
        }
    }
    assert!(
        wins >= dc.len() - 1,
        "DT should win std at nearly every N ({wins}/{} wins)",
        dc.len()
    );
    // And both keep the link saturated.
    for p in dc.iter().chain(&dt) {
        assert!(p.goodput_bps > 0.9e10 * 0.55, "goodput {}", p.goodput_bps);
    }
}

/// Fig. 12: the congestion-extent estimate α is lower (or equal) under
/// DT-DCTCP — the network is less congested.
#[test]
fn alpha_is_not_higher_under_dt() {
    let sweep = queue_sweep(Scale::Quick);
    let dc = sweep.scheme_points(MarkingScheme::dctcp_packets(40));
    let dt = sweep.scheme_points(MarkingScheme::dt_dctcp_packets(30, 50));
    let mean_dc: f64 = dc.iter().map(|p| p.alpha_mean).sum::<f64>() / dc.len() as f64;
    let mean_dt: f64 = dt.iter().map(|p| p.alpha_mean).sum::<f64>() / dt.len() as f64;
    assert!(
        mean_dt <= mean_dc + 0.02,
        "mean alpha: dt {mean_dt:.3} should not exceed dc {mean_dc:.3}"
    );
}

/// Theorems 1 & 2 (Fig. 9): the hysteresis tolerates strictly more loop
/// gain before predicting a limit cycle, at every flow count.
#[test]
fn df_analysis_favors_dt_at_every_n() {
    let grid = AnalysisGrid {
        w_points: 1200,
        x_points: 500,
        ..AnalysisGrid::default()
    };
    let relay = RelayDf::new(40.0).unwrap();
    let hyst = HysteresisDf::new(30.0, 50.0).unwrap();
    for n in [10.0, 40.0, 70.0, 110.0] {
        let plant = PlantParams::paper_defaults(n);
        let m_dc = critical_gain(&plant, &relay, &grid).expect("finite margin");
        let m_dt = critical_gain(&plant, &hyst, &grid).expect("finite margin");
        assert!(m_dt > m_dc, "N={n}: {m_dt} !> {m_dc}");
    }
}

/// Fig. 9's onset ordering at the calibrated gain.
#[test]
fn nyquist_onset_ordering() {
    let r = fig9(Scale::Quick);
    let dc = r.onset_dctcp.expect("DCTCP onset");
    let dt = r.onset_dt.expect("DT onset");
    assert!(dt > dc, "onsets: dc {dc}, dt {dt}");
}

/// Fig. 14/15 mechanics: small Incast is healthy; far past the cliff
/// every round stalls on RTO_min and the completion time is ~20x the
/// transfer floor.
#[test]
fn incast_cliff_reproduces_rto_min_stalls() {
    let cfg = TestbedConfig::paper(MarkingScheme::dctcp_bytes(32 * 1024));
    let healthy = run_query_rounds(&cfg, &QueryWorkload::incast(4, 2)).unwrap();
    assert_eq!(healthy.timeout_fraction(), 0.0);
    assert!(healthy.mean_goodput_bps() > 5e8);

    let collapsed = run_query_rounds(&cfg, &QueryWorkload::incast(44, 2)).unwrap();
    assert!(collapsed.timeout_fraction() > 0.5);
    let comps = collapsed.completions();
    if let Some(mean) = comps.mean() {
        assert!(
            mean > 0.15,
            "collapsed completion {mean}s should be near RTO_min (200 ms)"
        );
    }
}
