//! Chaos harness: seeded, scripted fault plans over the paper's
//! scenarios. Every run must end in one of exactly two states — the
//! transfer completed, or the flow aborted with a typed error — with
//! queue accounting conserved and the whole run replaying
//! bit-identically for the same seed.

use dt_dctcp::core::MarkingScheme;
use dt_dctcp::sim::{
    Capacity, FaultPlan, FlowId, LinkId, LinkSpec, NodeId, QueueConfig, SimDuration, SimTime,
    Simulator, TopologyBuilder,
};
use dt_dctcp::tcp::{FlowError, ScheduledFlow, TcpConfig, TransportHost};
use dt_dctcp::trace::{oracle, TraceConfig, TraceDigest, TraceLog};
use dt_dctcp::workloads::{build_testbed, LongLivedInstance, LongLivedScenario, TestbedConfig};

const MB: u64 = 1024 * 1024;

/// Every chaos run records a trace and replays it through the invariant
/// oracle: conservation, marking laws, monotonicity, CE echo, and work
/// conservation must hold under arbitrary fault schedules.
fn assert_oracle_clean(log: &TraceLog, label: &str) -> TraceDigest {
    let violations = oracle::check_log(log);
    assert!(
        violations.is_empty(),
        "{label}: {} invariant violations, first: {}",
        violations.len(),
        violations[0]
    );
    log.digest()
}

/// A dumbbell (tx — sw — rx) with the given bottleneck queue and one
/// finite flow of `bytes`, returning the handles a fault plan needs.
struct Dumbbell {
    sim: Simulator,
    tx: NodeId,
    rx: NodeId,
    sw: NodeId,
    access: LinkId,
    bottleneck: LinkId,
}

fn dumbbell(bottleneck_q: QueueConfig, tcp: TcpConfig, bytes: u64) -> Dumbbell {
    let mut b = TopologyBuilder::new();
    let rx = b.host("rx", Box::new(TransportHost::new(tcp)));
    let mut host = TransportHost::new(tcp);
    host.schedule(ScheduledFlow {
        flow: FlowId(1),
        dst: rx,
        bytes: Some(bytes),
        at: SimTime::ZERO,
        cfg: tcp,
    });
    let tx = b.host("tx", Box::new(host));
    let sw = b.switch("sw");
    // A 10:1 rate step into the bottleneck, so the switch queue is where
    // congestion actually happens.
    let access = b
        .link(
            tx,
            sw,
            LinkSpec::gbps(10.0, 20),
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
    let bottleneck = b
        .link(
            sw,
            rx,
            LinkSpec::gbps(1.0, 20),
            bottleneck_q,
            QueueConfig::host_nic(),
        )
        .unwrap();
    Dumbbell {
        sim: Simulator::new(b.build().unwrap()),
        tx,
        rx,
        sw,
        access,
        bottleneck,
    }
}

fn chaos_tcp() -> TcpConfig {
    TcpConfig::dctcp(1.0 / 16.0)
        .with_rto_min(SimDuration::from_millis(10))
        .with_max_consecutive_rtos(10)
        .with_ecn_fallback(4)
}

/// Queue-level packet conservation: everything that entered either left
/// or is still waiting. Takes the report pieces rather than a simulator
/// so both `Simulator` and `ShardedSimulator` runs can use it.
fn assert_queue_conserved(c: dt_dctcp::sim::QueueCounters, waiting: u32) {
    let waiting = u64::from(waiting);
    assert_eq!(
        c.enqueued,
        c.dequeued + waiting,
        "queue accounting leak: {c:?} with {waiting} waiting"
    );
}

/// The sender-side outcome of a finite chaos run, used both for the
/// completed-or-aborted invariant and for bit-identical replay checks.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    completed: bool,
    error: Option<FlowError>,
    bytes_received: u64,
    segments_sent: u64,
    timeouts: u64,
    fast_retransmits: u64,
    bottleneck_counters: dt_dctcp::sim::QueueCounters,
    ended_at_ns: u64,
    trace_digest: TraceDigest,
}

fn run_dumbbell_chaos(seed: u64, horizon: SimDuration) -> Fingerprint {
    let q = QueueConfig::switch(Capacity::Packets(100), MarkingScheme::dctcp_packets(20))
        .with_gilbert_elliott(0.01, 0.2, 0.001, 0.3, seed)
        .unwrap()
        .with_reorder(3, 0.02, seed ^ 0xdead)
        .unwrap();
    let mut d = dumbbell(q, chaos_tcp(), MB / 2);
    d.sim.enable_trace(TraceConfig::all());
    let plan = FaultPlan::randomized(seed, &[d.access, d.bottleneck], horizon);
    d.sim.install_faults(&plan).unwrap();
    d.sim.run_for(horizon).unwrap();
    let log = d.sim.take_trace();
    let trace_digest = assert_oracle_clean(&log, &format!("chaos seed {seed}"));
    // Whatever the faults did, the run must have settled: either the
    // transfer finished or the sender gave up with a typed error.
    assert_queue_conserved(
        d.sim.queue_report(d.bottleneck, d.sw).counters,
        d.sim.queue_len_pkts(d.bottleneck, d.sw),
    );
    let rx_host: &TransportHost = d.sim.agent(d.rx).unwrap();
    let bytes_received = rx_host
        .receiver(FlowId(1))
        .map_or(0, |r| r.bytes_received());
    let tx_host: &TransportHost = d.sim.agent(d.tx).unwrap();
    let s = tx_host.sender(FlowId(1)).unwrap();
    Fingerprint {
        completed: s.is_complete(),
        error: s.error(),
        bytes_received,
        segments_sent: s.stats().segments_sent,
        timeouts: s.stats().timeouts,
        fast_retransmits: s.stats().fast_retransmits,
        bottleneck_counters: d.sim.queue_report(d.bottleneck, d.sw).counters,
        ended_at_ns: d.sim.now().as_nanos(),
        trace_digest,
    }
}

#[test]
fn star_bottleneck_flap_conserves_and_recovers() {
    let LongLivedInstance {
        mut sim,
        rx,
        bottleneck,
        switch,
        senders: _,
    } = LongLivedScenario::builder()
        .flows(4)
        .bottleneck_gbps(1.0)
        .marking(MarkingScheme::dctcp_packets(20))
        .build()
        .unwrap()
        .instantiate()
        .unwrap();

    sim.enable_trace(TraceConfig::all());
    // Two 5 ms outages of the only bottleneck, 15 ms apart.
    let plan = FaultPlan::new().flap(
        bottleneck,
        SimTime::ZERO + SimDuration::from_millis(10),
        SimDuration::from_millis(5),
        SimDuration::from_millis(15),
        2,
    );
    sim.install_faults(&plan).unwrap();

    // During the second outage (t = 29 ms) delivery is stalled...
    sim.run_until(SimTime::ZERO + SimDuration::from_millis(29))
        .unwrap();
    assert!(!sim.link_is_up(bottleneck).unwrap());
    let mid_bytes: u64 = {
        let host: &TransportHost = sim.agent(rx).unwrap();
        host.receivers().map(|r| r.stats().bytes_received).sum()
    };

    // ...and after it the flows pick the bottleneck back up.
    sim.run_until(SimTime::ZERO + SimDuration::from_millis(60))
        .unwrap();
    assert!(sim.link_is_up(bottleneck).unwrap());
    let end_bytes: u64 = {
        let host: &TransportHost = sim.agent(rx).unwrap();
        host.receivers().map(|r| r.stats().bytes_received).sum()
    };
    assert!(mid_bytes > 0, "nothing delivered before the outages");
    // 30 ms of healthy 1 Gb/s is ~3.75 MB; even a conservative bound
    // shows real post-recovery throughput rather than a trickle.
    assert!(
        end_bytes > mid_bytes + MB,
        "no recovery after flap: {mid_bytes} -> {end_bytes}"
    );
    assert_queue_conserved(
        sim.queue_report(bottleneck, switch).counters,
        sim.queue_len_pkts(bottleneck, switch),
    );
    let log = sim.take_trace();
    assert_oracle_clean(&log, "star flap");
    assert!(
        log.digest().count("fault") >= 4,
        "both outages (down + up each) must appear in the trace"
    );
}

#[test]
fn bursty_loss_transfer_completes() {
    let q = QueueConfig::switch(Capacity::Packets(200), MarkingScheme::dctcp_packets(20))
        .with_gilbert_elliott(0.02, 0.3, 0.0, 0.25, 7)
        .unwrap();
    let mut d = dumbbell(q, chaos_tcp(), MB);
    d.sim.enable_trace(TraceConfig::all());
    d.sim.run_for(SimDuration::from_secs(5)).unwrap();
    assert_oracle_clean(&d.sim.take_trace(), "bursty loss");
    let tx_host: &TransportHost = d.sim.agent(d.tx).unwrap();
    let s = tx_host.sender(FlowId(1)).unwrap();
    assert!(s.is_complete(), "1 MB must survive bursty loss");
    assert!(
        s.stats().fast_retransmits + s.stats().timeouts > 0,
        "bursty loss must have forced recoveries"
    );
    assert_queue_conserved(
        d.sim.queue_report(d.bottleneck, d.sw).counters,
        d.sim.queue_len_pkts(d.bottleneck, d.sw),
    );
}

#[test]
fn reordering_transfer_completes() {
    let q = QueueConfig::switch(Capacity::Packets(200), MarkingScheme::dctcp_packets(20))
        .with_reorder(3, 0.2, 21)
        .unwrap();
    let mut d = dumbbell(q, chaos_tcp(), MB);
    d.sim.enable_trace(TraceConfig::all());
    d.sim.run_for(SimDuration::from_secs(5)).unwrap();
    assert_oracle_clean(&d.sim.take_trace(), "reordering");
    let tx_host: &TransportHost = d.sim.agent(d.tx).unwrap();
    let s = tx_host.sender(FlowId(1)).unwrap();
    assert!(s.is_complete(), "1 MB must survive bounded reordering");
    assert_queue_conserved(
        d.sim.queue_report(d.bottleneck, d.sw).counters,
        d.sim.queue_len_pkts(d.bottleneck, d.sw),
    );
    let rx_host: &TransportHost = d.sim.agent(d.rx).unwrap();
    assert_eq!(
        rx_host.receiver(FlowId(1)).unwrap().bytes_received(),
        MB,
        "reassembly must deliver every byte exactly once"
    );
}

#[test]
fn permanent_outage_aborts_with_typed_error() {
    let q = QueueConfig::switch(Capacity::Packets(200), MarkingScheme::dctcp_packets(20));
    let tcp = TcpConfig::dctcp(1.0 / 16.0)
        .with_rto_min(SimDuration::from_millis(10))
        .with_max_consecutive_rtos(5);
    let mut d = dumbbell(q, tcp, MB);
    d.sim.enable_trace(TraceConfig::all());
    // The bottleneck dies 2 ms in and never comes back.
    let plan = FaultPlan::new().at(
        SimTime::ZERO + SimDuration::from_millis(2),
        d.bottleneck,
        dt_dctcp::sim::FaultAction::LinkDown,
    );
    d.sim.install_faults(&plan).unwrap();
    d.sim.run_for(SimDuration::from_secs(30)).unwrap();
    let log = d.sim.take_trace();
    assert_oracle_clean(&log, "permanent outage");
    assert!(
        log.digest().count("rto_fired") >= 5,
        "the outage must show up as repeated RTOs in the trace"
    );
    assert_eq!(log.digest().count("flow_aborted"), 1);

    let tx_host: &TransportHost = d.sim.agent(d.tx).unwrap();
    let s = tx_host.sender(FlowId(1)).unwrap();
    assert!(!s.is_complete());
    assert_eq!(
        s.error(),
        Some(FlowError::TooManyRtos {
            flow: FlowId(1),
            consecutive: 5
        })
    );
    assert_eq!(tx_host.flow_errors().len(), 1);
    // The aborted flow left no timers behind: the simulation drained
    // instead of spinning RTO events until the horizon.
    assert!(!d.sim.has_pending_events());
}

#[test]
fn bleached_testbed_incast_falls_back_and_completes() {
    let mut cfg = TestbedConfig::paper(MarkingScheme::dctcp_bytes(32 * 1024));
    cfg.tcp = TcpConfig::dctcp(1.0 / 16.0)
        .with_rto_min(SimDuration::from_millis(10))
        .with_ecn_fallback(2);
    let flow_bytes: u64 = 256 * 1024;
    let client_node = NodeId::from_index(0); // client is added first
    let flows: Vec<ScheduledFlow> = (0..8)
        .map(|i| ScheduledFlow {
            flow: FlowId(i + 1),
            dst: client_node,
            bytes: Some(flow_bytes),
            at: SimTime::ZERO + SimDuration::from_micros(10 * i),
            cfg: cfg.tcp,
        })
        .collect();
    let mut tb = build_testbed(&cfg, &flows).unwrap();
    assert_eq!(tb.client, client_node);
    // A broken middlebox bleaches the bottleneck for the whole run.
    let plan = FaultPlan::new().bleach_window(
        tb.bottleneck,
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::from_secs(30),
    );
    tb.sim.enable_trace(TraceConfig::all());
    tb.sim.install_faults(&plan).unwrap();
    tb.sim.run_for(SimDuration::from_secs(10)).unwrap();
    assert_oracle_clean(&tb.sim.take_trace(), "bleached incast");

    let client: &TransportHost = tb.sim.agent(tb.client).unwrap();
    for i in 0..8u64 {
        let r = client.receiver(FlowId(i + 1)).expect("flow reached client");
        assert_eq!(
            r.bytes_received(),
            flow_bytes,
            "flow {} incomplete through bleached bottleneck",
            i + 1
        );
    }
    // At least one sender must have detected the bleaching and dropped
    // back to loss-based congestion control.
    let mut fell_back = 0;
    for &w in &tb.workers {
        let host: &TransportHost = tb.sim.agent(w).unwrap();
        fell_back += host.senders().filter(|s| !s.ecn_active()).count();
    }
    assert!(
        fell_back > 0,
        "no sender disabled ECN under total bleaching"
    );
    let report = tb.sim.queue_report(tb.bottleneck, tb.switch1);
    assert!(report.counters.bleached > 0, "bleach fault never fired");
}

#[test]
fn randomized_chaos_replays_bit_identically() {
    let horizon = SimDuration::from_secs(8);
    let mut completions = 0;
    for seed in 1..=5u64 {
        let a = run_dumbbell_chaos(seed, horizon);
        let b = run_dumbbell_chaos(seed, horizon);
        assert_eq!(a, b, "seed {seed} did not replay identically");
        // Terminal-state invariant: finished, typed abort, or the
        // horizon cut the run mid-recovery (never a silent wedge with
        // zero progress).
        assert!(
            a.completed || a.error.is_some() || a.bytes_received > 0,
            "seed {seed} made no progress and raised no error: {a:?}"
        );
        if a.completed {
            completions += 1;
            assert_eq!(a.bytes_received, MB / 2);
        }
    }
    assert!(
        completions >= 2,
        "chaos too harsh: only {completions}/5 seeds completed"
    );
}
