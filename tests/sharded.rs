//! Sharded-vs-serial equivalence suite: the intra-run sharded engine
//! must be bit-identical to the serial reference — same trace digests,
//! same transport outcomes, same queue accounting — at every shard
//! count, under clean runs, scripted faults, randomized chaos, and
//! deliberately tied cross-domain timestamps.

use dt_dctcp::core::MarkingScheme;
use dt_dctcp::sim::{
    Agent, Capacity, Context, FaultPlan, FlowId, LinkId, LinkSpec, Network, NodeId, Packet,
    QueueConfig, ShardedSimulator, SimDuration, SimTime, TopologyBuilder,
};
use dt_dctcp::tcp::{ScheduledFlow, TcpConfig, TransportHost};
use dt_dctcp::trace::{oracle, TraceConfig, TraceDigest};

const MB: u64 = 1024 * 1024;

fn tcp() -> TcpConfig {
    TcpConfig::dctcp(1.0 / 16.0)
        .with_rto_min(SimDuration::from_millis(10))
        .with_max_consecutive_rtos(10)
}

/// A dumbbell (tx — sw — rx, 10:1 rate step) carrying one finite flow,
/// rebuilt fresh per shard target so each run starts from scratch.
fn dumbbell(bottleneck_q: QueueConfig, bytes: u64) -> (Network, DumbbellIds) {
    let mut b = TopologyBuilder::new();
    let rx = b.host("rx", Box::new(TransportHost::new(tcp())));
    let mut host = TransportHost::new(tcp());
    host.schedule(ScheduledFlow {
        flow: FlowId(1),
        dst: rx,
        bytes: Some(bytes),
        at: SimTime::ZERO,
        cfg: tcp(),
    });
    let tx = b.host("tx", Box::new(host));
    let sw = b.switch("sw");
    let access = b
        .link(
            tx,
            sw,
            LinkSpec::gbps(10.0, 20),
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
    let bottleneck = b
        .link(
            sw,
            rx,
            LinkSpec::gbps(1.0, 20),
            bottleneck_q,
            QueueConfig::host_nic(),
        )
        .unwrap();
    (
        b.build().unwrap(),
        DumbbellIds {
            tx,
            rx,
            sw,
            access,
            bottleneck,
        },
    )
}

#[derive(Clone, Copy)]
struct DumbbellIds {
    tx: NodeId,
    rx: NodeId,
    sw: NodeId,
    access: LinkId,
    bottleneck: LinkId,
}

/// Everything observable about a finished run; two runs are "the same"
/// exactly when these compare equal.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    digest: TraceDigest,
    events: u64,
    ended_at_ns: u64,
    bytes_received: u64,
    segments_sent: u64,
    bottleneck_counters: dt_dctcp::sim::QueueCounters,
}

/// Runs the dumbbell to `horizon` at the given shard target (1 = the
/// serial reference engine) with an optional fault plan, insisting the
/// trace passes the invariant oracle.
fn run_dumbbell(
    target: usize,
    horizon: SimDuration,
    q: QueueConfig,
    plan: impl FnOnce(&DumbbellIds) -> FaultPlan,
) -> (Fingerprint, usize) {
    let (net, ids) = dumbbell(q, MB / 2);
    let mut sim = ShardedSimulator::with_shards(net, target).unwrap();
    sim.enable_trace(TraceConfig::all());
    sim.install_faults(&plan(&ids)).unwrap();
    sim.run_for(horizon).unwrap();
    let log = sim.take_trace();
    let violations = oracle::check_log(&log);
    assert!(
        violations.is_empty(),
        "{target}-target run violated invariants, first: {}",
        violations[0]
    );
    let rx_host: &TransportHost = sim.agent(ids.rx).unwrap();
    let bytes_received = rx_host
        .receiver(FlowId(1))
        .map_or(0, |r| r.bytes_received());
    let tx_host: &TransportHost = sim.agent(ids.tx).unwrap();
    let segments_sent = tx_host
        .sender(FlowId(1))
        .map_or(0, |s| s.stats().segments_sent);
    (
        Fingerprint {
            digest: log.digest(),
            events: sim.events_processed(),
            ended_at_ns: sim.now().as_nanos(),
            bytes_received,
            segments_sent,
            bottleneck_counters: sim.queue_report(ids.bottleneck, ids.sw).counters,
        },
        sim.shard_count(),
    )
}

fn clean_queue() -> QueueConfig {
    QueueConfig::switch(Capacity::Packets(100), MarkingScheme::dctcp_packets(20))
}

/// Clean transport run: the golden-style trace digest must be identical
/// at 1, 2 and 4 requested shards (the 3-node dumbbell caps out at 3
/// actual domains; what matters is that >= 2 really ran sharded).
#[test]
fn transport_digest_parity_across_shard_counts() {
    let horizon = SimDuration::from_secs(6);
    let (serial, n) = run_dumbbell(1, horizon, clean_queue(), |_| FaultPlan::new());
    assert_eq!(n, 1, "target 1 must use the serial engine");
    assert_eq!(serial.bytes_received, MB / 2, "flow must complete");
    for target in [2, 4] {
        let (sharded, n) = run_dumbbell(target, horizon, clean_queue(), |_| FaultPlan::new());
        assert!(n >= 2, "target {target} fell back to serial");
        assert_eq!(serial, sharded, "target {target} diverged from serial");
    }
}

/// Scripted faults (a bottleneck flap) plus queue impairments must
/// replay identically under sharding: faults fire in the owning shard
/// only, but the observable run is the same.
#[test]
fn scripted_faults_replay_identically_under_sharding() {
    let horizon = SimDuration::from_secs(6);
    let q = clean_queue();
    let flap = |ids: &DumbbellIds| {
        FaultPlan::new().flap(
            ids.bottleneck,
            SimTime::ZERO + SimDuration::from_millis(10),
            SimDuration::from_millis(5),
            SimDuration::from_millis(15),
            2,
        )
    };
    let (serial, _) = run_dumbbell(1, horizon, q, flap);
    for target in [2, 4] {
        let (sharded, n) = run_dumbbell(target, horizon, q, flap);
        assert!(n >= 2);
        assert_eq!(serial, sharded, "faulted target {target} diverged");
    }
    assert!(
        serial.digest.count("fault") >= 4,
        "both outages (down + up each) must appear in the trace"
    );
}

/// The randomized chaos suite — Gilbert–Elliott loss, bounded
/// reordering, a randomized fault schedule — is the harshest
/// determinism check we have; every seed must produce the same
/// fingerprint sharded as serial.
#[test]
fn randomized_chaos_matches_serial_per_seed() {
    let horizon = SimDuration::from_secs(4);
    for seed in 1..=3u64 {
        let q = QueueConfig::switch(Capacity::Packets(100), MarkingScheme::dctcp_packets(20))
            .with_gilbert_elliott(0.01, 0.2, 0.001, 0.3, seed)
            .unwrap()
            .with_reorder(3, 0.02, seed ^ 0xdead)
            .unwrap();
        let chaos =
            |ids: &DumbbellIds| FaultPlan::randomized(seed, &[ids.access, ids.bottleneck], horizon);
        let (serial, _) = run_dumbbell(1, horizon, q, chaos);
        let (sharded, n) = run_dumbbell(4, horizon, q, chaos);
        assert!(n >= 2);
        assert_eq!(serial, sharded, "chaos seed {seed} diverged under sharding");
    }
}

/// Fires `count` same-sized packets at `peer` the moment the clock
/// starts, so two instances on symmetric links produce cross-domain
/// arrivals with *identical* timestamps.
#[derive(Debug)]
struct SyncBurst {
    peer: NodeId,
    count: u32,
}

impl Agent for SyncBurst {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for i in 0..self.count {
            ctx.send(Packet::data(
                FlowId(u64::from(i) + 1),
                ctx.node(),
                self.peer,
                u64::from(i),
                1460,
            ));
        }
    }
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Context<'_>) {}
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The mailbox tie-break case: two senders in *different* domains whose
/// packets reach the shared hub at exactly the same timestamps, window
/// after window. The injected events tie on arrival time and must drain
/// in the engine's documented order (source-shard id), which is also
/// what the serial engine does — so the digests must match exactly.
#[test]
fn equal_timestamp_cross_domain_arrivals_drain_like_serial() {
    let build = || {
        let mut b = TopologyBuilder::new();
        let rx_id = NodeId::from_index(3); // h1, h2, hub precede rx
        let h1 = b.host(
            "h1",
            Box::new(SyncBurst {
                peer: rx_id,
                count: 64,
            }),
        );
        let h2 = b.host(
            "h2",
            Box::new(SyncBurst {
                peer: rx_id,
                count: 64,
            }),
        );
        let hub = b.switch("hub");
        let rx = b.host(
            "rx",
            Box::new(SyncBurst {
                peer: rx_id,
                count: 0,
            }),
        );
        assert_eq!(rx, rx_id);
        let spec = LinkSpec::gbps(10.0, 10);
        // Identical h1→hub and h2→hub links: every packet pair arrives
        // at the hub with byte-identical timestamps.
        let sw_q = QueueConfig::switch(Capacity::Packets(256), MarkingScheme::dctcp_packets(200));
        b.link(h1, hub, spec, QueueConfig::host_nic(), sw_q)
            .unwrap();
        b.link(h2, hub, spec, QueueConfig::host_nic(), sw_q)
            .unwrap();
        let out = b
            .link(hub, rx, spec, sw_q, QueueConfig::host_nic())
            .unwrap();
        (b.build().unwrap(), hub, out)
    };
    let run = |target: usize| {
        let (net, hub, out) = build();
        let mut sim = ShardedSimulator::with_shards(net, target).unwrap();
        sim.enable_trace(TraceConfig::all());
        sim.run_for(SimDuration::from_millis(5)).unwrap();
        let counters = sim.queue_report(out, hub).counters;
        (sim.take_trace().digest(), sim.events_processed(), counters)
    };
    let serial = run(1);
    // All 128 packets funnel through the hub queue exactly once.
    assert_eq!(serial.2.enqueued, 128, "hub must see both bursts");
    for target in [2, 4] {
        assert_eq!(
            serial,
            run(target),
            "tied timestamps broke at target {target}"
        );
    }
}
