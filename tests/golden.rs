//! Golden-trace regression tests: seeded single-bottleneck buildup runs
//! (the Fig. 5/6-style scenario) under DCTCP and DT-DCTCP marking are
//! traced end to end, digested, and compared against checked-in
//! snapshots in `tests/golden/`. Any behavioural drift — an extra mark,
//! a lost packet, a changed queue trajectory — shows up as a digest
//! mismatch.
//!
//! To regenerate the snapshots after an *intentional* behaviour change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```
//!
//! The digests must also be identical across repeated runs and across
//! parallel-driver thread counts; the mutation test proves the oracle
//! actually catches a broken marking law rather than vacuously passing.

use std::path::PathBuf;

use dt_dctcp::core::MarkingScheme;
use dt_dctcp::parallel::par_map;
use dt_dctcp::sim::SimDuration;
use dt_dctcp::trace::{oracle, TraceConfig, TraceKind, TraceLog};
use dt_dctcp::workloads::{run_buildup_traced, BuildupConfig};

/// Both schemes under test: classic single-threshold DCTCP and the
/// paper's double-threshold variant.
fn schemes() -> [(&'static str, MarkingScheme); 2] {
    [
        ("buildup_dctcp", MarkingScheme::dctcp_packets(20)),
        ("buildup_dt_dctcp", MarkingScheme::dt_dctcp_packets(15, 25)),
    ]
}

/// A reduced-horizon buildup scenario: long flows keeping a standing
/// queue plus a handful of short queries, deterministic end to end.
fn golden_cfg(marking: MarkingScheme) -> BuildupConfig {
    BuildupConfig {
        short_count: 4,
        warmup: SimDuration::from_millis(10),
        ..BuildupConfig::standard(marking)
    }
}

/// Runs the scenario traced, insists the oracle is clean, and returns
/// the rendered digest.
fn traced_log(marking: MarkingScheme) -> TraceLog {
    let (report, log) =
        run_buildup_traced(&golden_cfg(marking), TraceConfig::with_capacity(1 << 21)).unwrap();
    assert!(report.queue_mean > 0.0, "bottleneck never built a queue");
    assert_eq!(log.dropped, 0, "trace ring too small for the golden run");
    let violations = oracle::check_log(&log);
    assert!(
        violations.is_empty(),
        "golden run violated invariants, first: {}",
        violations[0]
    );
    log
}

fn digest_render(marking: MarkingScheme) -> String {
    traced_log(marking).digest().render()
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.digest"))
}

fn check_golden(name: &str, marking: MarkingScheme) {
    let rendered = digest_render(marking);
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {path:?} ({e}); create it with\n  \
             UPDATE_GOLDEN=1 cargo test --test golden"
        )
    });
    if rendered != expected {
        panic!("{}", drift_report(name, &expected, &rendered));
    }
}

/// Renders a digest-drift failure that can be acted on without rerunning
/// anything: the first divergent line (the digest is one trace record or
/// summary counter per line) and the exact regeneration command.
fn drift_report(name: &str, expected: &str, rendered: &str) -> String {
    let divergence = expected
        .lines()
        .zip(rendered.lines())
        .enumerate()
        .find(|(_, (e, r))| e != r);
    let where_ = match divergence {
        Some((i, (e, r))) => format!(
            "first divergence at digest line {}:\n  golden: {e}\n  actual: {r}",
            i + 1
        ),
        // No differing common line means one digest is a prefix of the
        // other — the run ended early or recorded extra trace events.
        None => format!(
            "digests agree line-by-line but differ in length \
             (golden {} lines, actual {} lines)",
            expected.lines().count(),
            rendered.lines().count()
        ),
    };
    format!(
        "golden digest drift for {name}\n{where_}\n\
         if this behaviour change is intentional, regenerate the snapshots with\n  \
         UPDATE_GOLDEN=1 cargo test --test golden\n\
         and commit the updated tests/golden/{name}.digest"
    )
}

#[test]
fn dctcp_buildup_matches_golden_digest() {
    let (name, scheme) = schemes()[0];
    check_golden(name, scheme);
}

#[test]
fn dt_dctcp_buildup_matches_golden_digest() {
    let (name, scheme) = schemes()[1];
    check_golden(name, scheme);
}

#[test]
fn golden_digests_are_deterministic_across_runs_and_threads() {
    let serial: Vec<String> = schemes().iter().map(|&(_, m)| digest_render(m)).collect();
    // Repeat serially: bit-identical.
    let again: Vec<String> = schemes().iter().map(|&(_, m)| digest_render(m)).collect();
    assert_eq!(serial, again, "digest changed between identical runs");
    // And under the parallel driver at several thread counts.
    for threads in [1, 2, 4] {
        let parallel = par_map(schemes().to_vec(), threads, |_, (_, m)| digest_render(m));
        assert_eq!(
            serial, parallel,
            "digest diverged from serial at {threads} threads"
        );
    }
}

/// The drift report must carry everything needed to act on a failure:
/// the regeneration command and the first line that diverged.
#[test]
fn drift_report_names_command_and_divergent_line() {
    let report = drift_report("buildup_dctcp", "a 1\nb 2\nc 3\n", "a 1\nb 9\nc 3\n");
    assert!(
        report.contains("UPDATE_GOLDEN=1 cargo test --test golden"),
        "{report}"
    );
    assert!(report.contains("line 2"), "{report}");
    assert!(report.contains("golden: b 2"), "{report}");
    assert!(report.contains("actual: b 9"), "{report}");

    let truncated = drift_report("buildup_dctcp", "a 1\nb 2\n", "a 1\n");
    assert!(truncated.contains("differ in length"), "{truncated}");
}

/// The oracle must catch a deliberately broken marking law: flip one
/// recorded `MarkDecision` and the digest's marking check fails.
#[test]
fn oracle_catches_mutated_marking_decision() {
    let mut log = traced_log(MarkingScheme::dctcp_packets(20));
    let flipped = log
        .events
        .iter_mut()
        .find_map(|e| match &mut e.kind {
            TraceKind::MarkDecision {
                mark, ce_applied, ..
            } => {
                *mark = !*mark;
                *ce_applied = false;
                Some(())
            }
            _ => None,
        })
        .is_some();
    assert!(flipped, "golden run recorded no marking decisions");
    let violations = oracle::check_log(&log);
    assert!(
        violations.iter().any(|v| v.check == "marking_law"),
        "oracle missed the mutated marking decision: {violations:?}"
    );
}
