//! Reproducibility guarantees: identical configurations produce
//! bit-identical results; different seeds genuinely differ.

use dt_dctcp::core::MarkingScheme;
use dt_dctcp::workloads::{run_query_rounds, LongLivedScenario, QueryWorkload, TestbedConfig};

#[test]
fn long_lived_runs_are_bit_identical() {
    let build = || {
        LongLivedScenario::builder()
            .flows(6)
            .bottleneck_gbps(1.0)
            .marking(MarkingScheme::dt_dctcp_packets(15, 25))
            .warmup_secs(0.01)
            .duration_secs(0.03)
            .build()
            .unwrap()
    };
    let a = build().run();
    let b = build().run();
    assert_eq!(a.queue.mean.to_bits(), b.queue.mean.to_bits());
    assert_eq!(a.queue.std.to_bits(), b.queue.std.to_bits());
    assert_eq!(a.marks, b.marks);
    assert_eq!(a.goodput_bps.to_bits(), b.goodput_bps.to_bits());
    assert_eq!(a.alpha.count(), b.alpha.count());
}

#[test]
fn query_rounds_reproduce_per_seed() {
    let cfg = TestbedConfig::paper(MarkingScheme::dctcp_bytes(32 * 1024));
    let wl = QueryWorkload::incast(12, 3);
    let a = run_query_rounds(&cfg, &wl).unwrap();
    let b = run_query_rounds(&cfg, &wl).unwrap();
    assert_eq!(a.rounds, b.rounds);
}

#[test]
fn different_seeds_differ() {
    let cfg = TestbedConfig::paper(MarkingScheme::dctcp_bytes(32 * 1024));
    let mut wl = QueryWorkload::incast(24, 4);
    let a = run_query_rounds(&cfg, &wl).unwrap();
    wl.seed = 999;
    let b = run_query_rounds(&cfg, &wl).unwrap();
    assert_ne!(
        a.rounds, b.rounds,
        "jittered rounds with different seeds should not coincide"
    );
}

#[test]
fn rounds_within_a_workload_differ() {
    // The per-round seeds produce different jitter, hence different
    // dynamics round to round (no accidental seed reuse).
    let cfg = TestbedConfig::paper(MarkingScheme::dctcp_bytes(32 * 1024));
    let wl = QueryWorkload::incast(24, 6);
    let rep = run_query_rounds(&cfg, &wl).unwrap();
    let first = rep.rounds[0];
    assert!(
        rep.rounds.iter().any(|r| *r != first),
        "all rounds identical — jitter seeding broken"
    );
}
