//! End-to-end tests of the `repro` / `repro_check` binaries: the same
//! artifact either passes or fails `repro_check` depending only on the
//! committed envelope, and bad scenario files die with line-numbered
//! diagnostics.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A tiny but real long-lived matrix (one marking, two flow counts)
/// with envelopes that genuinely hold for it.
const PASSING_SCN: &str = "\
[scenario]
name = cli_smoke
kind = long_lived
description = integration-test matrix

[topology]
bottleneck = 1 Gbps

[run]
flows = 2, 4
warmup = 20 ms
duration = 15 ms
trace = 100 us

[marking \"dctcp\"]
scheme = dctcp
k = 20 pkts

[expect \"saturated\"]
check = metric_range
metric = utilization
min = 0.8

[expect \"lossless\"]
check = metric_range
metric = drops
max = 0
";

/// Same name and matrix, but an envelope no real run can satisfy.
const FAILING_SCN: &str = "\
[scenario]
name = cli_smoke
kind = long_lived

[topology]
bottleneck = 1 Gbps

[run]
flows = 2, 4
warmup = 20 ms
duration = 15 ms
trace = 100 us

[marking \"dctcp\"]
scheme = dctcp
k = 20 pkts

[expect \"impossible\"]
check = metric_range
metric = queue_mean
max = 0.000001
";

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dctcp-scn-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_bin(exe: &str, args: &[&str], cwd: &Path) -> Output {
    Command::new(exe)
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn binary")
}

#[test]
fn repro_then_check_pass_and_fail_on_envelopes() {
    let dir = unique_dir("cli");
    let scn_pass = dir.join("scenarios");
    let scn_fail = dir.join("scenarios-fail");
    std::fs::create_dir_all(&scn_pass).unwrap();
    std::fs::create_dir_all(&scn_fail).unwrap();
    std::fs::write(scn_pass.join("cli_smoke.scn"), PASSING_SCN).unwrap();
    std::fs::write(scn_fail.join("cli_smoke.scn"), FAILING_SCN).unwrap();

    // Run the matrix once; the artifact serves both check runs.
    let out = run_bin(
        env!("CARGO_BIN_EXE_repro"),
        &["--all", "scenarios", "--out", "artifacts"],
        &dir,
    );
    assert!(
        out.status.success(),
        "repro failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let artifact = dir.join("artifacts/cli_smoke.json");
    let body = std::fs::read_to_string(&artifact).expect("artifact written");
    assert!(body.contains("\"schema\": \"dctcp-repro/v1\""));
    assert!(body.contains("\"flows\": 4"));

    // The honest envelopes hold...
    let out = run_bin(
        env!("CARGO_BIN_EXE_repro_check"),
        &["--all", "scenarios", "--artifacts", "artifacts"],
        &dir,
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "repro_check failed: {stderr}");
    assert!(stderr.contains("0 violation(s)"), "{stderr}");

    // ...and the impossible one rejects the very same artifact.
    let out = run_bin(
        env!("CARGO_BIN_EXE_repro_check"),
        &["--all", "scenarios-fail", "--artifacts", "artifacts"],
        &dir,
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "violating envelope must fail");
    assert!(stderr.contains("FAIL"), "{stderr}");
    assert!(stderr.contains("impossible"), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_repro_is_served_from_cache_and_byte_identical() {
    let dir = unique_dir("warm");
    let scn = dir.join("scenarios");
    std::fs::create_dir_all(&scn).unwrap();
    std::fs::write(scn.join("cli_smoke.scn"), PASSING_SCN).unwrap();
    let args = &[
        "--all",
        "scenarios",
        "--out",
        "artifacts",
        "--cache",
        "cache",
    ];

    // Cold: every cell simulates and populates the cache.
    let out = run_bin(env!("CARGO_BIN_EXE_repro"), args, &dir);
    assert!(
        out.status.success(),
        "cold repro failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cache 0 hits, 2 misses"), "{stdout}");
    let artifact = dir.join("artifacts/cli_smoke.json");
    let cold = std::fs::read(&artifact).unwrap();

    // Warm: zero cells re-simulate, artifact bytes are identical.
    let out = run_bin(env!("CARGO_BIN_EXE_repro"), args, &dir);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cache 2 hits, 0 misses"), "{stdout}");
    assert_eq!(std::fs::read(&artifact).unwrap(), cold);

    // --no-cache bypasses the (populated) cache entirely and still
    // reproduces the same bytes.
    let out = run_bin(
        env!("CARGO_BIN_EXE_repro"),
        &["--all", "scenarios", "--out", "artifacts", "--no-cache"],
        &dir,
    );
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cache disabled"), "{stdout}");
    assert_eq!(std::fs::read(&artifact).unwrap(), cold);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_rejects_bad_scenarios_with_line_numbers() {
    let dir = unique_dir("bad");
    let scn = dir.join("scenarios");
    std::fs::create_dir_all(&scn).unwrap();
    std::fs::write(
        scn.join("bad.scn"),
        PASSING_SCN.replace("duration = 15 ms", "duration = 15 fortnights"),
    )
    .unwrap();

    let out = run_bin(env!("CARGO_BIN_EXE_repro"), &["--all", "scenarios"], &dir);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    assert!(stderr.contains("line 12"), "{stderr}");
    assert!(stderr.contains("fortnights"), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_check_flags_stale_artifacts() {
    let dir = unique_dir("stale");
    let scn = dir.join("scenarios");
    std::fs::create_dir_all(&scn).unwrap();
    std::fs::write(scn.join("cli_smoke.scn"), PASSING_SCN).unwrap();

    let out = run_bin(
        env!("CARGO_BIN_EXE_repro"),
        &["--all", "scenarios", "--out", "artifacts"],
        &dir,
    );
    assert!(out.status.success());

    // Grow the matrix after the artifact was produced.
    std::fs::write(
        scn.join("cli_smoke.scn"),
        PASSING_SCN.replace("flows = 2, 4", "flows = 2, 4, 8"),
    )
    .unwrap();
    let out = run_bin(
        env!("CARGO_BIN_EXE_repro_check"),
        &["--all", "scenarios", "--artifacts", "artifacts"],
        &dir,
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    assert!(stderr.contains("stale"), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}
