//! End-to-end tests of the `repro` / `repro_check` binaries: the same
//! artifact either passes or fails `repro_check` depending only on the
//! committed envelope, and bad scenario files die with line-numbered
//! diagnostics.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A tiny but real long-lived matrix (one marking, two flow counts)
/// with envelopes that genuinely hold for it.
const PASSING_SCN: &str = "\
[scenario]
name = cli_smoke
kind = long_lived
description = integration-test matrix

[topology]
bottleneck = 1 Gbps

[run]
flows = 2, 4
warmup = 20 ms
duration = 15 ms
trace = 100 us

[marking \"dctcp\"]
scheme = dctcp
k = 20 pkts

[expect \"saturated\"]
check = metric_range
metric = utilization
min = 0.8

[expect \"lossless\"]
check = metric_range
metric = drops
max = 0
";

/// Same name and matrix, but an envelope no real run can satisfy.
const FAILING_SCN: &str = "\
[scenario]
name = cli_smoke
kind = long_lived

[topology]
bottleneck = 1 Gbps

[run]
flows = 2, 4
warmup = 20 ms
duration = 15 ms
trace = 100 us

[marking \"dctcp\"]
scheme = dctcp
k = 20 pkts

[expect \"impossible\"]
check = metric_range
metric = queue_mean
max = 0.000001
";

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dctcp-scn-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_bin(exe: &str, args: &[&str], cwd: &Path) -> Output {
    Command::new(exe)
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn binary")
}

#[test]
fn repro_then_check_pass_and_fail_on_envelopes() {
    let dir = unique_dir("cli");
    let scn_pass = dir.join("scenarios");
    let scn_fail = dir.join("scenarios-fail");
    std::fs::create_dir_all(&scn_pass).unwrap();
    std::fs::create_dir_all(&scn_fail).unwrap();
    std::fs::write(scn_pass.join("cli_smoke.scn"), PASSING_SCN).unwrap();
    std::fs::write(scn_fail.join("cli_smoke.scn"), FAILING_SCN).unwrap();

    // Run the matrix once; the artifact serves both check runs.
    let out = run_bin(
        env!("CARGO_BIN_EXE_repro"),
        &["--all", "scenarios", "--out", "artifacts"],
        &dir,
    );
    assert!(
        out.status.success(),
        "repro failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let artifact = dir.join("artifacts/cli_smoke.json");
    let body = std::fs::read_to_string(&artifact).expect("artifact written");
    assert!(body.contains("\"schema\": \"dctcp-repro/v1\""));
    assert!(body.contains("\"flows\": 4"));

    // The honest envelopes hold...
    let out = run_bin(
        env!("CARGO_BIN_EXE_repro_check"),
        &["--all", "scenarios", "--artifacts", "artifacts"],
        &dir,
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "repro_check failed: {stderr}");
    assert!(stderr.contains("0 violation(s)"), "{stderr}");

    // ...and the impossible one rejects the very same artifact.
    let out = run_bin(
        env!("CARGO_BIN_EXE_repro_check"),
        &["--all", "scenarios-fail", "--artifacts", "artifacts"],
        &dir,
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "violating envelope must fail");
    assert!(stderr.contains("FAIL"), "{stderr}");
    assert!(stderr.contains("impossible"), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_repro_is_served_from_cache_and_byte_identical() {
    let dir = unique_dir("warm");
    let scn = dir.join("scenarios");
    std::fs::create_dir_all(&scn).unwrap();
    std::fs::write(scn.join("cli_smoke.scn"), PASSING_SCN).unwrap();
    let args = &[
        "--all",
        "scenarios",
        "--out",
        "artifacts",
        "--cache",
        "cache",
    ];

    // Cold: every cell simulates and populates the cache.
    let out = run_bin(env!("CARGO_BIN_EXE_repro"), args, &dir);
    assert!(
        out.status.success(),
        "cold repro failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cache 0 hits, 2 misses"), "{stdout}");
    let artifact = dir.join("artifacts/cli_smoke.json");
    let cold = std::fs::read(&artifact).unwrap();

    // Warm: zero cells re-simulate, artifact bytes are identical.
    let out = run_bin(env!("CARGO_BIN_EXE_repro"), args, &dir);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cache 2 hits, 0 misses"), "{stdout}");
    assert_eq!(std::fs::read(&artifact).unwrap(), cold);

    // --no-cache bypasses the (populated) cache entirely and still
    // reproduces the same bytes.
    let out = run_bin(
        env!("CARGO_BIN_EXE_repro"),
        &["--all", "scenarios", "--out", "artifacts", "--no-cache"],
        &dir,
    );
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cache disabled"), "{stdout}");
    assert_eq!(std::fs::read(&artifact).unwrap(), cold);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_rejects_bad_scenarios_with_line_numbers() {
    let dir = unique_dir("bad");
    let scn = dir.join("scenarios");
    std::fs::create_dir_all(&scn).unwrap();
    std::fs::write(
        scn.join("bad.scn"),
        PASSING_SCN.replace("duration = 15 ms", "duration = 15 fortnights"),
    )
    .unwrap();

    let out = run_bin(env!("CARGO_BIN_EXE_repro"), &["--all", "scenarios"], &dir);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    assert!(stderr.contains("line 12"), "{stderr}");
    assert!(stderr.contains("fortnights"), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Three-cell matrix with one healthy, one panicking and one wedged
/// (deadline-overrunning) cell, plus one envelope scoped to the healthy
/// marking and one global envelope.
const PARTIAL_SCN: &str = "\
[scenario]
name = cli_partial
kind = long_lived

[topology]
bottleneck = 1 Gbps

[run]
flows = 2
warmup = 20 ms
duration = 15 ms
trace = 100 us

[marking \"dctcp\"]
scheme = dctcp
k = 20 pkts

[marking \"boom\"]
scheme = dctcp
k = 21 pkts

[marking \"wedge\"]
scheme = dctcp
k = 22 pkts

[limits]
deadline = 2 s
retries = 0
inject_panic = boom:2:1
inject_stall = wedge:2:1

[expect \"saturated\"]
check = metric_range
metric = utilization
marking = dctcp
min = 0.8

[expect \"lossless\"]
check = metric_range
metric = drops
max = 0
";

#[test]
fn broken_cells_quarantine_into_a_partial_run() {
    let dir = unique_dir("partial");
    let scn = dir.join("scenarios");
    std::fs::create_dir_all(&scn).unwrap();
    std::fs::write(scn.join("cli_partial.scn"), PARTIAL_SCN).unwrap();

    // The matrix completes despite the two broken cells: exit code 3
    // (partial), healthy point present, both failures named.
    let out = run_bin(
        env!("CARGO_BIN_EXE_repro"),
        &["--all", "scenarios", "--out", "artifacts"],
        &dir,
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(3), "{stderr}");
    assert!(stderr.contains("2 of 3 cells quarantined"), "{stderr}");
    let body = std::fs::read_to_string(dir.join("artifacts/cli_partial.json")).unwrap();
    assert!(body.contains("\"failures\""), "{body}");
    assert!(
        body.contains("\"error\": \"panicked\", \"marking\": \"boom\""),
        "{body}"
    );
    assert!(
        body.contains("\"error\": \"deadline\", \"marking\": \"wedge\""),
        "{body}"
    );
    assert!(body.contains("\"marking\": \"dctcp\""), "{body}");

    // repro_check accepts the partial artifact: the healthy marking's
    // envelope is evaluated, the global one is skipped (not passed),
    // and the whole run signals quarantine with exit code 3.
    let out = run_bin(
        env!("CARGO_BIN_EXE_repro_check"),
        &["--all", "scenarios", "--artifacts", "artifacts"],
        &dir,
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(3), "{stderr}");
    assert!(stderr.contains("SKIP lossless"), "{stderr}");
    assert!(stderr.contains("0 violation(s), 1 skipped"), "{stderr}");

    // A matrix with *no* surviving cell exits 4, not 3. With
    // `retries = 0` even the flaky (first-attempt-only) fault is fatal.
    let dead = PARTIAL_SCN.replace(
        "inject_panic = boom:2:1",
        "inject_panic = boom:2:1\ninject_flaky = dctcp:2:1",
    );
    std::fs::write(scn.join("cli_partial.scn"), dead).unwrap();
    let out = run_bin(
        env!("CARGO_BIN_EXE_repro"),
        &["--all", "scenarios", "--out", "artifacts"],
        &dir,
    );
    assert_eq!(
        out.status.code(),
        Some(4),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkill_mid_matrix_resumes_with_zero_recomputation() {
    let dir = unique_dir("kill9");
    let scn = dir.join("scenarios");
    std::fs::create_dir_all(&scn).unwrap();
    std::fs::write(
        scn.join("cli_smoke.scn"),
        PASSING_SCN.replace("flows = 2, 4", "flows = 2, 3, 4, 6"),
    )
    .unwrap();
    let args = &[
        "--all",
        "scenarios",
        "--out",
        "artifacts",
        "--cache",
        "cache",
        "--threads",
        "1",
    ];

    // Start a sequential cold run and SIGKILL it as soon as at least
    // one cell has been committed to the cache.
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .current_dir(&dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn repro");
    let cache_dir = dir.join("cache");
    let cells = |d: &Path| -> usize {
        std::fs::read_dir(d).map_or(0, |rd| {
            rd.flatten()
                .filter(|e| e.path().extension().is_some_and(|x| x == "cell"))
                .count()
        })
    };
    let start = std::time::Instant::now();
    while cells(&cache_dir) == 0 && start.elapsed() < std::time::Duration::from_secs(60) {
        if child.try_wait().expect("poll child").is_some() {
            break; // finished before we could kill it — still a valid run
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let _ = child.kill();
    let _ = child.wait();
    let committed = cells(&cache_dir);
    assert!(committed >= 1, "no cell committed before the kill window");

    // The resume serves every committed cell from the cache and only
    // simulates the remainder — zero recomputation.
    let out = run_bin(env!("CARGO_BIN_EXE_repro"), args, &dir);
    assert!(
        out.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(&format!("cache {committed} hits, {} misses", 4 - committed)),
        "committed={committed}, {stdout}"
    );
    let resumed = std::fs::read(dir.join("artifacts/cli_smoke.json")).unwrap();

    // A never-interrupted run against a fresh cache produces the exact
    // same bytes.
    let out = run_bin(
        env!("CARGO_BIN_EXE_repro"),
        &[
            "--all",
            "scenarios",
            "--out",
            "artifacts-clean",
            "--cache",
            "cache-clean",
            "--threads",
            "1",
        ],
        &dir,
    );
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cache 0 hits, 4 misses"), "{stdout}");
    let clean = std::fs::read(dir.join("artifacts-clean/cli_smoke.json")).unwrap();
    assert_eq!(resumed, clean, "resumed artifact must be byte-identical");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_check_flags_stale_artifacts() {
    let dir = unique_dir("stale");
    let scn = dir.join("scenarios");
    std::fs::create_dir_all(&scn).unwrap();
    std::fs::write(scn.join("cli_smoke.scn"), PASSING_SCN).unwrap();

    let out = run_bin(
        env!("CARGO_BIN_EXE_repro"),
        &["--all", "scenarios", "--out", "artifacts"],
        &dir,
    );
    assert!(out.status.success());

    // Grow the matrix after the artifact was produced.
    std::fs::write(
        scn.join("cli_smoke.scn"),
        PASSING_SCN.replace("flows = 2, 4", "flows = 2, 4, 8"),
    )
    .unwrap();
    let out = run_bin(
        env!("CARGO_BIN_EXE_repro_check"),
        &["--all", "scenarios", "--artifacts", "artifacts"],
        &dir,
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    assert!(stderr.contains("stale"), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}
