//! Regression envelopes: the paper's claims as machine-checked bands.
//!
//! Each `[expect "label"]` section in a scenario file is one claim
//! about the artifact the scenario produces. Three check shapes cover
//! the paper:
//!
//! * `metric_range` — a min/max band on one metric (e.g. bottleneck
//!   utilization stays near 1.0 for every scheme and flow count).
//! * `ordered` — one marking's metric stays strictly below another's
//!   from a flow count onward (e.g. DT-DCTCP queue stddev below
//!   DCTCP's at N ≥ 8, the paper's central claim).
//! * `monotone_increasing` — a metric grows along the flow sweep
//!   (e.g. single-K oscillation amplitude grows with N, Fig. 5–8).

use crate::artifact::Artifact;
use crate::parse::{parse_f64, parse_list_u32, parse_u32, Document};
use crate::spec::ScenarioKind;
use crate::ScenarioError;

/// The check a single `[expect]` section performs.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpectCheck {
    /// Every selected point's `metric` must lie in `[min, max]`.
    MetricRange {
        /// Metric name (see [`ScenarioKind::metrics`]).
        metric: String,
        /// Restrict to one marking label (default: all).
        marking: Option<String>,
        /// Restrict to these flow counts (default: all).
        flows: Option<Vec<u32>>,
        /// Inclusive lower bound, if any.
        min: Option<f64>,
        /// Inclusive upper bound, if any.
        max: Option<f64>,
    },
    /// `lesser`'s metric must stay strictly below `greater`'s at every
    /// flow count ≥ `from_flows` (seed-averaged).
    Ordered {
        /// Metric name.
        metric: String,
        /// Marking label expected to be lower.
        lesser: String,
        /// Marking label expected to be higher.
        greater: String,
        /// First flow count the ordering must hold at.
        from_flows: u32,
    },
    /// The metric along one marking's flow sweep must not shrink:
    /// every successive value ≥ previous × `min_ratio`.
    MonotoneIncreasing {
        /// Metric name.
        metric: String,
        /// Marking label to follow along the sweep.
        marking: String,
        /// Minimum successive ratio (1.0 = non-decreasing; below 1.0
        /// tolerates small dips).
        min_ratio: f64,
    },
    /// `lesser`'s metric divided by `greater`'s must stay within a
    /// band at each selected flow count (seed-averaged). This pins a
    /// *damping ratio* — e.g. DT-DCTCP's oscillation amplitude at no
    /// more than 70% of DCTCP's at N = 10⁶ — where `ordered` can only
    /// pin the sign of the difference.
    Ratio {
        /// Metric name.
        metric: String,
        /// Marking label in the numerator.
        lesser: String,
        /// Marking label in the denominator.
        greater: String,
        /// Restrict to these flow counts (default: all of `lesser`'s).
        flows: Option<Vec<u32>>,
        /// Maximum allowed `lesser / greater`.
        max_ratio: f64,
        /// Minimum allowed `lesser / greater`, if any.
        min_ratio: Option<f64>,
    },
}

/// One labeled expectation from a scenario file.
#[derive(Debug, Clone, PartialEq)]
pub struct Expectation {
    /// The `[expect "label"]` label.
    pub label: String,
    /// What to check.
    pub check: ExpectCheck,
}

/// One failed expectation, with enough context to read in CI output.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The violated expectation's label.
    pub expect: String,
    /// What went wrong, with the observed values.
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expect \"{}\": {}", self.expect, self.msg)
    }
}

/// Parses every `[expect "label"]` section, validating metric names
/// against the kind and marking labels against the scenario's marking
/// sections.
///
/// # Errors
///
/// Returns a [`ScenarioError`] naming the offending line.
pub fn parse_expectations(
    doc: &Document,
    kind: ScenarioKind,
    markings: &[(String, dctcp_core::MarkingScheme)],
) -> Result<Vec<Expectation>, ScenarioError> {
    let mut out: Vec<Expectation> = Vec::new();
    for s in doc.sections_named("expect") {
        let label = s.label.clone().ok_or_else(|| ScenarioError::Syntax {
            line: s.line,
            msg: "expect sections need a label: [expect \"low-variance\"]".into(),
        })?;
        if out.iter().any(|e| e.label == label) {
            return Err(ScenarioError::DuplicateSection {
                line: s.line,
                section: s.display_name(),
            });
        }

        let metric_entry = s.require("metric")?;
        let metric = metric_entry.value.clone();
        if !kind.metrics().contains(&metric.as_str()) {
            return Err(ScenarioError::BadValue {
                line: metric_entry.line,
                key: "metric".into(),
                msg: format!(
                    "unknown metric `{metric}` for kind {} (one of: {})",
                    kind.name(),
                    kind.metrics().join(", ")
                ),
            });
        }
        let known_marking = |value: &str, line: usize| -> Result<String, ScenarioError> {
            if markings.iter().any(|(l, _)| l == value) {
                Ok(value.to_string())
            } else {
                Err(ScenarioError::BadValue {
                    line,
                    key: "marking".into(),
                    msg: format!("no [marking \"{value}\"] section in this scenario"),
                })
            }
        };

        let check_entry = s.require("check")?;
        let check = match check_entry.value.as_str() {
            "metric_range" => {
                s.reject_unknown_keys(&["check", "metric", "marking", "flows", "min", "max"])?;
                let marking = match s.get("marking") {
                    Some(e) => Some(known_marking(&e.value, e.line)?),
                    None => None,
                };
                let flows = s.get("flows").map(parse_list_u32).transpose()?;
                let min = s.get("min").map(parse_f64).transpose()?;
                let max = s.get("max").map(parse_f64).transpose()?;
                if min.is_none() && max.is_none() {
                    return Err(ScenarioError::BadValue {
                        line: check_entry.line,
                        key: "check".into(),
                        msg: "metric_range needs `min`, `max` or both".into(),
                    });
                }
                if let (Some(lo), Some(hi)) = (min, max) {
                    if lo > hi {
                        return Err(ScenarioError::OutOfRange {
                            line: check_entry.line,
                            key: "min".into(),
                            msg: format!("min {lo} exceeds max {hi}"),
                        });
                    }
                }
                ExpectCheck::MetricRange {
                    metric,
                    marking,
                    flows,
                    min,
                    max,
                }
            }
            "ordered" => {
                s.reject_unknown_keys(&["check", "metric", "lesser", "greater", "from_flows"])?;
                let lesser_e = s.require("lesser")?;
                let greater_e = s.require("greater")?;
                let lesser = known_marking(&lesser_e.value, lesser_e.line)?;
                let greater = known_marking(&greater_e.value, greater_e.line)?;
                if lesser == greater {
                    return Err(ScenarioError::BadValue {
                        line: greater_e.line,
                        key: "greater".into(),
                        msg: "lesser and greater must differ".into(),
                    });
                }
                let from_flows = s.get("from_flows").map(parse_u32).transpose()?.unwrap_or(0);
                ExpectCheck::Ordered {
                    metric,
                    lesser,
                    greater,
                    from_flows,
                }
            }
            "monotone_increasing" => {
                s.reject_unknown_keys(&["check", "metric", "marking", "min_ratio"])?;
                let marking_e = s.require("marking")?;
                let marking = known_marking(&marking_e.value, marking_e.line)?;
                let min_ratio = s
                    .get("min_ratio")
                    .map(parse_f64)
                    .transpose()?
                    .unwrap_or(1.0);
                if !(min_ratio.is_finite() && min_ratio > 0.0) {
                    return Err(ScenarioError::OutOfRange {
                        line: s.get("min_ratio").map_or(s.line, |e| e.line),
                        key: "min_ratio".into(),
                        msg: "min_ratio must be a positive number".into(),
                    });
                }
                ExpectCheck::MonotoneIncreasing {
                    metric,
                    marking,
                    min_ratio,
                }
            }
            "ratio" => {
                s.reject_unknown_keys(&[
                    "check",
                    "metric",
                    "lesser",
                    "greater",
                    "flows",
                    "max_ratio",
                    "min_ratio",
                ])?;
                let lesser_e = s.require("lesser")?;
                let greater_e = s.require("greater")?;
                let lesser = known_marking(&lesser_e.value, lesser_e.line)?;
                let greater = known_marking(&greater_e.value, greater_e.line)?;
                if lesser == greater {
                    return Err(ScenarioError::BadValue {
                        line: greater_e.line,
                        key: "greater".into(),
                        msg: "lesser and greater must differ".into(),
                    });
                }
                let flows = s.get("flows").map(parse_list_u32).transpose()?;
                let max_e = s.require("max_ratio")?;
                let max_ratio = parse_f64(max_e)?;
                if !(max_ratio.is_finite() && max_ratio > 0.0) {
                    return Err(ScenarioError::OutOfRange {
                        line: max_e.line,
                        key: "max_ratio".into(),
                        msg: "max_ratio must be a positive number".into(),
                    });
                }
                let min_ratio = s.get("min_ratio").map(parse_f64).transpose()?;
                if let Some(lo) = min_ratio {
                    if !(lo.is_finite() && lo >= 0.0 && lo < max_ratio) {
                        return Err(ScenarioError::OutOfRange {
                            line: s.get("min_ratio").map_or(s.line, |e| e.line),
                            key: "min_ratio".into(),
                            msg: format!("min_ratio must be in [0, {max_ratio})"),
                        });
                    }
                }
                ExpectCheck::Ratio {
                    metric,
                    lesser,
                    greater,
                    flows,
                    max_ratio,
                    min_ratio,
                }
            }
            other => {
                return Err(ScenarioError::BadValue {
                    line: check_entry.line,
                    key: "check".into(),
                    msg: format!(
                        "unknown check `{other}` \
                         (metric_range/ordered/monotone_increasing/ratio)"
                    ),
                })
            }
        };
        out.push(Expectation { label, check });
    }
    Ok(out)
}

/// Evaluates every expectation against an artifact.
///
/// Returns all violations (empty = the artifact is inside every
/// envelope). A metric or point that is absent from the artifact is
/// itself a violation — an envelope must never silently pass because
/// the data it constrains was not produced.
pub fn check_artifact(expectations: &[Expectation], artifact: &Artifact) -> Vec<Violation> {
    let mut out = Vec::new();
    for e in expectations {
        check_one(e, artifact, &mut out);
    }
    out
}

/// The result of checking a possibly-partial artifact: violations from
/// the expectations that could be evaluated, and the labels of those
/// that were skipped because a marking they constrain was quarantined.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CheckReport {
    /// Violated expectations, with context.
    pub violations: Vec<Violation>,
    /// Labels of expectations skipped over quarantined markings.
    pub skipped: Vec<String>,
}

/// [`check_artifact`] for artifacts that may carry a quarantine
/// manifest: expectations touching a quarantined marking are *skipped*
/// (reported by label, not silently dropped) instead of failing over
/// data the run could not produce; every other expectation is evaluated
/// normally. With an empty `failures` block this is exactly
/// [`check_artifact`].
pub fn check_artifact_partial(expectations: &[Expectation], artifact: &Artifact) -> CheckReport {
    let quarantined = artifact.quarantined_markings();
    let mut report = CheckReport::default();
    for e in expectations {
        if touches_quarantined(&e.check, &quarantined) {
            report.skipped.push(e.label.clone());
        } else {
            check_one(e, artifact, &mut report.violations);
        }
    }
    report
}

/// Whether a check constrains any quarantined marking. A check with no
/// marking selector constrains all of them.
fn touches_quarantined(check: &ExpectCheck, quarantined: &[&str]) -> bool {
    if quarantined.is_empty() {
        return false;
    }
    let hit = |m: &str| quarantined.contains(&m);
    match check {
        ExpectCheck::MetricRange { marking, .. } => marking.as_deref().is_none_or(hit),
        ExpectCheck::Ordered {
            lesser, greater, ..
        } => hit(lesser) || hit(greater),
        ExpectCheck::MonotoneIncreasing { marking, .. } => hit(marking),
        ExpectCheck::Ratio {
            lesser, greater, ..
        } => hit(lesser) || hit(greater),
    }
}

fn check_one(e: &Expectation, artifact: &Artifact, out: &mut Vec<Violation>) {
    let violation = |msg: String| Violation {
        expect: e.label.clone(),
        msg,
    };
    match &e.check {
        ExpectCheck::MetricRange {
            metric,
            marking,
            flows,
            min,
            max,
        } => {
            let mut matched = false;
            for p in &artifact.points {
                if marking.as_ref().is_some_and(|m| *m != p.marking) {
                    continue;
                }
                if flows.as_ref().is_some_and(|f| !f.contains(&p.flows)) {
                    continue;
                }
                matched = true;
                let Some(v) = p.metric(metric) else {
                    out.push(violation(format!(
                        "point ({}, N={}, seed {}) lacks metric `{metric}`",
                        p.marking, p.flows, p.seed
                    )));
                    continue;
                };
                if min.is_some_and(|lo| v < lo) || max.is_some_and(|hi| v > hi) {
                    out.push(violation(format!(
                        "{metric} = {v:.6} at ({}, N={}, seed {}) outside [{}, {}]",
                        p.marking,
                        p.flows,
                        p.seed,
                        min.map_or("-inf".into(), |v| format!("{v}")),
                        max.map_or("+inf".into(), |v| format!("{v}")),
                    )));
                }
            }
            if !matched {
                out.push(violation("no artifact point matched the selector".into()));
            }
        }
        ExpectCheck::Ordered {
            metric,
            lesser,
            greater,
            from_flows,
        } => {
            let counts: Vec<u32> = artifact
                .flow_counts(lesser)
                .into_iter()
                .filter(|n| n >= from_flows)
                .collect();
            if counts.is_empty() {
                out.push(violation(format!(
                    "no `{lesser}` points at N >= {from_flows}"
                )));
                return;
            }
            for n in counts {
                let (Some(lo), Some(hi)) = (
                    artifact.metric(lesser, n, metric),
                    artifact.metric(greater, n, metric),
                ) else {
                    out.push(violation(format!(
                        "missing {metric} for `{lesser}` or `{greater}` at N={n}"
                    )));
                    continue;
                };
                if lo >= hi {
                    out.push(violation(format!(
                        "{metric}: {lesser} = {lo:.6} not below {greater} = {hi:.6} at N={n}"
                    )));
                }
            }
        }
        ExpectCheck::MonotoneIncreasing {
            metric,
            marking,
            min_ratio,
        } => {
            let counts = artifact.flow_counts(marking);
            if counts.len() < 2 {
                out.push(violation(format!(
                    "need at least two flow counts for `{marking}`, found {}",
                    counts.len()
                )));
                return;
            }
            for pair in counts.windows(2) {
                let (Some(prev), Some(next)) = (
                    artifact.metric(marking, pair[0], metric),
                    artifact.metric(marking, pair[1], metric),
                ) else {
                    out.push(violation(format!(
                        "missing {metric} for `{marking}` at N={} or N={}",
                        pair[0], pair[1]
                    )));
                    continue;
                };
                if next < prev * min_ratio {
                    out.push(violation(format!(
                        "{metric} for {marking} fell from {prev:.6} (N={}) to {next:.6} \
                         (N={}), below ratio {min_ratio}",
                        pair[0], pair[1]
                    )));
                }
            }
        }
        ExpectCheck::Ratio {
            metric,
            lesser,
            greater,
            flows,
            max_ratio,
            min_ratio,
        } => {
            let counts: Vec<u32> = artifact
                .flow_counts(lesser)
                .into_iter()
                .filter(|n| flows.as_ref().is_none_or(|f| f.contains(n)))
                .collect();
            if counts.is_empty() {
                out.push(violation(format!(
                    "no `{lesser}` points matched the flow selector"
                )));
                return;
            }
            for n in counts {
                let (Some(lo), Some(hi)) = (
                    artifact.metric(lesser, n, metric),
                    artifact.metric(greater, n, metric),
                ) else {
                    out.push(violation(format!(
                        "missing {metric} for `{lesser}` or `{greater}` at N={n}"
                    )));
                    continue;
                };
                if hi == 0.0 {
                    out.push(violation(format!(
                        "{metric}: {greater} is 0 at N={n}, ratio undefined"
                    )));
                    continue;
                }
                let ratio = lo / hi;
                if ratio > *max_ratio || min_ratio.is_some_and(|m| ratio < m) {
                    out.push(violation(format!(
                        "{metric}: {lesser}/{greater} = {lo:.6}/{hi:.6} = {ratio:.4} at N={n} \
                         outside [{}, {max_ratio}]",
                        min_ratio.map_or("0".into(), |v| format!("{v}")),
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Point;

    fn point(marking: &str, flows: u32, queue_std: f64) -> Point {
        Point {
            marking: marking.into(),
            flows,
            seed: 1,
            metrics: vec![("queue_std".into(), queue_std)],
        }
    }

    fn artifact(points: Vec<Point>) -> Artifact {
        Artifact {
            scenario: "t".into(),
            kind: ScenarioKind::LongLived,
            points,
            failures: Vec::new(),
        }
    }

    #[test]
    fn metric_range_flags_out_of_band_points() {
        let e = Expectation {
            label: "band".into(),
            check: ExpectCheck::MetricRange {
                metric: "queue_std".into(),
                marking: None,
                flows: None,
                min: Some(1.0),
                max: Some(5.0),
            },
        };
        let a = artifact(vec![point("dctcp", 2, 3.0), point("dctcp", 8, 7.5)]);
        let v = check_artifact(&[e], &a);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("7.5"), "{}", v[0].msg);
    }

    #[test]
    fn metric_range_fails_when_selector_matches_nothing() {
        let e = Expectation {
            label: "band".into(),
            check: ExpectCheck::MetricRange {
                metric: "queue_std".into(),
                marking: Some("pie".into()),
                flows: None,
                min: Some(0.0),
                max: None,
            },
        };
        let v = check_artifact(&[e], &artifact(vec![point("dctcp", 2, 3.0)]));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ordered_holds_only_from_given_flows() {
        let e = Expectation {
            label: "dt-below".into(),
            check: ExpectCheck::Ordered {
                metric: "queue_std".into(),
                lesser: "dt".into(),
                greater: "dc".into(),
                from_flows: 8,
            },
        };
        // At N=2 the ordering is inverted, but from_flows = 8 skips it.
        let ok = artifact(vec![
            point("dt", 2, 9.0),
            point("dc", 2, 1.0),
            point("dt", 8, 1.0),
            point("dc", 8, 2.0),
        ]);
        assert!(check_artifact(std::slice::from_ref(&e), &ok).is_empty());
        let bad = artifact(vec![point("dt", 8, 2.0), point("dc", 8, 2.0)]);
        assert_eq!(check_artifact(&[e], &bad).len(), 1);
    }

    #[test]
    fn monotone_increasing_tolerates_dips_within_ratio() {
        let e = Expectation {
            label: "grows".into(),
            check: ExpectCheck::MonotoneIncreasing {
                metric: "queue_std".into(),
                marking: "dc".into(),
                min_ratio: 0.9,
            },
        };
        let ok = artifact(vec![
            point("dc", 2, 10.0),
            point("dc", 4, 9.5),
            point("dc", 8, 20.0),
        ]);
        assert!(check_artifact(std::slice::from_ref(&e), &ok).is_empty());
        let bad = artifact(vec![point("dc", 2, 10.0), point("dc", 4, 5.0)]);
        assert_eq!(check_artifact(&[e], &bad).len(), 1);
    }

    #[test]
    fn ratio_pins_the_damping_band() {
        let e = Expectation {
            label: "damping".into(),
            check: ExpectCheck::Ratio {
                metric: "queue_std".into(),
                lesser: "dt".into(),
                greater: "dc".into(),
                flows: Some(vec![8]),
                max_ratio: 0.8,
                min_ratio: Some(0.2),
            },
        };
        // N=2 is outside the selector, so its inverted ratio is ignored.
        let ok = artifact(vec![
            point("dt", 2, 9.0),
            point("dc", 2, 1.0),
            point("dt", 8, 5.0),
            point("dc", 8, 10.0),
        ]);
        assert!(check_artifact(std::slice::from_ref(&e), &ok).is_empty());
        // Ratio above the band.
        let high = artifact(vec![point("dt", 8, 9.0), point("dc", 8, 10.0)]);
        let v = check_artifact(std::slice::from_ref(&e), &high);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("0.9000"), "{}", v[0].msg);
        // Ratio below the band (suspiciously strong damping is also a
        // drift worth flagging).
        let low = artifact(vec![point("dt", 8, 1.0), point("dc", 8, 10.0)]);
        assert_eq!(check_artifact(std::slice::from_ref(&e), &low).len(), 1);
        // Zero denominator is a violation, never a pass.
        let zero = artifact(vec![point("dt", 8, 1.0), point("dc", 8, 0.0)]);
        assert_eq!(check_artifact(&[e], &zero).len(), 1);
    }

    #[test]
    fn ratio_with_no_matching_points_is_a_violation() {
        let e = Expectation {
            label: "damping".into(),
            check: ExpectCheck::Ratio {
                metric: "queue_std".into(),
                lesser: "dt".into(),
                greater: "dc".into(),
                flows: None,
                max_ratio: 1.0,
                min_ratio: None,
            },
        };
        assert_eq!(
            check_artifact(&[e], &artifact(vec![point("dc", 2, 3.0)])).len(),
            1
        );
    }

    fn quarantine(a: &mut Artifact, marking: &str) {
        a.failures.push(crate::artifact::FailureCell {
            marking: marking.into(),
            flows: 8,
            seed: 1,
            attempts: 2,
            kind: "panicked".into(),
            msg: "boom".into(),
        });
    }

    #[test]
    fn quarantined_markings_skip_their_expectations() {
        let range_on = |marking: Option<&str>| Expectation {
            label: format!("band-{}", marking.unwrap_or("all")),
            check: ExpectCheck::MetricRange {
                metric: "queue_std".into(),
                marking: marking.map(String::from),
                flows: None,
                min: Some(0.0),
                max: Some(100.0),
            },
        };
        let ordered = Expectation {
            label: "dt-below".into(),
            check: ExpectCheck::Ordered {
                metric: "queue_std".into(),
                lesser: "dt".into(),
                greater: "dc".into(),
                from_flows: 0,
            },
        };
        let expectations = vec![
            range_on(Some("dc")),
            range_on(Some("dt")),
            range_on(None),
            ordered,
        ];

        // Complete artifact: partial checking degenerates to the full
        // checker — nothing skipped, same violations.
        let complete = artifact(vec![point("dc", 2, 3.0), point("dt", 2, 1.0)]);
        let r = check_artifact_partial(&expectations, &complete);
        assert!(r.skipped.is_empty());
        assert_eq!(r.violations, check_artifact(&expectations, &complete));

        // Quarantine `dt`: its band, the unselective band, and the
        // cross-marking ordering are skipped; `dc`'s band still runs.
        let mut partial = artifact(vec![point("dc", 2, 3.0), point("dc", 8, 4.0)]);
        quarantine(&mut partial, "dt");
        let r = check_artifact_partial(&expectations, &partial);
        assert_eq!(r.skipped, vec!["band-dt", "band-all", "dt-below"]);
        assert!(r.violations.is_empty());

        // A violation on the surviving marking is still caught.
        let mut bad = artifact(vec![point("dc", 2, 999.0)]);
        quarantine(&mut bad, "dt");
        let r = check_artifact_partial(&expectations, &bad);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].expect, "band-dc");
    }
}
