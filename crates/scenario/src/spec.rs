//! The typed scenario model: what a `.scn` file means.

use dctcp_core::MarkingScheme;
use dctcp_sim::{Capacity, SimDuration};
use dctcp_tcp::TcpConfig;
use dctcp_workloads::CollectivePattern;

use crate::parse::{
    parse_bytes, parse_capacity, parse_duration, parse_f64, parse_level, parse_list_u32,
    parse_list_u64, parse_rate_bps, parse_u32, parse_window, Document, RawSection,
};
use crate::{Expectation, ScenarioError};

/// Upper bound on any flow count in a scenario, keeping a typo like
/// `flows = 1000000` from turning the CI gate into an oven.
pub const MAX_FLOWS: u32 = 512;

/// Upper bound on fluid-kind flow counts. The DDE integrator's cost is
/// independent of `N`, so fluid sweeps may extrapolate far beyond the
/// packet engine's [`MAX_FLOWS`] — this cap only guards against
/// numerically absurd inputs.
pub const MAX_FLUID_FLOWS: u32 = 1_000_000;

/// Which workload family a scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// N long-lived flows over one bottleneck (Figs. 1, 5–8, 10–12).
    LongLived,
    /// Synchronized Incast responses on the Fig. 13 testbed (Fig. 14).
    Incast,
    /// Partition-aggregate queries on the Fig. 13 testbed (Fig. 15).
    PartitionAggregate,
    /// Collective communication (allreduce/permutation/incast phases)
    /// on a k-ary fat-tree with deterministic ECMP.
    Collective,
    /// Delay-differential fluid-model sweep on the dumbbell operating
    /// point — no packets, so flow counts may reach
    /// [`MAX_FLUID_FLOWS`]. Cross-validated against packet anchors via
    /// `[xval]` sections and the `fluid_check` binary.
    Fluid,
    /// Open-loop heavy-traffic flow churn: Poisson arrivals at a
    /// configured fraction of the rack bottlenecks with empirical
    /// flow sizes (`[workload fct]`), reporting per-size-class
    /// flow-completion-time tails from mergeable quantile sketches.
    /// The `flows` sweep is the churn-source count, split evenly over
    /// the workload's racks.
    Fct,
}

impl ScenarioKind {
    /// The `kind = …` spelling.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::LongLived => "long_lived",
            ScenarioKind::Incast => "incast",
            ScenarioKind::PartitionAggregate => "partition_aggregate",
            ScenarioKind::Collective => "collective",
            ScenarioKind::Fluid => "fluid",
            ScenarioKind::Fct => "fct",
        }
    }

    /// Parses the `kind = …` spelling back into a kind.
    pub fn from_name(name: &str) -> Option<ScenarioKind> {
        match name {
            "long_lived" => Some(ScenarioKind::LongLived),
            "incast" => Some(ScenarioKind::Incast),
            "partition_aggregate" => Some(ScenarioKind::PartitionAggregate),
            "collective" => Some(ScenarioKind::Collective),
            "fluid" => Some(ScenarioKind::Fluid),
            "fct" => Some(ScenarioKind::Fct),
            _ => None,
        }
    }

    /// Whether this kind runs on the Fig. 13 testbed.
    pub fn is_query(&self) -> bool {
        matches!(
            self,
            ScenarioKind::Incast | ScenarioKind::PartitionAggregate
        )
    }

    /// Whether the matrix sweeps the `[run] seeds` list (one cell per
    /// seed). Long-lived runs are seed-free and pin seed 1.
    pub fn sweeps_seeds(&self) -> bool {
        self.is_query() || matches!(self, ScenarioKind::Collective | ScenarioKind::Fct)
    }

    /// The point metrics artifacts of this kind carry, in artifact
    /// order.
    pub fn metrics(&self) -> &'static [&'static str] {
        match self {
            ScenarioKind::LongLived => &[
                "queue_mean",
                "queue_std",
                "queue_max",
                "osc_amplitude",
                "osc_max_amplitude",
                "osc_cycles",
                "mark_rate",
                "marks",
                "drops",
                "timeouts",
                "alpha_mean",
                "utilization",
                "goodput_gbps",
            ],
            ScenarioKind::Incast | ScenarioKind::PartitionAggregate => &[
                "goodput_mbps",
                "completion_mean_ms",
                "completion_p95_ms",
                "completion_p99_ms",
                "timeout_frac",
                "rounds_completed",
                "drops",
            ],
            // queue_* metrics are the busiest core-link port's
            // time-weighted occupancy — the oscillation probe the paper's
            // comparison cares about at fabric scale.
            ScenarioKind::Collective => &[
                "completion_ms",
                "goodput_mbps",
                "queue_mean",
                "queue_std",
                "queue_max",
                "marks",
                "drops",
                "timeouts",
            ],
            // One DDE trajectory per (marking, N): the scalar reductions
            // `dctcp_fluid::sweep::evaluate` produces, in its field
            // order, so fluid artifacts compare cell-for-cell against
            // packet anchors that share metric names.
            ScenarioKind::Fluid => &[
                "queue_mean",
                "queue_std",
                "queue_max",
                "osc_amplitude",
                "osc_freq_hz",
                "osc_cycles",
                "w_mean",
                "alpha_mean",
                "marking_duty",
                "utilization",
            ],
            // FCT quantiles per size class (short/mid/long by the
            // workload's class bounds, milliseconds) from the merged
            // sketches, plus the open-loop conservation counters the
            // million-flow envelopes pin.
            ScenarioKind::Fct => &[
                "fct_short_p50_ms",
                "fct_short_p99_ms",
                "fct_short_p999_ms",
                "fct_mid_p50_ms",
                "fct_mid_p99_ms",
                "fct_mid_p999_ms",
                "fct_long_p50_ms",
                "fct_long_p99_ms",
                "fct_long_p999_ms",
                "goodput_gbps",
                "deadline_miss_rate",
                "flows_started",
                "flows_completed",
            ],
        }
    }
}

/// Dumbbell topology parameters for [`ScenarioKind::LongLived`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DumbbellSpec {
    /// Bottleneck rate, bits/second.
    pub bottleneck_bps: u64,
    /// Propagation round-trip time.
    pub rtt: SimDuration,
    /// Bottleneck buffer.
    pub buffer: Capacity,
}

/// Fig. 13 testbed parameters for the query kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestbedSpec {
    /// Per-link rate, bits/second.
    pub link_bps: u64,
    /// Bottleneck (Switch 1 → client) buffer.
    pub bottleneck_buffer: Capacity,
    /// Every other switch port's buffer.
    pub other_buffer: Capacity,
    /// One-way propagation delay per link.
    pub link_delay: SimDuration,
}

/// k-ary fat-tree parameters for [`ScenarioKind::Collective`]
/// (`[topology fat_tree]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FatTreeSpec {
    /// Fat-tree arity (even, 4..=16).
    pub k: u32,
    /// Hosts under each edge switch.
    pub hosts_per_edge: u32,
    /// Host↔edge link rate, bits/second.
    pub host_bps: u64,
    /// Edge↔aggregation link rate, bits/second.
    pub agg_bps: u64,
    /// Aggregation↔core link rate, bits/second.
    pub core_bps: u64,
    /// Host-tier one-way propagation delay (aggregation tier runs at
    /// 2×, core tier at 4×).
    pub delay: SimDuration,
    /// Switch queue capacity at every tier.
    pub buffer: Capacity,
    /// Seed baked into the deterministic ECMP hash.
    pub ecmp_seed: u64,
}

impl FatTreeSpec {
    /// Number of hosts this fabric wires up.
    pub fn num_hosts(&self) -> u32 {
        self.k * (self.k / 2) * self.hosts_per_edge
    }
}

/// The collective workload shape (`[workload collective]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectiveWorkloadSpec {
    /// Communication pattern.
    pub pattern: CollectivePattern,
    /// Per-transfer message override for the allreduce patterns
    /// (0 = automatic).
    pub chunk: u64,
    /// Gap between consecutive bulk-synchronous step starts.
    pub phase_gap: SimDuration,
    /// Simulated-time budget per cell.
    pub horizon: SimDuration,
}

/// The open-loop churn workload shape (`[workload fct]`).
#[derive(Debug, Clone, PartialEq)]
pub struct FctWorkloadSpec {
    /// Offered load as a fraction of each rack bottleneck, in (0, 1).
    pub load: f64,
    /// Named flow-size distribution
    /// (see [`dctcp_workloads::sizes::by_name`]).
    pub size_dist: String,
    /// Racks; the `flows` sweep is split evenly over them.
    pub racks: u32,
    /// Per-source concurrent-flow slab size.
    pub slots: u32,
    /// Upper byte bound of the short size class.
    pub short_bytes: u64,
    /// Upper byte bound of the mid size class.
    pub long_bytes: u64,
    /// Mean deadline slack multiplier (enables per-flow deadlines and
    /// the D²TCP urgency law when `[transport] cc = d2tcp`).
    pub deadline_slack: Option<f64>,
    /// Drain period after arrivals stop, letting in-flight flows finish
    /// so their completion times are recorded.
    pub drain: SimDuration,
}

/// Topology, by kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologySpec {
    /// Long-lived dumbbell.
    Dumbbell(DumbbellSpec),
    /// Fig. 13 testbed.
    Testbed(TestbedSpec),
    /// k-ary fat-tree (collective kind).
    FatTree(FatTreeSpec),
}

/// Which chaos fault an `inject_*` key plants in a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectFault {
    /// The cell panics on every attempt (`inject_panic`).
    Panic,
    /// The cell hangs, burning wall-clock until its deadline cancels it
    /// (`inject_stall`).
    Stall,
    /// The cell panics on its first attempt only, then succeeds
    /// (`inject_flaky`) — the retry-determinism probe.
    Flaky,
}

impl InjectFault {
    /// Stable token used in cache-key material and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            InjectFault::Panic => "panic",
            InjectFault::Stall => "stall",
            InjectFault::Flaky => "flaky",
        }
    }
}

/// One chaos injection: which fault, planted in which matrix cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectSpec {
    /// The planted fault.
    pub fault: InjectFault,
    /// Target marking label.
    pub marking: String,
    /// Target flow count.
    pub flows: u32,
    /// Target seed.
    pub seed: u64,
}

/// Default bounded-retry budget: one retry after the first failure.
pub const DEFAULT_RETRIES: u32 = 1;

/// Supervision limits for cell execution (`[limits]` section).
#[derive(Debug, Clone, PartialEq)]
pub struct LimitsSpec {
    /// Per-cell wall-clock deadline. `None` derives a default from the
    /// simulated duration (see [`ScenarioSpec::cell_deadline`]).
    pub deadline: Option<SimDuration>,
    /// Retries after a failed first attempt (0 = fail immediately).
    pub retries: u32,
    /// Wall-clock pause before each retry (scaled by the attempt
    /// number).
    pub backoff: SimDuration,
    /// Chaos injections, in file order.
    pub inject: Vec<InjectSpec>,
}

impl Default for LimitsSpec {
    fn default() -> LimitsSpec {
        LimitsSpec {
            deadline: None,
            retries: DEFAULT_RETRIES,
            backoff: SimDuration::ZERO,
            inject: Vec::new(),
        }
    }
}

impl LimitsSpec {
    /// The fault injected into cell `(marking, flows, seed)`, if any.
    /// First matching injection wins.
    pub fn injection_for(&self, marking: &str, flows: u32, seed: u64) -> Option<InjectFault> {
        self.inject
            .iter()
            .find(|i| i.marking == marking && i.flows == flows && i.seed == seed)
            .map(|i| i.fault)
    }
}

/// Scripted faults on the bottleneck link (long-lived kind only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSpec {
    /// ECN-bleaching window (CE marks stripped), relative to sim start.
    pub bleach: Option<(SimDuration, SimDuration)>,
    /// Link-down window, relative to sim start.
    pub down: Option<(SimDuration, SimDuration)>,
}

impl FaultSpec {
    /// Whether any fault is scripted.
    pub fn is_empty(&self) -> bool {
        self.bleach.is_none() && self.down.is_none()
    }
}

/// Run-control parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Flow counts to sweep.
    pub flows: Vec<u32>,
    /// Warm-up excluded from statistics (long-lived).
    pub warmup: SimDuration,
    /// Measurement window (long-lived).
    pub duration: SimDuration,
    /// Queue-trace sample spacing for oscillation metrics (long-lived;
    /// for fluid runs this is the metric sampling stride, default =
    /// `dt`).
    pub trace_interval: SimDuration,
    /// DDE integrator step (fluid kind only; must not exceed the
    /// topology RTT).
    pub dt: SimDuration,
    /// Per-flow start stagger (long-lived).
    pub stagger: SimDuration,
    /// Rounds per point (query kinds).
    pub rounds: u32,
    /// Bytes each responder sends (Incast), or total bytes split over
    /// responders (partition-aggregate).
    pub bytes: u64,
    /// Workload RNG seeds (query kinds); each seed is one matrix point.
    pub seeds: Vec<u64>,
}

/// A fully validated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Unique scenario name (artifact file stem).
    pub name: String,
    /// Free-form description.
    pub description: String,
    /// Workload family.
    pub kind: ScenarioKind,
    /// Topology parameters.
    pub topology: TopologySpec,
    /// Transport configuration shared by every host.
    pub tcp: TcpConfig,
    /// Run control.
    pub run: RunSpec,
    /// Collective workload shape (`Some` exactly for
    /// [`ScenarioKind::Collective`]).
    pub workload: Option<CollectiveWorkloadSpec>,
    /// Churn workload shape (`Some` exactly for [`ScenarioKind::Fct`]).
    pub fct: Option<FctWorkloadSpec>,
    /// Labeled marking schemes under test, in file order.
    pub markings: Vec<(String, MarkingScheme)>,
    /// Scripted faults.
    pub faults: FaultSpec,
    /// Supervision limits and chaos injections.
    pub limits: LimitsSpec,
    /// Regression-envelope expectations, in file order.
    pub expectations: Vec<Expectation>,
    /// Cross-validation envelopes against packet anchors (fluid kind
    /// only), in file order.
    pub xvals: Vec<crate::xval::XvalSpec>,
}

impl ScenarioSpec {
    /// Parses and validates a scenario file.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] pinpointing the first problem.
    pub fn parse(src: &str) -> Result<ScenarioSpec, ScenarioError> {
        let doc = Document::parse(src)?;
        for s in &doc.sections {
            const KNOWN: &[&str] = &[
                "scenario",
                "topology",
                "transport",
                "run",
                "workload",
                "marking",
                "faults",
                "limits",
                "expect",
                "xval",
            ];
            if !KNOWN.contains(&s.name.as_str()) {
                return Err(ScenarioError::UnknownSection {
                    line: s.line,
                    section: s.display_name(),
                });
            }
        }

        let meta = doc
            .section("scenario")
            .ok_or(ScenarioError::MissingSection {
                section: "scenario".into(),
            })?;
        meta.reject_unknown_keys(&["name", "kind", "description"])?;
        let name = meta.require("name")?.value.clone();
        if name.is_empty() || name.contains(|c: char| c.is_whitespace() || c == '/') {
            let e = meta.require("name")?;
            return Err(ScenarioError::BadValue {
                line: e.line,
                key: "name".into(),
                msg: "name must be a non-empty token without spaces or `/`".into(),
            });
        }
        let kind_entry = meta.require("kind")?;
        let kind = match kind_entry.value.as_str() {
            "long_lived" => ScenarioKind::LongLived,
            "incast" => ScenarioKind::Incast,
            "partition_aggregate" => ScenarioKind::PartitionAggregate,
            "collective" => ScenarioKind::Collective,
            "fluid" => ScenarioKind::Fluid,
            "fct" => ScenarioKind::Fct,
            other => {
                return Err(ScenarioError::BadValue {
                    line: kind_entry.line,
                    key: "kind".into(),
                    msg: format!(
                        "unknown kind `{other}` \
                         (long_lived/incast/partition_aggregate/collective/fluid/fct)"
                    ),
                })
            }
        };
        let description = meta.value("description").unwrap_or_default().to_string();

        let topology = parse_topology(&doc, kind)?;
        let tcp = parse_transport(&doc)?;
        let run = parse_run(&doc, kind)?;
        let workload = parse_workload(&doc, kind)?;
        let fct = parse_fct_workload(&doc, kind)?;
        if let Some(w) = &fct {
            // The flow sweep is the churn-source sweep: every count must
            // split evenly into the workload's racks.
            let flows_entry = doc.section("run").and_then(|s| s.get("flows"));
            for &n in &run.flows {
                if n % w.racks != 0 || n < w.racks {
                    return Err(ScenarioError::OutOfRange {
                        line: flows_entry.map_or(0, |e| e.line),
                        key: "flows".into(),
                        msg: format!(
                            "fct source counts must be positive multiples of \
                             racks = {}, got {n}",
                            w.racks
                        ),
                    });
                }
            }
        }
        if let TopologySpec::FatTree(ft) = &topology {
            // The flow sweep is the participant sweep: every count must
            // fit on the fabric (and a collective needs two ranks).
            let flows_entry = doc.section("run").and_then(|s| s.get("flows"));
            for &n in &run.flows {
                if n < 2 || n > ft.num_hosts() {
                    return Err(ScenarioError::OutOfRange {
                        line: flows_entry.map_or(0, |e| e.line),
                        key: "flows".into(),
                        msg: format!(
                            "collective participants must be in 2..={} \
                             (k={} fat-tree hosts), got {n}",
                            ft.num_hosts(),
                            ft.k
                        ),
                    });
                }
            }
        }
        let markings = parse_markings(&doc)?;
        if kind == ScenarioKind::Fluid {
            validate_fluid_spec(&doc, &topology, &run, &markings)?;
        }
        let faults = parse_faults(&doc, kind)?;
        let limits = parse_limits(&doc, &run, &markings)?;
        let expectations = crate::envelope::parse_expectations(&doc, kind, &markings)?;
        let xvals = crate::xval::parse_xvals(&doc, kind, &run, &markings)?;

        Ok(ScenarioSpec {
            name,
            description,
            kind,
            topology,
            tcp,
            run,
            workload,
            fct,
            markings,
            faults,
            limits,
            expectations,
            xvals,
        })
    }

    /// Loads and parses a scenario file from disk.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Io`] or any parse/validation error.
    pub fn load(path: &std::path::Path) -> Result<ScenarioSpec, ScenarioError> {
        let src = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
            path: path.display().to_string(),
            msg: e.to_string(),
        })?;
        ScenarioSpec::parse(&src)
    }

    /// The dumbbell topology (long-lived kind).
    pub fn dumbbell(&self) -> Option<&DumbbellSpec> {
        match &self.topology {
            TopologySpec::Dumbbell(d) => Some(d),
            _ => None,
        }
    }

    /// The testbed topology (query kinds).
    pub fn testbed(&self) -> Option<&TestbedSpec> {
        match &self.topology {
            TopologySpec::Testbed(t) => Some(t),
            _ => None,
        }
    }

    /// The fat-tree topology (collective kind).
    pub fn fat_tree(&self) -> Option<&FatTreeSpec> {
        match &self.topology {
            TopologySpec::FatTree(f) => Some(f),
            _ => None,
        }
    }

    /// Number of matrix points this scenario expands to.
    pub fn num_points(&self) -> usize {
        self.markings.len() * self.run.flows.len() * self.run.seeds.len()
    }

    /// The per-cell wall-clock deadline: the explicit `[limits]
    /// deadline` if given, otherwise a budget derived from the
    /// simulated duration (1000x real time per simulated second,
    /// clamped to [30 s, 300 s]) so even a pathological cell cannot
    /// wedge a matrix forever.
    pub fn cell_deadline(&self) -> SimDuration {
        if let Some(d) = self.limits.deadline {
            return d;
        }
        let simulated_ns = match self.kind {
            // A fluid cell integrates its simulated span in milliseconds
            // of wall clock; the shared budget is already generous.
            ScenarioKind::LongLived | ScenarioKind::Fluid => {
                self.run.warmup.as_nanos() + self.run.duration.as_nanos()
            }
            // Query rounds have no fixed simulated duration; budget by
            // round count instead (100 simulated ms per round).
            ScenarioKind::Incast | ScenarioKind::PartitionAggregate => {
                u64::from(self.run.rounds) * 100_000_000
            }
            // A collective cell simulates at most its workload horizon.
            ScenarioKind::Collective => self.workload.map_or(100_000_000, |w| w.horizon.as_nanos()),
            // An fct cell simulates warmup + measured window + drain.
            ScenarioKind::Fct => {
                self.run.warmup.as_nanos()
                    + self.run.duration.as_nanos()
                    + self.fct.as_ref().map_or(0, |w| w.drain.as_nanos())
            }
        };
        let budget_ns = simulated_ns
            .saturating_mul(1000)
            .clamp(30_000_000_000, 300_000_000_000);
        SimDuration::from_nanos(budget_ns)
    }
}

fn parse_topology(doc: &Document, kind: ScenarioKind) -> Result<TopologySpec, ScenarioError> {
    // The collective kind labels its topology section (`[topology
    // fat_tree]`); every other kind uses a bare `[topology]`. A label
    // mismatch is an error, never a silently ignored section.
    for s in doc.sections_named("topology") {
        match (&s.label, kind) {
            (None, ScenarioKind::Collective) => {
                return Err(ScenarioError::Syntax {
                    line: s.line,
                    msg: "collective scenarios take `[topology fat_tree]`".into(),
                });
            }
            (Some(l), ScenarioKind::Collective) if l != "fat_tree" => {
                return Err(ScenarioError::Syntax {
                    line: s.line,
                    msg: format!("unknown topology `{l}` (collective scenarios use fat_tree)"),
                });
            }
            (Some(l), k) if k != ScenarioKind::Collective => {
                return Err(ScenarioError::Syntax {
                    line: s.line,
                    msg: format!(
                        "`[topology {l}]` is only valid for collective scenarios; \
                         {} scenarios take a bare [topology]",
                        k.name()
                    ),
                });
            }
            _ => {}
        }
    }
    if kind == ScenarioKind::Collective {
        let mut spec = FatTreeSpec {
            k: 4,
            hosts_per_edge: 2,
            host_bps: 1_000_000_000,
            agg_bps: 1_000_000_000,
            core_bps: 1_000_000_000,
            delay: SimDuration::from_micros(5),
            buffer: Capacity::Packets(100),
            ecmp_seed: 1,
        };
        if let Some(s) = doc
            .sections_named("topology")
            .find(|s| s.label.as_deref() == Some("fat_tree"))
        {
            s.reject_unknown_keys(&[
                "k",
                "hosts_per_edge",
                "host",
                "agg",
                "core",
                "delay",
                "buffer",
                "ecmp_seed",
            ])?;
            if let Some(e) = s.get("k") {
                spec.k = parse_u32(e)?;
                if spec.k < 4 || spec.k > 16 || spec.k % 2 != 0 {
                    return Err(ScenarioError::OutOfRange {
                        line: e.line,
                        key: "k".into(),
                        msg: format!("fat-tree arity must be even and in 4..=16, got {}", spec.k),
                    });
                }
            }
            if let Some(e) = s.get("hosts_per_edge") {
                spec.hosts_per_edge = parse_u32(e)?;
                if spec.hosts_per_edge == 0 {
                    return Err(ScenarioError::OutOfRange {
                        line: e.line,
                        key: "hosts_per_edge".into(),
                        msg: "must be positive".into(),
                    });
                }
            }
            if let Some(e) = s.get("host") {
                spec.host_bps = parse_rate_bps(e)?;
            }
            if let Some(e) = s.get("agg") {
                spec.agg_bps = parse_rate_bps(e)?;
            }
            if let Some(e) = s.get("core") {
                spec.core_bps = parse_rate_bps(e)?;
            }
            if let Some(e) = s.get("delay") {
                spec.delay = require_positive(parse_duration(e)?, e, "delay")?;
            }
            if let Some(e) = s.get("buffer") {
                spec.buffer = parse_capacity(e)?;
            }
            if let Some(e) = s.get("ecmp_seed") {
                spec.ecmp_seed = crate::parse::parse_u64(e)?;
            }
        }
        return Ok(TopologySpec::FatTree(spec));
    }
    let section = doc.section("topology");
    match kind {
        // The fluid kind integrates the same dumbbell operating point
        // the long-lived packet runs measure, so the two share a
        // topology surface (and defaults) by construction; the fct
        // kind reuses it per rack (every rack bottleneck gets these
        // parameters).
        ScenarioKind::LongLived | ScenarioKind::Fluid | ScenarioKind::Fct => {
            let mut spec = DumbbellSpec {
                bottleneck_bps: 10_000_000_000,
                rtt: SimDuration::from_micros(300),
                buffer: Capacity::Packets(1000),
            };
            if let Some(s) = section {
                s.reject_unknown_keys(&["bottleneck", "rtt", "buffer"])?;
                if let Some(e) = s.get("bottleneck") {
                    spec.bottleneck_bps = parse_rate_bps(e)?;
                }
                if let Some(e) = s.get("rtt") {
                    spec.rtt = require_positive(parse_duration(e)?, e, "rtt")?;
                }
                if let Some(e) = s.get("buffer") {
                    spec.buffer = parse_capacity(e)?;
                }
            }
            Ok(TopologySpec::Dumbbell(spec))
        }
        // Collective returned above; the remaining kinds are the
        // Fig. 13 testbed.
        _ => {
            let mut spec = TestbedSpec {
                link_bps: 1_000_000_000,
                bottleneck_buffer: Capacity::Bytes(128 * 1024),
                other_buffer: Capacity::Bytes(512 * 1024),
                link_delay: SimDuration::from_micros(25),
            };
            if let Some(s) = section {
                s.reject_unknown_keys(&["link", "bottleneck_buffer", "other_buffer", "delay"])?;
                if let Some(e) = s.get("link") {
                    spec.link_bps = parse_rate_bps(e)?;
                }
                if let Some(e) = s.get("bottleneck_buffer") {
                    spec.bottleneck_buffer = parse_capacity(e)?;
                }
                if let Some(e) = s.get("other_buffer") {
                    spec.other_buffer = parse_capacity(e)?;
                }
                if let Some(e) = s.get("delay") {
                    spec.link_delay = require_positive(parse_duration(e)?, e, "delay")?;
                }
            }
            Ok(TopologySpec::Testbed(spec))
        }
    }
}

/// Fluid-kind cross-field validation: the integrator step must resolve
/// the feedback delay, the sampling stride must not undersample the
/// step, and every marking must have a continuous-domain analogue
/// (packet-denominated relay or hysteresis — the laws
/// `dctcp_fluid::FluidMarking` models).
fn validate_fluid_spec(
    doc: &Document,
    topology: &TopologySpec,
    run: &RunSpec,
    markings: &[(String, MarkingScheme)],
) -> Result<(), ScenarioError> {
    let TopologySpec::Dumbbell(d) = topology else {
        unreachable!("fluid scenarios always parse a dumbbell topology");
    };
    let run_section = doc.section("run");
    let key_line = |key: &str| run_section.map_or(0, |s| s.get(key).map_or(s.line, |e| e.line));
    if run.dt > d.rtt {
        return Err(ScenarioError::OutOfRange {
            line: key_line("dt"),
            key: "dt".into(),
            msg: format!(
                "integrator step must not exceed the {} ns rtt, got {} ns",
                d.rtt.as_nanos(),
                run.dt.as_nanos()
            ),
        });
    }
    if run.trace_interval < run.dt {
        return Err(ScenarioError::OutOfRange {
            line: key_line("trace"),
            key: "trace".into(),
            msg: "trace stride must be at least the integrator step `dt`".into(),
        });
    }
    for s in doc.sections_named("marking") {
        let Some((_, scheme)) = markings
            .iter()
            .find(|(l, _)| Some(l.as_str()) == s.label.as_deref())
        else {
            continue;
        };
        let supported = matches!(
            scheme,
            MarkingScheme::Dctcp {
                k: dctcp_core::QueueLevel::Packets(_)
            } | MarkingScheme::DtDctcp {
                k1: dctcp_core::QueueLevel::Packets(_),
                k2: dctcp_core::QueueLevel::Packets(_),
            }
        );
        if !supported {
            return Err(ScenarioError::BadValue {
                line: s.line,
                key: format!("marking \"{}\"", s.label.as_deref().unwrap_or("")),
                msg: "fluid scenarios support only dctcp / dt-dctcp markings \
                      with packet-denominated thresholds"
                    .into(),
            });
        }
    }
    Ok(())
}

fn require_positive(
    d: SimDuration,
    entry: &crate::parse::RawEntry,
    key: &str,
) -> Result<SimDuration, ScenarioError> {
    if d == SimDuration::ZERO {
        return Err(ScenarioError::OutOfRange {
            line: entry.line,
            key: key.into(),
            msg: "must be positive".into(),
        });
    }
    Ok(d)
}

fn parse_transport(doc: &Document) -> Result<TcpConfig, ScenarioError> {
    let mut g = 1.0 / 16.0;
    let mut d2tcp = false;
    let mut rto_min = None;
    let mut ecn_fallback_after = None;
    let mut delayed_ack = None;
    let mut delack_timeout = None;
    if let Some(s) = doc.section("transport") {
        s.reject_unknown_keys(&[
            "g",
            "cc",
            "rto_min",
            "ecn_fallback_after",
            "delayed_ack",
            "delack_timeout",
        ])?;
        if let Some(e) = s.get("cc") {
            match e.value.as_str() {
                "dctcp" => {}
                "d2tcp" => d2tcp = true,
                other => {
                    return Err(ScenarioError::BadValue {
                        line: e.line,
                        key: "cc".into(),
                        msg: format!("unknown congestion control `{other}` (dctcp/d2tcp)"),
                    })
                }
            }
        }
        if let Some(e) = s.get("g") {
            g = parse_f64(e)?;
            if !(g > 0.0 && g <= 1.0) {
                return Err(ScenarioError::OutOfRange {
                    line: e.line,
                    key: "g".into(),
                    msg: format!("EWMA gain must be in (0, 1], got {g}"),
                });
            }
        }
        if let Some(e) = s.get("rto_min") {
            rto_min = Some(require_positive(parse_duration(e)?, e, "rto_min")?);
        }
        if let Some(e) = s.get("ecn_fallback_after") {
            ecn_fallback_after = Some(parse_u32(e)?);
        }
        if let Some(e) = s.get("delayed_ack") {
            delayed_ack = Some(parse_u32(e)?);
        }
        if let Some(e) = s.get("delack_timeout") {
            delack_timeout = Some(require_positive(parse_duration(e)?, e, "delack_timeout")?);
        }
    }
    // The baseline D²TCP urgency is the plain-DCTCP d = 1; churn
    // sources re-derive d per flow from each deadline's slack.
    let mut cfg = if d2tcp {
        TcpConfig::d2tcp(g, 1.0)
    } else {
        TcpConfig::dctcp(g)
    };
    if let Some(r) = rto_min {
        cfg.rto_min = r;
    }
    if let Some(n) = ecn_fallback_after {
        cfg.ecn_fallback_after = Some(n);
    }
    if let Some(n) = delayed_ack {
        cfg.delayed_ack = n;
    }
    if let Some(t) = delack_timeout {
        cfg.delack_timeout = t;
    }
    cfg.validate().map_err(|e| ScenarioError::OutOfRange {
        line: doc.section("transport").map_or(0, |s| s.line),
        key: "transport".into(),
        msg: e.to_string(),
    })?;
    Ok(cfg)
}

fn parse_run(doc: &Document, kind: ScenarioKind) -> Result<RunSpec, ScenarioError> {
    let s = doc.section("run").ok_or(ScenarioError::MissingSection {
        section: "run".into(),
    })?;
    match kind {
        ScenarioKind::LongLived => {
            s.reject_unknown_keys(&["flows", "warmup", "duration", "trace", "stagger"])?
        }
        ScenarioKind::Fluid => {
            s.reject_unknown_keys(&["flows", "warmup", "duration", "trace", "dt"])?
        }
        // `flows` doubles as the participant sweep for collectives.
        ScenarioKind::Collective => s.reject_unknown_keys(&["flows", "bytes_per_flow", "seeds"])?,
        // ...and as the churn-source sweep for fct.
        ScenarioKind::Fct => s.reject_unknown_keys(&["flows", "warmup", "duration", "seeds"])?,
        _ => {
            s.reject_unknown_keys(&["flows", "rounds", "bytes_per_flow", "total_bytes", "seeds"])?
        }
    }
    let flows_entry = s.require("flows")?;
    let flows = parse_list_u32(flows_entry)?;
    if flows.is_empty() {
        return Err(ScenarioError::BadValue {
            line: flows_entry.line,
            key: "flows".into(),
            msg: "at least one flow count required".into(),
        });
    }
    // The packet engine's cap guards CI wall-clock; the DDE's cost does
    // not grow with N, so fluid sweeps may extrapolate to 10^6 flows.
    let max_flows = match kind {
        ScenarioKind::Fluid => MAX_FLUID_FLOWS,
        _ => MAX_FLOWS,
    };
    for &n in &flows {
        if n == 0 || n > max_flows {
            return Err(ScenarioError::OutOfRange {
                line: flows_entry.line,
                key: "flows".into(),
                msg: format!("flow counts must be in 1..={max_flows}, got {n}"),
            });
        }
    }

    let mut run = RunSpec {
        flows,
        warmup: SimDuration::from_millis(20),
        duration: SimDuration::from_millis(50),
        trace_interval: SimDuration::from_micros(50),
        dt: SimDuration::from_micros(1),
        stagger: SimDuration::ZERO,
        rounds: 3,
        bytes: 64 * 1024,
        seeds: vec![1],
    };
    match kind {
        ScenarioKind::Collective => {
            if let Some(e) = s.get("bytes_per_flow") {
                run.bytes = parse_bytes(e)?;
            }
            if let Some(e) = s.get("seeds") {
                run.seeds = parse_list_u64(e)?;
                if run.seeds.is_empty() {
                    return Err(ScenarioError::BadValue {
                        line: e.line,
                        key: "seeds".into(),
                        msg: "at least one seed required".into(),
                    });
                }
            }
        }
        ScenarioKind::LongLived => {
            if let Some(e) = s.get("warmup") {
                run.warmup = parse_duration(e)?;
            }
            if let Some(e) = s.get("duration") {
                run.duration = require_positive(parse_duration(e)?, e, "duration")?;
            }
            if let Some(e) = s.get("trace") {
                run.trace_interval = require_positive(parse_duration(e)?, e, "trace")?;
            }
            if let Some(e) = s.get("stagger") {
                run.stagger = parse_duration(e)?;
            }
        }
        ScenarioKind::Fct => {
            // Churn reaches a statistical steady state within a few
            // mean FCTs; the default warmup is shorter than the
            // long-lived transient window.
            run.warmup = SimDuration::from_millis(10);
            if let Some(e) = s.get("warmup") {
                run.warmup = parse_duration(e)?;
            }
            if let Some(e) = s.get("duration") {
                run.duration = require_positive(parse_duration(e)?, e, "duration")?;
            }
            if let Some(e) = s.get("seeds") {
                run.seeds = parse_list_u64(e)?;
                if run.seeds.is_empty() {
                    return Err(ScenarioError::BadValue {
                        line: e.line,
                        key: "seeds".into(),
                        msg: "at least one seed required".into(),
                    });
                }
            }
        }
        ScenarioKind::Fluid => {
            if let Some(e) = s.get("warmup") {
                run.warmup = parse_duration(e)?;
            }
            if let Some(e) = s.get("duration") {
                run.duration = require_positive(parse_duration(e)?, e, "duration")?;
            }
            if let Some(e) = s.get("dt") {
                run.dt = require_positive(parse_duration(e)?, e, "dt")?;
            }
            // Default metric sampling: every integration step — the DDE
            // trajectory is cheap and amplitude metrics want the full
            // resolution.
            run.trace_interval = run.dt;
            if let Some(e) = s.get("trace") {
                run.trace_interval = require_positive(parse_duration(e)?, e, "trace")?;
            }
        }
        ScenarioKind::Incast | ScenarioKind::PartitionAggregate => {
            if let Some(e) = s.get("rounds") {
                run.rounds = parse_u32(e)?;
                if run.rounds == 0 || run.rounds > 100 {
                    return Err(ScenarioError::OutOfRange {
                        line: e.line,
                        key: "rounds".into(),
                        msg: format!("rounds must be in 1..=100, got {}", run.rounds),
                    });
                }
            }
            let (bytes_key, other_key) = match kind {
                ScenarioKind::Incast => ("bytes_per_flow", "total_bytes"),
                _ => ("total_bytes", "bytes_per_flow"),
            };
            if let Some(e) = s.get(other_key) {
                return Err(ScenarioError::BadValue {
                    line: e.line,
                    key: other_key.into(),
                    msg: format!("{} scenarios take `{bytes_key}`", kind.name()),
                });
            }
            run.bytes = match kind {
                ScenarioKind::Incast => 64 * 1024,
                _ => 1024 * 1024,
            };
            if let Some(e) = s.get(bytes_key) {
                run.bytes = parse_bytes(e)?;
            }
            if let Some(e) = s.get("seeds") {
                run.seeds = parse_list_u64(e)?;
                if run.seeds.is_empty() {
                    return Err(ScenarioError::BadValue {
                        line: e.line,
                        key: "seeds".into(),
                        msg: "at least one seed required".into(),
                    });
                }
            }
        }
    }
    Ok(run)
}

/// Parses `[workload collective]`: required for the collective kind,
/// rejected for every other kind.
fn parse_workload(
    doc: &Document,
    kind: ScenarioKind,
) -> Result<Option<CollectiveWorkloadSpec>, ScenarioError> {
    let section = doc.sections_named("workload").next();
    if kind == ScenarioKind::Fct {
        // `[workload fct]` is owned by `parse_fct_workload`.
        return Ok(None);
    }
    if kind != ScenarioKind::Collective {
        if let Some(s) = section {
            return Err(ScenarioError::Syntax {
                line: s.line,
                msg: format!(
                    "[workload] sections are only valid for collective and fct scenarios, not {}",
                    kind.name()
                ),
            });
        }
        return Ok(None);
    }
    let s = section.ok_or(ScenarioError::MissingSection {
        section: "workload collective".into(),
    })?;
    if s.label.as_deref() != Some("collective") {
        return Err(ScenarioError::Syntax {
            line: s.line,
            msg: "collective scenarios take `[workload collective]`".into(),
        });
    }
    s.reject_unknown_keys(&["pattern", "chunk", "phase_gap", "horizon"])?;
    let pattern_entry = s.require("pattern")?;
    let pattern =
        CollectivePattern::from_name(&pattern_entry.value).ok_or(ScenarioError::BadValue {
            line: pattern_entry.line,
            key: "pattern".into(),
            msg: format!(
                "unknown pattern `{}` \
                 (ring_allreduce/tree_allreduce/permutation/incast)",
                pattern_entry.value
            ),
        })?;
    let mut spec = CollectiveWorkloadSpec {
        pattern,
        chunk: 0,
        phase_gap: SimDuration::from_millis(1),
        horizon: SimDuration::from_millis(400),
    };
    if let Some(e) = s.get("chunk") {
        spec.chunk = parse_bytes(e)?;
    }
    if let Some(e) = s.get("phase_gap") {
        spec.phase_gap = parse_duration(e)?;
    }
    if let Some(e) = s.get("horizon") {
        spec.horizon = require_positive(parse_duration(e)?, e, "horizon")?;
    }
    Ok(Some(spec))
}

/// Parses `[workload fct]`: required for the fct kind; sections on
/// other kinds are rejected by [`parse_workload`].
fn parse_fct_workload(
    doc: &Document,
    kind: ScenarioKind,
) -> Result<Option<FctWorkloadSpec>, ScenarioError> {
    if kind != ScenarioKind::Fct {
        return Ok(None);
    }
    let s = doc
        .sections_named("workload")
        .next()
        .ok_or(ScenarioError::MissingSection {
            section: "workload fct".into(),
        })?;
    if s.label.as_deref() != Some("fct") {
        return Err(ScenarioError::Syntax {
            line: s.line,
            msg: "fct scenarios take `[workload fct]`".into(),
        });
    }
    s.reject_unknown_keys(&[
        "load",
        "size_dist",
        "racks",
        "slots",
        "short_bytes",
        "long_bytes",
        "deadline_slack",
        "drain",
    ])?;
    let load_entry = s.require("load")?;
    let load = parse_f64(load_entry)?;
    if !(load > 0.0 && load < 1.0) {
        return Err(ScenarioError::OutOfRange {
            line: load_entry.line,
            key: "load".into(),
            msg: format!("offered load must be in (0, 1), got {load}"),
        });
    }
    let mut spec = FctWorkloadSpec {
        load,
        size_dist: "web_search".into(),
        racks: 2,
        slots: 4096,
        short_bytes: 10_000,
        long_bytes: 100_000,
        deadline_slack: None,
        drain: SimDuration::from_millis(100),
    };
    if let Some(e) = s.get("size_dist") {
        if dctcp_workloads::sizes::by_name(&e.value).is_none() {
            return Err(ScenarioError::BadValue {
                line: e.line,
                key: "size_dist".into(),
                msg: format!(
                    "unknown size distribution `{}` (web_search/data_mining)",
                    e.value
                ),
            });
        }
        spec.size_dist = e.value.clone();
    }
    for (key, field) in [("racks", &mut spec.racks), ("slots", &mut spec.slots)] {
        if let Some(e) = s.get(key) {
            *field = parse_u32(e)?;
            if *field == 0 {
                return Err(ScenarioError::OutOfRange {
                    line: e.line,
                    key: key.into(),
                    msg: "must be positive".into(),
                });
            }
        }
    }
    if let Some(e) = s.get("short_bytes") {
        spec.short_bytes = parse_bytes(e)?;
    }
    if let Some(e) = s.get("long_bytes") {
        spec.long_bytes = parse_bytes(e)?;
    }
    if spec.short_bytes == 0 || spec.short_bytes >= spec.long_bytes {
        return Err(ScenarioError::OutOfRange {
            line: s.line,
            key: "short_bytes".into(),
            msg: format!(
                "size classes need 0 < short_bytes < long_bytes, got {} / {}",
                spec.short_bytes, spec.long_bytes
            ),
        });
    }
    if let Some(e) = s.get("deadline_slack") {
        let slack = parse_f64(e)?;
        if !(slack.is_finite() && slack > 0.0) {
            return Err(ScenarioError::OutOfRange {
                line: e.line,
                key: "deadline_slack".into(),
                msg: "deadline slack must be a positive number".into(),
            });
        }
        spec.deadline_slack = Some(slack);
    }
    if let Some(e) = s.get("drain") {
        spec.drain = parse_duration(e)?;
    }
    Ok(Some(spec))
}

fn parse_markings(doc: &Document) -> Result<Vec<(String, MarkingScheme)>, ScenarioError> {
    let mut out: Vec<(String, MarkingScheme)> = Vec::new();
    for s in doc.sections_named("marking") {
        let label = s.label.clone().ok_or_else(|| ScenarioError::Syntax {
            line: s.line,
            msg: "marking sections need a label: [marking \"dctcp\"]".into(),
        })?;
        if out.iter().any(|(l, _)| *l == label) {
            return Err(ScenarioError::DuplicateSection {
                line: s.line,
                section: s.display_name(),
            });
        }
        out.push((label, parse_one_marking(s)?));
    }
    if out.is_empty() {
        return Err(ScenarioError::MissingSection {
            section: "marking \"…\"".into(),
        });
    }
    Ok(out)
}

fn parse_one_marking(s: &RawSection) -> Result<MarkingScheme, ScenarioError> {
    let scheme_entry = s.require("scheme")?;
    let scheme = match scheme_entry.value.as_str() {
        "droptail" => {
            s.reject_unknown_keys(&["scheme"])?;
            MarkingScheme::DropTail
        }
        "dctcp" => {
            s.reject_unknown_keys(&["scheme", "k"])?;
            MarkingScheme::Dctcp {
                k: parse_level(s.require("k")?)?,
            }
        }
        "dt-dctcp" => {
            s.reject_unknown_keys(&["scheme", "k1", "k2"])?;
            MarkingScheme::DtDctcp {
                k1: parse_level(s.require("k1")?)?,
                k2: parse_level(s.require("k2")?)?,
            }
        }
        "schmitt" => {
            s.reject_unknown_keys(&["scheme", "lo", "hi"])?;
            MarkingScheme::Schmitt {
                lo: parse_level(s.require("lo")?)?,
                hi: parse_level(s.require("hi")?)?,
            }
        }
        "red" => {
            s.reject_unknown_keys(&["scheme", "min", "max", "max_p", "ecn"])?;
            let max_p_entry = s.get("max_p");
            let max_p = match max_p_entry {
                Some(e) => parse_f64(e)?,
                None => 0.1,
            };
            MarkingScheme::Red {
                min_th: parse_level(s.require("min")?)?,
                max_th: parse_level(s.require("max")?)?,
                max_p,
                ecn: true,
            }
        }
        "codel" => {
            s.reject_unknown_keys(&["scheme"])?;
            MarkingScheme::codel_datacenter()
        }
        "pie" => {
            s.reject_unknown_keys(&["scheme", "line"])?;
            let line_gbps = match s.get("line") {
                Some(e) => parse_rate_bps(e)? as f64 / 1e9,
                None => 10.0,
            };
            MarkingScheme::pie_datacenter(line_gbps)
        }
        other => {
            return Err(ScenarioError::BadValue {
                line: scheme_entry.line,
                key: "scheme".into(),
                msg: format!(
                    "unknown scheme `{other}` \
                     (droptail/dctcp/dt-dctcp/schmitt/red/codel/pie)"
                ),
            })
        }
    };
    // Parameter sanity (K1 <= K2, RED ordering, …) surfaces here as a
    // typed out-of-range error at the section header's line.
    scheme.build().map_err(|e| ScenarioError::OutOfRange {
        line: s.line,
        key: format!("marking \"{}\"", s.label.as_deref().unwrap_or("")),
        msg: e.to_string(),
    })?;
    Ok(scheme)
}

fn parse_faults(doc: &Document, kind: ScenarioKind) -> Result<FaultSpec, ScenarioError> {
    let Some(s) = doc.section("faults") else {
        return Ok(FaultSpec::default());
    };
    if kind != ScenarioKind::LongLived {
        return Err(ScenarioError::BadValue {
            line: s.line,
            key: "faults".into(),
            msg: "fault plans are only supported for long_lived scenarios".into(),
        });
    }
    s.reject_unknown_keys(&["bleach", "down"])?;
    let mut spec = FaultSpec::default();
    if let Some(e) = s.get("bleach") {
        spec.bleach = Some(parse_window(e)?);
    }
    if let Some(e) = s.get("down") {
        spec.down = Some(parse_window(e)?);
    }
    Ok(spec)
}

/// Hard cap on the retry budget — past a handful of attempts a cell is
/// not flaky, it is broken, and retrying only delays the quarantine.
const MAX_RETRIES: u32 = 8;

fn parse_limits(
    doc: &Document,
    run: &RunSpec,
    markings: &[(String, MarkingScheme)],
) -> Result<LimitsSpec, ScenarioError> {
    let Some(s) = doc.section("limits") else {
        return Ok(LimitsSpec::default());
    };
    s.reject_unknown_keys(&[
        "deadline",
        "retries",
        "backoff",
        "inject_panic",
        "inject_stall",
        "inject_flaky",
    ])?;
    let mut spec = LimitsSpec::default();
    if let Some(e) = s.get("deadline") {
        spec.deadline = Some(require_positive(parse_duration(e)?, e, "deadline")?);
    }
    if let Some(e) = s.get("retries") {
        spec.retries = parse_u32(e)?;
        if spec.retries > MAX_RETRIES {
            return Err(ScenarioError::OutOfRange {
                line: e.line,
                key: "retries".into(),
                msg: format!(
                    "retries must be at most {MAX_RETRIES}, got {}",
                    spec.retries
                ),
            });
        }
    }
    if let Some(e) = s.get("backoff") {
        spec.backoff = parse_duration(e)?;
    }
    for (key, fault) in [
        ("inject_panic", InjectFault::Panic),
        ("inject_stall", InjectFault::Stall),
        ("inject_flaky", InjectFault::Flaky),
    ] {
        if let Some(e) = s.get(key) {
            spec.inject
                .push(parse_inject(e, key, fault, run, markings)?);
        }
    }
    Ok(spec)
}

/// Parses one `inject_* = marking:flows:seed` cell address, validating
/// every component against the scenario's actual matrix so a typo
/// cannot silently inject nothing.
fn parse_inject(
    e: &crate::parse::RawEntry,
    key: &str,
    fault: InjectFault,
    run: &RunSpec,
    markings: &[(String, MarkingScheme)],
) -> Result<InjectSpec, ScenarioError> {
    let bad = |msg: String| ScenarioError::BadValue {
        line: e.line,
        key: key.into(),
        msg,
    };
    let parts: Vec<&str> = e.value.split(':').collect();
    let [marking, flows, seed] = parts.as_slice() else {
        return Err(bad(format!(
            "expected `marking:flows:seed`, got `{}`",
            e.value
        )));
    };
    if !markings.iter().any(|(l, _)| l == marking) {
        return Err(bad(format!(
            "no [marking \"{marking}\"] section in this scenario"
        )));
    }
    let flows: u32 = flows
        .trim()
        .parse()
        .map_err(|_| bad(format!("bad flow count `{flows}`")))?;
    if !run.flows.contains(&flows) {
        return Err(bad(format!("flow count {flows} is not in the sweep")));
    }
    let seed: u64 = seed
        .trim()
        .parse()
        .map_err(|_| bad(format!("bad seed `{seed}`")))?;
    if !run.seeds.contains(&seed) {
        return Err(bad(format!("seed {seed} is not in the seed list")));
    }
    Ok(InjectSpec {
        fault,
        marking: marking.to_string(),
        flows,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "\
[scenario]
name = t
kind = long_lived

[run]
flows = 2, 4

[marking \"dc\"]
scheme = dctcp
k = 40 pkts
";

    #[test]
    fn minimal_long_lived_parses_with_defaults() {
        let s = ScenarioSpec::parse(MINIMAL).unwrap();
        assert_eq!(s.name, "t");
        assert_eq!(s.kind, ScenarioKind::LongLived);
        assert_eq!(s.run.flows, vec![2, 4]);
        let d = s.dumbbell().unwrap();
        assert_eq!(d.bottleneck_bps, 10_000_000_000);
        assert_eq!(s.markings.len(), 1);
        assert_eq!(s.num_points(), 2);
        assert!(s.faults.is_empty());
        assert!(s.expectations.is_empty());
    }

    #[test]
    fn unknown_key_names_section_and_line() {
        let src = MINIMAL.replace("k = 40 pkts", "k = 40 pkts\ntreshold = 2");
        match ScenarioSpec::parse(&src).unwrap_err() {
            ScenarioError::UnknownKey { section, key, .. } => {
                assert_eq!(key, "treshold");
                assert!(section.contains("marking"), "{section}");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn out_of_range_thresholds_are_rejected() {
        let src = MINIMAL.replace(
            "scheme = dctcp\nk = 40 pkts",
            "scheme = dt-dctcp\nk1 = 50 pkts\nk2 = 30 pkts",
        );
        match ScenarioSpec::parse(&src).unwrap_err() {
            ScenarioError::OutOfRange { key, .. } => assert!(key.contains("marking")),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn absurd_flow_counts_are_rejected() {
        let src = MINIMAL.replace("flows = 2, 4", "flows = 2, 100000");
        assert!(matches!(
            ScenarioSpec::parse(&src).unwrap_err(),
            ScenarioError::OutOfRange { .. }
        ));
    }

    #[test]
    fn query_kind_takes_testbed_defaults_and_seeds() {
        let src = "\
[scenario]
name = q
kind = incast

[run]
flows = 4, 8
rounds = 2
seeds = 1, 2
bytes_per_flow = 64 KB

[marking \"dc\"]
scheme = dctcp
k = 32 KB
";
        let s = ScenarioSpec::parse(src).unwrap();
        assert_eq!(s.kind, ScenarioKind::Incast);
        let t = s.testbed().unwrap();
        assert_eq!(t.link_bps, 1_000_000_000);
        assert_eq!(s.run.seeds, vec![1, 2]);
        assert_eq!(s.num_points(), 4);
    }

    #[test]
    fn incast_rejects_total_bytes_key() {
        let src = "\
[scenario]
name = q
kind = incast

[run]
flows = 4
total_bytes = 1 MB

[marking \"dc\"]
scheme = dctcp
k = 32 KB
";
        assert!(matches!(
            ScenarioSpec::parse(src).unwrap_err(),
            ScenarioError::BadValue { .. }
        ));
    }

    #[test]
    fn faults_rejected_on_query_kinds() {
        let src = "\
[scenario]
name = q
kind = incast

[run]
flows = 4

[faults]
bleach = 1 ms .. 2 ms

[marking \"dc\"]
scheme = dctcp
k = 32 KB
";
        assert!(ScenarioSpec::parse(src).is_err());
    }

    #[test]
    fn marking_without_label_is_rejected() {
        let src = MINIMAL.replace("[marking \"dc\"]", "[marking]");
        assert!(matches!(
            ScenarioSpec::parse(&src).unwrap_err(),
            ScenarioError::Syntax { .. }
        ));
    }

    #[test]
    fn bad_transport_gain_is_out_of_range() {
        let src = format!("{MINIMAL}\n[transport]\ng = 1.5\n");
        assert!(matches!(
            ScenarioSpec::parse(&src).unwrap_err(),
            ScenarioError::OutOfRange { .. }
        ));
    }

    #[test]
    fn transport_delayed_ack_knobs_parse() {
        let src = format!("{MINIMAL}\n[transport]\ndelayed_ack = 8\ndelack_timeout = 2 ms\n");
        let s = ScenarioSpec::parse(&src).unwrap();
        assert_eq!(s.tcp.delayed_ack, 8);
        assert_eq!(s.tcp.delack_timeout, SimDuration::from_millis(2));
        // delayed_ack = 0 is rejected by TcpConfig validation.
        let src = format!("{MINIMAL}\n[transport]\ndelayed_ack = 0\n");
        assert!(matches!(
            ScenarioSpec::parse(&src).unwrap_err(),
            ScenarioError::OutOfRange { .. }
        ));
    }

    #[test]
    fn default_limits_without_a_section() {
        let s = ScenarioSpec::parse(MINIMAL).unwrap();
        assert_eq!(s.limits, LimitsSpec::default());
        assert_eq!(s.limits.retries, DEFAULT_RETRIES);
        // Derived deadline: 1000× the simulated span (default 20 ms
        // warmup + 50 ms duration → 70 s of wall clock).
        assert_eq!(s.cell_deadline(), SimDuration::from_secs(70));

        // Sub-30 ms simulated spans clamp to the 30 s floor.
        let tiny = ScenarioSpec::parse(
            "\
[scenario]
name = t
kind = long_lived

[run]
flows = 2
warmup = 1 ms
duration = 2 ms

[marking \"dc\"]
scheme = dctcp
k = 40 pkts
",
        )
        .unwrap();
        assert_eq!(tiny.cell_deadline(), SimDuration::from_secs(30));
    }

    #[test]
    fn limits_section_parses_deadline_retries_and_injections() {
        let src = format!(
            "{MINIMAL}\n[limits]\ndeadline = 90 s\nretries = 3\nbackoff = 10 ms\n\
             inject_panic = dc:2:1\ninject_flaky = dc:4:1\n"
        );
        let s = ScenarioSpec::parse(&src).unwrap();
        assert_eq!(s.limits.deadline, Some(SimDuration::from_secs(90)));
        assert_eq!(s.cell_deadline(), SimDuration::from_secs(90));
        assert_eq!(s.limits.retries, 3);
        assert_eq!(s.limits.backoff, SimDuration::from_millis(10));
        assert_eq!(s.limits.injection_for("dc", 2, 1), Some(InjectFault::Panic));
        assert_eq!(s.limits.injection_for("dc", 4, 1), Some(InjectFault::Flaky));
        assert_eq!(s.limits.injection_for("dc", 8, 1), None);
    }

    #[test]
    fn injections_must_address_a_real_cell() {
        for bad in [
            "inject_panic = nosuch:2:1", // unknown marking
            "inject_panic = dc:3:1",     // flows not in sweep
            "inject_panic = dc:2:7",     // seed not in list
            "inject_panic = dc:2",       // malformed triple
            "inject_stall = dc:two:1",   // non-numeric flows
        ] {
            let src = format!("{MINIMAL}\n[limits]\n{bad}\n");
            assert!(
                matches!(
                    ScenarioSpec::parse(&src).unwrap_err(),
                    ScenarioError::BadValue { .. }
                ),
                "{bad}"
            );
        }
    }

    const COLLECTIVE: &str = "\
[scenario]
name = c
kind = collective

[topology fat_tree]
k = 4
hosts_per_edge = 2
core = 1 Gbps
ecmp_seed = 7

[workload collective]
pattern = ring_allreduce
phase_gap = 500 us
horizon = 200 ms

[run]
flows = 8, 16
bytes_per_flow = 32 KB
seeds = 1, 2

[marking \"dctcp\"]
scheme = dctcp
k = 20 pkts
";

    #[test]
    fn collective_scenario_parses_fat_tree_and_workload() {
        let s = ScenarioSpec::parse(COLLECTIVE).unwrap();
        assert_eq!(s.kind, ScenarioKind::Collective);
        assert!(s.kind.sweeps_seeds());
        let ft = s.fat_tree().unwrap();
        assert_eq!((ft.k, ft.hosts_per_edge, ft.ecmp_seed), (4, 2, 7));
        assert_eq!(ft.num_hosts(), 16);
        assert_eq!(ft.core_bps, 1_000_000_000);
        let w = s.workload.unwrap();
        assert_eq!(w.pattern, CollectivePattern::RingAllreduce);
        assert_eq!(w.phase_gap, SimDuration::from_micros(500));
        assert_eq!(w.horizon, SimDuration::from_millis(200));
        assert_eq!(s.run.bytes, 32 * 1024);
        assert_eq!(s.run.seeds, vec![1, 2]);
        // markings × participants × seeds
        assert_eq!(s.num_points(), 4);
        // The cell deadline derives from the workload horizon (200 ms
        // × 1000, clamped to the 300 s ceiling).
        assert_eq!(s.cell_deadline(), SimDuration::from_secs(200));
    }

    #[test]
    fn collective_requires_a_workload_section() {
        let src = COLLECTIVE.replace(
            "[workload collective]\npattern = ring_allreduce\n",
            "[workload collective]\n",
        );
        assert!(matches!(
            ScenarioSpec::parse(&src).unwrap_err(),
            ScenarioError::MissingKey { .. }
        ));
        let src: String = COLLECTIVE
            .lines()
            .filter(|l| {
                !(l.starts_with("[workload")
                    || l.starts_with("pattern")
                    || l.starts_with("phase_gap")
                    || l.starts_with("horizon"))
            })
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(matches!(
            ScenarioSpec::parse(&src).unwrap_err(),
            ScenarioError::MissingSection { .. }
        ));
    }

    #[test]
    fn collective_invalid_parameters_are_typed_errors() {
        for (from, to) in [
            ("k = 4", "k = 5"),                           // odd arity
            ("k = 4", "k = 18"),                          // arity over 16
            ("hosts_per_edge = 2", "hosts_per_edge = 0"), // zero hosts
            ("flows = 8, 16", "flows = 8, 17"),           // over the 16 hosts
            ("flows = 8, 16", "flows = 1"),               // below 2 ranks
            ("horizon = 200 ms", "horizon = 0 s"),        // empty budget
            (
                "pattern = ring_allreduce",
                "pattern = all_to_some", // unknown pattern
            ),
        ] {
            let src = COLLECTIVE.replace(from, to);
            assert_ne!(src, COLLECTIVE, "{from}");
            let err = ScenarioSpec::parse(&src).unwrap_err();
            assert!(
                matches!(
                    err,
                    ScenarioError::OutOfRange { .. } | ScenarioError::BadValue { .. }
                ),
                "{from} -> {to}: {err}"
            );
        }
    }

    #[test]
    fn topology_and_workload_labels_must_match_the_kind() {
        // Collective with a bare [topology] is an error...
        let src = COLLECTIVE.replace("[topology fat_tree]", "[topology]");
        assert!(matches!(
            ScenarioSpec::parse(&src).unwrap_err(),
            ScenarioError::Syntax { .. }
        ));
        // ...as is a labeled topology on a long-lived scenario...
        let src = MINIMAL.replace("[run]", "[topology fat_tree]\nk = 4\n\n[run]");
        assert!(matches!(
            ScenarioSpec::parse(&src).unwrap_err(),
            ScenarioError::Syntax { .. }
        ));
        // ...and a workload section outside the collective kind.
        let src = format!("{MINIMAL}\n[workload collective]\npattern = incast\n");
        assert!(matches!(
            ScenarioSpec::parse(&src).unwrap_err(),
            ScenarioError::Syntax { .. }
        ));
    }

    #[test]
    fn faults_rejected_on_collective_kind() {
        let src = format!("{COLLECTIVE}\n[faults]\nbleach = 1 ms .. 2 ms\n");
        assert!(matches!(
            ScenarioSpec::parse(&src).unwrap_err(),
            ScenarioError::BadValue { .. }
        ));
    }

    #[test]
    fn absurd_retry_budgets_are_rejected() {
        let src = format!("{MINIMAL}\n[limits]\nretries = 50\n");
        assert!(matches!(
            ScenarioSpec::parse(&src).unwrap_err(),
            ScenarioError::OutOfRange { .. }
        ));
    }

    const FLUID: &str = "\
[scenario]
name = f
kind = fluid

[run]
flows = 8, 100000
warmup = 20 ms
duration = 30 ms
dt = 2 us

[marking \"dc\"]
scheme = dctcp
k = 40 pkts
";

    #[test]
    fn fluid_kind_parses_with_dumbbell_defaults() {
        let s = ScenarioSpec::parse(FLUID).unwrap();
        assert_eq!(s.kind, ScenarioKind::Fluid);
        // Shares the long-lived dumbbell defaults and takes flow counts
        // far past the packet engine's cap.
        let d = s.dumbbell().unwrap();
        assert_eq!(d.bottleneck_bps, 10_000_000_000);
        assert_eq!(s.run.flows, vec![8, 100_000]);
        assert_eq!(s.run.dt, dctcp_sim::SimDuration::from_micros(2));
        // Trace (the metric sampling stride) defaults to the step.
        assert_eq!(s.run.trace_interval, s.run.dt);
        // Fluid cells are seed-free: one cell per (marking, flows).
        assert_eq!(s.num_points(), 2);
        assert!(s.xvals.is_empty());
    }

    #[test]
    fn fluid_rejects_flow_counts_past_its_own_cap() {
        let src = FLUID.replace("flows = 8, 100000", "flows = 8, 1000001");
        assert!(matches!(
            ScenarioSpec::parse(&src).unwrap_err(),
            ScenarioError::OutOfRange { .. }
        ));
    }

    #[test]
    fn fluid_rejects_steps_coarser_than_the_rtt() {
        let src = FLUID.replace("dt = 2 us", "dt = 500 us");
        assert!(matches!(
            ScenarioSpec::parse(&src).unwrap_err(),
            ScenarioError::OutOfRange { key, .. } if key == "dt"
        ));
        let src = FLUID.replace("dt = 2 us", "dt = 2 us\ntrace = 1 us");
        assert!(matches!(
            ScenarioSpec::parse(&src).unwrap_err(),
            ScenarioError::OutOfRange { key, .. } if key == "trace"
        ));
    }

    #[test]
    fn fluid_rejects_unsupported_markings() {
        // Byte-denominated thresholds have no packet-fluid meaning.
        let src = FLUID.replace("k = 40 pkts", "k = 60 KB");
        assert!(matches!(
            ScenarioSpec::parse(&src).unwrap_err(),
            ScenarioError::BadValue { .. }
        ));
        // Non-DCTCP AQMs are not modeled by the DDE.
        let src = FLUID.replace(
            "scheme = dctcp\nk = 40 pkts",
            "scheme = red\nmin = 10 pkts\nmax = 50 pkts\np_max = 0.1",
        );
        assert!(ScenarioSpec::parse(&src).is_err());
    }

    #[test]
    fn xval_sections_parse_and_validate() {
        let src = format!(
            "{FLUID}
[xval \"amp\"]
packet = fig05_oscillation
marking = dc
metric = osc_amplitude
flows = 8
max_rel_err = 0.5
"
        );
        let s = ScenarioSpec::parse(&src).unwrap();
        assert_eq!(s.xvals.len(), 1);
        let x = &s.xvals[0];
        assert_eq!(x.packet_scenario, "fig05_oscillation");
        // Defaults mirror the fluid-side selections.
        assert_eq!(x.packet_metric, "osc_amplitude");
        assert_eq!(x.packet_marking, "dc");
        assert_eq!(x.flows, vec![8]);

        // Flow counts outside the sweep, unknown metrics and unknown
        // markings are all caught at parse time.
        for (from, to) in [
            ("flows = 8\nmax", "flows = 16\nmax"),
            ("metric = osc_amplitude", "metric = nonsense"),
            ("marking = dc", "marking = nonsense"),
            ("max_rel_err = 0.5", "max_rel_err = -1"),
        ] {
            let broken = src.replace(from, to);
            assert!(ScenarioSpec::parse(&broken).is_err(), "{from} -> {to}");
        }
    }

    const FCT: &str = "\
[scenario]
name = churn
kind = fct

[topology]
bottleneck = 10 Gbps
rtt = 100 us

[run]
flows = 8
warmup = 5 ms
duration = 20 ms
seeds = 1, 2

[workload fct]
load = 0.8
size_dist = web_search
racks = 2
slots = 1024
drain = 50 ms

[marking \"dc\"]
scheme = dctcp
k = 40 pkts
";

    #[test]
    fn fct_scenario_parses_workload_and_defaults() {
        let s = ScenarioSpec::parse(FCT).unwrap();
        assert_eq!(s.kind, ScenarioKind::Fct);
        assert!(s.kind.sweeps_seeds());
        let w = s.fct.as_ref().unwrap();
        assert_eq!((w.racks, w.slots), (2, 1024));
        assert!((w.load - 0.8).abs() < 1e-12);
        assert_eq!(w.size_dist, "web_search");
        assert_eq!((w.short_bytes, w.long_bytes), (10_000, 100_000));
        assert_eq!(w.drain, SimDuration::from_millis(50));
        assert_eq!(w.deadline_slack, None);
        assert!(s.workload.is_none());
        assert_eq!(s.run.warmup, SimDuration::from_millis(5));
        assert_eq!(s.run.seeds, vec![1, 2]);
        assert_eq!(s.num_points(), 2);
        // The dumbbell surface is shared with long-lived scenarios.
        assert_eq!(s.dumbbell().unwrap().rtt, SimDuration::from_micros(100));
        // Derived deadline: (5 + 20 + 50) ms of simulated time × 1000.
        assert_eq!(s.cell_deadline(), SimDuration::from_secs(75));
    }

    #[test]
    fn fct_invalid_parameters_are_typed_errors() {
        for (from, to) in [
            ("load = 0.8", "load = 1.2"),                     // not a fraction
            ("load = 0.8", "load = 0"),                       // idle
            ("size_dist = web_search", "size_dist = pareto"), // unknown CDF
            ("racks = 2", "racks = 0"),                       // no racks
            ("slots = 1024", "slots = 0"),                    // empty slab
            ("flows = 8", "flows = 7"),                       // not a multiple of racks
            ("flows = 8", "flows = 0"),                       // empty sweep point
        ] {
            let src = FCT.replace(from, to);
            assert_ne!(src, FCT, "{from}");
            let err = ScenarioSpec::parse(&src).unwrap_err();
            assert!(
                matches!(
                    err,
                    ScenarioError::OutOfRange { .. } | ScenarioError::BadValue { .. }
                ),
                "{from} -> {to}: {err}"
            );
        }
        // Class bounds must stay ordered: short < long.
        let src = FCT.replace("slots = 1024", "slots = 1024\nshort_bytes = 200 KB");
        assert!(matches!(
            ScenarioSpec::parse(&src).unwrap_err(),
            ScenarioError::OutOfRange { .. }
        ));
        // The workload section is required and must carry the fct label.
        let src: String = FCT
            .lines()
            .filter(|l| {
                !(l.starts_with("[workload")
                    || l.starts_with("load")
                    || l.starts_with("size_dist")
                    || l.starts_with("racks")
                    || l.starts_with("slots")
                    || l.starts_with("drain"))
            })
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(matches!(
            ScenarioSpec::parse(&src).unwrap_err(),
            ScenarioError::MissingSection { .. }
        ));
        let src = FCT.replace("[workload fct]", "[workload collective]");
        assert!(matches!(
            ScenarioSpec::parse(&src).unwrap_err(),
            ScenarioError::Syntax { .. }
        ));
    }

    #[test]
    fn transport_cc_knob_selects_d2tcp() {
        let src = FCT
            .replace("[run]", "[transport]\ncc = d2tcp\n\n[run]")
            .replace("drain = 50 ms", "drain = 50 ms\ndeadline_slack = 2.0");
        let s = ScenarioSpec::parse(&src).unwrap();
        assert!(matches!(
            s.tcp.cc,
            dctcp_tcp::CongestionControl::D2tcp { .. }
        ));
        assert_eq!(s.fct.as_ref().unwrap().deadline_slack, Some(2.0));
        // Unknown schemes are named in the error.
        let src = FCT.replace("[run]", "[transport]\ncc = cubic\n\n[run]");
        assert!(matches!(
            ScenarioSpec::parse(&src).unwrap_err(),
            ScenarioError::BadValue { .. }
        ));
    }

    #[test]
    fn fct_expectations_validate_against_fct_metrics() {
        let src = format!(
            "{FCT}
[expect \"tails\"]
check = metric_range
metric = fct_short_p99_ms
min = 0
"
        );
        assert!(ScenarioSpec::parse(&src).is_ok());
        let broken = src.replace("metric = fct_short_p99_ms", "metric = queue_std");
        assert!(matches!(
            ScenarioSpec::parse(&broken).unwrap_err(),
            ScenarioError::BadValue { .. }
        ));
    }

    #[test]
    fn xval_sections_are_fluid_only() {
        let src = format!(
            "{MINIMAL}
[xval \"amp\"]
packet = other
marking = dc
metric = queue_std
flows = 2
max_rel_err = 0.5
"
        );
        assert!(matches!(
            ScenarioSpec::parse(&src).unwrap_err(),
            ScenarioError::Syntax { .. }
        ));
    }
}
