//! The `dctcp-repro/v1` artifact: one JSON file per scenario run.
//!
//! Same idiom as the `dctcp-bench/v1` benchmark file: a hand-rolled
//! writer that emits exactly one matrix point per line, and a scanner
//! parser that reads back only what it wrote. Keeping both sides in
//! this module (with a round-trip test) is what lets the workspace do
//! machine-checked reproduction artifacts without a JSON dependency.

use std::fmt::Write as _;

use crate::{ScenarioError, ScenarioKind};

/// Schema tag written into (and required from) every artifact file.
/// Also part of every cache key, so bumping it orphans all cached
/// results along with all committed artifacts.
pub const ARTIFACT_SCHEMA: &str = "dctcp-repro/v1";

/// One (marking, flows, seed) cell of the scenario matrix with its
/// measured metrics, in the kind's canonical metric order.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Marking-scheme label from the scenario file.
    pub marking: String,
    /// Number of flows (senders / responders) at this point.
    pub flows: u32,
    /// Workload seed (always 1 for deterministic long-lived runs).
    pub seed: u64,
    /// `(metric name, value)` pairs; names come from
    /// [`ScenarioKind::metrics`].
    pub metrics: Vec<(String, f64)>,
}

impl Point {
    /// Looks up one metric value.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// One quarantined (marking, flows, seed) cell: the matrix point that
/// should be here, and why it is not.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureCell {
    /// Marking-scheme label from the scenario file.
    pub marking: String,
    /// Number of flows at the failed point.
    pub flows: u32,
    /// Workload seed at the failed point.
    pub seed: u64,
    /// Attempts consumed before quarantine (first try + retries).
    pub attempts: u32,
    /// Failure kind token (`panicked` / `deadline` / `failed` /
    /// `non_deterministic`).
    pub kind: String,
    /// Human-readable failure message (deterministic: a function of the
    /// scenario configuration and failure site, never of wall time).
    pub msg: String,
}

/// A full scenario result: every matrix point of one scenario, plus the
/// quarantine manifest for any points that could not be produced.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Scenario name (matches the `.scn` file's `[scenario] name`).
    pub scenario: String,
    /// Workload family the points came from.
    pub kind: ScenarioKind,
    /// Matrix points in run order (marking-major, then flows, then
    /// seed).
    pub points: Vec<Point>,
    /// Quarantined cells in run order. Empty for a complete run — and
    /// rendered only when non-empty, so complete artifacts are
    /// byte-identical to the pre-supervision schema.
    pub failures: Vec<FailureCell>,
}

impl Artifact {
    /// Renders the artifact as `dctcp-repro/v1` JSON, one point per
    /// line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{ARTIFACT_SCHEMA}\",");
        let _ = writeln!(out, "  \"scenario\": \"{}\",", self.scenario);
        let _ = writeln!(out, "  \"kind\": \"{}\",", self.kind.name());
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"marking\": \"{}\", \"flows\": {}, \"seed\": {}",
                p.marking, p.flows, p.seed
            );
            for (name, value) in &p.metrics {
                let v = if value.is_finite() { *value } else { 0.0 };
                let _ = write!(out, ", \"{name}\": {v:.6}");
            }
            out.push('}');
            if i + 1 < self.points.len() {
                out.push(',');
            }
            out.push('\n');
        }
        if self.failures.is_empty() {
            out.push_str("  ]\n}\n");
            return out;
        }
        out.push_str("  ],\n  \"failures\": [\n");
        for (i, c) in self.failures.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"error\": \"{}\", \"marking\": \"{}\", \"flows\": {}, \"seed\": {}, \
                 \"attempts\": {}, \"msg\": \"{}\"}}",
                json_safe(&c.kind),
                c.marking,
                c.flows,
                c.seed,
                c.attempts,
                json_safe(&c.msg)
            );
            if i + 1 < self.failures.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses `dctcp-repro/v1` JSON produced by [`Artifact::render`].
    ///
    /// `path` is used only for diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::BadArtifact`] for wrong schemas,
    /// missing fields or malformed point lines.
    pub fn parse(src: &str, path: &str) -> Result<Artifact, ScenarioError> {
        let bad = |msg: String| ScenarioError::BadArtifact {
            path: path.to_string(),
            msg,
        };
        let schema = string_field(src, "schema").ok_or_else(|| bad("missing schema".into()))?;
        if schema != ARTIFACT_SCHEMA {
            return Err(bad(format!(
                "schema is `{schema}`, expected `{ARTIFACT_SCHEMA}`"
            )));
        }
        let scenario =
            string_field(src, "scenario").ok_or_else(|| bad("missing scenario name".into()))?;
        let kind_name = string_field(src, "kind").ok_or_else(|| bad("missing kind".into()))?;
        let kind = ScenarioKind::from_name(&kind_name)
            .ok_or_else(|| bad(format!("unknown kind `{kind_name}`")))?;

        let mut points = Vec::new();
        let mut failures = Vec::new();
        for line in src.lines() {
            let line = line.trim();
            if line.starts_with("{\"marking\"") {
                points.push(parse_point(line, kind, path)?);
            } else if line.starts_with("{\"error\"") {
                failures.push(parse_failure(line, path)?);
            }
        }
        if points.is_empty() && failures.is_empty() {
            return Err(bad("artifact has no points".into()));
        }
        Ok(Artifact {
            scenario,
            kind,
            points,
            failures,
        })
    }

    /// Loads and parses an artifact file.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Io`] or [`ScenarioError::BadArtifact`].
    pub fn load(path: &std::path::Path) -> Result<Artifact, ScenarioError> {
        let src = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
            path: path.display().to_string(),
            msg: e.to_string(),
        })?;
        Artifact::parse(&src, &path.display().to_string())
    }

    /// Whether every one of `expected` matrix cells is accounted for —
    /// as a measured point or a quarantined failure. Anything else is a
    /// stale artifact.
    pub fn accounts_for(&self, expected: usize) -> bool {
        self.points.len() + self.failures.len() == expected
    }

    /// Marking labels with at least one quarantined cell, in
    /// first-appearance order.
    pub fn quarantined_markings(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for f in &self.failures {
            if !out.contains(&f.marking.as_str()) {
                out.push(&f.marking);
            }
        }
        out
    }

    /// Marking labels present, in first-appearance order.
    pub fn markings(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for p in &self.points {
            if !out.contains(&p.marking.as_str()) {
                out.push(&p.marking);
            }
        }
        out
    }

    /// Sorted distinct flow counts recorded for a marking.
    pub fn flow_counts(&self, marking: &str) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for p in &self.points {
            if p.marking == marking && !out.contains(&p.flows) {
                out.push(p.flows);
            }
        }
        out.sort_unstable();
        out
    }

    /// One metric at `(marking, flows)`, averaged across seeds.
    pub fn metric(&self, marking: &str, flows: u32, name: &str) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0u32;
        for p in &self.points {
            if p.marking == marking && p.flows == flows {
                sum += p.metric(name)?;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / f64::from(n))
        }
    }
}

fn parse_point(line: &str, kind: ScenarioKind, path: &str) -> Result<Point, ScenarioError> {
    let bad = |msg: String| ScenarioError::BadArtifact {
        path: path.to_string(),
        msg: format!("{msg} in point `{line}`"),
    };
    let marking = string_field(line, "marking").ok_or_else(|| bad("missing marking".into()))?;
    let flows = num_field(line, "flows").ok_or_else(|| bad("missing flows".into()))? as u32;
    let seed = num_field(line, "seed").ok_or_else(|| bad("missing seed".into()))? as u64;
    let mut metrics = Vec::new();
    for &name in kind.metrics() {
        let v = num_field(line, name).ok_or_else(|| bad(format!("missing metric `{name}`")))?;
        metrics.push((name.to_string(), v));
    }
    Ok(Point {
        marking,
        flows,
        seed,
        metrics,
    })
}

fn parse_failure(line: &str, path: &str) -> Result<FailureCell, ScenarioError> {
    let bad = |msg: String| ScenarioError::BadArtifact {
        path: path.to_string(),
        msg: format!("{msg} in failure `{line}`"),
    };
    Ok(FailureCell {
        kind: string_field(line, "error").ok_or_else(|| bad("missing error kind".into()))?,
        marking: string_field(line, "marking").ok_or_else(|| bad("missing marking".into()))?,
        flows: num_field(line, "flows").ok_or_else(|| bad("missing flows".into()))? as u32,
        seed: num_field(line, "seed").ok_or_else(|| bad("missing seed".into()))? as u64,
        attempts: num_field(line, "attempts").ok_or_else(|| bad("missing attempts".into()))? as u32,
        msg: string_field(line, "msg").ok_or_else(|| bad("missing msg".into()))?,
    })
}

/// Flattens a message into the subset of JSON-string-safe characters
/// the scanner parser can read back without an escape grammar: quotes
/// and backslashes are substituted, control characters become spaces.
/// Lossy by design — failure messages are diagnostics, not data.
fn json_safe(msg: &str) -> String {
    msg.chars()
        .map(|c| match c {
            '"' => '\'',
            '\\' => '/',
            c if c.is_control() => ' ',
            c => c,
        })
        .collect()
}

/// Scans for `"key": "value"` anywhere in `src` and returns the value.
fn string_field(src: &str, key: &str) -> Option<String> {
    let rest = field_rest(src, key)?;
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Scans for `"key": <number>` anywhere in `src`.
fn num_field(src: &str, key: &str) -> Option<f64> {
    let rest = field_rest(src, key)?;
    let end = rest
        .char_indices()
        .find(|&(_, c)| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .map_or(rest.len(), |(i, _)| i);
    rest[..end].parse().ok()
}

fn field_rest<'a>(src: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let pos = src.find(&needle)?;
    Some(src[pos + needle.len()..].trim_start())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        let metrics = |base: f64| {
            ScenarioKind::LongLived
                .metrics()
                .iter()
                .enumerate()
                .map(|(i, n)| (n.to_string(), base + i as f64))
                .collect()
        };
        Artifact {
            scenario: "fig10".into(),
            kind: ScenarioKind::LongLived,
            points: vec![
                Point {
                    marking: "dctcp".into(),
                    flows: 2,
                    seed: 1,
                    metrics: metrics(1.0),
                },
                Point {
                    marking: "dt-dctcp".into(),
                    flows: 2,
                    seed: 1,
                    metrics: metrics(10.5),
                },
            ],
            failures: Vec::new(),
        }
    }

    fn failure(marking: &str, kind: &str, msg: &str) -> FailureCell {
        FailureCell {
            marking: marking.into(),
            flows: 4,
            seed: 1,
            attempts: 2,
            kind: kind.into(),
            msg: msg.into(),
        }
    }

    #[test]
    fn round_trips() {
        let a = sample();
        let parsed = Artifact::parse(&a.render(), "t.json").unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn rejects_wrong_schema() {
        let src = sample()
            .render()
            .replace("dctcp-repro/v1", "dctcp-repro/v9");
        assert!(matches!(
            Artifact::parse(&src, "t.json").unwrap_err(),
            ScenarioError::BadArtifact { .. }
        ));
    }

    #[test]
    fn rejects_missing_metric() {
        let src = sample().render().replace("\"queue_std\"", "\"queue_sdt\"");
        let err = Artifact::parse(&src, "t.json").unwrap_err();
        assert!(err.to_string().contains("queue_std"), "{err}");
    }

    #[test]
    fn metric_lookup_averages_over_seeds() {
        let mut a = sample();
        a.points[1] = Point {
            marking: "dctcp".into(),
            flows: 2,
            seed: 2,
            metrics: vec![("queue_mean".into(), 3.0)],
        };
        a.points[0].metrics = vec![("queue_mean".into(), 1.0)];
        assert_eq!(a.metric("dctcp", 2, "queue_mean"), Some(2.0));
        assert_eq!(a.metric("dctcp", 9, "queue_mean"), None);
        assert_eq!(a.flow_counts("dctcp"), vec![2]);
    }

    #[test]
    fn markings_in_first_appearance_order() {
        assert_eq!(sample().markings(), vec!["dctcp", "dt-dctcp"]);
    }

    #[test]
    fn complete_artifacts_render_without_a_failures_block() {
        // Byte-compat: the supervision schema must not change the bytes
        // of a fully successful artifact.
        assert!(!sample().render().contains("failures"));
    }

    #[test]
    fn partial_artifacts_round_trip_their_quarantine_manifest() {
        let mut a = sample();
        a.failures = vec![
            failure(
                "dctcp",
                "panicked",
                "injected panic via [limits] inject_panic",
            ),
            failure(
                "dt-dctcp",
                "deadline",
                "exceeded the 30.000s wall-clock deadline",
            ),
        ];
        let rendered = a.render();
        assert!(rendered.contains("\"failures\": ["));
        let parsed = Artifact::parse(&rendered, "t.json").unwrap();
        assert_eq!(parsed, a);
        assert!(parsed.accounts_for(4));
        assert!(!parsed.accounts_for(3));
        assert_eq!(parsed.quarantined_markings(), vec!["dctcp", "dt-dctcp"]);
    }

    #[test]
    fn all_failed_artifacts_still_parse() {
        let a = Artifact {
            scenario: "doomed".into(),
            kind: ScenarioKind::LongLived,
            points: Vec::new(),
            failures: vec![failure("dctcp", "panicked", "boom")],
        };
        let parsed = Artifact::parse(&a.render(), "t.json").unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn hostile_failure_messages_cannot_break_the_grammar() {
        let mut a = sample();
        a.failures = vec![failure(
            "dctcp",
            "panicked",
            "quote \" backslash \\ newline \n done",
        )];
        let parsed = Artifact::parse(&a.render(), "t.json").unwrap();
        // Lossy but parseable: substituted characters, same structure.
        assert_eq!(parsed.failures.len(), 1);
        assert_eq!(parsed.failures[0].msg, "quote ' backslash / newline   done");
        assert_eq!(parsed.points.len(), 2);
    }
}
