//! Declarative reproduction scenarios for the DT-DCTCP study.
//!
//! This crate turns the paper's experiment matrix into data: each
//! committed `scenarios/*.scn` file declares a topology, the marking
//! schemes under test, a flow-count sweep, optional scripted faults and
//! a set of *regression envelopes* — the paper's claims written as
//! machine-checkable bands. Two binaries drive it:
//!
//! * `repro` runs a scenario's matrix in parallel (bit-identical for
//!   any thread count) and writes one `dctcp-repro/v1` JSON artifact
//!   per scenario. Execution is incremental: finished cells are
//!   memoized in a content-addressed cache (`dctcp-cache`), so a warm
//!   run over unchanged scenarios and unchanged code re-simulates
//!   nothing yet renders byte-identical artifacts. Execution is also
//!   *supervised* ([`run_scenario_supervised`]): cells run under panic
//!   isolation, per-cell wall-clock deadlines and a bounded retry
//!   budget (the `[limits]` section), and broken cells are quarantined
//!   into the artifact's `failures` block instead of killing the run.
//!   Because workers persist each finished cell immediately, a run
//!   killed mid-matrix — even with `kill -9` — resumes from the cache
//!   with zero recomputation.
//! * `repro_check` re-parses the scenario, loads the artifact and
//!   verifies every envelope, failing CI when a change pushes the
//!   simulated system outside the paper's claims. Envelopes touching a
//!   quarantined cell are reported as skipped, not passed
//!   ([`check_artifact_partial`]).
//!
//! The scenario format is a deliberately small line-oriented
//! `[section]` / `key = value` surface (see [`parse`]) with typed,
//! line-numbered errors ([`ScenarioError`]) — no external parser
//! dependency, keeping the workspace hermetic.

#![warn(missing_docs)]

mod artifact;
mod envelope;
mod error;
pub mod parse;
mod runner;
mod spec;
mod supervise;
mod xval;

pub use artifact::{Artifact, FailureCell, Point, ARTIFACT_SCHEMA};
pub use envelope::{
    check_artifact, check_artifact_partial, CheckReport, ExpectCheck, Expectation, Violation,
};
pub use error::ScenarioError;
pub use runner::{run_scenario, run_scenario_cached, run_scenario_supervised, CacheStats};
pub use spec::{
    CollectiveWorkloadSpec, DumbbellSpec, FatTreeSpec, FaultSpec, InjectFault, InjectSpec,
    LimitsSpec, RunSpec, ScenarioKind, ScenarioSpec, TestbedSpec, TopologySpec, DEFAULT_RETRIES,
    MAX_FLOWS, MAX_FLUID_FLOWS,
};
pub use supervise::CellError;
pub use xval::{check_xval, XvalReport, XvalSpec, XvalViolation};

/// Lists the `.scn` files of a directory in name order (the repro
/// matrix order).
///
/// # Errors
///
/// Returns [`ScenarioError::Io`] when the directory cannot be read.
pub fn list_scenarios(dir: &std::path::Path) -> Result<Vec<std::path::PathBuf>, ScenarioError> {
    let io_err = |e: std::io::Error| ScenarioError::Io {
        path: dir.display().to_string(),
        msg: e.to_string(),
    };
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(io_err)? {
        let path = entry.map_err(io_err)?.path();
        if path.extension().is_some_and(|e| e == "scn") {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}
