//! Failure domains for supervised cell execution.
//!
//! One matrix cell is the unit of isolation: a cell that panics, hangs
//! past its wall-clock deadline, or fails its simulation is converted
//! into a typed [`CellError`] carried in the artifact's `failures`
//! block instead of taking down the run. The [`Watchdog`] is the only
//! wall-clock authority — workers never time themselves; a background
//! thread fires each running cell's [`CancelToken`] once its deadline
//! passes, and the simulator's cooperative cancellation poll turns that
//! into a deterministic stop.
//!
//! Every [`CellError`] message is a function of the scenario
//! configuration and the panic site alone — never of measured wall
//! time — so artifacts stay byte-identical across machines, runs and
//! resumes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dctcp_sim::{CancelToken, SimDuration};

/// Why one matrix cell was quarantined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellError {
    /// The cell's worker panicked (payload rendered as text).
    Panicked {
        /// The panic message.
        msg: String,
    },
    /// The supervisor cancelled the cell at its wall-clock deadline.
    DeadlineExceeded {
        /// The configured (or derived) deadline.
        deadline: SimDuration,
    },
    /// The simulation returned a typed error.
    Failed {
        /// The rendered simulator error.
        msg: String,
    },
    /// A retried success did not match a clean verification re-run —
    /// the cell's result depends on something other than its inputs.
    NonDeterministic {
        /// What differed.
        msg: String,
    },
}

impl CellError {
    /// Stable one-token failure kind, used in the journal line grammar
    /// and the artifact's `failures` block.
    pub fn kind(&self) -> &'static str {
        match self {
            CellError::Panicked { .. } => "panicked",
            CellError::DeadlineExceeded { .. } => "deadline",
            CellError::Failed { .. } => "failed",
            CellError::NonDeterministic { .. } => "non_deterministic",
        }
    }

    /// Whether hitting this error again is guaranteed on re-execution.
    /// Deterministic failures are replayed from the journal on resume;
    /// a deadline miss depends on machine speed, so it is always
    /// retried by a fresh run.
    pub fn is_deterministic(&self) -> bool {
        !matches!(self, CellError::DeadlineExceeded { .. })
    }

    /// Whether `kind` (as recorded in a journal) names a deterministic
    /// failure — the load-time counterpart of [`is_deterministic`].
    ///
    /// [`is_deterministic`]: CellError::is_deterministic
    pub fn kind_is_deterministic(kind: &str) -> bool {
        matches!(kind, "panicked" | "failed" | "non_deterministic")
    }
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::Panicked { msg } => write!(f, "panicked: {msg}"),
            CellError::DeadlineExceeded { deadline } => {
                write!(f, "exceeded the {deadline} wall-clock deadline")
            }
            CellError::Failed { msg } => write!(f, "{msg}"),
            CellError::NonDeterministic { msg } => {
                write!(f, "non-deterministic result: {msg}")
            }
        }
    }
}

/// How often the watchdog thread scans for expired deadlines. Cells run
/// for seconds; a few milliseconds of cancellation latency is noise.
const WATCHDOG_POLL: Duration = Duration::from_millis(5);

/// One supervised attempt: when it started, how long it may run, and
/// the token to fire once the deadline passes.
type Registry = Arc<Mutex<HashMap<u64, (Instant, Duration, CancelToken)>>>;

/// A background deadline enforcer for in-flight cells.
///
/// Workers [`register`](Watchdog::register) a cell's cancel token with
/// its deadline before each attempt; the watchdog thread fires the
/// token once the deadline passes. The returned [`DeadlineGuard`]
/// deregisters on drop, so a finished attempt can never be cancelled
/// retroactively.
#[derive(Debug)]
pub(crate) struct Watchdog {
    registry: Registry,
    shutdown: Arc<AtomicBool>,
    next_id: AtomicU64,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Starts the watchdog thread.
    pub(crate) fn start() -> Watchdog {
        let registry: Registry = Arc::new(Mutex::new(HashMap::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread = {
            let registry = Arc::clone(&registry);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::Acquire) {
                    {
                        let guard = registry.lock().unwrap_or_else(|e| e.into_inner());
                        for (started, deadline, token) in guard.values() {
                            if started.elapsed() >= *deadline {
                                token.cancel();
                            }
                        }
                    }
                    std::thread::sleep(WATCHDOG_POLL);
                }
            })
        };
        Watchdog {
            registry,
            shutdown,
            next_id: AtomicU64::new(0),
            thread: Some(thread),
        }
    }

    /// Puts one attempt under deadline supervision. The clock starts
    /// now; the token fires once `deadline` has elapsed.
    pub(crate) fn register(&self, deadline: Duration, token: CancelToken) -> DeadlineGuard {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.registry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, (Instant::now(), deadline, token));
        DeadlineGuard {
            registry: Arc::clone(&self.registry),
            id,
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Deregisters a supervised attempt when dropped.
#[derive(Debug)]
pub(crate) struct DeadlineGuard {
    registry: Registry,
    id: u64,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        self.registry
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_and_classify() {
        let errors = [
            CellError::Panicked { msg: "boom".into() },
            CellError::DeadlineExceeded {
                deadline: SimDuration::from_secs(30),
            },
            CellError::Failed { msg: "sim".into() },
            CellError::NonDeterministic { msg: "diff".into() },
        ];
        for e in &errors {
            assert_eq!(
                CellError::kind_is_deterministic(e.kind()),
                e.is_deterministic(),
                "{e}"
            );
        }
        // Unknown journal tokens are conservatively non-deterministic
        // (re-run rather than replay).
        assert!(!CellError::kind_is_deterministic("mystery"));
    }

    #[test]
    fn deadline_message_depends_only_on_config() {
        let e = CellError::DeadlineExceeded {
            deadline: SimDuration::from_secs(30),
        };
        // No measured wall-clock values — byte-identical everywhere.
        assert_eq!(e.to_string(), "exceeded the 30.000s wall-clock deadline");
    }

    #[test]
    fn watchdog_fires_expired_deadlines_only() {
        let w = Watchdog::start();
        let fast = CancelToken::new();
        let slow = CancelToken::new();
        let _g1 = w.register(Duration::from_millis(1), fast.clone());
        let _g2 = w.register(Duration::from_secs(3600), slow.clone());
        let start = Instant::now();
        while !fast.is_cancelled() && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(fast.is_cancelled(), "expired deadline must fire");
        assert!(!slow.is_cancelled(), "live deadline must not fire");
    }

    #[test]
    fn dropping_the_guard_stops_supervision() {
        let w = Watchdog::start();
        let token = CancelToken::new();
        drop(w.register(Duration::from_millis(1), token.clone()));
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            !token.is_cancelled(),
            "a deregistered attempt must never be cancelled"
        );
    }
}
