//! Scenario-matrix reproduction runner.
//!
//! ```text
//! repro [--threads N] [--out DIR] [--cache DIR | --no-cache]
//!       (--all SCENARIO_DIR | FILE.scn ...)
//! ```
//!
//! Runs each scenario's full matrix (markings × flows × seeds) through
//! the parallel driver and writes one `dctcp-repro/v1` JSON artifact
//! per scenario to `DIR` (default `artifacts/repro`). Deterministic:
//! the same tree produces byte-identical artifacts at any `--threads`.
//!
//! Execution is incremental: each cell's result is memoized in a
//! content-addressed cache (default `artifacts/cache`, see
//! `dctcp-cache`) keyed on the resolved cell configuration and the
//! workspace code fingerprint, so a warm run re-simulates only cells
//! whose inputs changed — and still renders byte-identical artifacts.
//! `--no-cache` forces a full re-simulation without reading or writing
//! the cache. The final stdout line,
//! `repro: cache H hits, M misses`, is machine-readable (ci.sh greps
//! it to assert the warm CI pass was served from the cache).

use std::path::PathBuf;
use std::process::ExitCode;

use dctcp_cache::Cache;
use dctcp_scenario::{list_scenarios, run_scenario_cached, CacheStats, ScenarioSpec};

struct Args {
    threads: usize,
    out: PathBuf,
    cache: Option<PathBuf>,
    scenarios: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: 0,
        out: PathBuf::from("artifacts/repro"),
        cache: Some(PathBuf::from("artifacts/cache")),
        scenarios: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = v.parse().map_err(|_| format!("bad --threads `{v}`"))?;
            }
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--cache" => {
                args.cache = Some(PathBuf::from(it.next().ok_or("--cache needs a value")?));
            }
            "--no-cache" => args.cache = None,
            "--all" => {
                let dir = PathBuf::from(it.next().ok_or("--all needs a directory")?);
                let found = list_scenarios(&dir).map_err(|e| e.to_string())?;
                if found.is_empty() {
                    return Err(format!("no .scn files in {}", dir.display()));
                }
                args.scenarios.extend(found);
            }
            "--help" | "-h" => {
                return Err("usage: repro [--threads N] [--out DIR] \
                            [--cache DIR | --no-cache] \
                            (--all SCENARIO_DIR | FILE.scn ...)"
                    .into())
            }
            other if !other.starts_with('-') => args.scenarios.push(PathBuf::from(other)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.scenarios.is_empty() {
        return Err("no scenarios given (try `--all scenarios/`)".into());
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    std::fs::create_dir_all(&args.out)
        .map_err(|e| format!("cannot create {}: {e}", args.out.display()))?;
    let cache = args.cache.as_ref().map(Cache::new);

    let mut total = CacheStats::default();
    for path in &args.scenarios {
        let spec = ScenarioSpec::load(path).map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!(
            "repro: {} ({}, {} markings x {} flow counts x {} seeds = {} points)",
            spec.name,
            spec.kind.name(),
            spec.markings.len(),
            spec.run.flows.len(),
            if spec.kind.is_query() {
                spec.run.seeds.len()
            } else {
                1
            },
            spec.num_points(),
        );
        let (artifact, stats) =
            run_scenario_cached(&spec, args.threads, cache.as_ref()).map_err(|e| e.to_string())?;
        total.hits += stats.hits;
        total.misses += stats.misses;
        let out_path = args.out.join(format!("{}.json", spec.name));
        std::fs::write(&out_path, artifact.render())
            .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
        eprintln!(
            "repro:   -> {} ({} cached, {} simulated)",
            out_path.display(),
            stats.hits,
            stats.misses,
        );
    }
    match &cache {
        Some(_) => println!("repro: cache {} hits, {} misses", total.hits, total.misses),
        None => println!("repro: cache disabled"),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("repro: {msg}");
            ExitCode::FAILURE
        }
    }
}
