//! Scenario-matrix reproduction runner.
//!
//! ```text
//! repro [--threads N] [--out DIR] [--cache DIR | --no-cache]
//!       [--retries N] (--all SCENARIO_DIR | FILE.scn ...)
//! ```
//!
//! Runs each scenario's full matrix (markings × flows × seeds) through
//! the supervised parallel driver and writes one `dctcp-repro/v1` JSON
//! artifact per scenario to `DIR` (default `artifacts/repro`).
//! Deterministic: the same tree produces byte-identical artifacts at
//! any `--threads`.
//!
//! Execution is incremental: each cell's result is memoized in a
//! content-addressed cache (default `artifacts/cache`, see
//! `dctcp-cache`) keyed on the resolved cell configuration and the
//! workspace code fingerprint, so a warm run re-simulates only cells
//! whose inputs changed — and still renders byte-identical artifacts.
//! `--no-cache` forces a full re-simulation without reading or writing
//! the cache. The final stdout line,
//! `repro: cache H hits, M misses`, is machine-readable (ci.sh greps
//! it to assert the warm CI pass was served from the cache).
//!
//! Execution is *supervised*: a cell that panics, overruns its
//! wall-clock deadline, or fails its simulation is quarantined into
//! the artifact's `failures` block (and the cache's failure journal)
//! instead of aborting the run — the rest of the matrix still
//! completes, and the exit code says how much survived:
//!
//! * `0` — every cell of every scenario produced a point;
//! * `3` — partial: some cells were quarantined, some succeeded;
//! * `4` — failed: every cell was quarantined;
//! * `1` — invocation or I/O error (bad flags, unreadable scenario,
//!   unwritable artifact).

use std::path::PathBuf;
use std::process::ExitCode;

use dctcp_cache::Cache;
use dctcp_scenario::{list_scenarios, run_scenario_supervised, CacheStats, ScenarioSpec};

struct Args {
    threads: usize,
    out: PathBuf,
    cache: Option<PathBuf>,
    retries: Option<u32>,
    scenarios: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: 0,
        out: PathBuf::from("artifacts/repro"),
        cache: Some(PathBuf::from("artifacts/cache")),
        retries: None,
        scenarios: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = v.parse().map_err(|_| format!("bad --threads `{v}`"))?;
            }
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--cache" => {
                args.cache = Some(PathBuf::from(it.next().ok_or("--cache needs a value")?));
            }
            "--no-cache" => args.cache = None,
            "--retries" => {
                let v = it.next().ok_or("--retries needs a value")?;
                let n: u32 = v.parse().map_err(|_| format!("bad --retries `{v}`"))?;
                // Same cap as the `[limits]` parser.
                if n > 8 {
                    return Err(format!("--retries must be at most 8, got {n}"));
                }
                args.retries = Some(n);
            }
            "--all" => {
                let dir = PathBuf::from(it.next().ok_or("--all needs a directory")?);
                let found = list_scenarios(&dir).map_err(|e| e.to_string())?;
                if found.is_empty() {
                    return Err(format!("no .scn files in {}", dir.display()));
                }
                args.scenarios.extend(found);
            }
            "--help" | "-h" => {
                return Err("usage: repro [--threads N] [--out DIR] \
                            [--cache DIR | --no-cache] [--retries N] \
                            (--all SCENARIO_DIR | FILE.scn ...)"
                    .into())
            }
            other if !other.starts_with('-') => args.scenarios.push(PathBuf::from(other)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.scenarios.is_empty() {
        return Err("no scenarios given (try `--all scenarios/`)".into());
    }
    Ok(args)
}

/// How much of the matrix survived, across all scenarios.
struct Outcome {
    points: usize,
    quarantined: usize,
}

impl Outcome {
    fn exit_code(&self) -> ExitCode {
        match (self.points, self.quarantined) {
            (_, 0) => ExitCode::SUCCESS,
            (0, _) => ExitCode::from(4),
            _ => ExitCode::from(3),
        }
    }
}

fn run() -> Result<Outcome, String> {
    let args = parse_args()?;
    std::fs::create_dir_all(&args.out)
        .map_err(|e| format!("cannot create {}: {e}", args.out.display()))?;
    let cache = args.cache.as_ref().map(Cache::new);

    let mut total = CacheStats::default();
    let mut outcome = Outcome {
        points: 0,
        quarantined: 0,
    };
    for path in &args.scenarios {
        let mut spec = ScenarioSpec::load(path).map_err(|e| format!("{}: {e}", path.display()))?;
        if let Some(r) = args.retries {
            spec.limits.retries = r;
        }
        eprintln!(
            "repro: {} ({}, {} markings x {} flow counts x {} seeds = {} points)",
            spec.name,
            spec.kind.name(),
            spec.markings.len(),
            spec.run.flows.len(),
            if spec.kind.is_query() {
                spec.run.seeds.len()
            } else {
                1
            },
            spec.num_points(),
        );
        let (artifact, stats) = run_scenario_supervised(&spec, args.threads, cache.as_ref());
        total.hits += stats.hits;
        total.misses += stats.misses;
        total.retried += stats.retried;
        total.quarantined += stats.quarantined;
        total.replayed += stats.replayed;
        outcome.points += artifact.points.len();
        outcome.quarantined += artifact.failures.len();
        let out_path = args.out.join(format!("{}.json", spec.name));
        std::fs::write(&out_path, artifact.render())
            .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
        eprintln!(
            "repro:   -> {} ({} cached, {} simulated{})",
            out_path.display(),
            stats.hits,
            stats.misses,
            match (stats.retried, stats.quarantined) {
                (0, 0) => String::new(),
                (r, q) => format!(", {r} retried, {q} quarantined"),
            },
        );
        for f in &artifact.failures {
            eprintln!(
                "repro:   QUARANTINED ({}, N={}, seed {}) after {} attempt(s): {}",
                f.marking, f.flows, f.seed, f.attempts, f.msg
            );
        }
    }
    if outcome.quarantined > 0 {
        eprintln!(
            "repro: {} of {} cells quarantined ({} replayed from the journal); \
             artifacts carry a `failures` block",
            outcome.quarantined,
            outcome.points + outcome.quarantined,
            total.replayed,
        );
    }
    match &cache {
        Some(_) => println!("repro: cache {} hits, {} misses", total.hits, total.misses),
        None => println!("repro: cache disabled"),
    }
    Ok(outcome)
}

fn main() -> ExitCode {
    match run() {
        Ok(outcome) => outcome.exit_code(),
        Err(msg) => {
            eprintln!("repro: {msg}");
            ExitCode::FAILURE
        }
    }
}
