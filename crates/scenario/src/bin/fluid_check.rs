//! Cross-validation gate: fluid-model artifacts against packet anchors.
//!
//! ```text
//! fluid_check [--artifacts DIR] [--report FILE] (--all SCENARIO_DIR | FILE.scn ...)
//! ```
//!
//! For each *fluid* scenario that declares `[xval]` sections, loads its
//! own artifact and every referenced packet anchor artifact from the
//! artifacts directory (default `artifacts/repro`) and evaluates the
//! committed relative-error bands. Scenarios of other kinds (or fluid
//! scenarios without `[xval]` sections) are listed as having nothing to
//! check and do not affect the verdict. A plain-text report of every
//! comparison is written to `--report` (default
//! `artifacts/fluid_xval_report.txt`) for CI to upload on failure.
//!
//! Exit codes:
//!
//! * `0` — every band evaluated and held;
//! * `3` — every evaluated band held, but quarantined anchor cells
//!   forced skips (the cross-validation is incomplete, not wrong);
//! * `1` — at least one band violated, a stale artifact, or an
//!   invocation error.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dctcp_scenario::{check_xval, list_scenarios, Artifact, ScenarioKind, ScenarioSpec};

struct Args {
    artifacts: PathBuf,
    report: PathBuf,
    scenarios: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        artifacts: PathBuf::from("artifacts/repro"),
        report: PathBuf::from("artifacts/fluid_xval_report.txt"),
        scenarios: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--artifacts" => {
                args.artifacts = PathBuf::from(it.next().ok_or("--artifacts needs a value")?)
            }
            "--report" => args.report = PathBuf::from(it.next().ok_or("--report needs a value")?),
            "--all" => {
                let dir = PathBuf::from(it.next().ok_or("--all needs a directory")?);
                let found = list_scenarios(&dir).map_err(|e| e.to_string())?;
                if found.is_empty() {
                    return Err(format!("no .scn files in {}", dir.display()));
                }
                args.scenarios.extend(found);
            }
            "--help" | "-h" => {
                return Err("usage: fluid_check [--artifacts DIR] [--report FILE] \
                            (--all SCENARIO_DIR | FILE.scn ...)"
                    .into())
            }
            other if !other.starts_with('-') => args.scenarios.push(PathBuf::from(other)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.scenarios.is_empty() {
        return Err("no scenarios given (try `--all scenarios/`)".into());
    }
    Ok(args)
}

/// Loads an artifact once per scenario name, caching across `[xval]`
/// sections and scenarios (several bands typically share one anchor).
fn load_cached<'a>(
    cache: &'a mut BTreeMap<String, Artifact>,
    dir: &Path,
    name: &str,
) -> Result<&'a Artifact, String> {
    if !cache.contains_key(name) {
        let path = dir.join(format!("{name}.json"));
        let artifact = Artifact::load(&path).map_err(|e| e.to_string())?;
        if artifact.scenario != name {
            return Err(format!(
                "{}: artifact is for scenario `{}`, expected `{name}`",
                path.display(),
                artifact.scenario
            ));
        }
        cache.insert(name.to_string(), artifact);
    }
    Ok(&cache[name])
}

fn run() -> Result<(usize, usize), String> {
    let args = parse_args()?;
    let mut artifacts: BTreeMap<String, Artifact> = BTreeMap::new();
    let mut report_text = String::new();
    let mut total_bands = 0usize;
    let mut total_violations = 0usize;
    let mut total_skipped = 0usize;

    for path in &args.scenarios {
        let spec = ScenarioSpec::load(path).map_err(|e| format!("{}: {e}", path.display()))?;
        if spec.kind != ScenarioKind::Fluid || spec.xvals.is_empty() {
            continue;
        }
        let _ = writeln!(report_text, "scenario {}", spec.name);
        // Load the fluid artifact first (cheap clone keeps the borrow
        // checker out of the anchor lookups below).
        let fluid = load_cached(&mut artifacts, &args.artifacts, &spec.name)
            .map_err(|e| format!("{}: {e}", spec.name))?
            .clone();
        for x in &spec.xvals {
            total_bands += 1;
            let packet = load_cached(&mut artifacts, &args.artifacts, &x.packet_scenario)
                .map_err(|e| format!("{}: xval \"{}\": {e}", spec.name, x.label))?;
            let r = check_xval(x, &fluid, packet)
                .map_err(|e| format!("{}: xval \"{}\": {e}", spec.name, x.label))?;
            for msg in &r.skipped {
                eprintln!("fluid_check:   SKIP {msg}");
                let _ = writeln!(report_text, "  SKIP {msg}");
            }
            for v in &r.violations {
                eprintln!("fluid_check:   FAIL {v}");
                let _ = writeln!(report_text, "  FAIL {v}");
            }
            if r.violations.is_empty() && r.skipped.is_empty() {
                let _ = writeln!(
                    report_text,
                    "  OK   xval \"{}\": {} vs {}:{} within {} at {} flow count(s)",
                    x.label,
                    x.metric,
                    x.packet_scenario,
                    x.packet_metric,
                    x.max_rel_err,
                    r.compared
                );
            }
            total_violations += r.violations.len();
            total_skipped += r.skipped.len();
        }
        eprintln!(
            "fluid_check: {} — {} band(s) against {} anchor artifact(s)",
            spec.name,
            spec.xvals.len(),
            artifacts.len().saturating_sub(1),
        );
    }

    let _ = writeln!(
        report_text,
        "total: {total_bands} band(s), {total_violations} violation(s), {total_skipped} skipped"
    );
    if let Some(parent) = args.report.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&args.report, &report_text)
        .map_err(|e| format!("{}: {e}", args.report.display()))?;
    eprintln!(
        "fluid_check: {total_bands} band(s), {total_violations} violation(s), \
         {total_skipped} skipped — report at {}",
        args.report.display()
    );
    Ok((total_violations, total_skipped))
}

fn main() -> ExitCode {
    match run() {
        Ok((0, 0)) => ExitCode::SUCCESS,
        Ok((0, _)) => ExitCode::from(3),
        Ok(_) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("fluid_check: {msg}");
            ExitCode::FAILURE
        }
    }
}
