//! Regression-envelope validator for reproduction artifacts.
//!
//! ```text
//! repro_check [--artifacts DIR] (--all SCENARIO_DIR | FILE.scn ...)
//! ```
//!
//! For each scenario, loads `DIR/<name>.json` (default
//! `artifacts/repro`), verifies it matches the scenario (schema, name,
//! kind, complete matrix) and evaluates every `[expect]` envelope.
//! Exits non-zero if any envelope is violated — the CI gate that keeps
//! the simulated system inside the paper's claims.

use std::path::PathBuf;
use std::process::ExitCode;

use dctcp_scenario::{check_artifact, list_scenarios, Artifact, ScenarioSpec};

struct Args {
    artifacts: PathBuf,
    scenarios: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        artifacts: PathBuf::from("artifacts/repro"),
        scenarios: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--artifacts" => {
                args.artifacts = PathBuf::from(it.next().ok_or("--artifacts needs a value")?)
            }
            "--all" => {
                let dir = PathBuf::from(it.next().ok_or("--all needs a directory")?);
                let found = list_scenarios(&dir).map_err(|e| e.to_string())?;
                if found.is_empty() {
                    return Err(format!("no .scn files in {}", dir.display()));
                }
                args.scenarios.extend(found);
            }
            "--help" | "-h" => {
                return Err("usage: repro_check [--artifacts DIR] \
                            (--all SCENARIO_DIR | FILE.scn ...)"
                    .into())
            }
            other if !other.starts_with('-') => args.scenarios.push(PathBuf::from(other)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.scenarios.is_empty() {
        return Err("no scenarios given (try `--all scenarios/`)".into());
    }
    Ok(args)
}

/// Checks one scenario; returns the number of violated envelopes.
fn check_scenario(spec: &ScenarioSpec, artifact: &Artifact) -> Result<usize, String> {
    if artifact.scenario != spec.name {
        return Err(format!(
            "artifact is for scenario `{}`, expected `{}`",
            artifact.scenario, spec.name
        ));
    }
    if artifact.kind != spec.kind {
        return Err(format!(
            "artifact kind `{}` does not match scenario kind `{}`",
            artifact.kind.name(),
            spec.kind.name()
        ));
    }
    if artifact.points.len() != spec.num_points() {
        return Err(format!(
            "artifact has {} points, scenario defines {} — stale artifact? re-run repro",
            artifact.points.len(),
            spec.num_points()
        ));
    }
    let violations = check_artifact(&spec.expectations, artifact);
    let mut violated: Vec<&str> = Vec::new();
    for v in &violations {
        eprintln!("repro_check:   FAIL {v}");
        if !violated.contains(&v.expect.as_str()) {
            violated.push(&v.expect);
        }
    }
    Ok(violated.len())
}

fn run() -> Result<usize, String> {
    let args = parse_args()?;
    let mut total_violations = 0usize;
    let mut total_expectations = 0usize;
    for path in &args.scenarios {
        let spec = ScenarioSpec::load(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let artifact_path = args.artifacts.join(format!("{}.json", spec.name));
        let artifact = Artifact::load(&artifact_path).map_err(|e| e.to_string())?;
        let n = check_scenario(&spec, &artifact)
            .map_err(|e| format!("{}: {e}", artifact_path.display()))?;
        total_expectations += spec.expectations.len();
        total_violations += n;
        eprintln!(
            "repro_check: {} — {}/{} envelopes hold",
            spec.name,
            spec.expectations.len() - n,
            spec.expectations.len(),
        );
    }
    eprintln!(
        "repro_check: {total_expectations} envelopes over {} scenarios, \
         {total_violations} violation(s)",
        args.scenarios.len()
    );
    Ok(total_violations)
}

fn main() -> ExitCode {
    match run() {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("repro_check: {msg}");
            ExitCode::FAILURE
        }
    }
}
