//! Regression-envelope validator for reproduction artifacts.
//!
//! ```text
//! repro_check [--artifacts DIR] (--all SCENARIO_DIR | FILE.scn ...)
//! ```
//!
//! For each scenario, loads `DIR/<name>.json` (default
//! `artifacts/repro`), verifies it matches the scenario (schema, name,
//! kind, every matrix cell accounted for as a point *or* a quarantined
//! failure) and evaluates every `[expect]` envelope. Envelopes that
//! touch a quarantined cell are reported as *skipped* — a failure to
//! measure is never a pass. Exit codes:
//!
//! * `0` — every envelope evaluated and held;
//! * `3` — every evaluated envelope held, but quarantined cells forced
//!   skips (the reproduction is incomplete, not wrong);
//! * `1` — at least one envelope violated, or an invocation/format
//!   error.

use std::path::PathBuf;
use std::process::ExitCode;

use dctcp_scenario::{check_artifact_partial, list_scenarios, Artifact, ScenarioSpec};

struct Args {
    artifacts: PathBuf,
    scenarios: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        artifacts: PathBuf::from("artifacts/repro"),
        scenarios: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--artifacts" => {
                args.artifacts = PathBuf::from(it.next().ok_or("--artifacts needs a value")?)
            }
            "--all" => {
                let dir = PathBuf::from(it.next().ok_or("--all needs a directory")?);
                let found = list_scenarios(&dir).map_err(|e| e.to_string())?;
                if found.is_empty() {
                    return Err(format!("no .scn files in {}", dir.display()));
                }
                args.scenarios.extend(found);
            }
            "--help" | "-h" => {
                return Err("usage: repro_check [--artifacts DIR] \
                            (--all SCENARIO_DIR | FILE.scn ...)"
                    .into())
            }
            other if !other.starts_with('-') => args.scenarios.push(PathBuf::from(other)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.scenarios.is_empty() {
        return Err("no scenarios given (try `--all scenarios/`)".into());
    }
    Ok(args)
}

/// Checks one scenario; returns (violated, skipped) envelope counts.
fn check_scenario(spec: &ScenarioSpec, artifact: &Artifact) -> Result<(usize, usize), String> {
    if artifact.scenario != spec.name {
        return Err(format!(
            "artifact is for scenario `{}`, expected `{}`",
            artifact.scenario, spec.name
        ));
    }
    if artifact.kind != spec.kind {
        return Err(format!(
            "artifact kind `{}` does not match scenario kind `{}`",
            artifact.kind.name(),
            spec.kind.name()
        ));
    }
    if !artifact.accounts_for(spec.num_points()) {
        return Err(format!(
            "artifact accounts for {} of {} cells ({} points + {} failures) — \
             stale artifact? re-run repro",
            artifact.points.len() + artifact.failures.len(),
            spec.num_points(),
            artifact.points.len(),
            artifact.failures.len(),
        ));
    }
    for f in &artifact.failures {
        eprintln!(
            "repro_check:   QUARANTINED ({}, N={}, seed {}) after {} attempt(s): {}",
            f.marking, f.flows, f.seed, f.attempts, f.msg
        );
    }
    let report = check_artifact_partial(&spec.expectations, artifact);
    for name in &report.skipped {
        eprintln!("repro_check:   SKIP {name} — touches a quarantined cell");
    }
    let mut violated: Vec<&str> = Vec::new();
    for v in &report.violations {
        eprintln!("repro_check:   FAIL {v}");
        if !violated.contains(&v.expect.as_str()) {
            violated.push(&v.expect);
        }
    }
    Ok((violated.len(), report.skipped.len()))
}

fn run() -> Result<(usize, usize), String> {
    let args = parse_args()?;
    let mut total_violations = 0usize;
    let mut total_skipped = 0usize;
    let mut total_expectations = 0usize;
    for path in &args.scenarios {
        let spec = ScenarioSpec::load(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let artifact_path = args.artifacts.join(format!("{}.json", spec.name));
        let artifact = Artifact::load(&artifact_path).map_err(|e| e.to_string())?;
        let (violated, skipped) = check_scenario(&spec, &artifact)
            .map_err(|e| format!("{}: {e}", artifact_path.display()))?;
        total_expectations += spec.expectations.len();
        total_violations += violated;
        total_skipped += skipped;
        eprintln!(
            "repro_check: {} — {}/{} envelopes hold{}",
            spec.name,
            spec.expectations.len() - violated - skipped,
            spec.expectations.len(),
            if skipped > 0 {
                format!(" ({skipped} skipped on quarantine)")
            } else {
                String::new()
            },
        );
    }
    eprintln!(
        "repro_check: {total_expectations} envelopes over {} scenarios, \
         {total_violations} violation(s), {total_skipped} skipped",
        args.scenarios.len()
    );
    Ok((total_violations, total_skipped))
}

fn main() -> ExitCode {
    match run() {
        Ok((0, 0)) => ExitCode::SUCCESS,
        Ok((0, _)) => ExitCode::from(3),
        Ok(_) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("repro_check: {msg}");
            ExitCode::FAILURE
        }
    }
}
