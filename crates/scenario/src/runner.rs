//! Executes a scenario's matrix and assembles the artifact.
//!
//! The executor is *incremental*: each (marking, flows, seed) cell is a
//! fully deterministic simulation, so its result is memoized in an
//! optional [`dctcp_cache::Cache`] under a content address derived from
//! the resolved cell configuration and the workspace code fingerprint
//! (see [`cell_key`] internals). A run first partitions the matrix into
//! cache hits and misses, then fans only the misses out through
//! [`dctcp_parallel::par_try_map`] in cost-balanced chunks. Results are
//! reassembled by cell index, so artifacts are bit-identical for any
//! thread count *and* any hit/miss split — a warm run re-renders the
//! exact bytes of the cold run that populated the cache.

use dctcp_cache::{Cache, CacheKey, KeyBuilder};
use dctcp_parallel::par_try_map;
use dctcp_sim::{FaultPlan, SimTime};
use dctcp_stats::oscillation;
use dctcp_workloads::{
    run_query_rounds_with_threads, LongLivedScenario, QueryWorkload, TestbedConfig,
};

use crate::artifact::{Artifact, Point, ARTIFACT_SCHEMA};
use crate::spec::{DumbbellSpec, ScenarioKind, ScenarioSpec, TestbedSpec};
use crate::ScenarioError;

/// One (marking, flows, seed) cell awaiting execution.
#[derive(Debug, Clone)]
struct Cell {
    label: String,
    scheme: dctcp_core::MarkingScheme,
    flows: u32,
    seed: u64,
}

/// Cache traffic counters for one scenario run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Cells served from the cache without simulating.
    pub hits: usize,
    /// Cells that had to be simulated (and were then stored).
    pub misses: usize,
}

/// Work units per worker thread: enough chunks that one expensive cell
/// cannot serialize the tail of the sweep, few enough that per-item
/// dispatch stays negligible.
const CHUNKS_PER_THREAD: usize = 4;

/// Runs every matrix point of a scenario across `threads` workers and
/// returns the artifact. `threads = 0` means
/// [`dctcp_parallel::available_threads`]. Equivalent to
/// [`run_scenario_cached`] with no cache.
///
/// # Errors
///
/// Returns [`ScenarioError::Run`] wrapping the first (lowest-indexed)
/// failing cell's simulator error.
pub fn run_scenario(spec: &ScenarioSpec, threads: usize) -> Result<Artifact, ScenarioError> {
    run_scenario_cached(spec, threads, None).map(|(artifact, _)| artifact)
}

/// [`run_scenario`] with an optional content-addressed result cache:
/// cached cells are fetched instead of simulated, missing cells are
/// simulated and stored. Cache writes are best-effort (a failed write
/// only costs a future re-run); corrupt or mismatched entries read as
/// misses and are recomputed and repaired.
///
/// # Errors
///
/// Returns [`ScenarioError::Run`] wrapping the first (lowest-indexed)
/// failing cell's simulator error.
pub fn run_scenario_cached(
    spec: &ScenarioSpec,
    threads: usize,
    cache: Option<&Cache>,
) -> Result<(Artifact, CacheStats), ScenarioError> {
    let threads = if threads == 0 {
        dctcp_parallel::available_threads()
    } else {
        threads
    };
    let seeds: &[u64] = if spec.kind.is_query() {
        &spec.run.seeds
    } else {
        // Long-lived runs are seed-free (fully deterministic); pin the
        // artifact's seed column to 1.
        &[1]
    };
    let mut cells = Vec::with_capacity(spec.num_points());
    for (label, scheme) in &spec.markings {
        for &flows in &spec.run.flows {
            for &seed in seeds {
                cells.push(Cell {
                    label: label.clone(),
                    scheme: *scheme,
                    flows,
                    seed,
                });
            }
        }
    }

    // Partition into hits (resolved immediately) and misses (simulated
    // below). Hit metrics must carry exactly the kind's metric names —
    // anything else is treated as corruption and recomputed.
    let fingerprint = dctcp_cache::code_fingerprint();
    let mut points: Vec<Option<Point>> = cells.iter().map(|_| None).collect();
    let mut stats = CacheStats::default();
    let mut misses: Vec<(usize, Cell, Option<CacheKey>)> = Vec::new();
    for (idx, cell) in cells.into_iter().enumerate() {
        let key = cache.map(|_| cell_key(spec, &cell, fingerprint));
        let hit = cache
            .zip(key)
            .and_then(|(c, k)| c.get(k))
            .filter(|metrics| metric_names_match(spec.kind, metrics));
        match hit {
            Some(metrics) => {
                stats.hits += 1;
                points[idx] = Some(Point {
                    marking: cell.label,
                    flows: cell.flows,
                    seed: cell.seed,
                    metrics,
                });
            }
            None => misses.push((idx, cell, key)),
        }
    }
    stats.misses = misses.len();

    let chunks = chunk_by_cost(misses, threads, |(_, cell, _)| cell_cost(spec, cell));
    let computed = par_try_map(chunks, threads, |_chunk_idx, chunk| {
        let mut out = Vec::with_capacity(chunk.len());
        for (idx, cell, key) in chunk {
            // Stop at the first failure so the error reported for the
            // whole run is the lowest-indexed failing cell's, exactly as
            // with one-cell-per-item dispatch.
            let metrics = run_cell(spec, &cell)?;
            out.push((idx, cell, key, metrics));
        }
        Ok::<_, ScenarioError>(out)
    })?;
    for (idx, cell, key, metrics) in computed.into_iter().flatten() {
        if let (Some(cache), Some(key)) = (cache, key) {
            let _ = cache.put(key, &metrics);
        }
        points[idx] = Some(Point {
            marking: cell.label,
            flows: cell.flows,
            seed: cell.seed,
            metrics,
        });
    }

    let points = points
        .into_iter()
        .map(|p| p.expect("every cell is either a hit or a computed miss"))
        .collect();
    Ok((
        Artifact {
            scenario: spec.name.clone(),
            kind: spec.kind,
            points,
        },
        stats,
    ))
}

/// The content address of one cell: a digest over the artifact schema,
/// the workspace code fingerprint, and every resolved input the
/// simulation depends on. The marking *label* is deliberately excluded —
/// it is presentation (the artifact's `marking` column comes from the
/// scenario file at render time), so renaming a label reuses cached
/// results while touching any semantic knob moves the key.
fn cell_key(spec: &ScenarioSpec, cell: &Cell, fingerprint: &str) -> CacheKey {
    let mut kb = KeyBuilder::new();
    kb.field("schema", ARTIFACT_SCHEMA)
        .field("code", fingerprint)
        .field("kind", spec.kind.name())
        // Debug renderings are exhaustive over fields, so a config struct
        // gaining a knob automatically widens the key material.
        .field("topology", &format!("{:?}", spec.topology))
        .field("tcp", &format!("{:?}", spec.tcp))
        .field("marking", &format!("{:?}", cell.scheme))
        .field("flows", &cell.flows.to_string())
        .field("seed", &cell.seed.to_string());
    match spec.kind {
        ScenarioKind::LongLived => {
            kb.field("warmup_ns", &spec.run.warmup.as_nanos().to_string())
                .field("duration_ns", &spec.run.duration.as_nanos().to_string())
                .field("trace_ns", &spec.run.trace_interval.as_nanos().to_string())
                .field("stagger_ns", &spec.run.stagger.as_nanos().to_string())
                .field("faults", &format!("{:?}", spec.faults));
        }
        ScenarioKind::Incast | ScenarioKind::PartitionAggregate => {
            kb.field("rounds", &spec.run.rounds.to_string())
                .field("bytes", &spec.run.bytes.to_string());
        }
    }
    kb.finish()
}

/// Whether cached metrics carry exactly the kind's metric names, in
/// artifact order.
fn metric_names_match(kind: ScenarioKind, metrics: &[(String, f64)]) -> bool {
    let expected = kind.metrics();
    metrics.len() == expected.len() && metrics.iter().zip(expected).all(|((name, _), e)| name == e)
}

/// Estimated relative cost of simulating one cell, for chunk sizing:
/// simulated wall-time for long-lived runs, transferred bytes for query
/// runs. Only ratios matter.
fn cell_cost(spec: &ScenarioSpec, cell: &Cell) -> u64 {
    match spec.kind {
        ScenarioKind::LongLived => {
            (spec.run.warmup.as_nanos() + spec.run.duration.as_nanos()).max(1)
        }
        // Incast sends `bytes` per responder; partition-aggregate splits
        // `bytes` across responders.
        ScenarioKind::Incast => {
            (u64::from(spec.run.rounds) * spec.run.bytes * u64::from(cell.flows)).max(1)
        }
        ScenarioKind::PartitionAggregate => (u64::from(spec.run.rounds) * spec.run.bytes).max(1),
    }
}

/// Groups consecutive jobs into work units of roughly equal summed cost,
/// about [`CHUNKS_PER_THREAD`] units per worker. Order is preserved and
/// results are reassembled by cell index, so chunking can never affect
/// artifact bytes — only how evenly the pool is loaded.
fn chunk_by_cost<T>(jobs: Vec<T>, threads: usize, cost: impl Fn(&T) -> u64) -> Vec<Vec<T>> {
    if jobs.is_empty() {
        return Vec::new();
    }
    let target_chunks = (threads.max(1) * CHUNKS_PER_THREAD).min(jobs.len());
    let total: u64 = jobs.iter().map(&cost).sum();
    let per_chunk = (total / target_chunks as u64).max(1);
    let mut chunks = Vec::with_capacity(target_chunks);
    let mut current: Vec<T> = Vec::new();
    let mut acc = 0u64;
    for job in jobs {
        acc += cost(&job);
        current.push(job);
        if acc >= per_chunk {
            chunks.push(std::mem::take(&mut current));
            acc = 0;
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Simulates one cell and returns its metric rows in artifact order.
fn run_cell(spec: &ScenarioSpec, cell: &Cell) -> Result<Vec<(String, f64)>, ScenarioError> {
    let run_err = |msg: String| ScenarioError::Run {
        scenario: spec.name.clone(),
        msg: format!(
            "({}, N={}, seed {}): {msg}",
            cell.label, cell.flows, cell.seed
        ),
    };
    match (spec.kind, &spec.topology) {
        (ScenarioKind::LongLived, crate::spec::TopologySpec::Dumbbell(d)) => {
            run_long_lived_cell(spec, d, cell).map_err(|e| run_err(e.to_string()))
        }
        (_, crate::spec::TopologySpec::Testbed(t)) => {
            run_query_cell(spec, t, cell).map_err(|e| run_err(e.to_string()))
        }
        _ => Err(run_err("kind/topology mismatch".into())),
    }
}

fn run_long_lived_cell(
    spec: &ScenarioSpec,
    d: &DumbbellSpec,
    cell: &Cell,
) -> Result<Vec<(String, f64)>, dctcp_sim::SimError> {
    let scenario = LongLivedScenario::builder()
        .flows(cell.flows)
        .bottleneck_gbps(d.bottleneck_bps as f64 / 1e9)
        .rtt_us(d.rtt.as_secs_f64() * 1e6)
        .marking(cell.scheme)
        .tcp(spec.tcp)
        .buffer(d.buffer)
        .warmup_secs(spec.run.warmup.as_secs_f64())
        .duration_secs(spec.run.duration.as_secs_f64())
        .trace_interval(spec.run.trace_interval)
        .start_stagger(spec.run.stagger)
        .build()?;
    let faults = spec.faults;
    let report = scenario.run_with_faults(|i| {
        let mut plan = FaultPlan::new();
        if let Some((from, until)) = faults.bleach {
            plan = plan.bleach_window(i.bottleneck, SimTime::ZERO + from, SimTime::ZERO + until);
        }
        if let Some((from, until)) = faults.down {
            plan = plan
                .at(
                    SimTime::ZERO + from,
                    i.bottleneck,
                    dctcp_sim::FaultAction::LinkDown,
                )
                .at(
                    SimTime::ZERO + until,
                    i.bottleneck,
                    dctcp_sim::FaultAction::LinkUp,
                );
        }
        plan
    })?;

    let osc = match &report.trace {
        Some(trace) => oscillation(trace),
        None => dctcp_stats::OscillationSummary::none(),
    };
    let duration_s = spec.run.duration.as_secs_f64();
    Ok(vec![
        ("queue_mean".into(), report.queue.mean),
        ("queue_std".into(), report.queue.std),
        ("queue_max".into(), report.queue.max),
        ("osc_amplitude".into(), osc.mean_amplitude),
        ("osc_max_amplitude".into(), osc.max_amplitude),
        ("osc_cycles".into(), osc.cycles as f64),
        ("mark_rate".into(), report.marks as f64 / duration_s),
        ("marks".into(), report.marks as f64),
        ("drops".into(), report.drops as f64),
        ("timeouts".into(), report.timeouts as f64),
        ("alpha_mean".into(), finite(report.alpha.mean())),
        ("utilization".into(), report.utilization(d.bottleneck_bps)),
        ("goodput_gbps".into(), report.goodput_bps / 1e9),
    ])
}

fn run_query_cell(
    spec: &ScenarioSpec,
    t: &TestbedSpec,
    cell: &Cell,
) -> Result<Vec<(String, f64)>, dctcp_sim::SimError> {
    let mut cfg = TestbedConfig::paper(cell.scheme);
    cfg.tcp = spec.tcp;
    cfg.bottleneck_buffer = t.bottleneck_buffer;
    cfg.other_buffer = t.other_buffer;
    cfg.link_gbps = t.link_bps as f64 / 1e9;
    cfg.link_delay_us = t.link_delay.as_nanos() / 1000;

    let mut wl = match spec.kind {
        ScenarioKind::Incast => QueryWorkload::incast(cell.flows, spec.run.rounds),
        _ => QueryWorkload::partition_aggregate(cell.flows, spec.run.rounds),
    };
    wl.seed = cell.seed;
    wl.bytes_per_flow = match spec.kind {
        ScenarioKind::Incast => spec.run.bytes,
        _ => spec.run.bytes / u64::from(cell.flows),
    };

    // The outer matrix already saturates the worker pool; run the
    // rounds of one cell serially to keep the fan-out single-level.
    let report = run_query_rounds_with_threads(&cfg, &wl, 1)?;

    let mut q = report.completions();
    let in_ms = |v: Option<f64>| v.map_or(0.0, |s| s * 1e3);
    let completed = report
        .rounds
        .iter()
        .filter(|r| r.completion.is_some())
        .count();
    let drops: u64 = report.rounds.iter().map(|r| r.drops).sum();
    Ok(vec![
        ("goodput_mbps".into(), report.mean_goodput_bps() / 1e6),
        ("completion_mean_ms".into(), in_ms(q.mean())),
        ("completion_p95_ms".into(), in_ms(q.quantile(0.95))),
        ("completion_p99_ms".into(), in_ms(q.quantile(0.99))),
        ("timeout_frac".into(), report.timeout_fraction()),
        ("rounds_completed".into(), completed as f64),
        ("drops".into(), drops as f64),
    ])
}

fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    // One tiny end-to-end run: the cheapest long-lived matrix that still
    // exercises tracing, oscillation metrics and determinism.
    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec::parse(
            "\
[scenario]
name = tiny
kind = long_lived

[topology]
bottleneck = 1 Gbps

# Warmup must outlast the ~15 ms slow-start transient at 1 Gb/s or
# the decaying head masks the steady-state oscillation.
[run]
flows = 2
warmup = 20 ms
duration = 15 ms
trace = 100 us

[marking \"dctcp\"]
scheme = dctcp
k = 20 pkts
",
        )
        .unwrap()
    }

    /// A two-cell variant (two markings) for hit/miss partition tests.
    fn two_cell_spec() -> ScenarioSpec {
        ScenarioSpec::parse(
            "\
[scenario]
name = tiny2
kind = long_lived

[topology]
bottleneck = 1 Gbps

[run]
flows = 2
warmup = 20 ms
duration = 15 ms
trace = 100 us

[marking \"dctcp\"]
scheme = dctcp
k = 20 pkts

[marking \"dt\"]
scheme = dt-dctcp
k1 = 15 pkts
k2 = 25 pkts
",
        )
        .unwrap()
    }

    fn tmp_cache(tag: &str) -> dctcp_cache::Cache {
        let dir = std::env::temp_dir().join(format!("dctcp-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dctcp_cache::Cache::new(dir)
    }

    fn first_cell(spec: &ScenarioSpec) -> Cell {
        Cell {
            label: spec.markings[0].0.clone(),
            scheme: spec.markings[0].1,
            flows: spec.run.flows[0],
            seed: 1,
        }
    }

    #[test]
    fn long_lived_artifact_has_every_metric() {
        let a = run_scenario(&tiny_spec(), 2).unwrap();
        assert_eq!(a.points.len(), 1);
        let p = &a.points[0];
        for name in ScenarioKind::LongLived.metrics() {
            let v = p.metric(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(v.is_finite(), "{name} = {v}");
        }
        assert!(p.metric("utilization").unwrap() > 0.8);
        assert!(p.metric("osc_cycles").unwrap() >= 1.0);
    }

    #[test]
    fn artifacts_are_thread_count_invariant() {
        let a = run_scenario(&tiny_spec(), 1).unwrap();
        let b = run_scenario(&tiny_spec(), 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scenario_edits_move_the_cell_key() {
        let spec = tiny_spec();
        let cell = first_cell(&spec);
        let base = cell_key(&spec, &cell, "fp");

        // Semantic edits each move the key...
        let mut longer = spec.clone();
        longer.run.duration = dctcp_sim::SimDuration::from_millis(16);
        assert_ne!(base, cell_key(&longer, &cell, "fp"));

        let mut sharper = cell.clone();
        sharper.scheme = dctcp_core::MarkingScheme::dctcp_packets(21);
        assert_ne!(base, cell_key(&spec, &sharper, "fp"));

        let mut wider = cell.clone();
        wider.flows = 3;
        assert_ne!(base, cell_key(&spec, &wider, "fp"));

        // ...but a pure label rename does not: the label is presentation,
        // applied at artifact render time.
        let mut renamed = cell.clone();
        renamed.label = "renamed".into();
        assert_eq!(base, cell_key(&spec, &renamed, "fp"));
    }

    #[test]
    fn code_fingerprint_moves_the_cell_key() {
        let spec = tiny_spec();
        let cell = first_cell(&spec);
        assert_ne!(
            cell_key(&spec, &cell, "build-a"),
            cell_key(&spec, &cell, "build-b")
        );
    }

    #[test]
    fn cold_then_warm_is_hit_only_and_byte_identical() {
        let spec = two_cell_spec();
        let cache = tmp_cache("warm");

        let (cold, s) = run_scenario_cached(&spec, 2, Some(&cache)).unwrap();
        assert_eq!((s.hits, s.misses), (0, 2));

        // Warm runs re-simulate nothing and render the exact same bytes,
        // at any thread count.
        for threads in [1, 2, 4] {
            let (warm, s) = run_scenario_cached(&spec, threads, Some(&cache)).unwrap();
            assert_eq!((s.hits, s.misses), (2, 0), "threads={threads}");
            assert_eq!(warm.render(), cold.render(), "threads={threads}");
        }
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn corrupt_entry_falls_back_to_recompute_and_repairs() {
        let spec = two_cell_spec();
        let cache = tmp_cache("corrupt");
        let (cold, _) = run_scenario_cached(&spec, 2, Some(&cache)).unwrap();

        // Truncate one of the two entries.
        let mut entries: Vec<_> = std::fs::read_dir(cache.root())
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .collect();
        entries.sort();
        assert_eq!(entries.len(), 2);
        let victim = &entries[0];
        let body = std::fs::read_to_string(victim).unwrap();
        std::fs::write(victim, &body[..body.len() / 3]).unwrap();

        let (warm, s) = run_scenario_cached(&spec, 2, Some(&cache)).unwrap();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(warm.render(), cold.render());

        // The recompute rewrote the entry: a second warm run is all hits.
        let (_, s) = run_scenario_cached(&spec, 2, Some(&cache)).unwrap();
        assert_eq!((s.hits, s.misses), (2, 0));
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn chunking_preserves_order_and_items() {
        let jobs: Vec<u64> = (0..23).collect();
        for threads in [1, 2, 4, 16] {
            let chunks = chunk_by_cost(jobs.clone(), threads, |&j| 1 + j % 3);
            let flat: Vec<u64> = chunks.iter().flatten().copied().collect();
            assert_eq!(flat, jobs, "threads={threads}");
            assert!(chunks.iter().all(|c| !c.is_empty()));
            assert!(chunks.len() <= jobs.len());
        }
        assert!(chunk_by_cost(Vec::<u64>::new(), 4, |_| 1).is_empty());
        // A single dominant job cannot drag unrelated work into its
        // chunk once the accumulator trips.
        let chunks = chunk_by_cost(vec![100u64, 1, 1, 1], 2, |&j| j);
        assert_eq!(chunks[0], vec![100]);
    }
}
