//! Executes a scenario's matrix under supervision and assembles the
//! artifact.
//!
//! The executor is *incremental*: each (marking, flows, seed) cell is a
//! fully deterministic simulation, so its result is memoized in an
//! optional [`dctcp_cache::Cache`] under a content address derived from
//! the resolved cell configuration and the workspace code fingerprint
//! (see [`cell_key`] internals). A run first partitions the matrix into
//! cache hits, journal-replayed quarantines and misses, then fans only
//! the misses out through [`dctcp_parallel::par_map`] one cell per work
//! item. Results are reassembled by cell index, so artifacts are
//! bit-identical for any thread count *and* any hit/miss split — a warm
//! run re-renders the exact bytes of the cold run that populated the
//! cache.
//!
//! The executor is also *supervised* — one broken cell cannot take the
//! matrix down or wedge it:
//!
//! * every attempt runs under [`dctcp_parallel::run_isolated`], so a
//!   panic becomes a typed [`CellError::Panicked`] value;
//! * a watchdog thread fires each running cell's [`CancelToken`] at its
//!   wall-clock deadline, which the simulator's cooperative
//!   cancellation poll turns into [`CellError::DeadlineExceeded`];
//! * failed attempts are retried up to the `[limits] retries` budget; a
//!   success after a failure is verified bit-identical against a clean
//!   re-run (anything else is [`CellError::NonDeterministic`]);
//! * cells that exhaust the budget are quarantined into the artifact's
//!   `failures` block and recorded in the cache directory's journal, so
//!   a resumed run replays deterministic failures instead of repeating
//!   them.
//!
//! Crash consistency: each cell's result is written to the cache (and
//! each quarantine to the journal) *by the worker that produced it*,
//! the moment it exists. A run killed mid-matrix — even with `kill -9`
//! — resumes with every completed cell served from the cache.
//!
//! [`CancelToken`]: dctcp_sim::CancelToken

use std::time::Duration;

use dctcp_cache::{Cache, CacheKey, FailureRecord, Journal, KeyBuilder};
use dctcp_parallel::{par_map, run_isolated};
use dctcp_sim::{CancelToken, FaultPlan, SimError, SimTime};
use dctcp_stats::oscillation;
use dctcp_workloads::{
    run_collective, run_query_rounds_supervised, CollectiveConfig, FctScenario, LongLivedScenario,
    QueryWorkload, TestbedConfig,
};

use crate::artifact::{Artifact, FailureCell, Point, ARTIFACT_SCHEMA};
use crate::spec::{
    DumbbellSpec, FatTreeSpec, InjectFault, ScenarioKind, ScenarioSpec, TestbedSpec,
};
use crate::supervise::{CellError, Watchdog};
use crate::ScenarioError;

/// One (marking, flows, seed) cell awaiting execution.
#[derive(Debug, Clone)]
struct Cell {
    label: String,
    scheme: dctcp_core::MarkingScheme,
    flows: u32,
    seed: u64,
}

/// Cache and supervision traffic counters for one scenario run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Cells served from the cache without simulating.
    pub hits: usize,
    /// Cells that had to be simulated (and, on success, stored).
    pub misses: usize,
    /// Simulated cells that succeeded only after at least one retry.
    pub retried: usize,
    /// Cells carried in the artifact's `failures` block.
    pub quarantined: usize,
    /// Quarantined cells replayed from the failure journal instead of
    /// being re-executed (always ≤ `quarantined`).
    pub replayed: usize,
}

/// One resolved matrix slot: a measured point or a quarantined failure.
enum Slot {
    Point(Point),
    Failure(FailureCell),
}

/// Runs every matrix point of a scenario across `threads` workers and
/// returns the artifact. `threads = 0` means
/// [`dctcp_parallel::available_threads`]. Equivalent to
/// [`run_scenario_cached`] with no cache.
///
/// # Errors
///
/// Returns [`ScenarioError::Run`] wrapping the first (lowest-indexed)
/// failing cell's error.
pub fn run_scenario(spec: &ScenarioSpec, threads: usize) -> Result<Artifact, ScenarioError> {
    run_scenario_cached(spec, threads, None).map(|(artifact, _)| artifact)
}

/// [`run_scenario_supervised`] for callers that want an all-or-nothing
/// result: any quarantined cell is promoted to an error naming the
/// first (lowest-indexed) failing cell.
///
/// # Errors
///
/// Returns [`ScenarioError::Run`] wrapping the first (lowest-indexed)
/// failing cell's error.
pub fn run_scenario_cached(
    spec: &ScenarioSpec,
    threads: usize,
    cache: Option<&Cache>,
) -> Result<(Artifact, CacheStats), ScenarioError> {
    let (artifact, stats) = run_scenario_supervised(spec, threads, cache);
    if let Some(f) = artifact.failures.first() {
        return Err(ScenarioError::Run {
            scenario: spec.name.clone(),
            msg: format!("({}, N={}, seed {}): {}", f.marking, f.flows, f.seed, f.msg),
        });
    }
    Ok((artifact, stats))
}

/// Runs a scenario's matrix under full supervision: an optional
/// content-addressed result cache serves completed cells, a failure
/// journal replays deterministic quarantines, and every miss executes
/// under panic isolation, a wall-clock deadline and a bounded retry
/// budget (see the module docs). This function never fails — broken
/// cells land in the artifact's `failures` block and the remaining
/// matrix still produces its points.
///
/// Cache and journal writes are best-effort (a failed write only costs
/// a future re-run); corrupt or mismatched entries read as misses and
/// are recomputed and repaired.
pub fn run_scenario_supervised(
    spec: &ScenarioSpec,
    threads: usize,
    cache: Option<&Cache>,
) -> (Artifact, CacheStats) {
    let threads = if threads == 0 {
        dctcp_parallel::available_threads()
    } else {
        threads
    };
    let seeds: &[u64] = if spec.kind.sweeps_seeds() {
        &spec.run.seeds
    } else {
        // Long-lived runs are seed-free (fully deterministic); pin the
        // artifact's seed column to 1.
        &[1]
    };
    let mut cells = Vec::with_capacity(spec.num_points());
    for (label, scheme) in &spec.markings {
        for &flows in &spec.run.flows {
            for &seed in seeds {
                cells.push(Cell {
                    label: label.clone(),
                    scheme: *scheme,
                    flows,
                    seed,
                });
            }
        }
    }

    // The retry budget counts *attempts*: `retries = 1` means one run
    // plus at most one retry.
    let budget = spec.limits.retries + 1;
    let journal = cache.map(|c| Journal::in_cache_root(c.root()));
    let journaled = journal
        .as_ref()
        .map(Journal::load_failures)
        .unwrap_or_default();

    // Partition into hits and journal replays (both resolved
    // immediately) and misses (executed below). Hit metrics must carry
    // exactly the kind's metric names — anything else is treated as
    // corruption and recomputed. A journaled failure is replayed only
    // when it is deterministic *and* was recorded under at least the
    // current attempt budget, so raising `retries` re-runs the cell.
    let fingerprint = dctcp_cache::code_fingerprint();
    let mut slots: Vec<Option<Slot>> = cells.iter().map(|_| None).collect();
    let mut stats = CacheStats::default();
    let mut misses: Vec<(usize, Cell, Option<CacheKey>)> = Vec::new();
    for (idx, cell) in cells.into_iter().enumerate() {
        let key = cache.map(|_| cell_key(spec, &cell, fingerprint));
        let hit = cache
            .zip(key)
            .and_then(|(c, k)| c.get(k))
            .filter(|metrics| metric_names_match(spec.kind, metrics));
        if let Some(metrics) = hit {
            stats.hits += 1;
            slots[idx] = Some(Slot::Point(Point {
                marking: cell.label,
                flows: cell.flows,
                seed: cell.seed,
                metrics,
            }));
            continue;
        }
        if let Some(rec) = key.and_then(|k| journaled.get(&k)) {
            if CellError::kind_is_deterministic(&rec.kind) && rec.attempts >= budget {
                stats.quarantined += 1;
                stats.replayed += 1;
                slots[idx] = Some(Slot::Failure(FailureCell {
                    marking: cell.label,
                    flows: cell.flows,
                    seed: cell.seed,
                    attempts: rec.attempts,
                    kind: rec.kind.clone(),
                    msg: rec.msg.clone(),
                }));
                continue;
            }
        }
        misses.push((idx, cell, key));
    }
    stats.misses = misses.len();

    // One cell per work item: the pool's shared counter load-balances
    // at cell granularity, and a wedged cell occupies exactly one
    // worker until the watchdog cancels it. Workers persist their own
    // results the moment they exist (crash consistency — see module
    // docs), so completion order never matters.
    let deadline = Duration::from_nanos(spec.cell_deadline().as_nanos());
    let computed = if misses.is_empty() {
        // Fully warm run: don't pay for the watchdog thread when there
        // is nothing to supervise.
        Vec::new()
    } else {
        let watchdog = Watchdog::start();
        par_map(misses, threads, |_, (idx, cell, key)| {
            let outcome = run_supervised_cell(
                spec,
                &cell,
                key,
                cache,
                journal.as_ref(),
                &watchdog,
                deadline,
                budget,
            );
            (idx, cell, outcome)
        })
    };
    for (idx, cell, outcome) in computed {
        match outcome {
            Ok((metrics, attempts)) => {
                if attempts > 1 {
                    stats.retried += 1;
                }
                slots[idx] = Some(Slot::Point(Point {
                    marking: cell.label,
                    flows: cell.flows,
                    seed: cell.seed,
                    metrics,
                }));
            }
            Err(e) => {
                stats.quarantined += 1;
                slots[idx] = Some(Slot::Failure(FailureCell {
                    marking: cell.label,
                    flows: cell.flows,
                    seed: cell.seed,
                    attempts: budget,
                    kind: e.kind().into(),
                    msg: e.to_string(),
                }));
            }
        }
    }

    let mut points = Vec::new();
    let mut failures = Vec::new();
    for slot in slots {
        match slot.expect("every cell is a hit, a replayed failure, or a computed miss") {
            Slot::Point(p) => points.push(p),
            Slot::Failure(f) => failures.push(f),
        }
    }
    (
        Artifact {
            scenario: spec.name.clone(),
            kind: spec.kind,
            points,
            failures,
        },
        stats,
    )
}

/// Executes one miss under supervision: up to `budget` attempts, each
/// isolated and deadline-watched, with a bit-identical clean-run
/// verification after any retried success. On success the metrics are
/// stored in the cache; on quarantine the failure is journaled. Returns
/// the metrics with the number of attempts consumed.
#[allow(clippy::too_many_arguments)]
fn run_supervised_cell(
    spec: &ScenarioSpec,
    cell: &Cell,
    key: Option<CacheKey>,
    cache: Option<&Cache>,
    journal: Option<&Journal>,
    watchdog: &Watchdog,
    deadline: Duration,
    budget: u32,
) -> Result<(Vec<(String, f64)>, u32), CellError> {
    let inject = spec
        .limits
        .injection_for(&cell.label, cell.flows, cell.seed);
    let mut last = CellError::Failed {
        msg: "cell was never attempted".into(),
    };
    let mut verdict = None;
    for attempt in 0..budget {
        if attempt > 0 && spec.limits.backoff > dctcp_sim::SimDuration::ZERO {
            std::thread::sleep(Duration::from_nanos(spec.limits.backoff.as_nanos()) * attempt);
        }
        match run_attempt(spec, cell, inject, attempt, watchdog, deadline) {
            Ok(metrics) => {
                if attempt > 0 {
                    // A success that needed a retry is only trusted if a
                    // clean re-run (no injection) reproduces it bit for
                    // bit — otherwise the cell's result depends on
                    // something other than its inputs.
                    match run_attempt(spec, cell, None, 0, watchdog, deadline) {
                        Ok(clean) if clean == metrics => {}
                        Ok(_) => {
                            verdict = Some(CellError::NonDeterministic {
                                msg: "retried success differs from a clean verification re-run"
                                    .into(),
                            });
                            break;
                        }
                        Err(e) => {
                            verdict = Some(CellError::NonDeterministic {
                                msg: format!("clean verification re-run failed: {e}"),
                            });
                            break;
                        }
                    }
                }
                if let (Some(cache), Some(key)) = (cache, key) {
                    let _ = cache.put(key, &metrics);
                }
                return Ok((metrics, attempt + 1));
            }
            Err(e) => last = e,
        }
    }
    let error = verdict.unwrap_or(last);
    if let (Some(journal), Some(key)) = (journal, key) {
        let _ = journal.append_failure(&FailureRecord {
            key,
            attempts: budget,
            kind: error.kind().into(),
            msg: error.to_string(),
        });
    }
    Err(error)
}

/// One isolated, deadline-supervised execution of a cell, with any
/// configured `[limits]` fault injection applied first.
fn run_attempt(
    spec: &ScenarioSpec,
    cell: &Cell,
    inject: Option<InjectFault>,
    attempt: u32,
    watchdog: &Watchdog,
    deadline: Duration,
) -> Result<Vec<(String, f64)>, CellError> {
    let token = CancelToken::new();
    let _guard = watchdog.register(deadline, token.clone());
    let sim_token = token.clone();
    let outcome = run_isolated(move || -> Result<Vec<(String, f64)>, SimError> {
        match inject {
            Some(InjectFault::Panic) => panic!("injected panic via [limits] inject_panic"),
            Some(InjectFault::Flaky) if attempt == 0 => {
                panic!("injected first-attempt failure via [limits] inject_flaky")
            }
            Some(InjectFault::Stall) => {
                // A wedged cell: burn wall-clock, never events, until
                // the watchdog fires — exactly what a livelocked
                // simulation looks like from the supervisor's seat.
                while !sim_token.is_cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                return Err(SimError::Cancelled { at: SimTime::ZERO });
            }
            _ => {}
        }
        run_cell_raw(spec, cell, Some(sim_token))
    });
    match outcome {
        Err(panic) => Err(CellError::Panicked { msg: panic.message }),
        Ok(Err(SimError::Cancelled { .. })) => Err(CellError::DeadlineExceeded {
            deadline: spec.cell_deadline(),
        }),
        Ok(Err(e)) => Err(CellError::Failed { msg: e.to_string() }),
        Ok(Ok(metrics)) => Ok(metrics),
    }
}

/// The content address of one cell: a digest over the artifact schema,
/// the workspace code fingerprint, and every resolved input the
/// simulation depends on. The marking *label* is deliberately excluded —
/// it is presentation (the artifact's `marking` column comes from the
/// scenario file at render time), so renaming a label reuses cached
/// results while touching any semantic knob moves the key.
fn cell_key(spec: &ScenarioSpec, cell: &Cell, fingerprint: &str) -> CacheKey {
    let mut kb = KeyBuilder::new();
    kb.field("schema", ARTIFACT_SCHEMA)
        .field("code", fingerprint)
        .field("kind", spec.kind.name())
        // Debug renderings are exhaustive over fields, so a config struct
        // gaining a knob automatically widens the key material.
        .field("topology", &format!("{:?}", spec.topology))
        .field("tcp", &format!("{:?}", spec.tcp))
        .field("marking", &format!("{:?}", cell.scheme))
        .field("flows", &cell.flows.to_string())
        .field("seed", &cell.seed.to_string())
        // A fault injection changes what the cell *does*, so it is key
        // material even though the retry/deadline budgets (which only
        // change how failures are handled) are not.
        .field(
            "inject",
            spec.limits
                .injection_for(&cell.label, cell.flows, cell.seed)
                .map_or("none", InjectFault::name),
        );
    match spec.kind {
        ScenarioKind::LongLived => {
            kb.field("warmup_ns", &spec.run.warmup.as_nanos().to_string())
                .field("duration_ns", &spec.run.duration.as_nanos().to_string())
                .field("trace_ns", &spec.run.trace_interval.as_nanos().to_string())
                .field("stagger_ns", &spec.run.stagger.as_nanos().to_string())
                .field("faults", &format!("{:?}", spec.faults));
        }
        ScenarioKind::Incast | ScenarioKind::PartitionAggregate => {
            kb.field("rounds", &spec.run.rounds.to_string())
                .field("bytes", &spec.run.bytes.to_string());
        }
        // The fat-tree topology (k, tiers, ecmp_seed) is already key
        // material via the `topology` Debug field above; the workload
        // shape (pattern, chunk, phase gap, horizon) joins it here.
        ScenarioKind::Collective => {
            kb.field("bytes", &spec.run.bytes.to_string())
                .field("workload", &format!("{:?}", spec.workload));
        }
        ScenarioKind::Fluid => {
            kb.field("warmup_ns", &spec.run.warmup.as_nanos().to_string())
                .field("duration_ns", &spec.run.duration.as_nanos().to_string())
                .field("dt_ns", &spec.run.dt.as_nanos().to_string())
                .field("trace_ns", &spec.run.trace_interval.as_nanos().to_string());
        }
        // The churn workload (load, size CDF, racks, slab, class
        // bounds, deadlines, drain) joins the windows as key material
        // via its exhaustive Debug rendering.
        ScenarioKind::Fct => {
            kb.field("warmup_ns", &spec.run.warmup.as_nanos().to_string())
                .field("duration_ns", &spec.run.duration.as_nanos().to_string())
                .field("workload", &format!("{:?}", spec.fct));
        }
    }
    kb.finish()
}

/// Whether cached metrics carry exactly the kind's metric names, in
/// artifact order.
fn metric_names_match(kind: ScenarioKind, metrics: &[(String, f64)]) -> bool {
    let expected = kind.metrics();
    metrics.len() == expected.len() && metrics.iter().zip(expected).all(|((name, _), e)| name == e)
}

/// Simulates one cell (no supervision) and returns its metric rows in
/// artifact order.
fn run_cell_raw(
    spec: &ScenarioSpec,
    cell: &Cell,
    cancel: Option<CancelToken>,
) -> Result<Vec<(String, f64)>, SimError> {
    match (spec.kind, &spec.topology) {
        (ScenarioKind::LongLived, crate::spec::TopologySpec::Dumbbell(d)) => {
            run_long_lived_cell(spec, d, cell, cancel)
        }
        (ScenarioKind::Collective, crate::spec::TopologySpec::FatTree(f)) => {
            run_collective_cell(spec, f, cell, cancel)
        }
        (ScenarioKind::Fluid, crate::spec::TopologySpec::Dumbbell(d)) => {
            run_fluid_cell(spec, d, cell)
        }
        (ScenarioKind::Fct, crate::spec::TopologySpec::Dumbbell(d)) => {
            run_fct_cell(spec, d, cell, cancel)
        }
        (ScenarioKind::Incast | ScenarioKind::PartitionAggregate, t) => match t {
            crate::spec::TopologySpec::Testbed(t) => run_query_cell(spec, t, cell, cancel),
            _ => Err(SimError::InvalidConfig("kind/topology mismatch".into())),
        },
        _ => Err(SimError::InvalidConfig("kind/topology mismatch".into())),
    }
}

fn run_collective_cell(
    spec: &ScenarioSpec,
    f: &FatTreeSpec,
    cell: &Cell,
    cancel: Option<CancelToken>,
) -> Result<Vec<(String, f64)>, dctcp_sim::SimError> {
    let w = spec.workload.ok_or_else(|| {
        SimError::InvalidConfig("collective scenario lacks a [workload collective] section".into())
    })?;
    let cfg = CollectiveConfig {
        k: f.k,
        hosts_per_edge: f.hosts_per_edge,
        pattern: w.pattern,
        participants: cell.flows,
        bytes_per_flow: spec.run.bytes,
        chunk: w.chunk,
        phase_gap: w.phase_gap,
        horizon: w.horizon,
        seed: cell.seed,
        marking: cell.scheme,
        tcp: spec.tcp,
        host_gbps: f.host_bps as f64 / 1e9,
        agg_gbps: f.agg_bps as f64 / 1e9,
        core_gbps: f.core_bps as f64 / 1e9,
        delay_us: f.delay.as_nanos() / 1000,
        buffer: f.buffer,
        ecmp_seed: f.ecmp_seed,
    };
    let report = run_collective(&cfg, cancel)?;
    // An unfinished collective would poison every downstream envelope
    // with sentinel values; surface it as a cell failure instead (the
    // horizon is configuration, so the message is byte-stable).
    let completion = report.completion.ok_or_else(|| {
        SimError::InvalidConfig(format!(
            "collective did not complete within the {:?} horizon",
            w.horizon
        ))
    })?;
    Ok(vec![
        ("completion_ms".into(), completion * 1e3),
        ("goodput_mbps".into(), report.goodput_bps / 1e6),
        ("queue_mean".into(), report.core_queue.mean),
        ("queue_std".into(), report.core_queue.std),
        ("queue_max".into(), report.core_queue.max),
        ("marks".into(), report.marks as f64),
        ("drops".into(), report.drops as f64),
        ("timeouts".into(), report.timeouts as f64),
    ])
}

fn run_long_lived_cell(
    spec: &ScenarioSpec,
    d: &DumbbellSpec,
    cell: &Cell,
    cancel: Option<CancelToken>,
) -> Result<Vec<(String, f64)>, dctcp_sim::SimError> {
    let scenario = LongLivedScenario::builder()
        .flows(cell.flows)
        .bottleneck_gbps(d.bottleneck_bps as f64 / 1e9)
        .rtt_us(d.rtt.as_secs_f64() * 1e6)
        .marking(cell.scheme)
        .tcp(spec.tcp)
        .buffer(d.buffer)
        .warmup_secs(spec.run.warmup.as_secs_f64())
        .duration_secs(spec.run.duration.as_secs_f64())
        .trace_interval(spec.run.trace_interval)
        .start_stagger(spec.run.stagger)
        .build()?;
    let faults = spec.faults;
    let report = scenario.run_supervised(cancel, |i| {
        let mut plan = FaultPlan::new();
        if let Some((from, until)) = faults.bleach {
            plan = plan.bleach_window(i.bottleneck, SimTime::ZERO + from, SimTime::ZERO + until);
        }
        if let Some((from, until)) = faults.down {
            plan = plan
                .at(
                    SimTime::ZERO + from,
                    i.bottleneck,
                    dctcp_sim::FaultAction::LinkDown,
                )
                .at(
                    SimTime::ZERO + until,
                    i.bottleneck,
                    dctcp_sim::FaultAction::LinkUp,
                );
        }
        plan
    })?;

    let osc = match &report.trace {
        Some(trace) => oscillation(trace),
        None => dctcp_stats::OscillationSummary::none(),
    };
    let duration_s = spec.run.duration.as_secs_f64();
    Ok(vec![
        ("queue_mean".into(), report.queue.mean),
        ("queue_std".into(), report.queue.std),
        ("queue_max".into(), report.queue.max),
        ("osc_amplitude".into(), osc.mean_amplitude),
        ("osc_max_amplitude".into(), osc.max_amplitude),
        ("osc_cycles".into(), osc.cycles as f64),
        ("mark_rate".into(), report.marks as f64 / duration_s),
        ("marks".into(), report.marks as f64),
        ("drops".into(), report.drops as f64),
        ("timeouts".into(), report.timeouts as f64),
        ("alpha_mean".into(), finite(report.alpha.mean())),
        ("utilization".into(), report.utilization(d.bottleneck_bps)),
        ("goodput_gbps".into(), report.goodput_bps / 1e9),
    ])
}

/// Integrates one fluid-model cell: the DDE at the cell's operating
/// point, reduced to the kind's metric rows. Milliseconds of wall clock
/// per cell, so cooperative cancellation is not threaded through — the
/// cell finishes long before any watchdog deadline.
fn run_fluid_cell(
    spec: &ScenarioSpec,
    d: &DumbbellSpec,
    cell: &Cell,
) -> Result<Vec<(String, f64)>, dctcp_sim::SimError> {
    use dctcp_core::QueueLevel;
    use dctcp_fluid::{FluidMarking, FluidParams, FluidRunConfig};

    // The parser already restricts fluid markings to packet-denominated
    // dctcp / dt-dctcp; this re-check keeps programmatic callers honest.
    let marking = match cell.scheme {
        dctcp_core::MarkingScheme::Dctcp {
            k: QueueLevel::Packets(k),
        } => FluidMarking::Relay { k: f64::from(k) },
        dctcp_core::MarkingScheme::DtDctcp {
            k1: QueueLevel::Packets(k1),
            k2: QueueLevel::Packets(k2),
        } => FluidMarking::Hysteresis {
            k1: f64::from(k1),
            k2: f64::from(k2),
        },
        _ => {
            return Err(SimError::InvalidConfig(
                "fluid cells support only packet-denominated dctcp / dt-dctcp markings".into(),
            ))
        }
    };
    let g = match spec.tcp.cc {
        dctcp_tcp::CongestionControl::Dctcp { g }
        | dctcp_tcp::CongestionControl::D2tcp { g, .. } => g,
        _ => {
            return Err(SimError::InvalidConfig(
                "fluid cells model DCTCP dynamics and need a dctcp [tcp] config".into(),
            ))
        }
    };
    let params = FluidParams {
        // Packet-denominated capacity at the paper's 1500 B MTU, the
        // same conversion `PlantParams::from_link` uses.
        capacity_pps: d.bottleneck_bps as f64 / (8.0 * 1500.0),
        flows: f64::from(cell.flows),
        rtt: d.rtt.as_secs_f64(),
        g,
        marking,
        w_init: 1.0,
        alpha_init: 0.0,
        q_init: 0.0,
    };
    let dt = spec.run.dt.as_secs_f64();
    let cfg = FluidRunConfig {
        dt,
        duration: (spec.run.warmup + spec.run.duration).as_secs_f64(),
        transient: spec.run.warmup.as_secs_f64(),
        sample_every: (spec.run.trace_interval.as_secs_f64() / dt)
            .round()
            .max(1.0) as usize,
    };
    let point = dctcp_fluid::sweep::evaluate(&params, &cfg)
        .map_err(|e| SimError::InvalidConfig(format!("fluid cell: {e}")))?;
    Ok(vec![
        ("queue_mean".into(), finite(point.queue_mean)),
        ("queue_std".into(), finite(point.queue_std)),
        ("queue_max".into(), finite(point.queue_max)),
        ("osc_amplitude".into(), finite(point.osc_amplitude)),
        ("osc_freq_hz".into(), finite(point.osc_freq_hz)),
        ("osc_cycles".into(), finite(point.osc_cycles)),
        ("w_mean".into(), finite(point.w_mean)),
        ("alpha_mean".into(), finite(point.alpha_mean)),
        ("marking_duty".into(), finite(point.marking_duty)),
        ("utilization".into(), finite(point.utilization)),
    ])
}

/// Runs one open-loop churn cell: `cell.flows` churn sources split
/// evenly over the workload's racks, each rack bottlenecked into its
/// sink by the marking under test, reduced to per-size-class FCT tails
/// plus the open-loop conservation counters.
fn run_fct_cell(
    spec: &ScenarioSpec,
    d: &DumbbellSpec,
    cell: &Cell,
    cancel: Option<CancelToken>,
) -> Result<Vec<(String, f64)>, dctcp_sim::SimError> {
    let w = spec.fct.as_ref().ok_or_else(|| {
        SimError::InvalidConfig("fct scenario lacks a [workload fct] section".into())
    })?;
    // The parser enforces both; re-checked for programmatic callers.
    if w.racks == 0 || cell.flows % w.racks != 0 || cell.flows < w.racks {
        return Err(SimError::InvalidConfig(format!(
            "fct source count {} is not a positive multiple of racks = {}",
            cell.flows, w.racks
        )));
    }
    let sizes = dctcp_workloads::sizes::by_name(&w.size_dist).ok_or_else(|| {
        SimError::InvalidConfig(format!("unknown size distribution `{}`", w.size_dist))
    })?;
    let mut builder = FctScenario::builder()
        .racks(w.racks)
        .sources_per_rack(cell.flows / w.racks)
        .bottleneck_gbps(d.bottleneck_bps as f64 / 1e9)
        .rtt_us(d.rtt.as_secs_f64() * 1e6)
        .load(w.load)
        .marking(cell.scheme)
        .tcp(spec.tcp)
        .buffer(d.buffer)
        .sizes(sizes)
        .class_bounds([w.short_bytes, w.long_bytes])
        .slots(w.slots)
        .seed(cell.seed)
        .warmup_secs(spec.run.warmup.as_secs_f64())
        .duration_secs(spec.run.duration.as_secs_f64())
        .drain_secs(w.drain.as_secs_f64());
    if let Some(slack) = w.deadline_slack {
        builder = builder.deadline_slack(slack);
    }
    let report = builder
        .build()?
        .run_supervised(cancel, |_| FaultPlan::new())?;

    // An empty size class renders its quantiles as 0 rather than
    // omitting the row — artifacts always carry the kind's full metric
    // set, and an envelope pinning an empty class fails loudly on the
    // zero instead of silently matching nothing.
    let fct = |class: usize, q: f64| finite(report.fct_ms(class, q).unwrap_or(0.0));
    Ok(vec![
        ("fct_short_p50_ms".into(), fct(0, 0.50)),
        ("fct_short_p99_ms".into(), fct(0, 0.99)),
        ("fct_short_p999_ms".into(), fct(0, 0.999)),
        ("fct_mid_p50_ms".into(), fct(1, 0.50)),
        ("fct_mid_p99_ms".into(), fct(1, 0.99)),
        ("fct_mid_p999_ms".into(), fct(1, 0.999)),
        ("fct_long_p50_ms".into(), fct(2, 0.50)),
        ("fct_long_p99_ms".into(), fct(2, 0.99)),
        ("fct_long_p999_ms".into(), fct(2, 0.999)),
        ("goodput_gbps".into(), finite(report.goodput_bps / 1e9)),
        (
            "deadline_miss_rate".into(),
            finite(report.deadline_miss_rate()),
        ),
        ("flows_started".into(), report.started as f64),
        ("flows_completed".into(), report.completed as f64),
    ])
}

fn run_query_cell(
    spec: &ScenarioSpec,
    t: &TestbedSpec,
    cell: &Cell,
    cancel: Option<CancelToken>,
) -> Result<Vec<(String, f64)>, dctcp_sim::SimError> {
    let mut cfg = TestbedConfig::paper(cell.scheme);
    cfg.tcp = spec.tcp;
    cfg.bottleneck_buffer = t.bottleneck_buffer;
    cfg.other_buffer = t.other_buffer;
    cfg.link_gbps = t.link_bps as f64 / 1e9;
    cfg.link_delay_us = t.link_delay.as_nanos() / 1000;

    let mut wl = match spec.kind {
        ScenarioKind::Incast => QueryWorkload::incast(cell.flows, spec.run.rounds),
        _ => QueryWorkload::partition_aggregate(cell.flows, spec.run.rounds),
    };
    wl.seed = cell.seed;
    wl.bytes_per_flow = match spec.kind {
        ScenarioKind::Incast => spec.run.bytes,
        _ => spec.run.bytes / u64::from(cell.flows),
    };

    // The outer matrix already saturates the worker pool; run the
    // rounds of one cell serially to keep the fan-out single-level.
    let report = run_query_rounds_supervised(&cfg, &wl, 1, cancel)?;

    let mut q = report.completions();
    let in_ms = |v: Option<f64>| v.map_or(0.0, |s| s * 1e3);
    let completed = report
        .rounds
        .iter()
        .filter(|r| r.completion.is_some())
        .count();
    let drops: u64 = report.rounds.iter().map(|r| r.drops).sum();
    Ok(vec![
        ("goodput_mbps".into(), report.mean_goodput_bps() / 1e6),
        ("completion_mean_ms".into(), in_ms(q.mean())),
        ("completion_p95_ms".into(), in_ms(q.quantile(0.95))),
        ("completion_p99_ms".into(), in_ms(q.quantile(0.99))),
        ("timeout_frac".into(), report.timeout_fraction()),
        ("rounds_completed".into(), completed as f64),
        ("drops".into(), drops as f64),
    ])
}

fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    // One tiny end-to-end run: the cheapest long-lived matrix that still
    // exercises tracing, oscillation metrics and determinism.
    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec::parse(
            "\
[scenario]
name = tiny
kind = long_lived

[topology]
bottleneck = 1 Gbps

# Warmup must outlast the ~15 ms slow-start transient at 1 Gb/s or
# the decaying head masks the steady-state oscillation.
[run]
flows = 2
warmup = 20 ms
duration = 15 ms
trace = 100 us

[marking \"dctcp\"]
scheme = dctcp
k = 20 pkts
",
        )
        .unwrap()
    }

    /// A two-cell variant (two markings) for hit/miss partition tests.
    fn two_cell_spec() -> ScenarioSpec {
        ScenarioSpec::parse(
            "\
[scenario]
name = tiny2
kind = long_lived

[topology]
bottleneck = 1 Gbps

[run]
flows = 2
warmup = 20 ms
duration = 15 ms
trace = 100 us

[marking \"dctcp\"]
scheme = dctcp
k = 20 pkts

[marking \"dt\"]
scheme = dt-dctcp
k1 = 15 pkts
k2 = 25 pkts
",
        )
        .unwrap()
    }

    fn tmp_cache(tag: &str) -> dctcp_cache::Cache {
        let dir = std::env::temp_dir().join(format!("dctcp-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dctcp_cache::Cache::new(dir)
    }

    fn first_cell(spec: &ScenarioSpec) -> Cell {
        Cell {
            label: spec.markings[0].0.clone(),
            scheme: spec.markings[0].1,
            flows: spec.run.flows[0],
            seed: 1,
        }
    }

    #[test]
    fn long_lived_artifact_has_every_metric() {
        let a = run_scenario(&tiny_spec(), 2).unwrap();
        assert_eq!(a.points.len(), 1);
        let p = &a.points[0];
        for name in ScenarioKind::LongLived.metrics() {
            let v = p.metric(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(v.is_finite(), "{name} = {v}");
        }
        assert!(p.metric("utilization").unwrap() > 0.8);
        assert!(p.metric("osc_cycles").unwrap() >= 1.0);
    }

    #[test]
    fn artifacts_are_thread_count_invariant() {
        let a = run_scenario(&tiny_spec(), 1).unwrap();
        let b = run_scenario(&tiny_spec(), 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scenario_edits_move_the_cell_key() {
        let spec = tiny_spec();
        let cell = first_cell(&spec);
        let base = cell_key(&spec, &cell, "fp");

        // Semantic edits each move the key...
        let mut longer = spec.clone();
        longer.run.duration = dctcp_sim::SimDuration::from_millis(16);
        assert_ne!(base, cell_key(&longer, &cell, "fp"));

        let mut sharper = cell.clone();
        sharper.scheme = dctcp_core::MarkingScheme::dctcp_packets(21);
        assert_ne!(base, cell_key(&spec, &sharper, "fp"));

        let mut wider = cell.clone();
        wider.flows = 3;
        assert_ne!(base, cell_key(&spec, &wider, "fp"));

        // ...but a pure label rename does not: the label is presentation,
        // applied at artifact render time.
        let mut renamed = cell.clone();
        renamed.label = "renamed".into();
        assert_eq!(base, cell_key(&spec, &renamed, "fp"));
    }

    /// The cheapest collective matrix: one incast cell on a k=4 fabric.
    fn collective_spec() -> ScenarioSpec {
        ScenarioSpec::parse(
            "\
[scenario]
name = ctiny
kind = collective

[topology fat_tree]
k = 4
hosts_per_edge = 2
ecmp_seed = 3

[workload collective]
pattern = incast
horizon = 200 ms

[run]
flows = 8
bytes_per_flow = 32 KB

[marking \"dctcp\"]
scheme = dctcp
k = 20 pkts
",
        )
        .unwrap()
    }

    #[test]
    fn collective_artifact_has_every_metric_and_is_thread_invariant() {
        let a = run_scenario(&collective_spec(), 1).unwrap();
        assert_eq!(a.points.len(), 1);
        let p = &a.points[0];
        for name in ScenarioKind::Collective.metrics() {
            let v = p.metric(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(v.is_finite(), "{name} = {v}");
        }
        assert!(p.metric("completion_ms").unwrap() > 0.0);
        assert!(p.metric("goodput_mbps").unwrap() > 0.0);
        let b = run_scenario(&collective_spec(), 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fat_tree_topology_and_workload_edits_move_the_cell_key() {
        let spec = collective_spec();
        let cell = first_cell(&spec);
        let base = cell_key(&spec, &cell, "fp");

        // Editing the [topology fat_tree] section moves the key...
        let mut wider = spec.clone();
        match &mut wider.topology {
            crate::spec::TopologySpec::FatTree(f) => f.k = 6,
            other => panic!("wrong topology: {other:?}"),
        }
        assert_ne!(base, cell_key(&wider, &cell, "fp"));

        // ...as does the routing configuration (the ECMP seed)...
        let mut rerouted = spec.clone();
        match &mut rerouted.topology {
            crate::spec::TopologySpec::FatTree(f) => f.ecmp_seed = 4,
            other => panic!("wrong topology: {other:?}"),
        }
        assert_ne!(base, cell_key(&rerouted, &cell, "fp"));

        // ...and every [workload collective] knob.
        let mut repatterned = spec.clone();
        repatterned.workload.as_mut().unwrap().pattern =
            dctcp_workloads::CollectivePattern::RingAllreduce;
        assert_ne!(base, cell_key(&repatterned, &cell, "fp"));

        let mut rechunked = spec.clone();
        rechunked.workload.as_mut().unwrap().chunk = 4096;
        assert_ne!(base, cell_key(&rechunked, &cell, "fp"));

        let mut resized = spec.clone();
        resized.run.bytes = 64 * 1024;
        assert_ne!(base, cell_key(&resized, &cell, "fp"));

        // A seed is a distinct cell, not the same key.
        let mut reseeded = cell.clone();
        reseeded.seed = 2;
        assert_ne!(base, cell_key(&spec, &reseeded, "fp"));
    }

    /// A two-marking fluid matrix at the paper's oscillatory operating
    /// point — integrates in milliseconds.
    fn fluid_spec() -> ScenarioSpec {
        ScenarioSpec::parse(
            "\
[scenario]
name = ftiny
kind = fluid

[topology]
bottleneck = 10 Gbps
rtt = 300 us

[run]
flows = 8, 64
warmup = 20 ms
duration = 30 ms
dt = 1 us

[marking \"dctcp\"]
scheme = dctcp
k = 40 pkts

[marking \"dt\"]
scheme = dt-dctcp
k1 = 30 pkts
k2 = 50 pkts
",
        )
        .unwrap()
    }

    #[test]
    fn fluid_artifact_has_every_metric_and_is_thread_invariant() {
        let a = run_scenario(&fluid_spec(), 1).unwrap();
        assert_eq!(a.points.len(), 4);
        for p in &a.points {
            for name in ScenarioKind::Fluid.metrics() {
                let v = p.metric(name).unwrap_or_else(|| panic!("missing {name}"));
                assert!(v.is_finite(), "{name} = {v}");
            }
        }
        // The oscillatory regime leaves its signature: a limit cycle at
        // N = 64 with near-full utilization, damped under hysteresis.
        let std_dc = a.metric("dctcp", 64, "queue_std").unwrap();
        let std_dt = a.metric("dt", 64, "queue_std").unwrap();
        assert!(std_dt < std_dc, "{std_dt} !< {std_dc}");
        assert!(a.metric("dctcp", 64, "utilization").unwrap() > 0.95);
        assert!(a.metric("dctcp", 64, "osc_cycles").unwrap() >= 1.0);

        let b = run_scenario(&fluid_spec(), 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fluid_run_edits_move_the_cell_key() {
        let spec = fluid_spec();
        let cell = first_cell(&spec);
        let base = cell_key(&spec, &cell, "fp");

        let mut finer = spec.clone();
        finer.run.dt = dctcp_sim::SimDuration::from_nanos(500);
        assert_ne!(base, cell_key(&finer, &cell, "fp"));

        let mut longer = spec.clone();
        longer.run.duration = dctcp_sim::SimDuration::from_millis(40);
        assert_ne!(base, cell_key(&longer, &cell, "fp"));

        let mut wider = cell.clone();
        wider.flows = 100_000;
        assert_ne!(base, cell_key(&spec, &wider, "fp"));
    }

    /// The cheapest churn matrix: 8 sources over 2 racks at 1 Gb/s,
    /// ~10 ms of measured arrivals.
    fn fct_spec() -> ScenarioSpec {
        ScenarioSpec::parse(
            "\
[scenario]
name = fcttiny
kind = fct

[topology]
bottleneck = 1 Gbps
rtt = 100 us

[run]
flows = 8
warmup = 2 ms
duration = 10 ms
seeds = 1

[workload fct]
load = 0.5
racks = 2
slots = 512
drain = 50 ms

[marking \"dctcp\"]
scheme = dctcp
k = 20 pkts
",
        )
        .unwrap()
    }

    #[test]
    fn fct_artifact_has_every_metric_and_is_thread_invariant() {
        let a = run_scenario(&fct_spec(), 1).unwrap();
        assert_eq!(a.points.len(), 1);
        let p = &a.points[0];
        for name in ScenarioKind::Fct.metrics() {
            let v = p.metric(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(v.is_finite(), "{name} = {v}");
        }
        assert!(p.metric("flows_completed").unwrap() > 100.0);
        assert!(p.metric("fct_short_p99_ms").unwrap() >= p.metric("fct_short_p50_ms").unwrap());
        assert!(p.metric("goodput_gbps").unwrap() > 0.0);
        // Deadlines are off, so the miss rate is exactly zero.
        assert_eq!(p.metric("deadline_miss_rate").unwrap(), 0.0);
        let b = run_scenario(&fct_spec(), 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fct_workload_edits_move_the_cell_key() {
        let spec = fct_spec();
        let cell = first_cell(&spec);
        let base = cell_key(&spec, &cell, "fp");

        let mut hotter = spec.clone();
        hotter.fct.as_mut().unwrap().load = 0.7;
        assert_ne!(base, cell_key(&hotter, &cell, "fp"));

        let mut heavier = spec.clone();
        heavier.fct.as_mut().unwrap().size_dist = "data_mining".into();
        assert_ne!(base, cell_key(&heavier, &cell, "fp"));

        let mut longer = spec.clone();
        longer.run.duration = dctcp_sim::SimDuration::from_millis(20);
        assert_ne!(base, cell_key(&longer, &cell, "fp"));

        let mut deadlined = spec.clone();
        deadlined.fct.as_mut().unwrap().deadline_slack = Some(2.0);
        assert_ne!(base, cell_key(&deadlined, &cell, "fp"));

        let mut reseeded = cell.clone();
        reseeded.seed = 2;
        assert_ne!(base, cell_key(&spec, &reseeded, "fp"));
    }

    #[test]
    fn fct_cells_reject_uneven_source_splits() {
        let spec = fct_spec();
        let mut cell = first_cell(&spec);
        cell.flows = 7;
        assert!(run_cell_raw(&spec, &cell, None).is_err());
        let mut sectionless = spec;
        sectionless.fct = None;
        let cell = first_cell(&sectionless);
        assert!(run_cell_raw(&sectionless, &cell, None).is_err());
    }

    #[test]
    fn fluid_cells_reject_non_dctcp_inputs() {
        // Byte-denominated thresholds and non-DCTCP congestion control
        // are parser-unreachable but must still fail cleanly for
        // programmatic callers.
        let spec = fluid_spec();
        let mut cell = first_cell(&spec);
        cell.scheme = dctcp_core::MarkingScheme::dctcp_bytes(60_000);
        assert!(run_cell_raw(&spec, &cell, None).is_err());

        let mut reno = spec.clone();
        reno.tcp.cc = dctcp_tcp::CongestionControl::Reno;
        let cell = first_cell(&reno);
        assert!(run_cell_raw(&reno, &cell, None).is_err());
    }

    #[test]
    fn code_fingerprint_moves_the_cell_key() {
        let spec = tiny_spec();
        let cell = first_cell(&spec);
        assert_ne!(
            cell_key(&spec, &cell, "build-a"),
            cell_key(&spec, &cell, "build-b")
        );
    }

    #[test]
    fn cold_then_warm_is_hit_only_and_byte_identical() {
        let spec = two_cell_spec();
        let cache = tmp_cache("warm");

        let (cold, s) = run_scenario_cached(&spec, 2, Some(&cache)).unwrap();
        assert_eq!((s.hits, s.misses), (0, 2));

        // Warm runs re-simulate nothing and render the exact same bytes,
        // at any thread count.
        for threads in [1, 2, 4] {
            let (warm, s) = run_scenario_cached(&spec, threads, Some(&cache)).unwrap();
            assert_eq!((s.hits, s.misses), (2, 0), "threads={threads}");
            assert_eq!(warm.render(), cold.render(), "threads={threads}");
        }
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn corrupt_entry_falls_back_to_recompute_and_repairs() {
        let spec = two_cell_spec();
        let cache = tmp_cache("corrupt");
        let (cold, _) = run_scenario_cached(&spec, 2, Some(&cache)).unwrap();

        // Truncate one of the two entries.
        let mut entries: Vec<_> = std::fs::read_dir(cache.root())
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .collect();
        entries.sort();
        assert_eq!(entries.len(), 2);
        let victim = &entries[0];
        let body = std::fs::read_to_string(victim).unwrap();
        std::fs::write(victim, &body[..body.len() / 3]).unwrap();

        let (warm, s) = run_scenario_cached(&spec, 2, Some(&cache)).unwrap();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(warm.render(), cold.render());

        // The recompute rewrote the entry: a second warm run is all hits.
        let (_, s) = run_scenario_cached(&spec, 2, Some(&cache)).unwrap();
        assert_eq!((s.hits, s.misses), (2, 0));
        let _ = std::fs::remove_dir_all(cache.root());
    }

    /// `two_cell_spec` with a `[limits]` section appended.
    fn two_cell_spec_with(limits: &str) -> ScenarioSpec {
        let base = "\
[scenario]
name = tiny2
kind = long_lived

[topology]
bottleneck = 1 Gbps

[run]
flows = 2
warmup = 20 ms
duration = 15 ms
trace = 100 us

[marking \"dctcp\"]
scheme = dctcp
k = 20 pkts

[marking \"dt\"]
scheme = dt-dctcp
k1 = 15 pkts
k2 = 25 pkts
";
        ScenarioSpec::parse(&format!("{base}\n[limits]\n{limits}")).unwrap()
    }

    #[test]
    fn injected_panics_are_quarantined_not_fatal() {
        let spec = two_cell_spec_with("retries = 0\ninject_panic = dt:2:1\n");
        let (a, s) = run_scenario_supervised(&spec, 2, None);
        assert_eq!(a.points.len(), 1);
        assert_eq!(a.failures.len(), 1);
        let f = &a.failures[0];
        assert_eq!((f.marking.as_str(), f.flows, f.seed), ("dt", 2, 1));
        assert_eq!(f.kind, "panicked");
        assert_eq!(f.attempts, 1);
        assert!(f.msg.contains("injected panic"), "{}", f.msg);
        assert_eq!((s.quarantined, s.retried, s.replayed), (1, 0, 0));

        // The all-or-nothing API promotes the quarantine to an error
        // naming the cell.
        let err = run_scenario_cached(&spec, 2, None).unwrap_err().to_string();
        assert!(err.contains("(dt, N=2, seed 1)"), "{err}");
        assert!(err.contains("panicked"), "{err}");
    }

    #[test]
    fn deadline_trips_quarantine_with_config_only_message() {
        let spec = two_cell_spec_with("retries = 0\ndeadline = 50 ms\ninject_stall = dctcp:2:1\n");
        let (a, s) = run_scenario_supervised(&spec, 2, None);
        assert_eq!(a.points.len(), 1);
        assert_eq!(a.failures.len(), 1);
        let f = &a.failures[0];
        assert_eq!(f.kind, "deadline");
        // The message is derived from the configured deadline, never
        // from measured wall time, so it is byte-stable across runs.
        let expected = CellError::DeadlineExceeded {
            deadline: spec.cell_deadline(),
        };
        assert_eq!(f.msg, expected.to_string());
        assert_eq!(s.quarantined, 1);
    }

    #[test]
    fn flaky_cells_retry_into_a_clean_artifact() {
        // First attempt of the dt cell panics; the retry succeeds and is
        // verified bit-identical against a clean run, so the artifact
        // matches an injection-free run of the same matrix exactly.
        let flaky = two_cell_spec_with("retries = 1\ninject_flaky = dt:2:1\n");
        let (a, s) = run_scenario_supervised(&flaky, 2, None);
        assert!(a.failures.is_empty(), "{:?}", a.failures);
        assert_eq!((s.retried, s.quarantined), (1, 0));

        let clean = run_scenario(&two_cell_spec(), 2).unwrap();
        assert_eq!(a.render(), clean.render());
    }

    #[test]
    fn flaky_cells_without_retry_budget_are_quarantined() {
        let spec = two_cell_spec_with("retries = 0\ninject_flaky = dt:2:1\n");
        let (a, s) = run_scenario_supervised(&spec, 2, None);
        assert_eq!(a.failures.len(), 1);
        assert_eq!(a.failures[0].kind, "panicked");
        assert_eq!(s.quarantined, 1);
    }

    #[test]
    fn journal_replays_deterministic_failures_on_resume() {
        let spec = two_cell_spec_with("retries = 0\ninject_panic = dt:2:1\n");
        let cache = tmp_cache("journal");

        let (cold, s) = run_scenario_supervised(&spec, 2, Some(&cache));
        assert_eq!((s.hits, s.misses, s.quarantined, s.replayed), (0, 2, 1, 0));

        // The resume serves the good cell from the cache and the broken
        // cell from the journal — nothing re-executes, bytes match.
        let (warm, s) = run_scenario_supervised(&spec, 2, Some(&cache));
        assert_eq!((s.hits, s.misses, s.quarantined, s.replayed), (1, 0, 1, 1));
        assert_eq!(warm.render(), cold.render());

        // Raising the retry budget invalidates the journaled record —
        // the cell runs again (and, still panicking, is re-quarantined
        // under the larger budget).
        let bigger = two_cell_spec_with("retries = 2\ninject_panic = dt:2:1\n");
        let (again, s) = run_scenario_supervised(&bigger, 2, Some(&cache));
        assert_eq!((s.hits, s.misses, s.replayed), (1, 1, 0));
        assert_eq!(again.failures[0].attempts, 3);
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn deadline_failures_are_never_replayed() {
        // A deadline miss depends on machine speed, so resumes re-run
        // the cell instead of trusting the journal.
        let spec = two_cell_spec_with("retries = 0\ndeadline = 50 ms\ninject_stall = dctcp:2:1\n");
        let cache = tmp_cache("deadline");

        let (cold, s) = run_scenario_supervised(&spec, 2, Some(&cache));
        assert_eq!((s.misses, s.quarantined, s.replayed), (2, 1, 0));

        let (warm, s) = run_scenario_supervised(&spec, 2, Some(&cache));
        assert_eq!((s.hits, s.misses, s.replayed), (1, 1, 0));
        assert_eq!(warm.render(), cold.render());
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn injections_are_cell_key_material() {
        let clean = two_cell_spec();
        let spec = two_cell_spec_with("inject_panic = dctcp:2:1\n");
        let injected = first_cell(&spec);
        let untouched = Cell {
            label: "dt".into(),
            scheme: spec.markings[1].1,
            ..injected.clone()
        };
        // The injected cell's key moves; the untouched cell still shares
        // the clean spec's key (cache reuse is per cell, not per file).
        assert_ne!(
            cell_key(&clean, &injected, "fp"),
            cell_key(&spec, &injected, "fp")
        );
        assert_eq!(
            cell_key(&clean, &untouched, "fp"),
            cell_key(&spec, &untouched, "fp")
        );
    }
}
