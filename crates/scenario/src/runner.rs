//! Executes a scenario's matrix and assembles the artifact.
//!
//! The matrix (markings × flow counts × seeds) fans out through
//! [`dctcp_parallel::par_try_map`], so artifacts are bit-identical for
//! any thread count; each cell is one deterministic simulation.

use dctcp_parallel::par_try_map;
use dctcp_sim::{FaultPlan, SimTime};
use dctcp_stats::oscillation;
use dctcp_workloads::{
    run_query_rounds_with_threads, LongLivedScenario, QueryWorkload, TestbedConfig,
};

use crate::artifact::{Artifact, Point};
use crate::spec::{DumbbellSpec, ScenarioKind, ScenarioSpec, TestbedSpec};
use crate::ScenarioError;

/// One (marking, flows, seed) cell awaiting execution.
#[derive(Debug, Clone)]
struct Cell {
    label: String,
    scheme: dctcp_core::MarkingScheme,
    flows: u32,
    seed: u64,
}

/// Runs every matrix point of a scenario across `threads` workers and
/// returns the artifact. `threads = 0` means
/// [`dctcp_parallel::available_threads`].
///
/// # Errors
///
/// Returns [`ScenarioError::Run`] wrapping the first (lowest-indexed)
/// failing cell's simulator error.
pub fn run_scenario(spec: &ScenarioSpec, threads: usize) -> Result<Artifact, ScenarioError> {
    let threads = if threads == 0 {
        dctcp_parallel::available_threads()
    } else {
        threads
    };
    let seeds: &[u64] = if spec.kind.is_query() {
        &spec.run.seeds
    } else {
        // Long-lived runs are seed-free (fully deterministic); pin the
        // artifact's seed column to 1.
        &[1]
    };
    let mut cells = Vec::with_capacity(spec.num_points());
    for (label, scheme) in &spec.markings {
        for &flows in &spec.run.flows {
            for &seed in seeds {
                cells.push(Cell {
                    label: label.clone(),
                    scheme: *scheme,
                    flows,
                    seed,
                });
            }
        }
    }

    let points = par_try_map(
        cells,
        threads,
        |_idx, cell| -> Result<Point, ScenarioError> {
            let run_err = |msg: String| ScenarioError::Run {
                scenario: spec.name.clone(),
                msg: format!(
                    "({}, N={}, seed {}): {msg}",
                    cell.label, cell.flows, cell.seed
                ),
            };
            let metrics = match (spec.kind, &spec.topology) {
                (ScenarioKind::LongLived, crate::spec::TopologySpec::Dumbbell(d)) => {
                    run_long_lived_cell(spec, d, &cell).map_err(|e| run_err(e.to_string()))?
                }
                (_, crate::spec::TopologySpec::Testbed(t)) => {
                    run_query_cell(spec, t, &cell).map_err(|e| run_err(e.to_string()))?
                }
                _ => return Err(run_err("kind/topology mismatch".into())),
            };
            Ok(Point {
                marking: cell.label,
                flows: cell.flows,
                seed: cell.seed,
                metrics,
            })
        },
    )?;

    Ok(Artifact {
        scenario: spec.name.clone(),
        kind: spec.kind,
        points,
    })
}

fn run_long_lived_cell(
    spec: &ScenarioSpec,
    d: &DumbbellSpec,
    cell: &Cell,
) -> Result<Vec<(String, f64)>, dctcp_sim::SimError> {
    let scenario = LongLivedScenario::builder()
        .flows(cell.flows)
        .bottleneck_gbps(d.bottleneck_bps as f64 / 1e9)
        .rtt_us(d.rtt.as_secs_f64() * 1e6)
        .marking(cell.scheme)
        .tcp(spec.tcp)
        .buffer(d.buffer)
        .warmup_secs(spec.run.warmup.as_secs_f64())
        .duration_secs(spec.run.duration.as_secs_f64())
        .trace_interval(spec.run.trace_interval)
        .start_stagger(spec.run.stagger)
        .build()?;
    let faults = spec.faults;
    let report = scenario.run_with_faults(|i| {
        let mut plan = FaultPlan::new();
        if let Some((from, until)) = faults.bleach {
            plan = plan.bleach_window(i.bottleneck, SimTime::ZERO + from, SimTime::ZERO + until);
        }
        if let Some((from, until)) = faults.down {
            plan = plan
                .at(
                    SimTime::ZERO + from,
                    i.bottleneck,
                    dctcp_sim::FaultAction::LinkDown,
                )
                .at(
                    SimTime::ZERO + until,
                    i.bottleneck,
                    dctcp_sim::FaultAction::LinkUp,
                );
        }
        plan
    })?;

    let osc = match &report.trace {
        Some(trace) => oscillation(trace),
        None => dctcp_stats::OscillationSummary::none(),
    };
    let duration_s = spec.run.duration.as_secs_f64();
    Ok(vec![
        ("queue_mean".into(), report.queue.mean),
        ("queue_std".into(), report.queue.std),
        ("queue_max".into(), report.queue.max),
        ("osc_amplitude".into(), osc.mean_amplitude),
        ("osc_max_amplitude".into(), osc.max_amplitude),
        ("osc_cycles".into(), osc.cycles as f64),
        ("mark_rate".into(), report.marks as f64 / duration_s),
        ("marks".into(), report.marks as f64),
        ("drops".into(), report.drops as f64),
        ("timeouts".into(), report.timeouts as f64),
        ("alpha_mean".into(), finite(report.alpha.mean())),
        ("utilization".into(), report.utilization(d.bottleneck_bps)),
        ("goodput_gbps".into(), report.goodput_bps / 1e9),
    ])
}

fn run_query_cell(
    spec: &ScenarioSpec,
    t: &TestbedSpec,
    cell: &Cell,
) -> Result<Vec<(String, f64)>, dctcp_sim::SimError> {
    let mut cfg = TestbedConfig::paper(cell.scheme);
    cfg.tcp = spec.tcp;
    cfg.bottleneck_buffer = t.bottleneck_buffer;
    cfg.other_buffer = t.other_buffer;
    cfg.link_gbps = t.link_bps as f64 / 1e9;
    cfg.link_delay_us = t.link_delay.as_nanos() / 1000;

    let mut wl = match spec.kind {
        ScenarioKind::Incast => QueryWorkload::incast(cell.flows, spec.run.rounds),
        _ => QueryWorkload::partition_aggregate(cell.flows, spec.run.rounds),
    };
    wl.seed = cell.seed;
    wl.bytes_per_flow = match spec.kind {
        ScenarioKind::Incast => spec.run.bytes,
        _ => spec.run.bytes / u64::from(cell.flows),
    };

    // The outer matrix already saturates the worker pool; run the
    // rounds of one cell serially to keep the fan-out single-level.
    let report = run_query_rounds_with_threads(&cfg, &wl, 1)?;

    let mut q = report.completions();
    let in_ms = |v: Option<f64>| v.map_or(0.0, |s| s * 1e3);
    let completed = report
        .rounds
        .iter()
        .filter(|r| r.completion.is_some())
        .count();
    let drops: u64 = report.rounds.iter().map(|r| r.drops).sum();
    Ok(vec![
        ("goodput_mbps".into(), report.mean_goodput_bps() / 1e6),
        ("completion_mean_ms".into(), in_ms(q.mean())),
        ("completion_p95_ms".into(), in_ms(q.quantile(0.95))),
        ("completion_p99_ms".into(), in_ms(q.quantile(0.99))),
        ("timeout_frac".into(), report.timeout_fraction()),
        ("rounds_completed".into(), completed as f64),
        ("drops".into(), drops as f64),
    ])
}

fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    // One tiny end-to-end run: the cheapest long-lived matrix that still
    // exercises tracing, oscillation metrics and determinism.
    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec::parse(
            "\
[scenario]
name = tiny
kind = long_lived

[topology]
bottleneck = 1 Gbps

# Warmup must outlast the ~15 ms slow-start transient at 1 Gb/s or
# the decaying head masks the steady-state oscillation.
[run]
flows = 2
warmup = 20 ms
duration = 15 ms
trace = 100 us

[marking \"dctcp\"]
scheme = dctcp
k = 20 pkts
",
        )
        .unwrap()
    }

    #[test]
    fn long_lived_artifact_has_every_metric() {
        let a = run_scenario(&tiny_spec(), 2).unwrap();
        assert_eq!(a.points.len(), 1);
        let p = &a.points[0];
        for name in ScenarioKind::LongLived.metrics() {
            let v = p.metric(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(v.is_finite(), "{name} = {v}");
        }
        assert!(p.metric("utilization").unwrap() > 0.8);
        assert!(p.metric("osc_cycles").unwrap() >= 1.0);
    }

    #[test]
    fn artifacts_are_thread_count_invariant() {
        let a = run_scenario(&tiny_spec(), 1).unwrap();
        let b = run_scenario(&tiny_spec(), 4).unwrap();
        assert_eq!(a, b);
    }
}
