//! Typed errors for scenario parsing, validation and execution.
//!
//! Every parse-time variant carries the 1-based source line it was
//! detected on, so a bad scenario file reads like a compiler
//! diagnostic: `fig11.scn:14: unknown key `treshold` in [marking]`.

use std::fmt;

/// Anything that can go wrong loading, validating or running a
/// scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// A line that is neither a section header, a `key = value` pair,
    /// a comment nor blank.
    Syntax {
        /// 1-based source line.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// A section name the format does not define.
    UnknownSection {
        /// 1-based source line.
        line: usize,
        /// The offending section name.
        section: String,
    },
    /// The same section (name + label) appeared twice.
    DuplicateSection {
        /// 1-based source line of the second occurrence.
        line: usize,
        /// The duplicated section, rendered with its label.
        section: String,
    },
    /// A key the containing section does not define.
    UnknownKey {
        /// 1-based source line.
        line: usize,
        /// The section the key appeared in.
        section: String,
        /// The offending key.
        key: String,
    },
    /// The same key appeared twice in one section.
    DuplicateKey {
        /// 1-based source line of the second occurrence.
        line: usize,
        /// The duplicated key.
        key: String,
    },
    /// A required section is absent.
    MissingSection {
        /// The missing section name.
        section: String,
    },
    /// A required key is absent from a section.
    MissingKey {
        /// The section the key belongs in.
        section: String,
        /// The missing key.
        key: String,
    },
    /// A value failed to parse — a malformed number, an unknown unit
    /// suffix, a bad enum name.
    BadValue {
        /// 1-based source line.
        line: usize,
        /// The key whose value is bad.
        key: String,
        /// What was wrong.
        msg: String,
    },
    /// A value parsed but is outside its legal range (zero duration,
    /// `K1 > K2`, flow count beyond the supported matrix, …).
    OutOfRange {
        /// 1-based source line.
        line: usize,
        /// The key whose value is out of range.
        key: String,
        /// The violated constraint.
        msg: String,
    },
    /// A simulation failed while running the scenario.
    Run {
        /// The scenario that failed.
        scenario: String,
        /// The underlying simulator error, rendered.
        msg: String,
    },
    /// File I/O failed.
    Io {
        /// The path involved.
        path: String,
        /// The rendered I/O error.
        msg: String,
    },
    /// An artifact file is malformed or from the wrong schema/scenario.
    BadArtifact {
        /// The path involved.
        path: String,
        /// What was wrong.
        msg: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            ScenarioError::UnknownSection { line, section } => {
                write!(f, "line {line}: unknown section [{section}]")
            }
            ScenarioError::DuplicateSection { line, section } => {
                write!(f, "line {line}: duplicate section [{section}]")
            }
            ScenarioError::UnknownKey { line, section, key } => {
                write!(f, "line {line}: unknown key `{key}` in [{section}]")
            }
            ScenarioError::DuplicateKey { line, key } => {
                write!(f, "line {line}: duplicate key `{key}`")
            }
            ScenarioError::MissingSection { section } => {
                write!(f, "missing required section [{section}]")
            }
            ScenarioError::MissingKey { section, key } => {
                write!(f, "missing required key `{key}` in [{section}]")
            }
            ScenarioError::BadValue { line, key, msg } => {
                write!(f, "line {line}: bad value for `{key}`: {msg}")
            }
            ScenarioError::OutOfRange { line, key, msg } => {
                write!(f, "line {line}: `{key}` out of range: {msg}")
            }
            ScenarioError::Run { scenario, msg } => {
                write!(f, "scenario `{scenario}` failed to run: {msg}")
            }
            ScenarioError::Io { path, msg } => write!(f, "{path}: {msg}"),
            ScenarioError::BadArtifact { path, msg } => {
                write!(f, "{path}: bad artifact: {msg}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_line_numbers() {
        let e = ScenarioError::UnknownKey {
            line: 14,
            section: "marking".into(),
            key: "treshold".into(),
        };
        assert_eq!(
            e.to_string(),
            "line 14: unknown key `treshold` in [marking]"
        );
    }

    #[test]
    fn display_out_of_range() {
        let e = ScenarioError::OutOfRange {
            line: 3,
            key: "k1".into(),
            msg: "K1 must not exceed K2".into(),
        };
        assert!(e.to_string().contains("out of range"));
    }
}
