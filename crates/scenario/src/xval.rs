//! Cross-validation envelopes: fluid-model artifacts pinned against
//! packet-engine anchors.
//!
//! A fluid scenario may carry `[xval "label"]` sections, each tying one
//! of its metrics to the same metric in a *packet* scenario's artifact
//! at overlapping flow counts:
//!
//! ```text
//! [xval "amplitude-vs-fig05"]
//! packet = fig05_oscillation   # anchor artifact (<name>.json)
//! marking = dctcp              # fluid marking label
//! packet_marking = dctcp       # anchor marking label (default: marking)
//! metric = osc_amplitude       # fluid metric
//! packet_metric = osc_amplitude # anchor metric (default: metric)
//! flows = 2, 8, 16, 32         # overlap (must be in this sweep)
//! max_rel_err = 0.5            # |fluid − packet| / |packet| bound
//! ```
//!
//! The `fluid_check` binary loads both artifacts and gates on the
//! relative-error band. This is what licenses extrapolation: a fluid
//! model that tracks the packet engine where both can run is trusted
//! where only it can (the `N = 10⁴ … 10⁶` scale-out sweeps).

use crate::artifact::Artifact;
use crate::parse::{parse_f64, parse_list_u32, Document};
use crate::spec::{RunSpec, ScenarioKind};
use crate::ScenarioError;

/// One `[xval "label"]` section: a relative-error band between a fluid
/// metric and a packet anchor's metric at shared flow counts.
#[derive(Debug, Clone, PartialEq)]
pub struct XvalSpec {
    /// The section label.
    pub label: String,
    /// Anchor scenario name (the artifact file stem).
    pub packet_scenario: String,
    /// Metric in the fluid artifact.
    pub metric: String,
    /// Metric in the anchor artifact (defaults to `metric`).
    pub packet_metric: String,
    /// Marking label in the fluid artifact.
    pub marking: String,
    /// Marking label in the anchor artifact (defaults to `marking`).
    pub packet_marking: String,
    /// Flow counts compared (each must be in the fluid sweep).
    pub flows: Vec<u32>,
    /// Maximum allowed `|fluid − packet| / |packet|`.
    pub max_rel_err: f64,
}

/// One flow count outside its cross-validation band.
#[derive(Debug, Clone, PartialEq)]
pub struct XvalViolation {
    /// The violated `[xval]` label.
    pub label: String,
    /// The flow count compared.
    pub flows: u32,
    /// Fluid-model value.
    pub fluid: f64,
    /// Packet-anchor value.
    pub packet: f64,
    /// Observed relative error.
    pub rel_err: f64,
    /// The committed bound.
    pub max_rel_err: f64,
}

impl std::fmt::Display for XvalViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "xval \"{}\": N={}: fluid {:.4} vs packet {:.4} \
             (rel err {:.3} > {:.3})",
            self.label, self.flows, self.fluid, self.packet, self.rel_err, self.max_rel_err
        )
    }
}

/// The result of checking one `[xval]` section.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct XvalReport {
    /// Flow counts compared and inside the band.
    pub compared: usize,
    /// Skip messages (quarantined anchor cells — incomplete, not
    /// wrong).
    pub skipped: Vec<String>,
    /// Out-of-band comparisons.
    pub violations: Vec<XvalViolation>,
}

/// Parses every `[xval "label"]` section, validating the fluid metric
/// name, the marking label, the flow overlap and the error band. Any
/// `[xval]` section outside a fluid scenario is an error.
///
/// # Errors
///
/// Returns a [`ScenarioError`] naming the offending line.
pub fn parse_xvals(
    doc: &Document,
    kind: ScenarioKind,
    run: &RunSpec,
    markings: &[(String, dctcp_core::MarkingScheme)],
) -> Result<Vec<XvalSpec>, ScenarioError> {
    let mut out: Vec<XvalSpec> = Vec::new();
    for s in doc.sections_named("xval") {
        if kind != ScenarioKind::Fluid {
            return Err(ScenarioError::Syntax {
                line: s.line,
                msg: format!(
                    "[xval] sections are only valid for fluid scenarios, not {}",
                    kind.name()
                ),
            });
        }
        let label = s.label.clone().ok_or_else(|| ScenarioError::Syntax {
            line: s.line,
            msg: "xval sections need a label: [xval \"amplitude-vs-fig05\"]".into(),
        })?;
        if out.iter().any(|x| x.label == label) {
            return Err(ScenarioError::DuplicateSection {
                line: s.line,
                section: s.display_name(),
            });
        }
        s.reject_unknown_keys(&[
            "packet",
            "metric",
            "packet_metric",
            "marking",
            "packet_marking",
            "flows",
            "max_rel_err",
        ])?;

        let packet_entry = s.require("packet")?;
        let packet_scenario = packet_entry.value.clone();
        if packet_scenario.is_empty()
            || packet_scenario.contains(|c: char| c.is_whitespace() || c == '/')
        {
            return Err(ScenarioError::BadValue {
                line: packet_entry.line,
                key: "packet".into(),
                msg: "packet must be a scenario name without spaces or `/`".into(),
            });
        }

        let metric_entry = s.require("metric")?;
        let metric = metric_entry.value.clone();
        if !ScenarioKind::Fluid.metrics().contains(&metric.as_str()) {
            return Err(ScenarioError::BadValue {
                line: metric_entry.line,
                key: "metric".into(),
                msg: format!(
                    "unknown fluid metric `{metric}` (one of: {})",
                    ScenarioKind::Fluid.metrics().join(", ")
                ),
            });
        }
        // The anchor's metric name belongs to another scenario's kind;
        // `fluid_check` validates it against the loaded artifact.
        let packet_metric = s
            .get("packet_metric")
            .map_or_else(|| metric.clone(), |e| e.value.clone());

        let marking_entry = s.require("marking")?;
        let marking = marking_entry.value.clone();
        if !markings.iter().any(|(l, _)| *l == marking) {
            return Err(ScenarioError::BadValue {
                line: marking_entry.line,
                key: "marking".into(),
                msg: format!("no [marking \"{marking}\"] section in this scenario"),
            });
        }
        let packet_marking = s
            .get("packet_marking")
            .map_or_else(|| marking.clone(), |e| e.value.clone());

        let flows_entry = s.require("flows")?;
        let flows = parse_list_u32(flows_entry)?;
        if flows.is_empty() {
            return Err(ScenarioError::BadValue {
                line: flows_entry.line,
                key: "flows".into(),
                msg: "at least one flow count required".into(),
            });
        }
        for &n in &flows {
            if !run.flows.contains(&n) {
                return Err(ScenarioError::BadValue {
                    line: flows_entry.line,
                    key: "flows".into(),
                    msg: format!("flow count {n} is not in this scenario's sweep"),
                });
            }
        }

        let err_entry = s.require("max_rel_err")?;
        let max_rel_err = parse_f64(err_entry)?;
        if !(max_rel_err.is_finite() && max_rel_err > 0.0) {
            return Err(ScenarioError::OutOfRange {
                line: err_entry.line,
                key: "max_rel_err".into(),
                msg: "max_rel_err must be a positive number".into(),
            });
        }

        out.push(XvalSpec {
            label,
            packet_scenario,
            metric,
            packet_metric,
            marking,
            packet_marking,
            flows,
            max_rel_err,
        });
    }
    Ok(out)
}

/// Evaluates one `[xval]` band: for each flow count, compares the
/// seed-averaged fluid metric against the seed-averaged anchor metric.
/// Anchor cells under quarantine are *skipped* (reported, not passed);
/// a missing point or metric in either artifact is an error — a stale
/// artifact must never read as a pass.
///
/// # Errors
///
/// Returns a message naming the missing point or metric.
pub fn check_xval(x: &XvalSpec, fluid: &Artifact, packet: &Artifact) -> Result<XvalReport, String> {
    let mut report = XvalReport::default();
    let quarantined = packet.quarantined_markings();
    for &n in &x.flows {
        if quarantined.contains(&x.packet_marking.as_str()) {
            report.skipped.push(format!(
                "xval \"{}\": N={n}: anchor marking `{}` is quarantined in `{}`",
                x.label, x.packet_marking, packet.scenario
            ));
            continue;
        }
        let Some(f) = fluid.metric(&x.marking, n, &x.metric) else {
            return Err(format!(
                "fluid artifact `{}` lacks {} for ({}, N={n}) — stale artifact? re-run repro",
                fluid.scenario, x.metric, x.marking
            ));
        };
        let Some(p) = packet.metric(&x.packet_marking, n, &x.packet_metric) else {
            return Err(format!(
                "anchor artifact `{}` lacks {} for ({}, N={n}) — stale artifact? re-run repro",
                packet.scenario, x.packet_metric, x.packet_marking
            ));
        };
        let rel_err = if p == 0.0 {
            if f == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (f - p).abs() / p.abs()
        };
        if rel_err > x.max_rel_err {
            report.violations.push(XvalViolation {
                label: x.label.clone(),
                flows: n,
                fluid: f,
                packet: p,
                rel_err,
                max_rel_err: x.max_rel_err,
            });
        } else {
            report.compared += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{FailureCell, Point};

    fn xval() -> XvalSpec {
        XvalSpec {
            label: "amp".into(),
            packet_scenario: "anchor".into(),
            metric: "osc_amplitude".into(),
            packet_metric: "osc_amplitude".into(),
            marking: "dctcp".into(),
            packet_marking: "dctcp".into(),
            flows: vec![2, 8],
            max_rel_err: 0.5,
        }
    }

    fn artifact(name: &str, kind: ScenarioKind, values: &[(u32, f64)]) -> Artifact {
        Artifact {
            scenario: name.into(),
            kind,
            points: values
                .iter()
                .map(|&(flows, v)| Point {
                    marking: "dctcp".into(),
                    flows,
                    seed: 1,
                    metrics: vec![("osc_amplitude".into(), v)],
                })
                .collect(),
            failures: Vec::new(),
        }
    }

    #[test]
    fn in_band_comparisons_pass_and_count() {
        let fluid = artifact("f", ScenarioKind::Fluid, &[(2, 11.0), (8, 20.0)]);
        let packet = artifact("anchor", ScenarioKind::LongLived, &[(2, 10.0), (8, 18.0)]);
        let r = check_xval(&xval(), &fluid, &packet).unwrap();
        assert_eq!(r.compared, 2);
        assert!(r.violations.is_empty());
        assert!(r.skipped.is_empty());
    }

    #[test]
    fn out_of_band_comparisons_are_violations() {
        let fluid = artifact("f", ScenarioKind::Fluid, &[(2, 30.0), (8, 20.0)]);
        let packet = artifact("anchor", ScenarioKind::LongLived, &[(2, 10.0), (8, 18.0)]);
        let r = check_xval(&xval(), &fluid, &packet).unwrap();
        assert_eq!(r.compared, 1);
        assert_eq!(r.violations.len(), 1);
        let v = &r.violations[0];
        assert_eq!(v.flows, 2);
        assert!((v.rel_err - 2.0).abs() < 1e-12);
        assert!(v.to_string().contains("N=2"), "{v}");
    }

    #[test]
    fn missing_points_are_stale_errors_not_passes() {
        let fluid = artifact("f", ScenarioKind::Fluid, &[(2, 11.0)]);
        let packet = artifact("anchor", ScenarioKind::LongLived, &[(2, 10.0), (8, 18.0)]);
        let err = check_xval(&xval(), &fluid, &packet).unwrap_err();
        assert!(err.contains("stale"), "{err}");
        let fluid = artifact("f", ScenarioKind::Fluid, &[(2, 11.0), (8, 20.0)]);
        let packet = artifact("anchor", ScenarioKind::LongLived, &[(2, 10.0)]);
        assert!(check_xval(&xval(), &fluid, &packet).is_err());
    }

    #[test]
    fn quarantined_anchor_markings_skip_not_pass() {
        let fluid = artifact("f", ScenarioKind::Fluid, &[(2, 11.0), (8, 20.0)]);
        let mut packet = artifact("anchor", ScenarioKind::LongLived, &[(2, 10.0)]);
        packet.failures.push(FailureCell {
            marking: "dctcp".into(),
            flows: 8,
            seed: 1,
            attempts: 2,
            kind: "panicked".into(),
            msg: "boom".into(),
        });
        let r = check_xval(&xval(), &fluid, &packet).unwrap();
        assert_eq!(r.compared, 0);
        assert_eq!(r.skipped.len(), 2);
        assert!(r.violations.is_empty());
    }

    #[test]
    fn zero_packet_value_only_matches_zero_fluid_value() {
        let mut x = xval();
        x.flows = vec![2];
        let packet = artifact("anchor", ScenarioKind::LongLived, &[(2, 0.0)]);
        let exact = artifact("f", ScenarioKind::Fluid, &[(2, 0.0)]);
        assert!(check_xval(&x, &exact, &packet)
            .unwrap()
            .violations
            .is_empty());
        let off = artifact("f", ScenarioKind::Fluid, &[(2, 0.5)]);
        let r = check_xval(&x, &off, &packet).unwrap();
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].rel_err.is_infinite());
    }
}
