//! The line-oriented scenario surface syntax.
//!
//! A scenario file is a sequence of `[section]` / `[section "label"]`
//! headers, each followed by `key = value` lines. `#` starts a comment
//! anywhere on a line; blank lines are ignored. There is deliberately
//! no nesting, quoting (beyond section labels) or escaping — the format
//! is hand-written, hand-reviewed configuration, not a data interchange
//! language — and the parser is dependency-free to keep the workspace
//! hermetic.
//!
//! This module parses the *shape* (sections, keys, raw values, line
//! numbers) plus the unit-suffixed value grammar (`30 ms`, `10 Gbps`,
//! `40 pkts`, `64 KB`, lists). The (private) `spec` module turns the
//! shape into a typed [`crate::ScenarioSpec`].

use dctcp_core::QueueLevel;
use dctcp_sim::{Capacity, SimDuration};

use crate::ScenarioError;

/// One `key = value` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawEntry {
    /// The key, trimmed.
    pub key: String,
    /// The raw value, trimmed, comments stripped.
    pub value: String,
    /// 1-based source line.
    pub line: usize,
}

/// One `[name]` or `[name "label"]` section with its entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawSection {
    /// Section name (the part before the label).
    pub name: String,
    /// Optional quoted label.
    pub label: Option<String>,
    /// 1-based source line of the header.
    pub line: usize,
    /// Entries in file order.
    pub entries: Vec<RawEntry>,
}

impl RawSection {
    /// The section rendered as it appeared, for diagnostics.
    pub fn display_name(&self) -> String {
        match &self.label {
            Some(l) => format!("{} \"{}\"", self.name, l),
            None => self.name.clone(),
        }
    }

    /// Looks up a key's raw entry.
    pub fn get(&self, key: &str) -> Option<&RawEntry> {
        self.entries.iter().find(|e| e.key == key)
    }

    /// Looks up a key's raw value.
    pub fn value(&self, key: &str) -> Option<&str> {
        self.get(key).map(|e| e.value.as_str())
    }

    /// A required key's entry, or [`ScenarioError::MissingKey`].
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::MissingKey`] when absent.
    pub fn require(&self, key: &str) -> Result<&RawEntry, ScenarioError> {
        self.get(key).ok_or_else(|| ScenarioError::MissingKey {
            section: self.display_name(),
            key: key.to_string(),
        })
    }

    /// Errors on any entry whose key is not in `allowed` — the guard
    /// every typed section applies after consuming what it knows.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::UnknownKey`] for the first stray key.
    pub fn reject_unknown_keys(&self, allowed: &[&str]) -> Result<(), ScenarioError> {
        for e in &self.entries {
            if !allowed.contains(&e.key.as_str()) {
                return Err(ScenarioError::UnknownKey {
                    line: e.line,
                    section: self.display_name(),
                    key: e.key.clone(),
                });
            }
        }
        Ok(())
    }
}

/// A parsed file: sections in file order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Sections in file order.
    pub sections: Vec<RawSection>,
}

impl Document {
    /// Parses the surface syntax, checking structure only: headers and
    /// `key = value` shape, duplicate sections (same name *and* label)
    /// and duplicate keys within a section.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Syntax`], [`ScenarioError::DuplicateSection`]
    /// or [`ScenarioError::DuplicateKey`].
    pub fn parse(src: &str) -> Result<Document, ScenarioError> {
        let mut sections: Vec<RawSection> = Vec::new();
        for (idx, raw_line) in src.lines().enumerate() {
            let line = idx + 1;
            let text = match raw_line.find('#') {
                Some(pos) => &raw_line[..pos],
                None => raw_line,
            };
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            if let Some(rest) = text.strip_prefix('[') {
                let inner = rest
                    .strip_suffix(']')
                    .ok_or_else(|| ScenarioError::Syntax {
                        line,
                        msg: format!("unterminated section header `{text}`"),
                    })?;
                let (name, label) = parse_header(inner, line)?;
                if sections.iter().any(|s| s.name == name && s.label == label) {
                    return Err(ScenarioError::DuplicateSection {
                        line,
                        section: match &label {
                            Some(l) => format!("{name} \"{l}\""),
                            None => name,
                        },
                    });
                }
                sections.push(RawSection {
                    name,
                    label,
                    line,
                    entries: Vec::new(),
                });
                continue;
            }
            let Some(eq) = text.find('=') else {
                return Err(ScenarioError::Syntax {
                    line,
                    msg: format!("expected `key = value` or `[section]`, got `{text}`"),
                });
            };
            let key = text[..eq].trim().to_string();
            let value = text[eq + 1..].trim().to_string();
            if key.is_empty() {
                return Err(ScenarioError::Syntax {
                    line,
                    msg: "empty key before `=`".into(),
                });
            }
            let Some(section) = sections.last_mut() else {
                return Err(ScenarioError::Syntax {
                    line,
                    msg: format!("`{key}` appears before any [section] header"),
                });
            };
            if section.entries.iter().any(|e| e.key == key) {
                return Err(ScenarioError::DuplicateKey { line, key });
            }
            section.entries.push(RawEntry { key, value, line });
        }
        Ok(Document { sections })
    }

    /// All sections with the given name, in file order.
    pub fn sections_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a RawSection> {
        self.sections.iter().filter(move |s| s.name == name)
    }

    /// The unique unlabeled section of a name, if present.
    pub fn section(&self, name: &str) -> Option<&RawSection> {
        self.sections
            .iter()
            .find(|s| s.name == name && s.label.is_none())
    }
}

fn parse_header(inner: &str, line: usize) -> Result<(String, Option<String>), ScenarioError> {
    let inner = inner.trim();
    match inner.find('"') {
        None => {
            // `[name]` or the unquoted-label form `[name label]`
            // (shorthand for `[name "label"]`, used by fixed vocabulary
            // labels like `[topology fat_tree]`).
            let mut words = inner.split_whitespace();
            let name = words.next().unwrap_or_default();
            let label = words.next();
            if name.is_empty()
                || !is_ident(name)
                || label.is_some_and(|l| !is_ident(l))
                || words.next().is_some()
            {
                return Err(ScenarioError::Syntax {
                    line,
                    msg: format!("bad section name `{inner}`"),
                });
            }
            Ok((name.to_string(), label.map(String::from)))
        }
        Some(q) => {
            let name = inner[..q].trim();
            let rest = &inner[q + 1..];
            let end = rest.find('"').ok_or_else(|| ScenarioError::Syntax {
                line,
                msg: "unterminated section label quote".into(),
            })?;
            if !rest[end + 1..].trim().is_empty() {
                return Err(ScenarioError::Syntax {
                    line,
                    msg: "trailing text after section label".into(),
                });
            }
            if name.is_empty() || !is_ident(name) {
                return Err(ScenarioError::Syntax {
                    line,
                    msg: format!("bad section name `{name}`"),
                });
            }
            Ok((name.to_string(), Some(rest[..end].to_string())))
        }
    }
}

fn is_ident(s: &str) -> bool {
    s.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn bad(entry: &RawEntry, msg: impl Into<String>) -> ScenarioError {
    ScenarioError::BadValue {
        line: entry.line,
        key: entry.key.clone(),
        msg: msg.into(),
    }
}

/// Splits `12.5 ms` into the numeric part and the (possibly empty)
/// suffix.
fn split_unit(value: &str) -> (&str, &str) {
    let trimmed = value.trim();
    let split = trimmed
        .char_indices()
        .find(|&(_, c)| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+'))
        .map_or(trimmed.len(), |(i, _)| i);
    (trimmed[..split].trim(), trimmed[split..].trim())
}

/// Parses a duration with a unit suffix: `ns`, `us`, `ms` or `s`.
///
/// # Errors
///
/// Returns [`ScenarioError::BadValue`] for a malformed number or an
/// unknown suffix, [`ScenarioError::OutOfRange`] for negative values.
pub fn parse_duration(entry: &RawEntry) -> Result<SimDuration, ScenarioError> {
    let (num, unit) = split_unit(&entry.value);
    let v: f64 = num
        .parse()
        .map_err(|_| bad(entry, format!("`{num}` is not a number")))?;
    let scale = match unit {
        "ns" => 1e-9,
        "us" => 1e-6,
        "ms" => 1e-3,
        "s" => 1.0,
        "" => return Err(bad(entry, "missing duration unit (ns/us/ms/s)")),
        u => {
            return Err(bad(
                entry,
                format!("unknown duration unit `{u}` (ns/us/ms/s)"),
            ))
        }
    };
    if v < 0.0 {
        return Err(ScenarioError::OutOfRange {
            line: entry.line,
            key: entry.key.clone(),
            msg: "duration must not be negative".into(),
        });
    }
    Ok(SimDuration::from_secs_f64(v * scale))
}

/// Parses a link rate: `10 Gbps`, `800 Mbps`, `1000000 bps`.
///
/// # Errors
///
/// Returns [`ScenarioError::BadValue`] / [`ScenarioError::OutOfRange`].
pub fn parse_rate_bps(entry: &RawEntry) -> Result<u64, ScenarioError> {
    let (num, unit) = split_unit(&entry.value);
    let v: f64 = num
        .parse()
        .map_err(|_| bad(entry, format!("`{num}` is not a number")))?;
    let scale = match unit {
        "Gbps" => 1e9,
        "Mbps" => 1e6,
        "Kbps" => 1e3,
        "bps" => 1.0,
        "" => return Err(bad(entry, "missing rate unit (Gbps/Mbps/Kbps/bps)")),
        u => {
            return Err(bad(
                entry,
                format!("unknown rate unit `{u}` (Gbps/Mbps/Kbps/bps)"),
            ))
        }
    };
    if v <= 0.0 {
        return Err(ScenarioError::OutOfRange {
            line: entry.line,
            key: entry.key.clone(),
            msg: "rate must be positive".into(),
        });
    }
    Ok((v * scale) as u64)
}

/// Parses a queue level: `40 pkts`, `32 KB`, `1 MB`, `1500 bytes`.
///
/// # Errors
///
/// Returns [`ScenarioError::BadValue`] / [`ScenarioError::OutOfRange`].
pub fn parse_level(entry: &RawEntry) -> Result<QueueLevel, ScenarioError> {
    let (num, unit) = split_unit(&entry.value);
    let err_nan = || bad(entry, format!("`{num}` is not a whole number"));
    let out_of_range = |msg: &str| ScenarioError::OutOfRange {
        line: entry.line,
        key: entry.key.clone(),
        msg: msg.into(),
    };
    let level = match unit {
        "pkts" | "pkt" => QueueLevel::Packets(num.parse().map_err(|_| err_nan())?),
        "KB" => QueueLevel::Bytes(num.parse::<u64>().map_err(|_| err_nan())? * 1024),
        "MB" => QueueLevel::Bytes(num.parse::<u64>().map_err(|_| err_nan())? * 1024 * 1024),
        "bytes" | "B" => QueueLevel::Bytes(num.parse().map_err(|_| err_nan())?),
        "" => return Err(bad(entry, "missing unit (pkts/KB/MB/bytes)")),
        u => return Err(bad(entry, format!("unknown unit `{u}` (pkts/KB/MB/bytes)"))),
    };
    let zero = match level {
        QueueLevel::Packets(p) => p == 0,
        QueueLevel::Bytes(b) => b == 0,
    };
    if zero {
        return Err(out_of_range("level must be positive"));
    }
    Ok(level)
}

/// Parses a buffer capacity (same grammar as [`parse_level`]).
///
/// # Errors
///
/// Returns [`ScenarioError::BadValue`] / [`ScenarioError::OutOfRange`].
pub fn parse_capacity(entry: &RawEntry) -> Result<Capacity, ScenarioError> {
    Ok(match parse_level(entry)? {
        QueueLevel::Packets(p) => Capacity::Packets(p),
        QueueLevel::Bytes(b) => Capacity::Bytes(b),
    })
}

/// Parses a byte count: `64 KB`, `1 MB`, `20000 bytes`.
///
/// # Errors
///
/// Returns [`ScenarioError::BadValue`] for packet-denominated or
/// malformed values.
pub fn parse_bytes(entry: &RawEntry) -> Result<u64, ScenarioError> {
    match parse_level(entry)? {
        QueueLevel::Bytes(b) => Ok(b),
        QueueLevel::Packets(_) => Err(bad(entry, "expected a byte size (KB/MB/bytes), not pkts")),
    }
}

/// Parses a bare float.
///
/// # Errors
///
/// Returns [`ScenarioError::BadValue`] for malformed numbers.
pub fn parse_f64(entry: &RawEntry) -> Result<f64, ScenarioError> {
    entry
        .value
        .parse()
        .map_err(|_| bad(entry, format!("`{}` is not a number", entry.value)))
}

/// Parses a bare unsigned integer.
///
/// # Errors
///
/// Returns [`ScenarioError::BadValue`] for malformed numbers.
pub fn parse_u64(entry: &RawEntry) -> Result<u64, ScenarioError> {
    entry
        .value
        .parse()
        .map_err(|_| bad(entry, format!("`{}` is not a whole number", entry.value)))
}

/// Parses a bare `u32`.
///
/// # Errors
///
/// Returns [`ScenarioError::BadValue`] for malformed numbers.
pub fn parse_u32(entry: &RawEntry) -> Result<u32, ScenarioError> {
    entry
        .value
        .parse()
        .map_err(|_| bad(entry, format!("`{}` is not a whole number", entry.value)))
}

/// Parses a comma-separated list of `u32` (`2, 8, 32`).
///
/// # Errors
///
/// Returns [`ScenarioError::BadValue`] for malformed or empty lists.
pub fn parse_list_u32(entry: &RawEntry) -> Result<Vec<u32>, ScenarioError> {
    let mut out = Vec::new();
    for part in entry.value.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Err(bad(entry, "empty element in list"));
        }
        out.push(
            part.parse()
                .map_err(|_| bad(entry, format!("`{part}` is not a whole number")))?,
        );
    }
    Ok(out)
}

/// Parses a comma-separated list of `u64`.
///
/// # Errors
///
/// Returns [`ScenarioError::BadValue`] for malformed or empty lists.
pub fn parse_list_u64(entry: &RawEntry) -> Result<Vec<u64>, ScenarioError> {
    let mut out = Vec::new();
    for part in entry.value.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Err(bad(entry, "empty element in list"));
        }
        out.push(
            part.parse()
                .map_err(|_| bad(entry, format!("`{part}` is not a whole number")))?,
        );
    }
    Ok(out)
}

/// Parses a `from .. until` window of durations (`20 ms .. 30 ms`).
///
/// # Errors
///
/// Returns [`ScenarioError::BadValue`] for malformed windows and
/// [`ScenarioError::OutOfRange`] when `from >= until`.
pub fn parse_window(entry: &RawEntry) -> Result<(SimDuration, SimDuration), ScenarioError> {
    let Some((a, b)) = entry.value.split_once("..") else {
        return Err(bad(entry, "expected `<from> .. <until>`"));
    };
    let sub = |v: &str| RawEntry {
        key: entry.key.clone(),
        value: v.trim().to_string(),
        line: entry.line,
    };
    let from = parse_duration(&sub(a))?;
    let until = parse_duration(&sub(b))?;
    if from >= until {
        return Err(ScenarioError::OutOfRange {
            line: entry.line,
            key: entry.key.clone(),
            msg: "window start must precede its end".into(),
        });
    }
    Ok((from, until))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: &str, value: &str) -> RawEntry {
        RawEntry {
            key: key.into(),
            value: value.into(),
            line: 7,
        }
    }

    #[test]
    fn parses_sections_labels_and_entries() {
        let doc = Document::parse(
            "# a scenario\n[scenario]\nname = x\n\n[marking \"dt\"]\nscheme = dt-dctcp # inline\n",
        )
        .unwrap();
        assert_eq!(doc.sections.len(), 2);
        assert_eq!(doc.section("scenario").unwrap().value("name"), Some("x"));
        let m = doc.sections_named("marking").next().unwrap();
        assert_eq!(m.label.as_deref(), Some("dt"));
        assert_eq!(m.value("scheme"), Some("dt-dctcp"));
        assert_eq!(m.get("scheme").unwrap().line, 6);
    }

    #[test]
    fn rejects_duplicate_section() {
        let err = Document::parse("[run]\n[run]\n").unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::DuplicateSection { line: 2, .. }
        ));
        // Same name with different labels is fine.
        assert!(Document::parse("[marking \"a\"]\n[marking \"b\"]\n").is_ok());
    }

    #[test]
    fn rejects_duplicate_key() {
        let err = Document::parse("[run]\nflows = 1\nflows = 2\n").unwrap_err();
        assert!(matches!(err, ScenarioError::DuplicateKey { line: 3, .. }));
    }

    #[test]
    fn rejects_key_before_section() {
        let err = Document::parse("flows = 1\n").unwrap_err();
        assert!(matches!(err, ScenarioError::Syntax { line: 1, .. }));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Document::parse("[run\n").is_err());
        assert!(Document::parse("[run]\nnot a pair\n").is_err());
        assert!(Document::parse("[to po logy]\n").is_err());
        assert!(Document::parse("[topology fat/tree]\n").is_err());
        assert!(Document::parse("[run \"x]\n").is_err());
    }

    #[test]
    fn unquoted_labels_equal_quoted_labels() {
        let bare = Document::parse("[topology fat_tree]\nk = 4\n").unwrap();
        let quoted = Document::parse("[topology \"fat_tree\"]\nk = 4\n").unwrap();
        assert_eq!(bare.sections[0].name, "topology");
        assert_eq!(bare.sections[0].label.as_deref(), Some("fat_tree"));
        assert_eq!(bare.sections[0].entries, quoted.sections[0].entries);
        assert_eq!(bare.sections[0].label, quoted.sections[0].label);
        // The two spellings are the *same* section: declaring both is a
        // duplicate.
        assert!(matches!(
            Document::parse("[topology fat_tree]\n[topology \"fat_tree\"]\n").unwrap_err(),
            ScenarioError::DuplicateSection { .. }
        ));
    }

    #[test]
    fn durations_parse_with_units() {
        assert_eq!(
            parse_duration(&entry("warmup", "30 ms")).unwrap(),
            SimDuration::from_millis(30)
        );
        assert_eq!(
            parse_duration(&entry("t", "100us")).unwrap(),
            SimDuration::from_micros(100)
        );
        assert!(parse_duration(&entry("t", "5 fortnights")).is_err());
        assert!(parse_duration(&entry("t", "5")).is_err());
        assert!(parse_duration(&entry("t", "abc ms")).is_err());
    }

    #[test]
    fn bad_unit_suffix_is_a_bad_value_with_line() {
        let err = parse_duration(&entry("warmup", "30 sec")).unwrap_err();
        match err {
            ScenarioError::BadValue { line, key, msg } => {
                assert_eq!(line, 7);
                assert_eq!(key, "warmup");
                assert!(msg.contains("sec"), "{msg}");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn rates_and_levels_parse() {
        assert_eq!(
            parse_rate_bps(&entry("r", "10 Gbps")).unwrap(),
            10_000_000_000
        );
        assert_eq!(
            parse_rate_bps(&entry("r", "800 Mbps")).unwrap(),
            800_000_000
        );
        assert!(parse_rate_bps(&entry("r", "10 GB")).is_err());
        assert_eq!(
            parse_level(&entry("k", "40 pkts")).unwrap(),
            QueueLevel::Packets(40)
        );
        assert_eq!(
            parse_level(&entry("k", "32 KB")).unwrap(),
            QueueLevel::Bytes(32 * 1024)
        );
        assert!(parse_level(&entry("k", "0 pkts")).is_err());
        assert_eq!(parse_bytes(&entry("b", "1 MB")).unwrap(), 1024 * 1024);
        assert!(parse_bytes(&entry("b", "3 pkts")).is_err());
    }

    #[test]
    fn lists_and_windows_parse() {
        assert_eq!(
            parse_list_u32(&entry("flows", "2, 8, 32")).unwrap(),
            vec![2, 8, 32]
        );
        assert!(parse_list_u32(&entry("flows", "2,,3")).is_err());
        let (a, b) = parse_window(&entry("bleach", "20 ms .. 30 ms")).unwrap();
        assert_eq!(a, SimDuration::from_millis(20));
        assert_eq!(b, SimDuration::from_millis(30));
        assert!(parse_window(&entry("bleach", "30 ms .. 20 ms")).is_err());
        assert!(parse_window(&entry("bleach", "30 ms")).is_err());
    }
}
