//! Seeded randomized tests of the statistics estimators against naive
//! reference implementations.

use dctcp_rng::Pcg32;
use dctcp_stats::{Histogram, Quantiles, TimeSeries, TimeWeighted, Welford};

fn naive_mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn naive_pop_var(xs: &[f64]) -> f64 {
    let m = naive_mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

fn vec_f64(rng: &mut Pcg32, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let n = rng.range_usize(min_len, max_len);
    (0..n).map(|_| rng.range_f64(lo, hi)).collect()
}

#[test]
fn welford_matches_naive() {
    let mut rng = Pcg32::seed_from_u64(0x57A7_0001);
    for _ in 0..256 {
        let xs = vec_f64(&mut rng, -1e6, 1e6, 1, 199);
        let w: Welford = xs.iter().copied().collect();
        let scale = xs.iter().fold(1.0f64, |a, x| a.max(x.abs()));
        assert!((w.mean() - naive_mean(&xs)).abs() <= 1e-9 * scale.max(1.0));
        assert!(
            (w.population_variance() - naive_pop_var(&xs)).abs() <= 1e-6 * scale * scale.max(1.0)
        );
        assert_eq!(w.count(), xs.len() as u64);
    }
}

#[test]
fn welford_merge_is_order_independent() {
    let mut rng = Pcg32::seed_from_u64(0x57A7_0002);
    for _ in 0..256 {
        let xs = vec_f64(&mut rng, -1e3, 1e3, 1, 99);
        let split = rng.range_usize(0, 99).min(xs.len());
        let mut left: Welford = xs[..split].iter().copied().collect();
        let right: Welford = xs[split..].iter().copied().collect();
        left.merge(&right);
        let whole: Welford = xs.iter().copied().collect();
        assert!((left.mean() - whole.mean()).abs() < 1e-8);
        assert!((left.population_variance() - whole.population_variance()).abs() < 1e-6);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }
}

#[test]
fn time_weighted_equals_riemann_sum() {
    let mut rng = Pcg32::seed_from_u64(0x57A7_0003);
    for _ in 0..256 {
        let values = vec_f64(&mut rng, 0.0, 1e4, 1, 99);
        // Unit-width steps: the time-weighted mean equals the plain mean.
        let mut tw = TimeWeighted::with_initial(0.0, values[0]);
        for (i, &v) in values.iter().enumerate().skip(1) {
            tw.update(i as f64, v);
        }
        let s = tw.finish(values.len() as f64);
        assert!((s.mean - naive_mean(&values)).abs() < 1e-6);
        assert!((s.variance - naive_pop_var(&values)).abs() < 1e-3 * (1.0 + s.mean * s.mean));
    }
}

#[test]
fn time_weighted_is_invariant_to_redundant_updates() {
    let mut rng = Pcg32::seed_from_u64(0x57A7_0004);
    for _ in 0..256 {
        let values = vec_f64(&mut rng, 0.0, 100.0, 2, 49);
        // Re-announcing the same value must not change the statistics.
        let mut a = TimeWeighted::with_initial(0.0, values[0]);
        let mut b = TimeWeighted::with_initial(0.0, values[0]);
        for (i, &v) in values.iter().enumerate().skip(1) {
            a.update(i as f64, v);
            b.update(i as f64 - 0.5, b.value()); // redundant
            b.update(i as f64, v);
        }
        let end = values.len() as f64;
        let (sa, sb) = (a.finish(end), b.finish(end));
        assert!((sa.mean - sb.mean).abs() < 1e-9);
        assert!((sa.variance - sb.variance).abs() < 1e-9);
    }
}

#[test]
fn quantiles_are_monotone_and_bounded() {
    let mut rng = Pcg32::seed_from_u64(0x57A7_0005);
    for _ in 0..256 {
        let xs = vec_f64(&mut rng, -1e5, 1e5, 1, 299);
        let n_qs = rng.range_usize(1, 9);
        let qs: Vec<f64> = (0..n_qs).map(|_| rng.next_f64()).collect();
        let mut q: Quantiles = xs.iter().copied().collect();
        let lo = q.min().unwrap();
        let hi = q.max().unwrap();
        let mut sorted_qs = qs.clone();
        sorted_qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for &p in &sorted_qs {
            let v = q.quantile(p).unwrap();
            assert!(
                v >= lo - 1e-9 && v <= hi + 1e-9,
                "quantile {p} = {v} outside [{lo}, {hi}]"
            );
            assert!(v >= prev - 1e-9, "quantiles must be monotone");
            prev = v;
        }
    }
}

#[test]
fn histogram_conserves_samples() {
    let mut rng = Pcg32::seed_from_u64(0x57A7_0006);
    for _ in 0..256 {
        let xs = vec_f64(&mut rng, -100.0, 200.0, 0, 299);
        let mut h = Histogram::new(0.0, 100.0, 10);
        for &x in &xs {
            h.push(x);
        }
        let binned: u64 = (0..h.num_bins()).map(|i| h.bin_count(i)).sum();
        assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
        assert_eq!(h.total(), xs.len() as u64);
    }
}

#[test]
fn series_window_is_a_subsequence() {
    let mut rng = Pcg32::seed_from_u64(0x57A7_0007);
    for _ in 0..256 {
        let n = rng.range_usize(0, 99);
        let pts: Vec<(u32, f64)> = (0..n)
            .map(|_| (rng.range_u64(0, 999) as u32, rng.range_f64(-10.0, 10.0)))
            .collect();
        let from = rng.range_u64(0, 999) as u32;
        let len = rng.range_u64(0, 999) as u32;
        let mut sorted = pts.clone();
        sorted.sort_by_key(|p| p.0);
        let ts: TimeSeries = sorted.iter().map(|&(t, v)| (t as f64, v)).collect();
        let to = from.saturating_add(len);
        let w = ts.window(from as f64, to as f64);
        assert!(w.len() <= ts.len());
        for (t, _) in w.iter() {
            assert!(t >= from as f64 && t <= to as f64);
        }
        // Count check against a naive filter.
        let expected = sorted
            .iter()
            .filter(|&&(t, _)| t >= from && t <= to)
            .count();
        assert_eq!(w.len(), expected);
    }
}

#[test]
fn resample_preserves_value_range() {
    let mut rng = Pcg32::seed_from_u64(0x57A7_0008);
    for _ in 0..256 {
        let values = vec_f64(&mut rng, 0.0, 100.0, 2, 49);
        let dt = rng.range_u64(1, 19) as u32;
        let ts: TimeSeries = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64, v))
            .collect();
        let r = ts.resample(dt as f64 / 4.0);
        assert!(!r.is_empty());
        let s = ts.summary();
        for (_, v) in r.iter() {
            assert!(v >= s.min - 1e-12 && v <= s.max + 1e-12);
        }
    }
}
