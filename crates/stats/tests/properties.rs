//! Seeded randomized tests of the statistics estimators against naive
//! reference implementations.

use dctcp_rng::Pcg32;
use dctcp_stats::{Histogram, Quantiles, TimeSeries, TimeWeighted, Welford};

fn naive_mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn naive_pop_var(xs: &[f64]) -> f64 {
    let m = naive_mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

fn vec_f64(rng: &mut Pcg32, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let n = rng.range_usize(min_len, max_len);
    (0..n).map(|_| rng.range_f64(lo, hi)).collect()
}

#[test]
fn welford_matches_naive() {
    let mut rng = Pcg32::seed_from_u64(0x57A7_0001);
    for _ in 0..256 {
        let xs = vec_f64(&mut rng, -1e6, 1e6, 1, 199);
        let w: Welford = xs.iter().copied().collect();
        let scale = xs.iter().fold(1.0f64, |a, x| a.max(x.abs()));
        assert!((w.mean() - naive_mean(&xs)).abs() <= 1e-9 * scale.max(1.0));
        assert!(
            (w.population_variance() - naive_pop_var(&xs)).abs() <= 1e-6 * scale * scale.max(1.0)
        );
        assert_eq!(w.count(), xs.len() as u64);
    }
}

#[test]
fn welford_merge_is_order_independent() {
    let mut rng = Pcg32::seed_from_u64(0x57A7_0002);
    for _ in 0..256 {
        let xs = vec_f64(&mut rng, -1e3, 1e3, 1, 99);
        let split = rng.range_usize(0, 99).min(xs.len());
        let mut left: Welford = xs[..split].iter().copied().collect();
        let right: Welford = xs[split..].iter().copied().collect();
        left.merge(&right);
        let whole: Welford = xs.iter().copied().collect();
        assert!((left.mean() - whole.mean()).abs() < 1e-8);
        assert!((left.population_variance() - whole.population_variance()).abs() < 1e-6);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }
}

#[test]
fn time_weighted_equals_riemann_sum() {
    let mut rng = Pcg32::seed_from_u64(0x57A7_0003);
    for _ in 0..256 {
        let values = vec_f64(&mut rng, 0.0, 1e4, 1, 99);
        // Unit-width steps: the time-weighted mean equals the plain mean.
        let mut tw = TimeWeighted::with_initial(0.0, values[0]);
        for (i, &v) in values.iter().enumerate().skip(1) {
            tw.update(i as f64, v);
        }
        let s = tw.finish(values.len() as f64);
        assert!((s.mean - naive_mean(&values)).abs() < 1e-6);
        assert!((s.variance - naive_pop_var(&values)).abs() < 1e-3 * (1.0 + s.mean * s.mean));
    }
}

#[test]
fn time_weighted_is_invariant_to_redundant_updates() {
    let mut rng = Pcg32::seed_from_u64(0x57A7_0004);
    for _ in 0..256 {
        let values = vec_f64(&mut rng, 0.0, 100.0, 2, 49);
        // Re-announcing the same value must not change the statistics.
        let mut a = TimeWeighted::with_initial(0.0, values[0]);
        let mut b = TimeWeighted::with_initial(0.0, values[0]);
        for (i, &v) in values.iter().enumerate().skip(1) {
            a.update(i as f64, v);
            b.update(i as f64 - 0.5, b.value()); // redundant
            b.update(i as f64, v);
        }
        let end = values.len() as f64;
        let (sa, sb) = (a.finish(end), b.finish(end));
        assert!((sa.mean - sb.mean).abs() < 1e-9);
        assert!((sa.variance - sb.variance).abs() < 1e-9);
    }
}

#[test]
fn quantiles_are_monotone_and_bounded() {
    let mut rng = Pcg32::seed_from_u64(0x57A7_0005);
    for _ in 0..256 {
        let xs = vec_f64(&mut rng, -1e5, 1e5, 1, 299);
        let n_qs = rng.range_usize(1, 9);
        let qs: Vec<f64> = (0..n_qs).map(|_| rng.next_f64()).collect();
        let mut q: Quantiles = xs.iter().copied().collect();
        let lo = q.min().unwrap();
        let hi = q.max().unwrap();
        let mut sorted_qs = qs.clone();
        sorted_qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for &p in &sorted_qs {
            let v = q.quantile(p).unwrap();
            assert!(
                v >= lo - 1e-9 && v <= hi + 1e-9,
                "quantile {p} = {v} outside [{lo}, {hi}]"
            );
            assert!(v >= prev - 1e-9, "quantiles must be monotone");
            prev = v;
        }
    }
}

/// Reference quantile: sort a copy, interpolate between order statistics.
fn naive_quantile(xs: &[f64], p: f64) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = p * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    v[lo] * (1.0 - frac) + v[hi] * frac
}

#[test]
fn quantiles_match_exact_sorted_slice() {
    let mut rng = Pcg32::seed_from_u64(0x57A7_0009);
    for _ in 0..256 {
        let xs = vec_f64(&mut rng, -1e5, 1e5, 1, 299);
        let mut q: Quantiles = xs.iter().copied().collect();
        let scale = xs.iter().fold(1.0f64, |a, x| a.max(x.abs()));
        for _ in 0..8 {
            let p = rng.next_f64();
            let got = q.quantile(p).unwrap();
            let want = naive_quantile(&xs, p);
            assert!(
                (got - want).abs() <= 1e-9 * scale,
                "quantile {p}: estimator {got} vs exact {want}"
            );
        }
    }
}

#[test]
fn quantiles_are_insertion_order_invariant() {
    // Samples arriving out of order (late completions, interleaved
    // flows) must not change any order statistic.
    let mut rng = Pcg32::seed_from_u64(0x57A7_000A);
    for _ in 0..128 {
        let xs = vec_f64(&mut rng, -1e3, 1e3, 2, 99);
        let mut shuffled = xs.clone();
        // Fisher–Yates with the in-repo RNG.
        for i in (1..shuffled.len()).rev() {
            let j = rng.range_usize(0, i);
            shuffled.swap(i, j);
        }
        let mut a: Quantiles = xs.iter().copied().collect();
        let mut b: Quantiles = shuffled.into_iter().collect();
        for p in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(p), b.quantile(p));
        }
    }
}

#[test]
fn welford_merge_is_associative() {
    let mut rng = Pcg32::seed_from_u64(0x57A7_000B);
    for _ in 0..256 {
        let xs = vec_f64(&mut rng, -1e4, 1e4, 3, 149);
        let i = rng.range_usize(1, xs.len() - 1);
        let j = rng.range_usize(i, xs.len());
        let parts: [Welford; 3] = [
            xs[..i].iter().copied().collect(),
            xs[i..j].iter().copied().collect(),
            xs[j..].iter().copied().collect(),
        ];
        // (a ⊕ b) ⊕ c
        let mut left = parts[0];
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        // a ⊕ (b ⊕ c)
        let mut bc = parts[1];
        bc.merge(&parts[2]);
        let mut right = parts[0];
        right.merge(&bc);
        assert_eq!(left.count(), right.count());
        assert!((left.mean() - right.mean()).abs() < 1e-8);
        assert!((left.population_variance() - right.population_variance()).abs() < 1e-5);
        assert_eq!(left.min(), right.min());
        assert_eq!(left.max(), right.max());
    }
}

#[test]
fn time_weighted_zero_duration_window_reports_current_value() {
    // A window that closes the instant it opens has no integrable mass;
    // the summary must fall back to the held value with zero variance
    // instead of dividing by zero.
    let mut rng = Pcg32::seed_from_u64(0x57A7_000C);
    for _ in 0..128 {
        let start = rng.range_f64(-1e3, 1e3);
        let v0 = rng.range_f64(-50.0, 50.0);
        let v1 = rng.range_f64(-50.0, 50.0);
        let mut tw = TimeWeighted::with_initial(start, v0);
        // Same-instant updates are legal and carry no weight.
        tw.update(start, v1);
        let s = tw.finish(start);
        assert_eq!(s.duration, 0.0);
        assert_eq!(s.mean, v1);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, v0.min(v1));
        assert_eq!(s.max, v0.max(v1));
    }
}

#[test]
#[should_panic(expected = "time went backwards")]
fn time_weighted_rejects_out_of_order_samples() {
    let mut tw = TimeWeighted::new(0.0);
    tw.update(2.0, 1.0);
    tw.update(1.0, 2.0); // out of order: must panic, not corrupt the integral
}

#[test]
#[should_panic(expected = "precedes last update")]
fn time_weighted_rejects_finish_before_last_update() {
    let mut tw = TimeWeighted::new(0.0);
    tw.update(5.0, 1.0);
    let _ = tw.finish(4.0);
}

#[test]
fn histogram_conserves_samples() {
    let mut rng = Pcg32::seed_from_u64(0x57A7_0006);
    for _ in 0..256 {
        let xs = vec_f64(&mut rng, -100.0, 200.0, 0, 299);
        let mut h = Histogram::new(0.0, 100.0, 10);
        for &x in &xs {
            h.push(x);
        }
        let binned: u64 = (0..h.num_bins()).map(|i| h.bin_count(i)).sum();
        assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
        assert_eq!(h.total(), xs.len() as u64);
    }
}

#[test]
fn series_window_is_a_subsequence() {
    let mut rng = Pcg32::seed_from_u64(0x57A7_0007);
    for _ in 0..256 {
        let n = rng.range_usize(0, 99);
        let pts: Vec<(u32, f64)> = (0..n)
            .map(|_| (rng.range_u64(0, 999) as u32, rng.range_f64(-10.0, 10.0)))
            .collect();
        let from = rng.range_u64(0, 999) as u32;
        let len = rng.range_u64(0, 999) as u32;
        let mut sorted = pts.clone();
        sorted.sort_by_key(|p| p.0);
        let ts: TimeSeries = sorted.iter().map(|&(t, v)| (t as f64, v)).collect();
        let to = from.saturating_add(len);
        let w = ts.window(from as f64, to as f64);
        assert!(w.len() <= ts.len());
        for (t, _) in w.iter() {
            assert!(t >= from as f64 && t <= to as f64);
        }
        // Count check against a naive filter.
        let expected = sorted
            .iter()
            .filter(|&&(t, _)| t >= from && t <= to)
            .count();
        assert_eq!(w.len(), expected);
    }
}

#[test]
fn resample_preserves_value_range() {
    let mut rng = Pcg32::seed_from_u64(0x57A7_0008);
    for _ in 0..256 {
        let values = vec_f64(&mut rng, 0.0, 100.0, 2, 49);
        let dt = rng.range_u64(1, 19) as u32;
        let ts: TimeSeries = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64, v))
            .collect();
        let r = ts.resample(dt as f64 / 4.0);
        assert!(!r.is_empty());
        let s = ts.summary();
        for (_, v) in r.iter() {
            assert!(v >= s.min - 1e-12 && v <= s.max + 1e-12);
        }
    }
}
