//! Property-based tests of the statistics estimators against naive
//! reference implementations.

use dctcp_stats::{Histogram, Quantiles, TimeSeries, TimeWeighted, Welford};
use proptest::prelude::*;

fn naive_mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn naive_pop_var(xs: &[f64]) -> f64 {
    let m = naive_mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

proptest! {
    #[test]
    fn welford_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let w: Welford = xs.iter().copied().collect();
        let scale = xs.iter().fold(1.0f64, |a, x| a.max(x.abs()));
        prop_assert!((w.mean() - naive_mean(&xs)).abs() <= 1e-9 * scale.max(1.0));
        prop_assert!(
            (w.population_variance() - naive_pop_var(&xs)).abs() <= 1e-6 * scale * scale.max(1.0)
        );
        prop_assert_eq!(w.count(), xs.len() as u64);
    }

    #[test]
    fn welford_merge_is_order_independent(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
        split in 0usize..100,
    ) {
        let split = split.min(xs.len());
        let mut left: Welford = xs[..split].iter().copied().collect();
        let right: Welford = xs[split..].iter().copied().collect();
        left.merge(&right);
        let whole: Welford = xs.iter().copied().collect();
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-8);
        prop_assert!((left.population_variance() - whole.population_variance()).abs() < 1e-6);
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn time_weighted_equals_riemann_sum(
        values in proptest::collection::vec(0f64..1e4, 1..100),
    ) {
        // Unit-width steps: the time-weighted mean equals the plain mean.
        let mut tw = TimeWeighted::with_initial(0.0, values[0]);
        for (i, &v) in values.iter().enumerate().skip(1) {
            tw.update(i as f64, v);
        }
        let s = tw.finish(values.len() as f64);
        prop_assert!((s.mean - naive_mean(&values)).abs() < 1e-6);
        prop_assert!((s.variance - naive_pop_var(&values)).abs() < 1e-3 * (1.0 + s.mean * s.mean));
    }

    #[test]
    fn time_weighted_is_invariant_to_redundant_updates(
        values in proptest::collection::vec(0f64..100.0, 2..50),
    ) {
        // Re-announcing the same value must not change the statistics.
        let mut a = TimeWeighted::with_initial(0.0, values[0]);
        let mut b = TimeWeighted::with_initial(0.0, values[0]);
        for (i, &v) in values.iter().enumerate().skip(1) {
            a.update(i as f64, v);
            b.update(i as f64 - 0.5, b.value()); // redundant
            b.update(i as f64, v);
        }
        let end = values.len() as f64;
        let (sa, sb) = (a.finish(end), b.finish(end));
        prop_assert!((sa.mean - sb.mean).abs() < 1e-9);
        prop_assert!((sa.variance - sb.variance).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        xs in proptest::collection::vec(-1e5f64..1e5, 1..300),
        qs in proptest::collection::vec(0f64..=1.0, 1..10),
    ) {
        let mut q: Quantiles = xs.iter().copied().collect();
        let lo = q.min().unwrap();
        let hi = q.max().unwrap();
        let mut sorted_qs = qs.clone();
        sorted_qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for &p in &sorted_qs {
            let v = q.quantile(p).unwrap();
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "quantile {p} = {v} outside [{lo}, {hi}]");
            prop_assert!(v >= prev - 1e-9, "quantiles must be monotone");
            prev = v;
        }
    }

    #[test]
    fn histogram_conserves_samples(
        xs in proptest::collection::vec(-100f64..200.0, 0..300),
    ) {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for &x in &xs {
            h.push(x);
        }
        let binned: u64 = (0..h.num_bins()).map(|i| h.bin_count(i)).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
        prop_assert_eq!(h.total(), xs.len() as u64);
    }

    #[test]
    fn series_window_is_a_subsequence(
        pts in proptest::collection::vec((0u32..1000, -10f64..10.0), 0..100),
        from in 0u32..1000,
        len in 0u32..1000,
    ) {
        let mut sorted = pts.clone();
        sorted.sort_by_key(|p| p.0);
        let ts: TimeSeries = sorted.iter().map(|&(t, v)| (t as f64, v)).collect();
        let to = from.saturating_add(len);
        let w = ts.window(from as f64, to as f64);
        prop_assert!(w.len() <= ts.len());
        for (t, _) in w.iter() {
            prop_assert!(t >= from as f64 && t <= to as f64);
        }
        // Count check against a naive filter.
        let expected = sorted
            .iter()
            .filter(|&&(t, _)| t >= from && t <= to)
            .count();
        prop_assert_eq!(w.len(), expected);
    }

    #[test]
    fn resample_preserves_value_range(
        values in proptest::collection::vec(0f64..100.0, 2..50),
        dt in 1u32..20,
    ) {
        let ts: TimeSeries = values.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect();
        let r = ts.resample(dt as f64 / 4.0);
        prop_assert!(!r.is_empty());
        let s = ts.summary();
        for (_, v) in r.iter() {
            prop_assert!(v >= s.min - 1e-12 && v <= s.max + 1e-12);
        }
    }
}
