//! Fixed-width histograms.

/// A fixed-width histogram over `[lo, hi)` with values outside the range
/// collected in underflow/overflow bins.
///
/// # Examples
///
/// ```
/// use dctcp_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// for x in [0.5, 1.5, 1.7, 9.9, -1.0, 42.0] {
///     h.push(x);
/// }
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(1), 2);
/// assert_eq!(h.underflow(), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range empty: [{lo}, {hi})");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Adds a sample. Non-finite samples count as overflow.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if !x.is_finite() || x >= self.hi {
            self.overflow += 1;
        } else if x < self.lo {
            self.underflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// `[lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range (including non-finite samples).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples pushed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of in-range samples at or below the upper edge of bin `i`
    /// (an empirical CDF over the binned range).
    pub fn cdf_at_bin(&self, i: usize) -> f64 {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return 0.0;
        }
        let cum: u64 = self.bins[..=i].iter().sum();
        cum as f64 / in_range as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for x in [0.0, 0.24, 0.25, 0.5, 0.75, 0.99] {
            h.push(x);
        }
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(2), 1);
        assert_eq!(h.bin_count(3), 2);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn edges_are_consistent() {
        let h = Histogram::new(10.0, 20.0, 5);
        assert_eq!(h.bin_edges(0), (10.0, 12.0));
        assert_eq!(h.bin_edges(4), (18.0, 20.0));
    }

    #[test]
    fn cdf_reaches_one() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        assert!((h.cdf_at_bin(9) - 1.0).abs() < 1e-12);
        assert!((h.cdf_at_bin(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nan_counts_as_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(f64::NAN);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "range empty")]
    fn rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
