//! Allocation-fairness metrics.

/// Jain's fairness index over per-flow allocations:
/// `J = (Σxᵢ)² / (n · Σxᵢ²)`, ranging from `1/n` (one flow takes all)
/// to `1` (perfectly equal shares).
///
/// Negative allocations are invalid and non-finite allocations are
/// ignored; an empty (or all-zero) input yields `None`.
///
/// # Examples
///
/// ```
/// use dctcp_stats::jain_fairness_index;
///
/// assert_eq!(jain_fairness_index(&[5.0, 5.0, 5.0]), Some(1.0));
/// let j = jain_fairness_index(&[10.0, 0.0, 0.0]).unwrap();
/// assert!((j - 1.0 / 3.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if any allocation is negative.
pub fn jain_fairness_index(allocations: &[f64]) -> Option<f64> {
    let xs: Vec<f64> = allocations
        .iter()
        .copied()
        .filter(|x| x.is_finite())
        .collect();
    assert!(
        xs.iter().all(|&x| x >= 0.0),
        "allocations must be non-negative"
    );
    if xs.is_empty() {
        return None;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return None;
    }
    Some(sum * sum / (xs.len() as f64 * sum_sq))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_shares_are_perfectly_fair() {
        assert_eq!(jain_fairness_index(&[3.0; 10]), Some(1.0));
    }

    #[test]
    fn single_hog_gives_one_over_n() {
        let j = jain_fairness_index(&[7.0, 0.0, 0.0, 0.0]).unwrap();
        assert!((j - 0.25).abs() < 1e-12);
    }

    #[test]
    fn index_is_scale_invariant() {
        let a = jain_fairness_index(&[1.0, 2.0, 3.0]).unwrap();
        let b = jain_fairness_index(&[10.0, 20.0, 30.0]).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn empty_and_zero_are_none() {
        assert_eq!(jain_fairness_index(&[]), None);
        assert_eq!(jain_fairness_index(&[0.0, 0.0]), None);
    }

    #[test]
    fn non_finite_values_ignored() {
        let j = jain_fairness_index(&[5.0, f64::NAN, 5.0]).unwrap();
        assert_eq!(j, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_allocation_panics() {
        let _ = jain_fairness_index(&[-1.0, 2.0]);
    }
}
