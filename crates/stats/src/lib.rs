//! Streaming and time-weighted statistics for network simulation.
//!
//! This crate is the metrics substrate of the DT-DCTCP reproduction. It
//! provides the estimators the experiment harness relies on:
//!
//! * [`Welford`] — numerically stable online mean/variance over samples.
//! * [`TimeWeighted`] — *time-weighted* moments of a piecewise-constant
//!   signal such as a queue length, integrated exactly between updates.
//! * [`TimeSeries`] — a `(time, value)` trace with resampling and windowing.
//! * [`Quantiles`] / [`P2Quantile`] — exact and streaming quantile
//!   estimation for completion-time tails.
//! * [`QuantileSketch`] — mergeable log-binned quantile sketch with
//!   bounded relative error, for million-flow FCT tails.
//! * [`Histogram`] — fixed-width binning.
//! * [`ThroughputMeter`] — byte counters over an observation window.
//! * [`oscillation`] — mean-crossing cycle detection and peak-to-trough
//!   amplitude over a queue trace.
//!
//! # Examples
//!
//! Track the time-weighted mean of a queue that holds 10 packets for one
//! second and 30 packets for three seconds:
//!
//! ```
//! use dctcp_stats::TimeWeighted;
//!
//! let mut q = TimeWeighted::new(0.0);
//! q.update(0.0, 10.0);
//! q.update(1.0, 30.0);
//! let summary = q.finish(4.0);
//! assert!((summary.mean - 25.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod fairness;
mod histogram;
mod oscillation;
mod quantile;
mod series;
mod sketch;
mod throughput;
mod time_weighted;
mod welford;

pub use fairness::jain_fairness_index;
pub use histogram::Histogram;
pub use oscillation::{oscillation, OscillationSummary};
pub use quantile::{P2Quantile, Quantiles};
pub use series::{SeriesSummary, TimeSeries};
pub use sketch::{QuantileSketch, SKETCH_ALPHA};
pub use throughput::ThroughputMeter;
pub use time_weighted::{TimeWeighted, TimeWeightedSummary};
pub use welford::Welford;
