//! A mergeable, bounded-relative-error quantile sketch.
//!
//! Streaming flow-completion-time tails over millions of flows cannot
//! afford one record per flow, so the churn harness folds every sample
//! into a log-binned histogram instead: bin `i` covers
//! `(γ^(i-1), γ^i]` with `γ = (1 + α) / (1 − α)`, which caps the
//! relative error of any reported quantile at `α` (the DDSketch bound,
//! Masson et al., VLDB 2019). Merging two sketches is an element-wise
//! counter addition, so per-shard (or per-host) sketches combine into
//! the exact sketch of the concatenated streams — merge order cannot
//! change a single bit of the result.

use std::fmt;

/// Relative accuracy of every reported quantile: a returned estimate
/// `e` for a true sample value `v` satisfies `|e − v| ≤ ALPHA · v`.
pub const SKETCH_ALPHA: f64 = 0.01;

/// Smallest distinguishable value (seconds when used for FCTs); inputs
/// at or below this land in the first bin and report it exactly.
const MIN_VALUE: f64 = 1e-9;

/// Largest distinguishable value; inputs above clamp to the last bin.
const MAX_VALUE: f64 = 1e5;

/// The per-sketch bin count, fixed so any two sketches merge. With
/// `α = 1%` the ratio `γ ≈ 1.0202` gives `ln(MAX/MIN)/ln γ ≈ 1611`
/// bins — ~13 KB per sketch.
const BINS: usize = 1616;

fn gamma() -> f64 {
    (1.0 + SKETCH_ALPHA) / (1.0 - SKETCH_ALPHA)
}

/// A streaming quantile estimator over positive values with relative
/// error bounded by [`SKETCH_ALPHA`], mergeable across shards.
///
/// # Examples
///
/// ```
/// use dctcp_stats::QuantileSketch;
///
/// let mut s = QuantileSketch::new();
/// for i in 1..=1000u32 {
///     s.record(i as f64);
/// }
/// let p50 = s.quantile(0.5).unwrap();
/// assert!((p50 - 500.0).abs() / 500.0 <= 0.011);
/// ```
#[derive(Clone, PartialEq)]
pub struct QuantileSketch {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for QuantileSketch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QuantileSketch")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("sum", &self.sum)
            .finish()
    }
}

impl QuantileSketch {
    /// Creates an empty sketch. The bin array is allocated once, here,
    /// so recording is allocation-free.
    pub fn new() -> Self {
        QuantileSketch {
            counts: vec![0; BINS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (after clamping to the representable
    /// range).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded sample, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded samples, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Records one sample. Non-finite inputs are ignored; values outside
    /// `[1e-9, 1e5]` clamp to the edge bins (their min/max is still
    /// tracked exactly).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let clamped = v.clamp(MIN_VALUE, MAX_VALUE);
        self.counts[Self::bin_index(clamped)] += 1;
        self.count += 1;
        self.sum += clamped;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Bin for a value already clamped into `[MIN_VALUE, MAX_VALUE]`:
    /// `ceil(log_γ(v / MIN_VALUE))`, clamped into range so float
    /// round-off at the edges cannot index out of bounds.
    fn bin_index(v: f64) -> usize {
        let i = (v / MIN_VALUE).ln() / gamma().ln();
        (i.ceil() as i64).clamp(0, BINS as i64 - 1) as usize
    }

    /// Midpoint estimate for bin `i`, covering
    /// `(MIN_VALUE·γ^(i-1), MIN_VALUE·γ^i]`. The arithmetic midpoint
    /// keeps the relative error of any value in the bin at most
    /// `(γ − 1)/(γ + 1) = α`.
    fn bin_value(i: usize) -> f64 {
        if i == 0 {
            return MIN_VALUE;
        }
        let g = gamma();
        MIN_VALUE * g.powi(i as i32 - 1) * (1.0 + g) / 2.0
    }

    /// The `q`-quantile (nearest-rank), `None` when the sketch is empty
    /// or `q` is outside `[0, 1]`. The estimate is within
    /// [`SKETCH_ALPHA`] relative error of the sample at that rank, and
    /// is additionally clamped into the exact observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // Nearest-rank: the smallest sample with cumulative count >= r.
        let r = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= r {
                return Some(Self::bin_value(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merges `other` into `self`: afterwards `self` is exactly the
    /// sketch of both input streams concatenated. Element-wise counter
    /// addition — deterministic and order-insensitive up to float
    /// summation order of `sum` (quantiles depend only on integer
    /// counts).
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dctcp_rng::Pcg32;

    /// Exact nearest-rank quantile over a sorted slice.
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let r = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[r - 1]
    }

    fn assert_bounded_error(samples: &mut [f64], qs: &[f64]) {
        let mut sketch = QuantileSketch::new();
        for &v in samples.iter() {
            sketch.record(v);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for &q in qs {
            let exact = exact_quantile(samples, q);
            let est = sketch.quantile(q).expect("non-empty");
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= SKETCH_ALPHA + 1e-9,
                "q={q}: est {est} vs exact {exact} (rel {rel})"
            );
        }
    }

    const QS: &[f64] = &[0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0];

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::new();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn out_of_range_q_rejected() {
        let mut s = QuantileSketch::new();
        s.record(1.0);
        assert_eq!(s.quantile(-0.1), None);
        assert_eq!(s.quantile(1.1), None);
        assert_eq!(s.quantile(f64::NAN), None);
    }

    #[test]
    fn constant_distribution_is_exact() {
        // All mass in one bin; min/max clamping makes every quantile the
        // constant itself, not just within alpha of it.
        let mut s = QuantileSketch::new();
        for _ in 0..10_000 {
            s.record(0.00317);
        }
        for &q in QS {
            assert_eq!(s.quantile(q), Some(0.00317));
        }
        assert_eq!(s.max(), Some(0.00317));
    }

    #[test]
    fn bimodal_distribution_bounded_error() {
        let mut rng = Pcg32::seed_from_u64(7);
        let mut samples: Vec<f64> = (0..40_000)
            .map(|_| {
                if rng.next_f64() < 0.7 {
                    1e-4 * (1.0 + 0.3 * rng.next_f64())
                } else {
                    5.0 * (1.0 + 0.3 * rng.next_f64())
                }
            })
            .collect();
        assert_bounded_error(&mut samples, QS);
    }

    #[test]
    fn pareto_distribution_bounded_error() {
        // Pareto(xm = 1 ms, shape 1.3): the heavy tail spans several
        // decades, exactly the FCT regime the sketch is for.
        let mut rng = Pcg32::seed_from_u64(41);
        let mut samples: Vec<f64> = (0..40_000)
            .map(|_| 1e-3 / (1.0 - rng.next_f64()).powf(1.0 / 1.3))
            .collect();
        assert_bounded_error(&mut samples, QS);
    }

    #[test]
    fn uniform_and_exponential_bounded_error() {
        let mut rng = Pcg32::seed_from_u64(99);
        let mut uniform: Vec<f64> = (0..20_000).map(|_| 1.0 + rng.next_f64()).collect();
        assert_bounded_error(&mut uniform, QS);
        let mut exp: Vec<f64> = (0..20_000)
            .map(|_| -(1.0 - rng.next_f64()).ln() * 2e-3)
            .collect();
        assert_bounded_error(&mut exp, QS);
    }

    #[test]
    fn extremes_clamp_but_min_max_stay_exact() {
        let mut s = QuantileSketch::new();
        s.record(1e-12); // below MIN_VALUE
        s.record(1e7); // above MAX_VALUE
        s.record(f64::NAN); // ignored
        s.record(f64::INFINITY); // ignored
        assert_eq!(s.count(), 2);
        assert_eq!(s.min(), Some(1e-12));
        assert_eq!(s.max(), Some(1e7));
    }

    fn random_sketch(seed: u64, n: usize) -> QuantileSketch {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut s = QuantileSketch::new();
        for _ in 0..n {
            s.record(1e-5 * (1.0 / (1.0 - rng.next_f64())).powf(1.7));
        }
        s
    }

    #[test]
    fn merge_is_commutative() {
        let a = random_sketch(1, 5000);
        let b = random_sketch(2, 7000);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // Quantile state (integer counts, min, max, count) is identical;
        // `sum` differs only in float addition order.
        assert_eq!(ab.counts, ba.counts);
        assert_eq!(ab.count, ba.count);
        assert_eq!(ab.min, ba.min);
        assert_eq!(ab.max, ba.max);
        for &q in QS {
            assert_eq!(
                ab.quantile(q).map(f64::to_bits),
                ba.quantile(q).map(f64::to_bits)
            );
        }
    }

    #[test]
    fn merge_is_associative() {
        let a = random_sketch(3, 4000);
        let b = random_sketch(4, 4000);
        let c = random_sketch(5, 4000);
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c.counts, a_bc.counts);
        assert_eq!(ab_c.count, a_bc.count);
        for &q in QS {
            assert_eq!(
                ab_c.quantile(q).map(f64::to_bits),
                a_bc.quantile(q).map(f64::to_bits)
            );
        }
    }

    #[test]
    fn merged_sketch_equals_sketch_of_concatenated_stream() {
        let mut rng = Pcg32::seed_from_u64(11);
        let samples: Vec<f64> = (0..9000).map(|_| 1e-4 + rng.next_f64()).collect();
        // Shard the stream three ways, round-robin, sketch each shard,
        // merge — bit-identical quantiles to the serial sketch.
        let mut serial = QuantileSketch::new();
        for &v in &samples {
            serial.record(v);
        }
        let mut shards = [
            QuantileSketch::new(),
            QuantileSketch::new(),
            QuantileSketch::new(),
        ];
        for (i, &v) in samples.iter().enumerate() {
            shards[i % 3].record(v);
        }
        let mut merged = QuantileSketch::new();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(serial.counts, merged.counts);
        for &q in QS {
            assert_eq!(
                serial.quantile(q).map(f64::to_bits),
                merged.quantile(q).map(f64::to_bits)
            );
        }
    }

    #[test]
    fn quantile_tracks_exact_across_sizes() {
        // Small sketches too: n = 1 returns the single sample exactly.
        let mut s = QuantileSketch::new();
        s.record(0.042);
        for &q in QS {
            assert_eq!(s.quantile(q), Some(0.042));
        }
    }
}
