//! Oscillation-cycle detection over a queue-length trace.
//!
//! The paper's central claim is about the *amplitude* of the bottleneck
//! queue's self-oscillation, not just its standard deviation: under
//! single-threshold marking the queue swings in ever-larger limit
//! cycles as the flow count grows, while hysteresis marking bounds the
//! swing. [`oscillation`] segments a [`TimeSeries`] into cycles at
//! upward crossings of its mean and reports the per-cycle peak-to-trough
//! amplitude, giving the scenario-reproduction pipeline a direct,
//! machine-checkable handle on that claim.

use crate::TimeSeries;

/// Peak-to-trough oscillation statistics of a piecewise-constant signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OscillationSummary {
    /// Number of complete cycles (mean-upcrossing to mean-upcrossing).
    pub cycles: u64,
    /// Mean peak-to-trough amplitude over complete cycles.
    pub mean_amplitude: f64,
    /// Largest peak-to-trough amplitude over complete cycles.
    pub max_amplitude: f64,
}

impl OscillationSummary {
    /// A summary with no detected cycles (flat or too-short signals).
    pub fn none() -> Self {
        OscillationSummary {
            cycles: 0,
            mean_amplitude: 0.0,
            max_amplitude: 0.0,
        }
    }
}

/// Measures the oscillation of `series` by splitting it into cycles at
/// upward crossings of the series mean and taking `max - min` within
/// each complete cycle.
///
/// Partial segments before the first and after the last upward crossing
/// are discarded, so a monotone or flat trace reports zero cycles. The
/// trailing partial cycle in particular would under-count its trough
/// and bias the mean downward.
///
/// # Examples
///
/// ```
/// use dctcp_stats::{oscillation, TimeSeries};
///
/// let mut ts = TimeSeries::new();
/// // Two full sawtooth cycles between 10 and 30 around a mean of 20.
/// for (i, v) in [10.0, 30.0, 10.0, 30.0, 10.0, 30.0].iter().enumerate() {
///     ts.push(i as f64, *v);
/// }
/// let osc = oscillation(&ts);
/// assert_eq!(osc.cycles, 2);
/// assert!((osc.mean_amplitude - 20.0).abs() < 1e-12);
/// ```
pub fn oscillation(series: &TimeSeries) -> OscillationSummary {
    let values = series.values();
    if values.len() < 3 {
        return OscillationSummary::none();
    }
    let mean = series.summary().mean;
    // Indices of upward mean-crossings: previous strictly below, current
    // at-or-above. Strictness on one side only, so a sample exactly on
    // the mean cannot start two cycles.
    let mut crossings = Vec::new();
    for i in 1..values.len() {
        if values[i - 1] < mean && values[i] >= mean {
            crossings.push(i);
        }
    }
    if crossings.len() < 2 {
        return OscillationSummary::none();
    }
    let mut cycles = 0u64;
    let mut sum = 0.0;
    let mut max = 0.0f64;
    for w in crossings.windows(2) {
        let cycle = &values[w[0]..w[1]];
        let hi = cycle.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let lo = cycle.iter().copied().fold(f64::INFINITY, f64::min);
        let amp = hi - lo;
        cycles += 1;
        sum += amp;
        max = max.max(amp);
    }
    OscillationSummary {
        cycles,
        mean_amplitude: sum / cycles as f64,
        max_amplitude: max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[f64]) -> TimeSeries {
        let mut ts = TimeSeries::new();
        for (i, &v) in vals.iter().enumerate() {
            ts.push(i as f64, v);
        }
        ts
    }

    #[test]
    fn flat_signal_has_no_cycles() {
        let osc = oscillation(&series(&[5.0; 20]));
        assert_eq!(osc, OscillationSummary::none());
    }

    #[test]
    fn short_signal_has_no_cycles() {
        assert_eq!(
            oscillation(&series(&[1.0, 2.0])),
            OscillationSummary::none()
        );
    }

    #[test]
    fn monotone_ramp_has_no_complete_cycle() {
        let vals: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(oscillation(&series(&vals)).cycles, 0);
    }

    #[test]
    fn sawtooth_amplitude_is_peak_to_trough() {
        // 0..10 repeating: mean 4.5, amplitude 10 per cycle.
        let vals: Vec<f64> = (0..55).map(|i| (i % 11) as f64).collect();
        let osc = oscillation(&series(&vals));
        assert!(osc.cycles >= 3, "cycles {}", osc.cycles);
        assert!((osc.mean_amplitude - 10.0).abs() < 1e-9);
        assert!((osc.max_amplitude - 10.0).abs() < 1e-9);
    }

    #[test]
    fn larger_swing_reports_larger_amplitude() {
        let small: Vec<f64> = (0..60).map(|i| (i % 6) as f64).collect();
        let big: Vec<f64> = (0..60).map(|i| (i % 6) as f64 * 7.0).collect();
        let a = oscillation(&series(&small));
        let b = oscillation(&series(&big));
        assert!(b.mean_amplitude > 5.0 * a.mean_amplitude);
    }

    #[test]
    fn sample_on_mean_does_not_double_count() {
        // Triangle touching the mean exactly.
        let vals = [0.0, 2.0, 4.0, 2.0, 0.0, 2.0, 4.0, 2.0, 0.0, 2.0, 4.0];
        let osc = oscillation(&series(&vals));
        assert_eq!(osc.cycles, 2);
        assert!((osc.mean_amplitude - 4.0).abs() < 1e-12);
    }
}
