//! Online mean/variance via Welford's algorithm.

/// Numerically stable online estimator of mean, variance, min and max.
///
/// Uses Welford's recurrence, so it is safe for millions of samples whose
/// magnitudes differ widely (queue lengths in packets vs. times in seconds).
///
/// # Examples
///
/// ```
/// use dctcp_stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.count(), 8);
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (dividing by `n`), or `0.0` when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (dividing by `n - 1`), or `0.0` for fewer
    /// than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest sample seen, or `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen, or `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another estimator into this one (parallel Welford / Chan's
    /// formula). The result is identical (up to rounding) to pushing all
    /// samples into one estimator.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut w = Welford::new();
        w.extend(iter);
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut w = Welford::new();
        w.push(3.5);
        assert_eq!(w.count(), 1);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.min(), 3.5);
        assert_eq!(w.max(), 3.5);
    }

    #[test]
    fn known_variance() {
        let w: Welford = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.population_variance() - 4.0).abs() < 1e-12);
        assert!((w.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole: Welford = xs.iter().copied().collect();
        let mut left: Welford = xs[..37].iter().copied().collect();
        let right: Welford = xs[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.population_variance() - whole.population_variance()).abs() < 1e-10);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w: Welford = [1.0, 2.0, 3.0].into_iter().collect();
        let before = w;
        w.merge(&Welford::new());
        assert_eq!(w, before);

        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn constant_signal_has_zero_variance() {
        let w: Welford = std::iter::repeat_n(42.0, 1000).collect();
        assert!(w.population_variance().abs() < 1e-9);
        assert_eq!(w.min(), 42.0);
        assert_eq!(w.max(), 42.0);
    }
}
