//! Byte-count throughput metering.

/// Accumulates byte deliveries and reports throughput over the observed
/// window.
///
/// The meter records its first and last delivery times, so a warm-up gap
/// before the first byte does not deflate the rate unless the caller asks
/// for the rate over an explicit window.
///
/// # Examples
///
/// ```
/// use dctcp_stats::ThroughputMeter;
///
/// let mut m = ThroughputMeter::new();
/// m.record(1.0, 1_000_000);
/// m.record(2.0, 1_000_000);
/// // 2 MB delivered between t=1 and t=2 over an explicit 2 s window:
/// assert_eq!(m.bits_per_second_over(0.0, 2.0), 8_000_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ThroughputMeter {
    bytes: u64,
    first: Option<f64>,
    last: Option<f64>,
}

impl ThroughputMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` delivered at time `now` (seconds).
    pub fn record(&mut self, now: f64, bytes: u64) {
        self.bytes += bytes;
        if self.first.is_none() {
            self.first = Some(now);
        }
        self.last = Some(now);
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.bytes
    }

    /// Time of the first delivery, if any.
    pub fn first_delivery(&self) -> Option<f64> {
        self.first
    }

    /// Time of the last delivery, if any.
    pub fn last_delivery(&self) -> Option<f64> {
        self.last
    }

    /// Average rate in bits/s over an explicit `[from, to]` window.
    ///
    /// Returns `0.0` for an empty or zero-length window.
    pub fn bits_per_second_over(&self, from: f64, to: f64) -> f64 {
        let dt = to - from;
        if dt <= 0.0 {
            0.0
        } else {
            self.bytes as f64 * 8.0 / dt
        }
    }

    /// Average rate in bits/s between first and last delivery. `None` when
    /// fewer than two distinct delivery instants were seen.
    pub fn bits_per_second(&self) -> Option<f64> {
        let (f, l) = (self.first?, self.last?);
        if l > f {
            Some(self.bytes as f64 * 8.0 / (l - f))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_window_rate() {
        let mut m = ThroughputMeter::new();
        m.record(0.5, 500);
        m.record(1.0, 500);
        assert_eq!(m.total_bytes(), 1000);
        assert_eq!(m.bits_per_second_over(0.0, 1.0), 8000.0);
    }

    #[test]
    fn empty_meter() {
        let m = ThroughputMeter::new();
        assert_eq!(m.total_bytes(), 0);
        assert_eq!(m.bits_per_second(), None);
        assert_eq!(m.bits_per_second_over(0.0, 1.0), 0.0);
    }

    #[test]
    fn single_instant_has_no_intrinsic_rate() {
        let mut m = ThroughputMeter::new();
        m.record(1.0, 100);
        assert_eq!(m.bits_per_second(), None);
        assert_eq!(m.first_delivery(), Some(1.0));
        assert_eq!(m.last_delivery(), Some(1.0));
    }

    #[test]
    fn zero_window_is_zero() {
        let mut m = ThroughputMeter::new();
        m.record(1.0, 100);
        assert_eq!(m.bits_per_second_over(1.0, 1.0), 0.0);
    }
}
