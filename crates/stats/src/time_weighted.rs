//! Time-weighted moments of a piecewise-constant signal.

/// Exact time-weighted statistics of a piecewise-constant signal, such as
/// an instantaneous queue length.
///
/// A sampled estimator (take the queue length every T microseconds) biases
/// the mean and misses short excursions; a queue changes value only at
/// enqueue/dequeue instants, so integrating the signal *between changes* is
/// both exact and cheaper. [`TimeWeighted::update`] is called with the
/// current time whenever the value changes; the value is held constant
/// until the next update.
///
/// # Examples
///
/// ```
/// use dctcp_stats::TimeWeighted;
///
/// // 10 packets for 1 s, then 30 packets for 3 s.
/// let mut q = TimeWeighted::new(0.0);
/// q.update(0.0, 10.0);
/// q.update(1.0, 30.0);
/// let s = q.finish(4.0);
/// assert!((s.mean - 25.0).abs() < 1e-12);
/// // E[x^2] = (100*1 + 900*3)/4 = 700; var = 700 - 625 = 75.
/// assert!((s.variance - 75.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeighted {
    start: f64,
    last_time: f64,
    value: f64,
    integral: f64,
    integral_sq: f64,
    min: f64,
    max: f64,
    changes: u64,
}

/// Summary produced by [`TimeWeighted::finish`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeightedSummary {
    /// Time-weighted mean of the signal.
    pub mean: f64,
    /// Time-weighted population variance.
    pub variance: f64,
    /// Time-weighted population standard deviation.
    pub std: f64,
    /// Smallest value the signal took.
    pub min: f64,
    /// Largest value the signal took.
    pub max: f64,
    /// Total observation time.
    pub duration: f64,
    /// Number of value changes observed.
    pub changes: u64,
}

impl TimeWeighted {
    /// Starts observing at time `start` with an initial value of zero.
    pub fn new(start: f64) -> Self {
        Self::with_initial(start, 0.0)
    }

    /// Starts observing at time `start` with the given initial value.
    pub fn with_initial(start: f64, value: f64) -> Self {
        Self {
            start,
            last_time: start,
            value,
            integral: 0.0,
            integral_sq: 0.0,
            min: value,
            max: value,
            changes: 0,
        }
    }

    /// Records that the signal changed to `value` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update (time must be
    /// monotone).
    pub fn update(&mut self, now: f64, value: f64) {
        assert!(
            now >= self.last_time,
            "time went backwards: {now} < {}",
            self.last_time
        );
        self.accumulate(now);
        self.value = value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.changes += 1;
    }

    /// The current value of the signal.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Closes the observation window at time `end` and returns the
    /// summary statistics.
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes the last update.
    pub fn finish(mut self, end: f64) -> TimeWeightedSummary {
        assert!(
            end >= self.last_time,
            "end {end} precedes last update {}",
            self.last_time
        );
        self.accumulate(end);
        let duration = end - self.start;
        let (mean, variance) = if duration > 0.0 {
            let mean = self.integral / duration;
            let var = (self.integral_sq / duration - mean * mean).max(0.0);
            (mean, var)
        } else {
            (self.value, 0.0)
        };
        TimeWeightedSummary {
            mean,
            variance,
            std: variance.sqrt(),
            min: self.min,
            max: self.max,
            duration,
            changes: self.changes,
        }
    }

    fn accumulate(&mut self, now: f64) {
        let dt = now - self.last_time;
        self.integral += self.value * dt;
        self.integral_sq += self.value * self.value * dt;
        self.last_time = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal() {
        let mut q = TimeWeighted::with_initial(0.0, 7.0);
        q.update(2.0, 7.0);
        let s = q.finish(10.0);
        assert!((s.mean - 7.0).abs() < 1e-12);
        assert!(s.variance.abs() < 1e-12);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.duration, 10.0);
    }

    #[test]
    fn two_level_signal() {
        let mut q = TimeWeighted::new(0.0);
        q.update(0.0, 10.0);
        q.update(1.0, 30.0);
        let s = q.finish(4.0);
        assert!((s.mean - 25.0).abs() < 1e-12);
        assert!((s.variance - 75.0).abs() < 1e-12);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 30.0);
    }

    #[test]
    fn zero_duration_window() {
        let q = TimeWeighted::with_initial(5.0, 3.0);
        let s = q.finish(5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.duration, 0.0);
    }

    #[test]
    fn square_wave_matches_analytic() {
        // 50% duty cycle between 0 and 1: mean 0.5, variance 0.25.
        let mut q = TimeWeighted::new(0.0);
        for i in 0..100 {
            q.update(i as f64, (i % 2) as f64);
        }
        let s = q.finish(100.0);
        assert!((s.mean - 0.5).abs() < 1e-12);
        assert!((s.variance - 0.25).abs() < 1e-12);
        assert_eq!(s.changes, 100);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn non_monotone_time_panics() {
        let mut q = TimeWeighted::new(0.0);
        q.update(5.0, 1.0);
        q.update(4.0, 2.0);
    }

    #[test]
    fn ignores_time_before_start_window_correctly() {
        // Updates exactly at the start time contribute no weight.
        let mut q = TimeWeighted::new(1.0);
        q.update(1.0, 100.0);
        q.update(1.0, 50.0);
        let s = q.finish(2.0);
        assert!((s.mean - 50.0).abs() < 1e-12);
    }
}
