//! Time-series capture and manipulation.

use crate::Welford;

/// A `(time, value)` trace recorded during a simulation.
///
/// Times must be pushed in non-decreasing order. The series supports
/// slicing to an observation window (to discard warm-up transients),
/// resampling onto a uniform grid (for plotting or export), and summary
/// statistics.
///
/// # Examples
///
/// ```
/// use dctcp_stats::TimeSeries;
///
/// let mut ts = TimeSeries::new();
/// for i in 0..10 {
///     ts.push(i as f64, (i * i) as f64);
/// }
/// assert_eq!(ts.len(), 10);
/// let w = ts.window(2.0, 5.0);
/// assert_eq!(w.len(), 4); // t = 2, 3, 4, 5
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    times: Vec<f64>,
    values: Vec<f64>,
}

/// Summary statistics of a [`TimeSeries`], treating samples as equally
/// weighted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesSummary {
    /// Number of samples.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty series with capacity for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            times: Vec::with_capacity(n),
            values: Vec::with_capacity(n),
        }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `time` is smaller than the last pushed time.
    pub fn push(&mut self, time: f64, value: f64) {
        if let Some(&last) = self.times.last() {
            assert!(time >= last, "time went backwards: {time} < {last}");
        }
        self.times.push(time);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Returns the sub-series with `from <= time <= to`.
    pub fn window(&self, from: f64, to: f64) -> TimeSeries {
        let start = self.times.partition_point(|&t| t < from);
        let end = self.times.partition_point(|&t| t <= to);
        TimeSeries {
            times: self.times[start..end].to_vec(),
            values: self.values[start..end].to_vec(),
        }
    }

    /// Resamples the series onto a uniform grid with spacing `dt` using
    /// zero-order hold (the value is held constant between samples), which
    /// matches the semantics of piecewise-constant signals such as queue
    /// lengths. Returns an empty series when `self` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn resample(&self, dt: f64) -> TimeSeries {
        assert!(dt > 0.0, "resample interval must be positive, got {dt}");
        let mut out = TimeSeries::new();
        let (Some(&t0), Some(&t1)) = (self.times.first(), self.times.last()) else {
            return out;
        };
        let mut idx = 0;
        let steps = ((t1 - t0) / dt).floor() as usize;
        for k in 0..=steps {
            let t = t0 + k as f64 * dt;
            while idx + 1 < self.times.len() && self.times[idx + 1] <= t {
                idx += 1;
            }
            out.push(t, self.values[idx]);
        }
        out
    }

    /// Equal-weight summary statistics over the samples.
    pub fn summary(&self) -> SeriesSummary {
        let w: Welford = self.values.iter().copied().collect();
        SeriesSummary {
            count: w.count(),
            mean: w.mean(),
            std: w.population_std(),
            min: if w.count() == 0 { 0.0 } else { w.min() },
            max: if w.count() == 0 { 0.0 } else { w.max() },
        }
    }

    /// Last value in the series, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        Some((*self.times.last()?, *self.values.last()?))
    }
}

impl Extend<(f64, f64)> for TimeSeries {
    fn extend<T: IntoIterator<Item = (f64, f64)>>(&mut self, iter: T) {
        for (t, v) in iter {
            self.push(t, v);
        }
    }
}

impl FromIterator<(f64, f64)> for TimeSeries {
    fn from_iter<T: IntoIterator<Item = (f64, f64)>>(iter: T) -> Self {
        let mut ts = TimeSeries::new();
        ts.extend(iter);
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> TimeSeries {
        (0..n).map(|i| (i as f64, i as f64)).collect()
    }

    #[test]
    fn window_selects_inclusive_range() {
        let ts = ramp(10);
        let w = ts.window(2.0, 5.0);
        assert_eq!(w.times(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn window_outside_range_is_empty() {
        let ts = ramp(5);
        assert!(ts.window(100.0, 200.0).is_empty());
        assert!(ts.window(3.0, 2.0).is_empty());
    }

    #[test]
    fn resample_zero_order_hold() {
        let mut ts = TimeSeries::new();
        ts.push(0.0, 1.0);
        ts.push(1.0, 2.0);
        ts.push(3.0, 5.0);
        let r = ts.resample(0.5);
        assert_eq!(r.times(), &[0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0]);
        assert_eq!(r.values(), &[1.0, 1.0, 2.0, 2.0, 2.0, 2.0, 5.0]);
    }

    #[test]
    fn resample_empty_is_empty() {
        assert!(TimeSeries::new().resample(1.0).is_empty());
    }

    #[test]
    fn summary_matches_welford() {
        let ts = ramp(11);
        let s = ts.summary();
        assert_eq!(s.count, 11);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 10.0);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn push_rejects_decreasing_time() {
        let mut ts = TimeSeries::new();
        ts.push(1.0, 0.0);
        ts.push(0.5, 0.0);
    }

    #[test]
    fn push_allows_equal_times() {
        let mut ts = TimeSeries::new();
        ts.push(1.0, 0.0);
        ts.push(1.0, 1.0);
        assert_eq!(ts.len(), 2);
    }
}
