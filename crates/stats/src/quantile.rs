//! Exact and streaming quantile estimation.

/// Exact quantiles over a stored sample set.
///
/// Suited to the completion-time experiments, where the number of
/// repetitions is small (hundreds) and exact order statistics are wanted
/// for tail-latency reporting.
///
/// # Examples
///
/// ```
/// use dctcp_stats::Quantiles;
///
/// let mut q: Quantiles = (1..=100).map(f64::from).collect();
/// assert_eq!(q.quantile(0.0), Some(1.0));
/// assert_eq!(q.quantile(1.0), Some(100.0));
/// assert_eq!(q.median(), Some(50.5));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Quantiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Quantiles {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    ///
    /// Non-finite samples are ignored so a failed run cannot poison the
    /// tail statistics.
    pub fn push(&mut self, x: f64) {
        if x.is_finite() {
            self.samples.push(x);
            self.sorted = false;
        }
    }

    /// Number of (finite) samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the sample set is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Returns the `q`-quantile (0 ≤ q ≤ 1) with linear interpolation
    /// between order statistics, or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
        let n = self.samples.len();
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac)
    }

    /// The median (0.5-quantile).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Sample mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Maximum sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().fold(None, |acc, x| {
            Some(match acc {
                None => x,
                Some(m) => m.max(x),
            })
        })
    }

    /// Minimum sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().fold(None, |acc, x| {
            Some(match acc {
                None => x,
                Some(m) => m.min(x),
            })
        })
    }
}

impl Extend<f64> for Quantiles {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Quantiles {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut q = Quantiles::new();
        q.extend(iter);
        q
    }
}

/// Streaming quantile estimator using the P² (piecewise-parabolic)
/// algorithm of Jain & Chlamtac.
///
/// Estimates a single quantile in O(1) memory, for long simulations where
/// storing every sample (e.g. per-packet queueing delays) is impractical.
/// Accuracy is typically within a fraction of a percent for smooth
/// distributions.
///
/// # Examples
///
/// ```
/// use dctcp_stats::P2Quantile;
///
/// let mut p95 = P2Quantile::new(0.95);
/// for i in 0..10_000 {
///     p95.push((i % 1000) as f64);
/// }
/// let est = p95.estimate().unwrap();
/// assert!((est - 949.0).abs() < 15.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments.
    dn: [f64; 5],
    count: usize,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `p`-quantile.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "p2 quantile {p} outside (0, 1)");
        Self {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// The target quantile given at construction.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of samples seen.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Adds a sample. Non-finite samples are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                for (i, &v) in self.initial.iter().enumerate() {
                    self.q[i] = v;
                }
            }
            return;
        }

        // Find cell k such that q[k] <= x < q[k+1], adjusting extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.q[i] <= x && x < self.q[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate, or `None` with fewer than one sample. With fewer
    /// than five samples the exact quantile of the buffered samples is
    /// returned.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.initial.len() < 5 {
            let mut v = self.initial.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let pos = self.p * (v.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            return Some(v[lo] * (1.0 - frac) + v[hi] * frac);
        }
        Some(self.q[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dctcp_rng::Pcg32;

    #[test]
    fn exact_quantiles_on_ramp() {
        let mut q: Quantiles = (1..=100).map(f64::from).collect();
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.quantile(1.0), Some(100.0));
        assert!((q.quantile(0.25).unwrap() - 25.75).abs() < 1e-12);
        assert!((q.median().unwrap() - 50.5).abs() < 1e-12);
        assert!((q.quantile(0.99).unwrap() - 99.01).abs() < 1e-12);
    }

    #[test]
    fn empty_quantiles() {
        let mut q = Quantiles::new();
        assert_eq!(q.quantile(0.5), None);
        assert_eq!(q.mean(), None);
        assert_eq!(q.min(), None);
        assert_eq!(q.max(), None);
    }

    #[test]
    fn quantiles_ignore_non_finite() {
        let mut q = Quantiles::new();
        q.push(f64::NAN);
        q.push(f64::INFINITY);
        q.push(1.0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.median(), Some(1.0));
    }

    #[test]
    fn p2_tracks_uniform() {
        let mut rng = Pcg32::seed_from_u64(7);
        let mut est = P2Quantile::new(0.9);
        for _ in 0..100_000 {
            est.push(rng.next_f64());
        }
        let e = est.estimate().unwrap();
        assert!((e - 0.9).abs() < 0.01, "p2 estimate {e} too far from 0.9");
    }

    #[test]
    fn p2_small_sample_is_exact() {
        let mut est = P2Quantile::new(0.5);
        est.push(3.0);
        est.push(1.0);
        est.push(2.0);
        assert_eq!(est.estimate(), Some(2.0));
    }

    #[test]
    fn p2_empty_is_none() {
        assert_eq!(P2Quantile::new(0.5).estimate(), None);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1)")]
    fn p2_rejects_bad_p() {
        let _ = P2Quantile::new(1.0);
    }
}
