//! The heavy-traffic FCT scenario: open-loop Poisson flow churn over
//! racks of bottlenecked sinks, reporting flow-completion-time tails
//! per size class.
//!
//! Topology (per rack): `sources_per_rack` churn sources feed a rack
//! switch whose link to the rack sink is the bottleneck (marking scheme
//! under test). Rack switches are chained by idle high-delay trunks so
//! the shard partitioner can split racks across threads — results stay
//! bit-identical at any shard count because all churn state is
//! host-local and sketches merge order-invariantly.

use dctcp_core::MarkingScheme;
use dctcp_sim::{
    Capacity, FaultPlan, LinkId, LinkSpec, NodeId, QueueConfig, ShardedSimulator, SimDuration,
    SimError, SimTime, TopologyBuilder,
};
use dctcp_stats::QuantileSketch;
use dctcp_tcp::{
    ChurnConfig, ChurnSink, ChurnSource, DeadlineConfig, SizeCdf, TcpConfig, SIZE_CLASSES,
};

use crate::sizes;

/// A validated FCT churn scenario; build with [`FctScenario::builder`],
/// execute with [`FctScenario::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct FctScenario {
    racks: u32,
    sources_per_rack: u32,
    bottleneck_bps: u64,
    rtt: SimDuration,
    load: f64,
    marking: MarkingScheme,
    tcp: TcpConfig,
    buffer: Capacity,
    sizes: SizeCdf,
    class_bounds: [u64; 2],
    slots: u32,
    seed: u64,
    warmup: SimDuration,
    duration: SimDuration,
    drain: SimDuration,
    deadline_slack: Option<f64>,
}

/// Builder for [`FctScenario`].
#[derive(Debug, Clone, PartialEq)]
pub struct FctScenarioBuilder {
    inner: FctScenario,
}

/// An instantiated FCT scenario: the simulator plus node/link handles.
#[derive(Debug)]
pub struct FctInstance {
    /// The ready-to-run simulator. Honours `DCTCP_SIM_SHARDS`.
    pub sim: ShardedSimulator,
    /// Churn source hosts, rack-major order.
    pub sources: Vec<NodeId>,
    /// One sink per rack.
    pub sinks: Vec<NodeId>,
    /// One rack switch per rack.
    pub switches: Vec<NodeId>,
    /// The bottleneck link of each rack (switch → sink).
    pub bottlenecks: Vec<LinkId>,
}

/// Merged outcome of an FCT run. All counters aggregate over every
/// source; sketches hold seconds and cover measured (post-warmup)
/// completions only.
#[derive(Debug, Clone, PartialEq)]
pub struct FctReport {
    /// Per-class FCT sketches, indexed short/mid/long.
    pub sketches: [QuantileSketch; SIZE_CLASSES],
    /// Total Poisson arrivals drawn inside the horizon.
    pub arrivals: u64,
    /// Flows started on a sender.
    pub started: u64,
    /// Flows fully acknowledged (measured or not).
    pub completed: u64,
    /// Flows aborted by the consecutive-RTO cap.
    pub aborted: u64,
    /// Measured completions (the sketch population).
    pub measured_completed: u64,
    /// Application bytes of measured completions.
    pub measured_bytes: u64,
    /// Measured goodput: measured bytes over the measurement window,
    /// bits/second.
    pub goodput_bps: f64,
    /// Measured completions that carried a deadline.
    pub deadline_flows: u64,
    /// ... of which missed it.
    pub deadline_missed: u64,
    /// Sender retransmission timeouts across all recycled flows.
    pub timeouts: u64,
    /// Largest per-source backlog behind a full slab.
    pub backlog_peak: u64,
    /// Largest per-source concurrent-flow footprint.
    pub slots_high_water: u32,
    /// Stale-incarnation ACKs/timers/segments dropped by generation
    /// checks (sources + sinks).
    pub stale_events: u64,
    /// Incarnations adopted in place by sink receivers.
    pub recycled_receivers: u64,
    /// Simulation events the engine processed for the whole run —
    /// shard-count-invariant, so it doubles as a determinism
    /// fingerprint and feeds the churn bench's events/sec rate.
    pub events: u64,
}

impl FctReport {
    /// FCT quantile in milliseconds for a size class (0 short, 1 mid,
    /// 2 long), or `None` if the class is empty.
    pub fn fct_ms(&self, class: usize, q: f64) -> Option<f64> {
        self.sketches.get(class)?.quantile(q).map(|s| s * 1e3)
    }

    /// Fraction of deadline-carrying measured flows that missed, or 0
    /// when deadlines were off.
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.deadline_flows == 0 {
            0.0
        } else {
            self.deadline_missed as f64 / self.deadline_flows as f64
        }
    }
}

impl FctScenario {
    /// Starts building a scenario with CI-sized defaults: 2 racks of 8
    /// sources, 10 Gb/s bottlenecks, 100 µs RTT, load 0.6 of each
    /// bottleneck with web-search-style sizes, DCTCP marking at
    /// `K = 40` packets.
    pub fn builder() -> FctScenarioBuilder {
        FctScenarioBuilder {
            inner: FctScenario {
                racks: 2,
                sources_per_rack: 8,
                bottleneck_bps: 10_000_000_000,
                rtt: SimDuration::from_micros(100),
                load: 0.6,
                marking: MarkingScheme::dctcp_packets(40),
                tcp: TcpConfig::dctcp(1.0 / 16.0),
                buffer: Capacity::Packets(1000),
                sizes: sizes::web_search(),
                class_bounds: [10_000, 100_000],
                slots: 4096,
                seed: 1,
                warmup: SimDuration::from_millis(10),
                duration: SimDuration::from_millis(50),
                drain: SimDuration::from_millis(100),
                deadline_slack: None,
            },
        }
    }

    /// The per-source mean inter-arrival gap implied by the configured
    /// load: each rack's sources together offer
    /// `load × bottleneck_bps` of application bytes.
    pub fn mean_interarrival(&self) -> SimDuration {
        let per_source_bps = self.load * self.bottleneck_bps as f64 / self.sources_per_rack as f64;
        let flows_per_sec = per_source_bps / (8.0 * self.sizes.mean_bytes());
        SimDuration::from_secs_f64(1.0 / flows_per_sec)
    }

    /// Total offered arrivals per second across all racks.
    pub fn offered_flows_per_sec(&self) -> f64 {
        let total = self.racks as u64 * self.sources_per_rack as u64;
        total as f64 / self.mean_interarrival().as_secs_f64()
    }

    /// Builds the topology without running it, letting
    /// `DCTCP_SIM_SHARDS` pick the shard count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if topology construction or agent
    /// configuration fails.
    pub fn instantiate(&self) -> Result<FctInstance, SimError> {
        self.instantiate_inner(None)
    }

    /// [`FctScenario::instantiate`] with an explicit shard target
    /// (shard-parity tests and benches).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if topology construction or agent
    /// configuration fails.
    pub fn instantiate_with_shards(&self, target: usize) -> Result<FctInstance, SimError> {
        self.instantiate_inner(Some(target))
    }

    fn instantiate_inner(&self, shards: Option<usize>) -> Result<FctInstance, SimError> {
        let mut b = TopologyBuilder::new();
        let hop = self.rtt / 4;
        let spec = LinkSpec {
            rate_bps: self.bottleneck_bps,
            delay: hop,
        };
        let mean_ia = self.mean_interarrival();
        let deadline = self.deadline_slack.map(|slack| DeadlineConfig {
            slack,
            line_rate_bps: self.bottleneck_bps,
            base_rtt: self.rtt,
        });

        let mut sources = Vec::with_capacity((self.racks * self.sources_per_rack) as usize);
        let mut sinks = Vec::with_capacity(self.racks as usize);
        let mut switches = Vec::with_capacity(self.racks as usize);
        let mut bottlenecks = Vec::with_capacity(self.racks as usize);
        for r in 0..self.racks {
            let sw = b.switch(format!("rack{r}"));
            let sink = b.host(
                format!("sink{r}"),
                Box::new(
                    ChurnSink::new(self.tcp)
                        .map_err(|e| SimError::InvalidTopology(e.to_string()))?,
                ),
            );
            for i in 0..self.sources_per_rack {
                let origin = r * self.sources_per_rack + i;
                let cfg = ChurnConfig {
                    tcp: self.tcp,
                    dst: sink,
                    origin,
                    slots: self.slots,
                    seed: self.seed,
                    mean_interarrival: mean_ia,
                    sizes: self.sizes.clone(),
                    start: SimTime::ZERO,
                    horizon: SimTime::ZERO + self.warmup + self.duration,
                    measure_from: SimTime::ZERO + self.warmup,
                    class_bounds: self.class_bounds,
                    deadline,
                };
                let src = b.host(
                    format!("src{r}_{i}"),
                    Box::new(
                        ChurnSource::new(cfg)
                            .map_err(|e| SimError::InvalidTopology(e.to_string()))?,
                    ),
                );
                b.link(
                    src,
                    sw,
                    spec,
                    QueueConfig::host_nic(),
                    QueueConfig::host_nic(),
                )?;
                sources.push(src);
            }
            let qcfg = QueueConfig::switch(self.buffer, self.marking);
            let bottleneck = b.link(sw, sink, spec, qcfg, QueueConfig::host_nic())?;
            // Chain rack switches with an idle, high-latency trunk so the
            // graph stays connected but shards can cut between racks.
            if let Some(&prev) = switches.last() {
                b.link(
                    prev,
                    sw,
                    LinkSpec {
                        rate_bps: self.bottleneck_bps,
                        delay: SimDuration::from_micros(500),
                    },
                    QueueConfig::host_nic(),
                    QueueConfig::host_nic(),
                )?;
            }
            sinks.push(sink);
            switches.push(sw);
            bottlenecks.push(bottleneck);
        }
        let network = b.build()?;
        let sim = match shards {
            Some(target) => ShardedSimulator::with_shards(network, target)?,
            None => ShardedSimulator::new(network)?,
        };
        Ok(FctInstance {
            sim,
            sources,
            sinks,
            switches,
            bottlenecks,
        })
    }

    /// Runs the scenario to completion and merges per-source results.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if instantiation or the run fails.
    pub fn run(&self) -> Result<FctReport, SimError> {
        self.run_supervised(None, |_| FaultPlan::new())
    }

    /// [`FctScenario::run`] under an optional cancel token and fault
    /// plan (mirrors
    /// [`LongLivedScenario::run_supervised`](crate::LongLivedScenario::run_supervised)).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if instantiation, fault installation or the
    /// run fails, including `Cancelled` for a fired token.
    pub fn run_supervised(
        &self,
        cancel: Option<dctcp_sim::CancelToken>,
        plan: impl FnOnce(&FctInstance) -> FaultPlan,
    ) -> Result<FctReport, SimError> {
        let mut instance = self.instantiate()?;
        instance.sim.set_cancel_token(cancel);
        let faults = plan(&instance);
        instance.sim.install_faults(&faults)?;
        self.run_instance(instance)
    }

    /// Runs an already-instantiated scenario (e.g. one built with
    /// [`FctScenario::instantiate_with_shards`]) and merges results.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the run fails or a source reports
    /// flow-table misuse.
    pub fn run_instance(&self, instance: FctInstance) -> Result<FctReport, SimError> {
        let FctInstance {
            mut sim,
            sources,
            sinks,
            ..
        } = instance;

        sim.run_for(self.warmup + self.duration + self.drain)?;

        let mut report = FctReport {
            sketches: std::array::from_fn(|_| QuantileSketch::new()),
            arrivals: 0,
            started: 0,
            completed: 0,
            aborted: 0,
            measured_completed: 0,
            measured_bytes: 0,
            goodput_bps: 0.0,
            deadline_flows: 0,
            deadline_missed: 0,
            timeouts: 0,
            backlog_peak: 0,
            slots_high_water: 0,
            stale_events: 0,
            recycled_receivers: 0,
            events: sim.events_processed(),
        };
        for &h in &sources {
            let src: &ChurnSource = sim.agent(h)?;
            if let Some(e) = src.table_errors().first() {
                return Err(SimError::InvalidTopology(format!(
                    "flow-table misuse on {}: {e}",
                    sim.node_name(h)
                )));
            }
            let s = src.stats();
            report.arrivals += s.arrivals;
            report.started += s.started;
            report.completed += s.completed;
            report.aborted += s.aborted;
            report.measured_completed += s.measured_completed;
            report.measured_bytes += s.measured_bytes;
            report.deadline_flows += s.deadline_flows;
            report.deadline_missed += s.deadline_missed;
            report.timeouts += s.timeouts;
            report.backlog_peak = report.backlog_peak.max(s.backlog_peak);
            report.slots_high_water = report.slots_high_water.max(src.slots_high_water());
            report.stale_events += s.stale_acks + s.stale_timers;
            for (into, sketch) in report.sketches.iter_mut().zip(src.sketches()) {
                into.merge(sketch);
            }
        }
        for &h in &sinks {
            let sink: &ChurnSink = sim.agent(h)?;
            report.stale_events += sink.stats().stale_segments + sink.stats().stale_timers;
            report.recycled_receivers += sink.stats().recycled;
        }
        report.goodput_bps = report.measured_bytes as f64 * 8.0 / self.duration.as_secs_f64();
        Ok(report)
    }
}

impl FctScenarioBuilder {
    /// Sets the number of racks (each with its own bottleneck + sink).
    pub fn racks(mut self, n: u32) -> Self {
        self.inner.racks = n;
        self
    }

    /// Sets churn sources per rack.
    pub fn sources_per_rack(mut self, n: u32) -> Self {
        self.inner.sources_per_rack = n;
        self
    }

    /// Sets every link's rate in Gb/s (the rack bottleneck rate).
    pub fn bottleneck_gbps(mut self, gbps: f64) -> Self {
        self.inner.bottleneck_bps = (gbps * 1e9) as u64;
        self
    }

    /// Sets the propagation round-trip time in microseconds.
    pub fn rtt_us(mut self, us: f64) -> Self {
        self.inner.rtt = SimDuration::from_secs_f64(us * 1e-6);
        self
    }

    /// Sets offered load as a fraction of each rack bottleneck.
    pub fn load(mut self, load: f64) -> Self {
        self.inner.load = load;
        self
    }

    /// Sets the bottleneck marking scheme.
    pub fn marking(mut self, scheme: MarkingScheme) -> Self {
        self.inner.marking = scheme;
        self
    }

    /// Sets the transport configuration for every flow.
    pub fn tcp(mut self, cfg: TcpConfig) -> Self {
        self.inner.tcp = cfg;
        self
    }

    /// Sets the bottleneck buffer size.
    pub fn buffer(mut self, capacity: Capacity) -> Self {
        self.inner.buffer = capacity;
        self
    }

    /// Sets the flow-size distribution.
    pub fn sizes(mut self, cdf: SizeCdf) -> Self {
        self.inner.sizes = cdf;
        self
    }

    /// Sets the size-class split `short <= b0 < mid <= b1 < long`.
    pub fn class_bounds(mut self, bounds: [u64; 2]) -> Self {
        self.inner.class_bounds = bounds;
        self
    }

    /// Sets the per-source concurrent-flow slab size.
    pub fn slots(mut self, slots: u32) -> Self {
        self.inner.slots = slots;
        self
    }

    /// Sets the arrival-stream seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner.seed = seed;
        self
    }

    /// Sets the warm-up length (arrivals simulated, not measured).
    pub fn warmup_secs(mut self, s: f64) -> Self {
        self.inner.warmup = SimDuration::from_secs_f64(s);
        self
    }

    /// Sets the measured arrival window length.
    pub fn duration_secs(mut self, s: f64) -> Self {
        self.inner.duration = SimDuration::from_secs_f64(s);
        self
    }

    /// Sets the drain period after arrivals stop (lets in-flight flows
    /// finish so their FCTs are recorded).
    pub fn drain_secs(mut self, s: f64) -> Self {
        self.inner.drain = SimDuration::from_secs_f64(s);
        self
    }

    /// Enables per-flow deadlines with this mean slack multiplier
    /// (drives D²TCP urgency when the congestion control is D²TCP).
    pub fn deadline_slack(mut self, slack: f64) -> Self {
        self.inner.deadline_slack = Some(slack);
        self
    }

    /// Validates and returns the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for an empty topology, a load outside
    /// `(0, 1)`, or invalid marking/TCP parameters.
    pub fn build(self) -> Result<FctScenario, SimError> {
        let s = self.inner;
        if s.racks == 0 || s.sources_per_rack == 0 {
            return Err(SimError::InvalidTopology(
                "at least one rack and one source per rack required".into(),
            ));
        }
        if !(s.load > 0.0 && s.load < 1.0) {
            return Err(SimError::InvalidTopology(format!(
                "load must be in (0, 1), got {}",
                s.load
            )));
        }
        if s.duration.is_zero() {
            return Err(SimError::InvalidTopology(
                "measurement window must be positive".into(),
            ));
        }
        s.marking.build()?;
        s.tcp.validate()?;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(scheme: MarkingScheme) -> FctScenario {
        FctScenario::builder()
            .racks(2)
            .sources_per_rack(4)
            .bottleneck_gbps(1.0)
            .load(0.5)
            .marking(scheme)
            .slots(512)
            .warmup_secs(0.002)
            .duration_secs(0.01)
            .drain_secs(0.05)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_nonsense() {
        assert!(FctScenario::builder().racks(0).build().is_err());
        assert!(FctScenario::builder().load(0.0).build().is_err());
        assert!(FctScenario::builder().load(1.5).build().is_err());
        assert!(FctScenario::builder().duration_secs(0.0).build().is_err());
    }

    #[test]
    fn load_sizing_matches_offered_bytes() {
        let s = quick(MarkingScheme::dctcp_packets(40));
        // offered bps per rack = sources × mean_bytes × 8 / mean_ia.
        let per_rack = 4.0 * s.sizes.mean_bytes() * 8.0 / s.mean_interarrival().as_secs_f64();
        let rel = (per_rack - 0.5e9).abs() / 0.5e9;
        assert!(rel < 0.01, "offered {per_rack}");
        assert!(s.offered_flows_per_sec() > 1000.0);
    }

    #[test]
    fn fct_run_completes_and_reports_tails() {
        let r = quick(MarkingScheme::dctcp_packets(40)).run().unwrap();
        assert!(r.arrivals > 100, "arrivals {}", r.arrivals);
        assert_eq!(r.completed + r.aborted, r.started);
        assert_eq!(r.started, r.arrivals, "open loop admits everything");
        assert_eq!(r.aborted, 0);
        assert!(r.measured_completed > 0);
        assert_eq!(
            r.sketches.iter().map(|s| s.count()).sum::<u64>(),
            r.measured_completed
        );
        let p50 = r.fct_ms(0, 0.50).expect("short flows present");
        let p99 = r.fct_ms(0, 0.99).expect("short flows present");
        assert!(p50 > 0.0 && p99 >= p50, "p50 {p50} p99 {p99}");
        assert!(r.goodput_bps > 0.0);
        assert!(r.recycled_receivers > 0, "sink receivers recycled");
    }

    #[test]
    fn report_is_identical_across_shard_counts() {
        let s = quick(MarkingScheme::dt_dctcp_packets(15, 25));
        let serial = s
            .run_instance(s.instantiate_with_shards(1).unwrap())
            .unwrap();
        for shards in [2usize, 4] {
            let instance = s.instantiate_with_shards(shards).unwrap();
            assert!(instance.sim.shard_count() >= 1);
            let sharded = s.run_instance(instance).unwrap();
            // Full struct equality: every counter and every sketch bin.
            assert_eq!(serial, sharded, "shards = {shards}");
        }
    }

    #[test]
    fn deadline_scenario_reports_miss_rate() {
        let r = FctScenario::builder()
            .racks(1)
            .sources_per_rack(4)
            .bottleneck_gbps(1.0)
            .load(0.5)
            .tcp(dctcp_tcp::TcpConfig::d2tcp(1.0 / 16.0, 1.0))
            .deadline_slack(2.0)
            .slots(512)
            .warmup_secs(0.002)
            .duration_secs(0.01)
            .drain_secs(0.05)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(r.deadline_flows > 0);
        assert_eq!(r.deadline_flows, r.measured_completed);
        let rate = r.deadline_miss_rate();
        assert!((0.0..=1.0).contains(&rate));
    }
}
