//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A titled, column-aligned text table — the output format of every
/// `fig*` reproduction binary.
///
/// # Examples
///
/// ```
/// use dctcp_workloads::Table;
///
/// let mut t = Table::new("Fig. 11 — queue std", &["N", "DCTCP", "DT-DCTCP"]);
/// t.row(&["10", "3.2", "1.9"]);
/// let s = t.to_string();
/// assert!(s.contains("DT-DCTCP"));
/// assert!(s.contains("3.2"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the rows as CSV (headers first), for `--csv` output.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |s: &str| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line: usize = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "=".repeat(line.max(self.title.len())))?;
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{h:>w$}", w = widths[i])?;
        }
        writeln!(f)?;
        writeln!(f, "{}", "-".repeat(line.max(self.title.len())))?;
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{c:>w$}", w = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["N", "value"]);
        t.row(&["5", "1.25"]);
        t.row(&["100", "0.5"]);
        let s = t.to_string();
        assert!(s.contains("demo"));
        let lines: Vec<&str> = s.lines().collect();
        // Header and rows right-align within columns.
        assert!(lines.iter().any(|l| l.contains("  5 |  1.25")), "{s}");
        assert!(lines.iter().any(|l| l.contains("100 |   0.5")), "{s}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn csv_escapes_specials() {
        let mut t = Table::new("demo", &["name", "note"]);
        t.row(&["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn row_counts() {
        let mut t = Table::new("demo", &["x"]);
        assert_eq!(t.num_rows(), 0);
        t.row(&["1"]);
        t.row_owned(vec!["2".into()]);
        assert_eq!(t.num_rows(), 2);
    }
}
