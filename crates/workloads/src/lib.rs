//! Experiment harness reproducing the paper's evaluation (Section VI).
//!
//! Two scenario families drive everything:
//!
//! * [`LongLivedScenario`] — N long-lived flows over one 10 Gb/s
//!   bottleneck (Figs. 1, 10, 11, 12).
//! * [`build_testbed`]/[`run_query_rounds`] — the Fig. 13 testbed with
//!   Incast and partition-aggregate query workloads (Figs. 14, 15).
//! * [`FctScenario`] — open-loop heavy-traffic flow churn: Poisson
//!   arrivals at a configured load with empirical sizes ([`sizes`]),
//!   reporting per-size-class FCT tails from mergeable sketches.
//!
//! The [`experiments`] module exposes one driver per data figure; each
//! returns a serializable result with [`Table`] renderings — the `fig*`
//! binaries in `dctcp-bench` are thin wrappers around them.
//!
//! # Examples
//!
//! ```
//! use dctcp_core::MarkingScheme;
//! use dctcp_workloads::LongLivedScenario;
//!
//! let report = LongLivedScenario::builder()
//!     .flows(4)
//!     .bottleneck_gbps(1.0)
//!     .marking(MarkingScheme::dt_dctcp_packets(15, 25))
//!     .warmup_secs(0.01)
//!     .duration_secs(0.02)
//!     .build()?
//!     .run();
//! assert!(report.marks > 0);
//! # Ok::<(), dctcp_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod buildup;
mod collective;
mod convergence;
pub mod experiments;
mod fct;
pub mod sizes;
mod star;
mod table;
mod testbed;

pub use buildup::{run_buildup, run_buildup_traced, BuildupConfig, BuildupReport};
pub use collective::{
    run_collective, CollectiveConfig, CollectivePattern, CollectiveReport, Transfer,
};
pub use convergence::{run_convergence, ConvergenceConfig, ConvergenceReport};
pub use experiments::Scale;
pub use fct::{FctInstance, FctReport, FctScenario, FctScenarioBuilder};
pub use star::{LongLivedInstance, LongLivedReport, LongLivedScenario, LongLivedScenarioBuilder};
pub use table::Table;
pub use testbed::{
    build_testbed, run_query_rounds, run_query_rounds_supervised, run_query_rounds_with_threads,
    QueryMode, QueryReport, QueryRound, QueryWorkload, Testbed, TestbedConfig, TESTBED_WORKERS,
};

// Re-export the workspace crates the drivers build on, so example and
// bench code can depend on `dctcp-workloads` alone.
pub use dctcp_control as control;
pub use dctcp_core as core;
pub use dctcp_fluid as fluid;
pub use dctcp_parallel as parallel;
pub use dctcp_sim as sim;
pub use dctcp_stats as stats;
pub use dctcp_tcp as tcp;
