//! Empirical flow-size distributions for the FCT churn workload.
//!
//! The tables are piecewise-linear CDFs in the style of the web-search
//! (DCTCP paper, Fig. 4) and data-mining (VL2) workloads that
//! data-center transport papers conventionally replay: mostly
//! mice with a heavy elephant tail. They are committed here as data so
//! scenarios referencing `size_dist = web_search` are reproducible
//! byte-for-byte.

use dctcp_tcp::SizeCdf;

/// Web-search-style distribution: median ~2 KB, 95th percentile
/// ~20 KB, tail to 200 KB. Mean ≈ 6.4 KB.
pub const WEB_SEARCH: &[(f64, u64)] = &[
    (0.0, 500),
    (0.5, 2_000),
    (0.8, 6_000),
    (0.95, 20_000),
    (0.99, 50_000),
    (1.0, 200_000),
];

/// Data-mining-style distribution: even more mice, much heavier tail
/// (elephants to 10 MB). Mean ≈ 59 KB.
pub const DATA_MINING: &[(f64, u64)] = &[
    (0.0, 300),
    (0.6, 1_000),
    (0.9, 10_000),
    (0.99, 1_000_000),
    (1.0, 10_000_000),
];

/// Builds the web-search CDF (infallible: the table is validated by
/// unit test).
pub fn web_search() -> SizeCdf {
    SizeCdf::new(WEB_SEARCH).expect("WEB_SEARCH table is valid")
}

/// Builds the data-mining CDF (infallible: the table is validated by
/// unit test).
pub fn data_mining() -> SizeCdf {
    SizeCdf::new(DATA_MINING).expect("DATA_MINING table is valid")
}

/// Looks up a named size distribution (`web_search` or `data_mining`),
/// as referenced from scenario files.
pub fn by_name(name: &str) -> Option<SizeCdf> {
    match name {
        "web_search" => Some(web_search()),
        "data_mining" => Some(data_mining()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_valid_cdfs() {
        let web = web_search();
        let mining = data_mining();
        assert!(
            (web.mean_bytes() - 6425.0).abs() < 1.0,
            "{}",
            web.mean_bytes()
        );
        assert!(mining.mean_bytes() > 50_000.0);
        assert!(mining.mean_bytes() > web.mean_bytes());
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("web_search"), Some(web_search()));
        assert_eq!(by_name("data_mining"), Some(data_mining()));
        assert_eq!(by_name("uniform"), None);
    }
}
