//! The paper's testbed (Fig. 13) and its query workloads: Incast
//! (Fig. 14) and partition-aggregate completion time (Fig. 15).
//!
//! Topology: Switch 1 connects one aggregator (client) host and three
//! leaf switches; each leaf switch connects three worker hosts. All
//! links run at 1 Gb/s. The marking scheme under test runs on Switch 1's
//! port toward the client (buffer 128 KB); every other switch port is
//! DropTail with 512 KB, placing the bottleneck exactly where the paper
//! does.

use dctcp_core::MarkingScheme;
use dctcp_rng::Pcg32;
use dctcp_sim::{
    Capacity, FlowId, LinkId, LinkSpec, NodeId, QueueConfig, SimDuration, SimError, SimTime,
    Simulator, TopologyBuilder,
};
use dctcp_stats::Quantiles;
use dctcp_tcp::{ScheduledFlow, TcpConfig, TransportHost};

/// Number of worker hosts in the Fig. 13 testbed.
pub const TESTBED_WORKERS: usize = 9;

/// Static configuration of the testbed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestbedConfig {
    /// Marking scheme on the bottleneck port (Switch 1 → client).
    pub marking: MarkingScheme,
    /// Transport configuration for every host.
    pub tcp: TcpConfig,
    /// Bottleneck buffer (the paper: 128 KB).
    pub bottleneck_buffer: Capacity,
    /// Buffers of all other switch ports (the paper: 512 KB DropTail).
    pub other_buffer: Capacity,
    /// Link rate in Gb/s (the paper: 1).
    pub link_gbps: f64,
    /// One-way propagation delay per link in microseconds (25 µs gives
    /// the paper's ≈ 100 µs same-switch RTT).
    pub link_delay_us: u64,
}

impl TestbedConfig {
    /// The paper's testbed with the given bottleneck marking scheme:
    /// 1 Gb/s links, 128 KB bottleneck buffer, 512 KB elsewhere, DCTCP
    /// transport (`g = 1/16`).
    pub fn paper(marking: MarkingScheme) -> Self {
        TestbedConfig {
            marking,
            tcp: TcpConfig::dctcp(1.0 / 16.0),
            bottleneck_buffer: Capacity::Bytes(128 * 1024),
            other_buffer: Capacity::Bytes(512 * 1024),
            link_gbps: 1.0,
            link_delay_us: 25,
        }
    }
}

/// How response flows begin in a query workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// Workers start their responses at scheduled times (jittered);
    /// no query packets cross the network.
    Scheduled,
    /// The aggregator transmits real query (`Control`) packets at the
    /// jittered instants and each worker responds when its query
    /// arrives — the paper's "aggregator generates one query from each
    /// worker" semantics, including query propagation time.
    QueryPackets,
}

/// A query-style workload: the aggregator requests data from `flows`
/// responders, each sending `bytes_per_flow`, all starting (nearly)
/// simultaneously.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryWorkload {
    /// Number of synchronized response flows.
    pub flows: u32,
    /// Bytes each responder sends.
    pub bytes_per_flow: u64,
    /// Uniform start jitter applied per flow (models query fan-out
    /// skew).
    pub jitter: SimDuration,
    /// Independent repetitions.
    pub rounds: u32,
    /// Base RNG seed; round `i` uses `seed + i`.
    pub seed: u64,
    /// Give-up horizon per round.
    pub round_timeout: SimDuration,
    /// How responses are triggered.
    pub mode: QueryMode,
}

impl QueryWorkload {
    /// The paper's Incast experiment: `n` workers each answering with
    /// 64 KB.
    pub fn incast(n: u32, rounds: u32) -> Self {
        QueryWorkload {
            flows: n,
            bytes_per_flow: 64 * 1024,
            jitter: SimDuration::from_micros(100),
            rounds,
            seed: 1,
            round_timeout: SimDuration::from_secs(5),
            mode: QueryMode::Scheduled,
        }
    }

    /// The paper's completion-time experiment: 1 MB split evenly over
    /// `n` workers.
    pub fn partition_aggregate(n: u32, rounds: u32) -> Self {
        QueryWorkload {
            flows: n,
            bytes_per_flow: (1024 * 1024) / n as u64,
            jitter: SimDuration::from_micros(100),
            rounds,
            seed: 1,
            round_timeout: SimDuration::from_secs(5),
            mode: QueryMode::Scheduled,
        }
    }

    /// Switches the workload to real query packets
    /// ([`QueryMode::QueryPackets`]).
    pub fn with_query_packets(mut self) -> Self {
        self.mode = QueryMode::QueryPackets;
        self
    }
}

/// Outcome of one query round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRound {
    /// Time from query start until the last byte arrived (seconds);
    /// `None` if the round hit the timeout horizon.
    pub completion: Option<f64>,
    /// Application goodput over the round, bits/second (0 when
    /// incomplete).
    pub goodput_bps: f64,
    /// Sender retransmission timeouts during the round.
    pub timeouts: u64,
    /// Packets dropped at the bottleneck.
    pub drops: u64,
}

/// Aggregate of all rounds of a query workload.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReport {
    /// The workload that was run.
    pub workload: QueryWorkload,
    /// Marking scheme under test.
    pub scheme: MarkingScheme,
    /// Per-round outcomes.
    pub rounds: Vec<QueryRound>,
}

impl QueryReport {
    /// Mean goodput across completed rounds (bits/second); incomplete
    /// rounds count as zero goodput, as a collapsed Incast round does.
    pub fn mean_goodput_bps(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds.iter().map(|r| r.goodput_bps).sum::<f64>() / self.rounds.len() as f64
    }

    /// Completion-time quantile helper over completed rounds.
    pub fn completions(&self) -> Quantiles {
        self.rounds.iter().filter_map(|r| r.completion).collect()
    }

    /// Fraction of rounds that suffered at least one retransmission
    /// timeout.
    pub fn timeout_fraction(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds.iter().filter(|r| r.timeouts > 0).count() as f64 / self.rounds.len() as f64
    }
}

/// Handles to the built testbed.
#[derive(Debug)]
pub struct Testbed {
    /// The simulator, ready to run.
    pub sim: Simulator,
    /// The aggregator host.
    pub client: NodeId,
    /// Worker hosts (nine of them).
    pub workers: Vec<NodeId>,
    /// The bottleneck link (Switch 1 → client).
    pub bottleneck: LinkId,
    /// Switch 1 (the transmitting end of the bottleneck).
    pub switch1: NodeId,
}

/// Builds the Fig. 13 testbed with the given response flows scheduled on
/// the workers (round-robin assignment, flow `i` on worker `i % 9`).
///
/// # Errors
///
/// Returns [`SimError`] for invalid marking/TCP parameters.
pub fn build_testbed(cfg: &TestbedConfig, flows: &[ScheduledFlow]) -> Result<Testbed, SimError> {
    cfg.tcp.validate()?;
    let spec = LinkSpec::gbps(cfg.link_gbps, cfg.link_delay_us);
    let mut b = TopologyBuilder::new();

    let client = b.host("client", Box::new(TransportHost::new(cfg.tcp)));
    let sw1 = b.switch("sw1");

    // Worker transport hosts with their round-robin share of the flows.
    let mut worker_hosts: Vec<TransportHost> = (0..TESTBED_WORKERS)
        .map(|_| TransportHost::new(cfg.tcp))
        .collect();
    for (i, f) in flows.iter().enumerate() {
        worker_hosts[i % TESTBED_WORKERS].schedule(*f);
    }

    let droptail = QueueConfig::switch(cfg.other_buffer, MarkingScheme::DropTail);
    let mut workers = Vec::with_capacity(TESTBED_WORKERS);
    let mut hosts_iter = worker_hosts.into_iter();
    for leaf in 0..3 {
        let sw = b.switch(format!("sw{}", leaf + 2));
        b.link(sw, sw1, spec, droptail, droptail)?;
        for w in 0..3 {
            let host = hosts_iter.next().expect("nine worker hosts");
            let h = b.host(format!("w{}", leaf * 3 + w), Box::new(host));
            b.link(h, sw, spec, QueueConfig::host_nic(), droptail)?;
            workers.push(h);
        }
    }

    let bottleneck_q = QueueConfig::switch(cfg.bottleneck_buffer, cfg.marking);
    let bottleneck = b.link(sw1, client, spec, bottleneck_q, QueueConfig::host_nic())?;

    Ok(Testbed {
        sim: Simulator::new(b.build()?),
        client,
        workers,
        bottleneck,
        switch1: sw1,
    })
}

/// Runs every round of a query workload on a fresh testbed and collects
/// the report.
///
/// # Errors
///
/// Returns [`SimError`] if the testbed cannot be built.
pub fn run_query_rounds(
    cfg: &TestbedConfig,
    workload: &QueryWorkload,
) -> Result<QueryReport, SimError> {
    run_query_rounds_with_threads(cfg, workload, dctcp_parallel::available_threads())
}

/// [`run_query_rounds`] with an explicit worker-thread count. Rounds are
/// independent deterministic simulations (each seeds its own RNG from
/// `seed + round`) assembled in round order, so the report is
/// bit-identical for any `threads` value.
///
/// # Errors
///
/// Returns [`SimError`] if the testbed cannot be built; with several
/// failing rounds, the lowest-numbered round's error is reported, as in
/// serial execution.
pub fn run_query_rounds_with_threads(
    cfg: &TestbedConfig,
    workload: &QueryWorkload,
    threads: usize,
) -> Result<QueryReport, SimError> {
    run_query_rounds_supervised(cfg, workload, threads, None)
}

/// [`run_query_rounds_with_threads`] under an optional
/// [`CancelToken`](dctcp_sim::CancelToken) shared by every round's
/// simulator: a supervisor that fires it stops the in-flight rounds with
/// [`SimError::Cancelled`](SimError). An unfired token leaves the report
/// bit-identical to an unsupervised run.
///
/// # Errors
///
/// Returns [`SimError`] if the testbed cannot be built, a round fails,
/// or the token fires (`Cancelled`); with several failing rounds, the
/// lowest-numbered round's error is reported, as in serial execution.
pub fn run_query_rounds_supervised(
    cfg: &TestbedConfig,
    workload: &QueryWorkload,
    threads: usize,
    cancel: Option<dctcp_sim::CancelToken>,
) -> Result<QueryReport, SimError> {
    let rounds = dctcp_parallel::par_map((0..workload.rounds).collect(), threads, |_idx, round| {
        run_one_round(cfg, workload, round, cancel.clone())
    })
    .into_iter()
    .collect::<Result<Vec<QueryRound>, SimError>>()?;
    Ok(QueryReport {
        workload: *workload,
        scheme: cfg.marking,
        rounds,
    })
}

fn run_one_round(
    cfg: &TestbedConfig,
    workload: &QueryWorkload,
    round: u32,
    cancel: Option<dctcp_sim::CancelToken>,
) -> Result<QueryRound, SimError> {
    let mut rng = Pcg32::seed_from_u64(workload.seed.wrapping_add(round as u64));
    let client_node = NodeId::from_index(0); // client is added first
    let mut jittered = |i: u32| -> SimTime {
        let jitter_ns = if workload.jitter.is_zero() {
            0
        } else {
            rng.range_u64(0, workload.jitter.as_nanos())
        };
        let _ = i;
        SimTime::ZERO + SimDuration::from_nanos(jitter_ns)
    };

    let mut tb = match workload.mode {
        QueryMode::Scheduled => {
            let flows: Vec<ScheduledFlow> = (0..workload.flows)
                .map(|i| ScheduledFlow {
                    flow: FlowId(i as u64 + 1),
                    dst: client_node,
                    bytes: Some(workload.bytes_per_flow),
                    at: jittered(i),
                    cfg: cfg.tcp,
                })
                .collect();
            build_testbed(cfg, &flows)?
        }
        QueryMode::QueryPackets => {
            let mut tb = build_testbed(cfg, &[])?;
            // Workers answer queries; the aggregator emits them at the
            // jittered instants.
            for &w in &tb.workers {
                let host: &mut TransportHost = tb.sim.agent_mut(w).expect("worker transport host");
                host.respond_to_queries(workload.bytes_per_flow);
            }
            let queries: Vec<(FlowId, NodeId, SimTime)> = (0..workload.flows)
                .map(|i| {
                    (
                        FlowId(i as u64 + 1),
                        tb.workers[i as usize % TESTBED_WORKERS],
                        jittered(i),
                    )
                })
                .collect();
            let client: &mut TransportHost =
                tb.sim.agent_mut(tb.client).expect("client transport host");
            for (flow, dst, at) in queries {
                client.schedule_query(flow, dst, at);
            }
            tb
        }
    };
    debug_assert_eq!(tb.client, client_node);
    tb.sim.set_cancel_token(cancel);

    let step = SimDuration::from_micros(500);
    let deadline = SimTime::ZERO + workload.round_timeout;
    let mut completion: Option<f64> = None;
    while tb.sim.now() < deadline {
        let next = (tb.sim.now() + step).min(deadline);
        tb.sim.run_until(next)?;
        let host: &TransportHost = tb.sim.agent(tb.client).expect("client host");
        let mut done = 0u32;
        let mut last = SimTime::ZERO;
        for i in 0..workload.flows {
            if let Some(r) = host.receiver(FlowId(i as u64 + 1)) {
                if r.bytes_received() >= workload.bytes_per_flow {
                    done += 1;
                    if let Some(t) = r.stats().last_arrival {
                        last = last.max(t);
                    }
                }
            }
        }
        if done == workload.flows {
            completion = Some(last.as_secs_f64());
            break;
        }
        if !tb.sim.has_pending_events() {
            break; // deadlocked round (all senders gave up) — treat as timeout
        }
    }

    let mut timeouts = 0;
    for &w in &tb.workers {
        let host: &TransportHost = tb.sim.agent(w).expect("worker host");
        timeouts += host.senders().map(|s| s.stats().timeouts).sum::<u64>();
    }
    let drops = tb
        .sim
        .queue_report(tb.bottleneck, tb.switch1)
        .counters
        .dropped();
    let total_bytes = workload.flows as u64 * workload.bytes_per_flow;
    let goodput_bps = match completion {
        Some(t) if t > 0.0 => total_bytes as f64 * 8.0 / t,
        _ => 0.0,
    };
    Ok(QueryRound {
        completion,
        goodput_bps,
        timeouts,
        drops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_has_paper_shape() {
        let cfg = TestbedConfig::paper(MarkingScheme::dctcp_bytes(32 * 1024));
        let tb = build_testbed(&cfg, &[]).unwrap();
        assert_eq!(tb.workers.len(), TESTBED_WORKERS);
    }

    #[test]
    fn small_incast_completes_quickly() {
        let cfg = TestbedConfig::paper(MarkingScheme::dctcp_bytes(32 * 1024));
        let wl = QueryWorkload::incast(4, 3);
        let report = run_query_rounds(&cfg, &wl).unwrap();
        assert_eq!(report.rounds.len(), 3);
        for r in &report.rounds {
            let c = r.completion.expect("small incast must finish");
            // 4 * 64 KB at 1 Gb/s is ~2.1 ms plus slow start; allow 30 ms.
            assert!(c < 0.03, "completion {c}s too slow");
            assert!(r.goodput_bps > 5e7);
        }
        assert_eq!(report.timeout_fraction(), 0.0);
    }

    #[test]
    fn partition_aggregate_minimum_is_link_limited() {
        // 1 MB at 1 Gb/s takes >= 8.4 ms no matter how many workers.
        let cfg = TestbedConfig::paper(MarkingScheme::dctcp_bytes(32 * 1024));
        let wl = QueryWorkload::partition_aggregate(8, 2);
        let report = run_query_rounds(&cfg, &wl).unwrap();
        for r in &report.rounds {
            let c = r.completion.expect("must finish");
            assert!(c >= 0.008, "faster than line rate: {c}");
            assert!(c < 0.05, "too slow: {c}");
        }
    }

    #[test]
    fn massive_incast_shows_impairment() {
        // Far past the collapse point the bottleneck must drop and some
        // flows must stall on RTOs.
        let cfg = TestbedConfig::paper(MarkingScheme::dctcp_bytes(32 * 1024));
        let mut wl = QueryWorkload::incast(80, 1);
        wl.round_timeout = SimDuration::from_secs(8);
        let report = run_query_rounds(&cfg, &wl).unwrap();
        let r = &report.rounds[0];
        assert!(r.drops > 0, "no drops under 80-flow incast");
        assert!(r.timeouts > 0, "no RTOs under 80-flow incast");
    }

    #[test]
    fn query_packet_mode_completes_like_scheduled() {
        let cfg = TestbedConfig::paper(MarkingScheme::dctcp_bytes(32 * 1024));
        let wl = QueryWorkload::incast(4, 2).with_query_packets();
        let report = run_query_rounds(&cfg, &wl).unwrap();
        for r in &report.rounds {
            let c = r.completion.expect("query-driven incast must finish");
            // Query propagation adds ~100-200 us to the scheduled mode.
            assert!(c < 0.035, "completion {c}s too slow");
        }
    }

    #[test]
    fn query_packet_mode_includes_query_latency() {
        let cfg = TestbedConfig::paper(MarkingScheme::dctcp_bytes(32 * 1024));
        let mut scheduled = QueryWorkload::incast(2, 1);
        scheduled.jitter = dctcp_sim::SimDuration::ZERO;
        let queried = scheduled.with_query_packets();
        let a = run_query_rounds(&cfg, &scheduled).unwrap().rounds[0];
        let b = run_query_rounds(&cfg, &queried).unwrap().rounds[0];
        let (ca, cb) = (a.completion.unwrap(), b.completion.unwrap());
        assert!(
            cb > ca,
            "query mode must pay the query's one-way latency: {ca} vs {cb}"
        );
    }

    #[test]
    fn fired_token_cancels_query_rounds() {
        let cfg = TestbedConfig::paper(MarkingScheme::dctcp_bytes(32 * 1024));
        let wl = QueryWorkload::incast(4, 2);
        let token = dctcp_sim::CancelToken::new();
        token.cancel();
        let err = run_query_rounds_supervised(&cfg, &wl, 1, Some(token)).unwrap_err();
        assert!(matches!(err, SimError::Cancelled { .. }), "{err:?}");
        // An unfired token reproduces the unsupervised report exactly.
        let clean = run_query_rounds_with_threads(&cfg, &wl, 1).unwrap();
        let supervised =
            run_query_rounds_supervised(&cfg, &wl, 1, Some(dctcp_sim::CancelToken::new())).unwrap();
        assert_eq!(clean.rounds, supervised.rounds);
    }

    #[test]
    fn rounds_vary_with_seed_but_reproduce() {
        let cfg = TestbedConfig::paper(MarkingScheme::dctcp_bytes(32 * 1024));
        let wl = QueryWorkload::incast(4, 2);
        let a = run_query_rounds(&cfg, &wl).unwrap();
        let b = run_query_rounds(&cfg, &wl).unwrap();
        assert_eq!(a.rounds, b.rounds, "same seed, same outcome");
    }
}
