//! Convergence dynamics: a new flow joining established flows.
//!
//! The fluid-model literature behind this paper (Alizadeh et al.,
//! SIGMETRICS 2011) analyzes how fast DCTCP converges to fair shares.
//! This scenario measures it directly: `established` long-lived flows
//! reach steady state, one more flow joins, and the joiner's throughput
//! trajectory is sampled until it reaches a fraction of its fair share.

use dctcp_core::MarkingScheme;
use dctcp_sim::{
    Capacity, FlowId, LinkSpec, QueueConfig, SimDuration, SimError, SimTime, Simulator,
    TopologyBuilder,
};
use dctcp_stats::{jain_fairness_index, TimeSeries};
use dctcp_tcp::{ScheduledFlow, TcpConfig, TransportHost};

/// Configuration of the convergence scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceConfig {
    /// Marking scheme at the bottleneck.
    pub marking: MarkingScheme,
    /// Transport configuration.
    pub tcp: TcpConfig,
    /// Flows already running when the joiner arrives.
    pub established: u32,
    /// Bottleneck rate in Gb/s.
    pub gbps: f64,
    /// When the joiner starts.
    pub join_at: SimDuration,
    /// How long to observe after the join.
    pub observe: SimDuration,
    /// Throughput sampling period.
    pub sample_every: SimDuration,
}

impl ConvergenceConfig {
    /// Defaults: 3 established DCTCP flows on 1 Gb/s, join at 30 ms,
    /// observe 100 ms, 1 ms samples.
    pub fn standard(marking: MarkingScheme) -> Self {
        ConvergenceConfig {
            marking,
            tcp: TcpConfig::dctcp(1.0 / 16.0),
            established: 3,
            gbps: 1.0,
            join_at: SimDuration::from_millis(30),
            observe: SimDuration::from_millis(100),
            sample_every: SimDuration::from_millis(1),
        }
    }
}

/// Measured convergence behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceReport {
    /// Scheme under test.
    pub scheme: MarkingScheme,
    /// The joiner's throughput over time (bits/second, sampled).
    pub joiner_throughput: TimeSeries,
    /// Seconds after the join until the joiner's sampled throughput
    /// first reaches `fraction` of its fair share, per the query made
    /// with [`ConvergenceReport::time_to_fraction`].
    pub fair_share_bps: f64,
    /// Jain fairness index across all flows at the end of observation.
    pub final_fairness: f64,
}

impl ConvergenceReport {
    /// Seconds from the join until the joiner's sampled throughput first
    /// reaches `fraction` of the fair share; `None` if it never does
    /// within the observation window.
    pub fn time_to_fraction(&self, fraction: f64) -> Option<f64> {
        let target = self.fair_share_bps * fraction;
        self.joiner_throughput
            .iter()
            .find(|&(_, bps)| bps >= target)
            .map(|(t, _)| t)
    }
}

/// Runs the convergence scenario.
///
/// # Errors
///
/// Returns [`SimError`] for invalid parameters.
pub fn run_convergence(cfg: &ConvergenceConfig) -> Result<ConvergenceReport, SimError> {
    cfg.tcp.validate()?;
    let n_total = cfg.established as u64 + 1;
    let joiner = FlowId(n_total);

    let mut b = TopologyBuilder::new();
    let rx = b.host("rx", Box::new(TransportHost::new(cfg.tcp)));
    let sw = b.switch("sw");
    let spec = LinkSpec::gbps(cfg.gbps, 25);
    for i in 0..=cfg.established as u64 {
        let mut host = TransportHost::new(cfg.tcp);
        host.schedule(ScheduledFlow {
            flow: FlowId(i + 1),
            dst: rx,
            bytes: None,
            at: if i < cfg.established as u64 {
                SimTime::ZERO
            } else {
                SimTime::ZERO + cfg.join_at
            },
            cfg: cfg.tcp,
        });
        let h = b.host(format!("tx{i}"), Box::new(host));
        b.link(
            h,
            sw,
            spec,
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )?;
    }
    b.link(
        sw,
        rx,
        spec,
        QueueConfig::switch(Capacity::Packets(500), cfg.marking),
        QueueConfig::host_nic(),
    )?;

    let mut sim = Simulator::new(b.build()?);
    sim.run_for(cfg.join_at)?;

    let mut series = TimeSeries::new();
    let mut last_bytes = 0u64;
    let steps = (cfg.observe.as_nanos() / cfg.sample_every.as_nanos()).max(1);
    for step in 0..steps {
        sim.run_for(cfg.sample_every)?;
        let rx_host: &TransportHost = sim.agent(rx).expect("receiver");
        let bytes = rx_host
            .receiver(joiner)
            .map_or(0, |r| r.stats().bytes_received);
        let bps = (bytes - last_bytes) as f64 * 8.0 / cfg.sample_every.as_secs_f64();
        last_bytes = bytes;
        series.push(
            ((step + 1) * cfg.sample_every.as_nanos()) as f64 * 1e-9,
            bps,
        );
    }

    let rx_host: &TransportHost = sim.agent(rx).expect("receiver");
    let shares: Vec<f64> = (1..=n_total)
        .map(|f| {
            rx_host
                .receiver(FlowId(f))
                .map_or(0.0, |r| r.stats().bytes_received as f64)
        })
        .collect();

    Ok(ConvergenceReport {
        scheme: cfg.marking,
        joiner_throughput: series,
        fair_share_bps: cfg.gbps * 1e9 / n_total as f64,
        final_fairness: jain_fairness_index(&shares).unwrap_or(0.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joiner_converges_to_fair_share_under_dctcp() {
        let cfg = ConvergenceConfig::standard(MarkingScheme::dctcp_packets(20));
        let r = run_convergence(&cfg).unwrap();
        let t80 = r
            .time_to_fraction(0.8)
            .expect("joiner must reach 80% of fair share");
        assert!(t80 < 0.08, "convergence took {t80}s");
        // Tail of the observation window sits near the fair share.
        let tail = r.joiner_throughput.window(0.08, 0.1).summary();
        assert!(
            tail.mean > 0.6 * r.fair_share_bps && tail.mean < 1.6 * r.fair_share_bps,
            "tail throughput {:.3e} vs fair {:.3e}",
            tail.mean,
            r.fair_share_bps
        );
    }

    #[test]
    fn dt_dctcp_also_converges() {
        let cfg = ConvergenceConfig::standard(MarkingScheme::dt_dctcp_packets(15, 25));
        let r = run_convergence(&cfg).unwrap();
        assert!(r.time_to_fraction(0.8).is_some());
    }

    #[test]
    fn joiner_starts_from_zero() {
        let cfg = ConvergenceConfig::standard(MarkingScheme::dctcp_packets(20));
        let r = run_convergence(&cfg).unwrap();
        let first = r.joiner_throughput.values()[0];
        let last = r.joiner_throughput.values().last().copied().unwrap();
        assert!(first < last, "throughput must ramp: {first} -> {last}");
    }
}
