//! Collective-communication workloads on a fat-tree fabric: ring and
//! tree allreduce, permutation traffic, and many-to-one incast, driven
//! as bulk-synchronous phases over a k-ary Clos built by
//! [`FatTree`](dctcp_sim::FatTree).
//!
//! Phases are scheduled, not reactive: every step `s` starts its flows
//! at `s · phase_gap`, a pure function of the configuration. That keeps
//! the workload bit-identical across thread and shard counts (flow
//! start times never depend on simulated completion), while congested
//! steps still overlap realistically when a phase overruns its gap.

use dctcp_core::MarkingScheme;
use dctcp_rng::Pcg32;
use dctcp_sim::{
    Capacity, FatTree, FlowId, LinkSpec, NodeId, QueueConfig, ShardedSimulator, SimDuration,
    SimError, SimTime, TierSpec,
};
use dctcp_stats::TimeWeightedSummary;
use dctcp_tcp::{ScheduledFlow, TcpConfig, TransportHost};

/// One point-to-point transfer inside a collective step:
/// `(source host index, destination host index, bytes)`.
pub type Transfer = (u32, u32, u64);

/// The communication patterns the collective driver can generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectivePattern {
    /// Ring allreduce: `2(P-1)` steps; in each, every participant sends
    /// one chunk to its ring successor `(i+1) mod P`.
    RingAllreduce,
    /// Binary-tree allreduce: `ceil(log2 P)` reduce-up steps followed by
    /// the mirrored broadcast-down steps.
    TreeAllreduce,
    /// One seeded random cyclic permutation: every participant sends to
    /// a distinct peer, nobody to itself.
    Permutation,
    /// Many-to-one gather: participants `1..P` all send to participant
    /// 0 simultaneously.
    Incast,
}

impl CollectivePattern {
    /// The scenario-file token for this pattern.
    pub fn name(self) -> &'static str {
        match self {
            CollectivePattern::RingAllreduce => "ring_allreduce",
            CollectivePattern::TreeAllreduce => "tree_allreduce",
            CollectivePattern::Permutation => "permutation",
            CollectivePattern::Incast => "incast",
        }
    }

    /// Parses a scenario-file token.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "ring_allreduce" => Some(CollectivePattern::RingAllreduce),
            "tree_allreduce" => Some(CollectivePattern::TreeAllreduce),
            "permutation" => Some(CollectivePattern::Permutation),
            "incast" => Some(CollectivePattern::Incast),
            _ => None,
        }
    }

    /// Expands the pattern into bulk-synchronous steps of point-to-point
    /// transfers among `participants` hosts. `bytes` is the per-rank
    /// payload; `chunk` (0 = automatic) overrides the per-transfer
    /// message size for the allreduce patterns; `seed` drives the
    /// permutation draw.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for fewer than two
    /// participants or a zero-byte payload.
    pub fn transfers(
        self,
        participants: u32,
        bytes: u64,
        chunk: u64,
        seed: u64,
    ) -> Result<Vec<Vec<Transfer>>, SimError> {
        let p = participants;
        if p < 2 {
            return Err(SimError::InvalidConfig(format!(
                "collective needs at least 2 participants, got {p}"
            )));
        }
        if bytes == 0 {
            return Err(SimError::InvalidConfig(
                "collective payload must be non-zero".into(),
            ));
        }
        Ok(match self {
            CollectivePattern::RingAllreduce => {
                let msg = if chunk > 0 {
                    chunk
                } else {
                    bytes.div_ceil(u64::from(p))
                };
                (0..2 * (p - 1))
                    .map(|_| (0..p).map(|i| (i, (i + 1) % p, msg)).collect())
                    .collect()
            }
            CollectivePattern::TreeAllreduce => {
                let msg = if chunk > 0 { chunk } else { bytes };
                let levels = 32 - (p - 1).leading_zeros();
                let mut steps: Vec<Vec<Transfer>> = Vec::new();
                for l in 0..levels {
                    let span = 1u32 << l;
                    let group = span << 1;
                    let step: Vec<Transfer> = (0..p)
                        .filter(|i| i % group == span)
                        .map(|i| (i, i - span, msg))
                        .collect();
                    if !step.is_empty() {
                        steps.push(step);
                    }
                }
                for l in (0..levels).rev() {
                    let span = 1u32 << l;
                    let group = span << 1;
                    let step: Vec<Transfer> = (0..p)
                        .filter(|i| i % group == 0 && i + span < p)
                        .map(|i| (i, i + span, msg))
                        .collect();
                    if !step.is_empty() {
                        steps.push(step);
                    }
                }
                steps
            }
            CollectivePattern::Permutation => {
                // A random cyclic permutation is a derangement for
                // P >= 2: everyone sends, nobody to itself.
                let mut order: Vec<u32> = (0..p).collect();
                let mut rng = Pcg32::seed_from_u64(seed);
                rng.shuffle(&mut order);
                let mut dst = vec![0u32; p as usize];
                for j in 0..p as usize {
                    dst[order[j] as usize] = order[(j + 1) % p as usize];
                }
                vec![(0..p).map(|i| (i, dst[i as usize], bytes)).collect()]
            }
            CollectivePattern::Incast => vec![(1..p).map(|i| (i, 0, bytes)).collect()],
        })
    }
}

/// A collective workload on a fat-tree: topology tiers, transport
/// configuration and the communication pattern, validated by
/// [`run_collective`].
#[derive(Debug, Clone)]
pub struct CollectiveConfig {
    /// Fat-tree arity (even, 4..=16).
    pub k: u32,
    /// Hosts under each edge switch.
    pub hosts_per_edge: u32,
    /// Communication pattern.
    pub pattern: CollectivePattern,
    /// Participating hosts (the first `participants` host indices).
    pub participants: u32,
    /// Per-rank payload in bytes.
    pub bytes_per_flow: u64,
    /// Per-transfer message size override for allreduce (0 = automatic:
    /// ring sends `bytes/P`, tree sends the full payload).
    pub chunk: u64,
    /// Gap between consecutive step starts.
    pub phase_gap: SimDuration,
    /// Simulated-time budget; an unfinished collective reports no
    /// completion instead of running forever.
    pub horizon: SimDuration,
    /// Seed for the permutation draw.
    pub seed: u64,
    /// Marking scheme at every switch queue.
    pub marking: MarkingScheme,
    /// Transport configuration for every host.
    pub tcp: TcpConfig,
    /// Host↔edge link rate, Gb/s.
    pub host_gbps: f64,
    /// Edge↔aggregation link rate, Gb/s.
    pub agg_gbps: f64,
    /// Aggregation↔core link rate, Gb/s.
    pub core_gbps: f64,
    /// Host-tier one-way propagation delay in microseconds; the
    /// aggregation tier uses 2× and the core tier 4×, which also lets
    /// the sharded engine split the tree into per-pod domains.
    pub delay_us: u64,
    /// Switch queue capacity (every tier).
    pub buffer: Capacity,
    /// Seed baked into the ECMP hash of the routing tables.
    pub ecmp_seed: u64,
}

impl CollectiveConfig {
    /// A small k=4 fabric at 1 Gb/s with DCTCP marking — the unit-test
    /// and benchmark baseline.
    pub fn small(pattern: CollectivePattern, participants: u32) -> Self {
        CollectiveConfig {
            k: 4,
            hosts_per_edge: 2,
            pattern,
            participants,
            bytes_per_flow: 64 * 1024,
            chunk: 0,
            phase_gap: SimDuration::from_millis(1),
            horizon: SimDuration::from_millis(400),
            seed: 1,
            marking: MarkingScheme::dctcp_packets(20),
            tcp: TcpConfig::dctcp(1.0 / 16.0),
            host_gbps: 1.0,
            agg_gbps: 1.0,
            core_gbps: 1.0,
            delay_us: 5,
            buffer: Capacity::Packets(100),
            ecmp_seed: 1,
        }
    }

    /// The fat-tree this workload runs on.
    fn fat_tree(&self) -> FatTree {
        let q = QueueConfig::switch(self.buffer, self.marking);
        FatTree::new(self.k, self.hosts_per_edge)
            .with_tiers(
                TierSpec::new(
                    LinkSpec {
                        rate_bps: (self.host_gbps * 1e9) as u64,
                        delay: SimDuration::from_micros(self.delay_us),
                    },
                    q,
                ),
                TierSpec::new(
                    LinkSpec {
                        rate_bps: (self.agg_gbps * 1e9) as u64,
                        delay: SimDuration::from_micros(2 * self.delay_us),
                    },
                    q,
                ),
                TierSpec::new(
                    LinkSpec {
                        rate_bps: (self.core_gbps * 1e9) as u64,
                        delay: SimDuration::from_micros(4 * self.delay_us),
                    },
                    q,
                ),
            )
            .ecmp_seed(self.ecmp_seed)
    }

    /// Checks the workload against the fabric it is asked to run on.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for invalid fat-tree
    /// parameters, more participants than hosts, fewer than two, a zero
    /// horizon or invalid transport/marking parameters.
    pub fn validate(&self) -> Result<(), SimError> {
        let ft = self.fat_tree();
        ft.validate()?;
        let hosts = ft.num_hosts();
        if self.participants < 2 {
            return Err(SimError::InvalidConfig(format!(
                "collective needs at least 2 participants, got {}",
                self.participants
            )));
        }
        if self.participants as usize > hosts {
            return Err(SimError::InvalidConfig(format!(
                "{} participants exceed the {hosts} hosts of a k={} fat-tree",
                self.participants, self.k
            )));
        }
        if self.horizon.is_zero() {
            return Err(SimError::InvalidConfig(
                "collective horizon must be non-zero".into(),
            ));
        }
        self.marking.build()?;
        self.tcp
            .validate()
            .map_err(|e| SimError::InvalidConfig(format!("collective transport config: {e:?}")))?;
        Ok(())
    }
}

/// Measured outcome of one collective run.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveReport {
    /// Participating hosts.
    pub participants: u32,
    /// Bulk-synchronous steps executed.
    pub steps: usize,
    /// Point-to-point flows scheduled across all steps.
    pub flows: usize,
    /// Payload bytes summed over every transfer.
    pub bytes_total: u64,
    /// Seconds until the last payload byte arrived; `None` when the
    /// collective did not finish inside the horizon.
    pub completion: Option<f64>,
    /// Aggregate goodput over the completed collective, bits/second
    /// (0 when unfinished).
    pub goodput_bps: f64,
    /// Time-weighted occupancy (packets) of the busiest core-link port
    /// — the port with the most enqueued packets, ties broken by lowest
    /// link id then end.
    pub core_queue: TimeWeightedSummary,
    /// CE marks summed over every switch port on the fabric.
    pub marks: u64,
    /// Drops summed over every switch port on the fabric.
    pub drops: u64,
    /// Retransmission timeouts summed over every participant.
    pub timeouts: u64,
    /// Events processed by the engine.
    pub events: u64,
}

/// Runs one collective to completion (or to its horizon) and reports.
/// Honours `DCTCP_SIM_SHARDS`; results are bit-identical at any shard
/// or thread count.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for an invalid configuration and
/// propagates engine errors (including `Cancelled` when a supervisor
/// fires `cancel`).
pub fn run_collective(
    cfg: &CollectiveConfig,
    cancel: Option<dctcp_sim::CancelToken>,
) -> Result<CollectiveReport, SimError> {
    cfg.validate()?;
    let steps = cfg
        .pattern
        .transfers(cfg.participants, cfg.bytes_per_flow, cfg.chunk, cfg.seed)?;
    let ft = cfg.fat_tree();
    let num_hosts = ft.num_hosts();

    // Pre-schedule every step's flows: step s starts at s * phase_gap.
    // Host indices are dense from zero because FatTree creates hosts
    // first, so destination NodeIds are known before the build.
    let mut per_host: Vec<Vec<ScheduledFlow>> = vec![Vec::new(); num_hosts];
    let mut expected: Vec<(usize, FlowId, u64)> = Vec::new();
    let mut bytes_total = 0u64;
    let mut next_flow = 1u64;
    for (s, step) in steps.iter().enumerate() {
        let at = SimTime::ZERO + cfg.phase_gap * s as u64;
        for &(src, dst, bytes) in step {
            let flow = FlowId(next_flow);
            next_flow += 1;
            per_host[src as usize].push(ScheduledFlow {
                flow,
                dst: NodeId::from_index(dst as usize),
                bytes: Some(bytes),
                at,
                cfg: cfg.tcp,
            });
            expected.push((dst as usize, flow, bytes));
            bytes_total += bytes;
        }
    }
    let flows = expected.len();

    let built = ft.build(|i| {
        let mut host = TransportHost::new(cfg.tcp);
        for sf in per_host[i].drain(..) {
            host.schedule(sf);
        }
        Box::new(host)
    })?;
    let ids = built.ids;
    debug_assert!(ids
        .hosts
        .iter()
        .enumerate()
        .all(|(i, &h)| h == NodeId::from_index(i)));

    let mut sim = ShardedSimulator::new(built.network)?;
    sim.set_cancel_token(cancel);
    let deadline = SimTime::ZERO + cfg.horizon;
    let step = SimDuration::from_micros(500);
    let mut completion: Option<f64> = None;
    loop {
        let next = (sim.now() + step).min(deadline);
        sim.run_until(next)?;
        let mut done = true;
        let mut last = SimTime::ZERO;
        for &(dst, flow, bytes) in &expected {
            let host: &TransportHost = sim.agent(ids.hosts[dst])?;
            match host.receiver(flow) {
                Some(r) if r.bytes_received() >= bytes => {
                    if let Some(t) = r.stats().last_arrival {
                        last = last.max(t);
                    }
                }
                _ => {
                    done = false;
                    break;
                }
            }
        }
        if done {
            completion = Some(last.as_secs_f64());
            break;
        }
        if sim.now() >= deadline {
            break;
        }
    }

    // Busiest core-link port: most enqueued packets wins, ties by the
    // deterministic iteration order (link id, then end 0 before end 1).
    let half = cfg.k as usize / 2;
    let mut core_queue: Option<TimeWeightedSummary> = None;
    let mut best_enqueued = 0u64;
    let mut marks = 0u64;
    let mut drops = 0u64;
    for (i, &link) in ids.core_links.iter().enumerate() {
        // core_links are built agg-major: index i = ((p*half)+a)*half+c.
        let agg = ids.aggs[i / half];
        let core = ids.cores[(i / half % half) * half + i % half];
        for node in [agg, core] {
            let report = sim.queue_report(link, node);
            marks += report.counters.marked;
            drops += report.counters.dropped();
            if core_queue.is_none() || report.counters.enqueued > best_enqueued {
                best_enqueued = report.counters.enqueued;
                core_queue = Some(report.occupancy_pkts);
            }
        }
    }
    let core_queue =
        core_queue.ok_or_else(|| SimError::InvalidConfig("fat-tree has no core links".into()))?;
    for (i, &link) in ids.host_links.iter().enumerate() {
        // Only the edge-side end is a switch queue.
        let report = sim.queue_report(link, ids.edges[i / cfg.hosts_per_edge as usize]);
        marks += report.counters.marked;
        drops += report.counters.dropped();
    }
    for (i, &link) in ids.pod_links.iter().enumerate() {
        // pod_links are edge-major: index i = ((p*half)+e)*half+a.
        let edge = ids.edges[i / half];
        let agg = ids.aggs[(i / (half * half)) * half + i % half];
        for node in [edge, agg] {
            let report = sim.queue_report(link, node);
            marks += report.counters.marked;
            drops += report.counters.dropped();
        }
    }
    let mut timeouts = 0u64;
    for i in 0..cfg.participants as usize {
        let host: &TransportHost = sim.agent(ids.hosts[i])?;
        timeouts += host.senders().map(|s| s.stats().timeouts).sum::<u64>();
    }

    let goodput_bps = completion
        .filter(|&t| t > 0.0)
        .map_or(0.0, |t| bytes_total as f64 * 8.0 / t);
    Ok(CollectiveReport {
        participants: cfg.participants,
        steps: steps.len(),
        flows,
        bytes_total,
        completion,
        goodput_bps,
        core_queue,
        marks,
        drops,
        timeouts,
        events: sim.events_processed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_allreduce_shape() {
        let steps = CollectivePattern::RingAllreduce
            .transfers(4, 1000, 0, 1)
            .unwrap();
        assert_eq!(steps.len(), 6); // 2(P-1)
        for step in &steps {
            assert_eq!(step.len(), 4);
            for &(src, dst, bytes) in step {
                assert_eq!(dst, (src + 1) % 4);
                assert_eq!(bytes, 250);
            }
        }
        // An explicit chunk overrides the automatic split.
        let chunked = CollectivePattern::RingAllreduce
            .transfers(4, 1000, 64, 1)
            .unwrap();
        assert_eq!(chunked[0][0].2, 64);
    }

    #[test]
    fn tree_allreduce_reduces_then_broadcasts() {
        let steps = CollectivePattern::TreeAllreduce
            .transfers(8, 500, 0, 1)
            .unwrap();
        assert_eq!(steps.len(), 6); // 3 up + 3 down
                                    // First reduce step: odd ranks send to their even partner.
        assert_eq!(
            steps[0],
            vec![(1, 0, 500), (3, 2, 500), (5, 4, 500), (7, 6, 500)]
        );
        // Last broadcast step mirrors it.
        assert_eq!(
            steps[5],
            vec![(0, 1, 500), (2, 3, 500), (4, 5, 500), (6, 7, 500)]
        );
        // Ragged participant counts still reduce to rank 0 and reach
        // every rank on the way down.
        let ragged = CollectivePattern::TreeAllreduce
            .transfers(6, 500, 0, 1)
            .unwrap();
        let mut reached: Vec<bool> = vec![false; 6];
        reached[0] = true;
        for step in &ragged[3..] {
            for &(_, dst, _) in step {
                reached[dst as usize] = true;
            }
        }
        assert!(reached.iter().all(|&r| r), "{ragged:?}");
    }

    #[test]
    fn permutation_is_a_seeded_derangement() {
        let steps = CollectivePattern::Permutation
            .transfers(16, 100, 0, 7)
            .unwrap();
        assert_eq!(steps.len(), 1);
        let step = &steps[0];
        assert_eq!(step.len(), 16);
        let mut seen_dst = std::collections::BTreeSet::new();
        for &(src, dst, _) in step {
            assert_ne!(src, dst, "fixed point in permutation");
            seen_dst.insert(dst);
        }
        assert_eq!(seen_dst.len(), 16, "not a permutation");
        // Seeded: same seed, same draw; different seed, different draw.
        assert_eq!(
            steps,
            CollectivePattern::Permutation
                .transfers(16, 100, 0, 7)
                .unwrap()
        );
        assert_ne!(
            steps,
            CollectivePattern::Permutation
                .transfers(16, 100, 0, 8)
                .unwrap()
        );
    }

    #[test]
    fn incast_converges_on_rank_zero() {
        let steps = CollectivePattern::Incast.transfers(5, 100, 0, 1).unwrap();
        assert_eq!(
            steps,
            vec![vec![(1, 0, 100), (2, 0, 100), (3, 0, 100), (4, 0, 100)]]
        );
    }

    #[test]
    fn degenerate_patterns_are_typed_errors() {
        for pattern in [
            CollectivePattern::RingAllreduce,
            CollectivePattern::TreeAllreduce,
            CollectivePattern::Permutation,
            CollectivePattern::Incast,
        ] {
            assert!(matches!(
                pattern.transfers(1, 100, 0, 1),
                Err(SimError::InvalidConfig(_))
            ));
            assert!(matches!(
                pattern.transfers(4, 0, 0, 1),
                Err(SimError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn oversubscribed_participants_rejected() {
        // k=4, hosts_per_edge=2 has 16 hosts.
        let cfg = CollectiveConfig {
            participants: 17,
            ..CollectiveConfig::small(CollectivePattern::Incast, 4)
        };
        assert!(matches!(
            run_collective(&cfg, None),
            Err(SimError::InvalidConfig(_))
        ));
        let cfg = CollectiveConfig {
            participants: 1,
            ..CollectiveConfig::small(CollectivePattern::Incast, 4)
        };
        assert!(matches!(
            run_collective(&cfg, None),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn small_incast_completes_and_is_deterministic() {
        let cfg = CollectiveConfig::small(CollectivePattern::Incast, 8);
        let a = run_collective(&cfg, None).unwrap();
        assert_eq!(a.flows, 7);
        assert!(a.completion.is_some(), "incast did not finish: {a:?}");
        assert!(a.goodput_bps > 0.0);
        assert_eq!(a, run_collective(&cfg, None).unwrap());
    }

    #[test]
    fn permutation_spreads_over_core_links() {
        let mut cfg = CollectiveConfig::small(CollectivePattern::Permutation, 16);
        cfg.bytes_per_flow = 128 * 1024;
        let r = run_collective(&cfg, None).unwrap();
        assert!(r.completion.is_some(), "{r:?}");
        // Inter-pod traffic must put load on the core tier.
        assert!(r.core_queue.max > 0.0, "{r:?}");
    }

    #[test]
    fn ring_allreduce_completes_every_step() {
        let mut cfg = CollectiveConfig::small(CollectivePattern::RingAllreduce, 8);
        cfg.bytes_per_flow = 32 * 1024;
        let r = run_collective(&cfg, None).unwrap();
        assert_eq!(r.steps, 14);
        assert_eq!(r.flows, 14 * 8);
        assert!(r.completion.is_some(), "{r:?}");
    }
}
