//! The *queue buildup* microbenchmark from the DCTCP paper's evaluation
//! (cited in this paper's background): long-lived flows keep a standing
//! queue at the bottleneck, and short query flows crossing the same
//! queue pay its delay. A scheme that holds a smaller, steadier queue
//! gives short flows faster, more predictable completions.

use dctcp_core::MarkingScheme;
use dctcp_sim::{
    Capacity, FlowId, QueueConfig, SimDuration, SimError, SimTime, Simulator, TopologyBuilder,
    TraceConfig, TraceLog,
};
use dctcp_stats::Quantiles;
use dctcp_tcp::{ScheduledFlow, TcpConfig, TransportHost};

/// Configuration of the queue-buildup microbenchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildupConfig {
    /// Marking scheme at the bottleneck.
    pub marking: MarkingScheme,
    /// Transport configuration.
    pub tcp: TcpConfig,
    /// Number of long-lived background flows.
    pub long_flows: u32,
    /// Size of each short query flow in bytes.
    pub short_bytes: u64,
    /// Interval between short-flow arrivals.
    pub short_interval: SimDuration,
    /// Number of short flows to launch.
    pub short_count: u32,
    /// Bottleneck rate in Gb/s.
    pub gbps: f64,
    /// Bottleneck buffer.
    pub buffer: Capacity,
    /// Warm-up before the first short flow.
    pub warmup: SimDuration,
}

impl BuildupConfig {
    /// The DCTCP-paper-style setup: 2 long flows, 20 KB queries every
    /// 2 ms, 1 Gb/s bottleneck.
    pub fn standard(marking: MarkingScheme) -> Self {
        BuildupConfig {
            marking,
            tcp: TcpConfig::dctcp(1.0 / 16.0),
            long_flows: 2,
            short_bytes: 20 * 1024,
            short_interval: SimDuration::from_millis(2),
            short_count: 20,
            gbps: 1.0,
            buffer: Capacity::Packets(500),
            warmup: SimDuration::from_millis(30),
        }
    }
}

/// Result of a buildup run.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildupReport {
    /// Scheme under test.
    pub scheme: MarkingScheme,
    /// Completion times of the short flows, seconds.
    pub short_completions: Vec<f64>,
    /// Long-flow goodput over the measurement window, bits/second.
    pub long_goodput_bps: f64,
    /// Time-weighted mean bottleneck occupancy, packets.
    pub queue_mean: f64,
}

impl BuildupReport {
    /// Quantile helper over the short-flow completions.
    pub fn completions(&self) -> Quantiles {
        self.short_completions.iter().copied().collect()
    }
}

/// Runs the microbenchmark: long flows plus periodic short queries
/// through one bottleneck, reporting short-flow completion times.
///
/// # Errors
///
/// Returns [`SimError`] for invalid marking/TCP parameters.
pub fn run_buildup(cfg: &BuildupConfig) -> Result<BuildupReport, SimError> {
    Ok(run_buildup_inner(cfg, None)?.0)
}

/// Like [`run_buildup`], but records a full event trace of the run
/// (including warm-up) for golden-digest regression tests and oracle
/// replay.
///
/// # Errors
///
/// Returns [`SimError`] for invalid marking/TCP parameters.
pub fn run_buildup_traced(
    cfg: &BuildupConfig,
    trace: TraceConfig,
) -> Result<(BuildupReport, TraceLog), SimError> {
    run_buildup_inner(cfg, Some(trace))
}

fn run_buildup_inner(
    cfg: &BuildupConfig,
    trace: Option<TraceConfig>,
) -> Result<(BuildupReport, TraceLog), SimError> {
    cfg.tcp.validate()?;
    let mut b = TopologyBuilder::new();
    let rx = b.host("rx", Box::new(TransportHost::new(cfg.tcp)));
    let sw = b.switch("sw");
    let spec = dctcp_sim::LinkSpec::gbps(cfg.gbps, 25);

    // Long-lived senders.
    for i in 0..cfg.long_flows {
        let mut host = TransportHost::new(cfg.tcp);
        host.schedule(ScheduledFlow {
            flow: FlowId(i as u64 + 1),
            dst: rx,
            bytes: None,
            at: SimTime::ZERO,
            cfg: cfg.tcp,
        });
        let h = b.host(format!("long{i}"), Box::new(host));
        b.link(
            h,
            sw,
            spec,
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )?;
    }

    // One host fires all the short queries, spaced by the interval.
    let mut shorts = TransportHost::new(cfg.tcp);
    let short_base = 1000u64;
    for i in 0..cfg.short_count {
        shorts.schedule(ScheduledFlow {
            flow: FlowId(short_base + i as u64),
            dst: rx,
            bytes: Some(cfg.short_bytes),
            at: SimTime::ZERO + cfg.warmup + cfg.short_interval * i as u64,
            cfg: cfg.tcp,
        });
    }
    let shorts_host = b.host("shorts", Box::new(shorts));
    b.link(
        shorts_host,
        sw,
        spec,
        QueueConfig::host_nic(),
        QueueConfig::host_nic(),
    )?;

    let bottleneck = b.link(
        sw,
        rx,
        spec,
        QueueConfig::switch(cfg.buffer, cfg.marking),
        QueueConfig::host_nic(),
    )?;

    let mut sim = Simulator::new(b.build()?);
    if let Some(tc) = trace {
        sim.enable_trace(tc);
    }
    sim.run_for(cfg.warmup)?;
    sim.reset_all_queue_stats();
    let rx_host: &TransportHost = sim.agent(rx).expect("receiver");
    let long_before: u64 = (1..=cfg.long_flows as u64)
        .filter_map(|f| rx_host.receiver(FlowId(f)))
        .map(|r| r.stats().bytes_received)
        .sum();

    let horizon = cfg.short_interval * cfg.short_count as u64 + SimDuration::from_millis(500);
    sim.run_for(horizon)?;

    let shorts_host_ref: &TransportHost = sim.agent(shorts_host).expect("short sender");
    let mut short_completions = Vec::new();
    for i in 0..cfg.short_count {
        if let Some(s) = shorts_host_ref.sender(FlowId(short_base + i as u64)) {
            if let Some(ct) = s.stats().completion_time() {
                short_completions.push(ct);
            }
        }
    }
    let rx_host: &TransportHost = sim.agent(rx).expect("receiver");
    let long_after: u64 = (1..=cfg.long_flows as u64)
        .filter_map(|f| rx_host.receiver(FlowId(f)))
        .map(|r| r.stats().bytes_received)
        .sum();

    let report = sim.queue_report(bottleneck, sw);
    let log = sim.take_trace();
    Ok((
        BuildupReport {
            scheme: cfg.marking,
            short_completions,
            long_goodput_bps: (long_after - long_before) as f64 * 8.0 / horizon.as_secs_f64(),
            queue_mean: report.occupancy_pkts.mean,
        },
        log,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_short_flows_complete_under_dctcp() {
        let cfg = BuildupConfig {
            short_count: 8,
            ..BuildupConfig::standard(MarkingScheme::dctcp_packets(20))
        };
        let r = run_buildup(&cfg).unwrap();
        assert_eq!(r.short_completions.len(), 8);
        // 20 KB at 1 Gb/s is ~170 us unloaded; allow generous queueing.
        for &c in &r.short_completions {
            assert!(c < 0.05, "short flow took {c}s");
        }
        assert!(r.long_goodput_bps > 1e8, "long flows starved");
    }

    #[test]
    fn marking_beats_droptail_for_short_latency() {
        let marked = run_buildup(&BuildupConfig {
            short_count: 10,
            ..BuildupConfig::standard(MarkingScheme::dctcp_packets(20))
        })
        .unwrap();
        let droptail = run_buildup(&BuildupConfig {
            short_count: 10,
            ..BuildupConfig::standard(MarkingScheme::DropTail)
        })
        .unwrap();
        // DropTail lets the long flows fill the 500-packet buffer; the
        // standing queue inflates short-flow completions.
        assert!(
            droptail.queue_mean > 3.0 * marked.queue_mean,
            "droptail queue {:.1} vs marked {:.1}",
            droptail.queue_mean,
            marked.queue_mean
        );
        let mut mq = marked.completions();
        let mut dq = droptail.completions();
        let (m50, d50) = (mq.median().unwrap(), dq.median().unwrap());
        assert!(
            m50 < d50,
            "marked median {m50}s should beat droptail {d50}s"
        );
    }
}
