//! Per-figure experiment drivers.
//!
//! Each driver reproduces one data figure of the paper and renders the
//! same rows/series the paper reports (see EXPERIMENTS.md for
//! paper-vs-measured). Every driver takes a [`Scale`]: `Quick` for CI
//! and tests, `Full` for paper-scale runs from the `fig*` binaries.

mod fig1;
mod fig9;
mod query;
mod sweep;

pub use fig1::{fig1, Fig1Result, Fig1Trace};
pub use fig9::{fig9, Fig9Result, Fig9Row, FIG9_CALIBRATED_GAIN};
pub use query::{fig14, fig15, QuerySweepResult, QuerySweepRow};
pub use sweep::{
    fig10_table, fig11_table, fig12_table, queue_sweep, queue_sweep_with_threads, SweepPoint,
    SweepResult,
};

/// How much work an experiment driver performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Short windows and sparse sweeps — seconds of wall-clock, used by
    /// tests and `--quick`.
    Quick,
    /// Paper-scale windows and dense sweeps — minutes of wall-clock.
    Full,
}

impl Scale {
    /// Parses `--quick` / `--full` style command-line arguments
    /// (defaults to `Quick` when neither flag is present).
    pub fn from_args(args: &[String]) -> Scale {
        if args.iter().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_args() {
        assert_eq!(Scale::from_args(&[]), Scale::Quick);
        assert_eq!(Scale::from_args(&["--quick".into()]), Scale::Quick);
        assert_eq!(Scale::from_args(&["--full".into()]), Scale::Full);
        assert_eq!(
            Scale::from_args(&["--csv".into(), "x.csv".into(), "--full".into()]),
            Scale::Full
        );
    }
}
