//! The flow-count sweep behind Figures 10 (normalized average queue),
//! 11 (queue standard deviation) and 12 (steady-state α).

use dctcp_core::MarkingScheme;

use crate::{LongLivedScenario, Scale, Table};

/// One `(N, scheme)` measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Flow count.
    pub flows: u32,
    /// Marking scheme.
    pub scheme: MarkingScheme,
    /// Time-weighted queue mean (packets).
    pub queue_mean: f64,
    /// Time-weighted queue standard deviation (packets).
    pub queue_std: f64,
    /// Mean of per-window α samples pooled over flows.
    pub alpha_mean: f64,
    /// Standard deviation of the pooled α samples.
    pub alpha_std: f64,
    /// Receiver goodput, bits/second.
    pub goodput_bps: f64,
    /// Packets dropped in the window.
    pub drops: u64,
}

/// All sweep measurements plus the sweep's scheme list.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Measurements, ordered by scheme then flow count.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// Points for one scheme, ordered by flow count.
    pub fn scheme_points(&self, scheme: MarkingScheme) -> Vec<&SweepPoint> {
        self.points.iter().filter(|p| p.scheme == scheme).collect()
    }

    /// The baseline (smallest-N) queue mean for a scheme, used for
    /// Fig. 10's normalization.
    pub fn baseline_mean(&self, scheme: MarkingScheme) -> Option<f64> {
        self.scheme_points(scheme).first().map(|p| p.queue_mean)
    }
}

/// The flow counts used at each scale.
pub(crate) fn sweep_flows(scale: Scale) -> Vec<u32> {
    match scale {
        Scale::Quick => vec![10, 40, 70, 100],
        Scale::Full => (10..=100).step_by(5).map(|n| n as u32).collect(),
    }
}

/// The two schemes under comparison, with the paper's parameters.
pub(crate) fn sweep_schemes() -> [MarkingScheme; 2] {
    [
        MarkingScheme::dctcp_packets(40),
        MarkingScheme::dt_dctcp_packets(30, 50),
    ]
}

/// Runs the long-lived sweep shared by Figures 10–12: N flows on a
/// 10 Gb/s bottleneck, `g = 1/16`, K = 40 vs (K1, K2) = (30, 50).
///
/// Run at 300 µs RTT instead of the printed 100 µs so the marking loop
/// stays active over the whole N = 10..100 range (at 100 µs the windows
/// hit the 1-MSS floor past N ≈ 40 and all schemes saturate
/// identically; see EXPERIMENTS.md).
pub fn queue_sweep(scale: Scale) -> SweepResult {
    queue_sweep_with_threads(scale, dctcp_parallel::available_threads())
}

/// [`queue_sweep`] with an explicit worker-thread count. Every `(scheme,
/// N)` point is an independent deterministic simulation and results are
/// assembled in input order, so the output is bit-identical for any
/// `threads` value (1 runs fully serial on the caller's thread).
pub fn queue_sweep_with_threads(scale: Scale, threads: usize) -> SweepResult {
    let (warmup, duration) = match scale {
        Scale::Quick => (0.03, 0.08),
        Scale::Full => (0.1, 0.3),
    };
    let jobs: Vec<(MarkingScheme, u32)> = sweep_schemes()
        .into_iter()
        .flat_map(|scheme| sweep_flows(scale).into_iter().map(move |n| (scheme, n)))
        .collect();
    let points = dctcp_parallel::par_map(jobs, threads, |_idx, (scheme, n)| {
        let r = LongLivedScenario::builder()
            .flows(n)
            .marking(scheme)
            .rtt_us(300.0)
            .warmup_secs(warmup)
            .duration_secs(duration)
            .build()
            .expect("valid sweep scenario")
            .run();
        SweepPoint {
            flows: n,
            scheme,
            queue_mean: r.queue.mean,
            queue_std: r.queue.std,
            alpha_mean: r.alpha.mean(),
            alpha_std: r.alpha.population_std(),
            goodput_bps: r.goodput_bps,
            drops: r.drops,
        }
    });
    SweepResult { points }
}

/// Figure 10: average queue length vs N, normalized to each scheme's
/// N = 10 baseline (the paper normalizes to 32 pkts for DCTCP and
/// 42 pkts for DT-DCTCP).
pub fn fig10_table(sweep: &SweepResult) -> Table {
    let [dc, dt] = sweep_schemes();
    let base_dc = sweep.baseline_mean(dc).unwrap_or(1.0);
    let base_dt = sweep.baseline_mean(dt).unwrap_or(1.0);
    let mut t = Table::new(
        format!(
            "Fig. 10 — normalized average queue (baselines: DCTCP {base_dc:.1} pkts, \
             DT-DCTCP {base_dt:.1} pkts at N = 10)"
        ),
        &[
            "N",
            "DCTCP [pkts]",
            "DCTCP (norm)",
            "DT-DCTCP [pkts]",
            "DT-DCTCP (norm)",
        ],
    );
    let dc_pts = sweep.scheme_points(dc);
    let dt_pts = sweep.scheme_points(dt);
    for (a, b) in dc_pts.iter().zip(&dt_pts) {
        t.row_owned(vec![
            a.flows.to_string(),
            format!("{:.2}", a.queue_mean),
            format!("{:.3}", a.queue_mean / base_dc),
            format!("{:.2}", b.queue_mean),
            format!("{:.3}", b.queue_mean / base_dt),
        ]);
    }
    t
}

/// Figure 11: queue standard deviation vs N.
pub fn fig11_table(sweep: &SweepResult) -> Table {
    let [dc, dt] = sweep_schemes();
    let mut t = Table::new(
        "Fig. 11 — queue standard deviation [pkts]",
        &["N", "DCTCP", "DT-DCTCP"],
    );
    for (a, b) in sweep.scheme_points(dc).iter().zip(&sweep.scheme_points(dt)) {
        t.row_owned(vec![
            a.flows.to_string(),
            format!("{:.2}", a.queue_std),
            format!("{:.2}", b.queue_std),
        ]);
    }
    t
}

/// Figure 12: steady-state α vs N.
pub fn fig12_table(sweep: &SweepResult) -> Table {
    let [dc, dt] = sweep_schemes();
    let mut t = Table::new(
        "Fig. 12 — mean DCTCP α (pooled per-window samples)",
        &["N", "DCTCP α", "DT-DCTCP α", "difference"],
    );
    for (a, b) in sweep.scheme_points(dc).iter().zip(&sweep.scheme_points(dt)) {
        t.row_owned(vec![
            a.flows.to_string(),
            format!("{:.3}", a.alpha_mean),
            format!("{:.3}", b.alpha_mean),
            format!("{:+.3}", a.alpha_mean - b.alpha_mean),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_both_schemes_and_all_n() {
        let s = queue_sweep(Scale::Quick);
        assert_eq!(s.points.len(), 8);
        let [dc, dt] = sweep_schemes();
        assert_eq!(s.scheme_points(dc).len(), 4);
        assert_eq!(s.scheme_points(dt).len(), 4);
        for p in &s.points {
            assert!(p.queue_mean > 0.0);
            assert!(
                p.goodput_bps > 5e9,
                "goodput {} at N={}",
                p.goodput_bps,
                p.flows
            );
        }
    }

    #[test]
    fn dt_has_smaller_std_at_high_n() {
        let s = queue_sweep(Scale::Quick);
        let [dc, dt] = sweep_schemes();
        let dc100 = s.scheme_points(dc).last().unwrap().queue_std;
        let dt100 = s.scheme_points(dt).last().unwrap().queue_std;
        assert!(dt100 < dc100, "DT std {dt100} !< DCTCP std {dc100}");
    }

    #[test]
    fn alpha_grows_with_congestion() {
        let s = queue_sweep(Scale::Quick);
        let [dc, _] = sweep_schemes();
        let pts = s.scheme_points(dc);
        let first = pts.first().unwrap().alpha_mean;
        let last = pts.last().unwrap().alpha_mean;
        assert!(last > first, "alpha must grow with N: {first} -> {last}");
    }

    #[test]
    fn tables_have_one_row_per_n() {
        let s = queue_sweep(Scale::Quick);
        assert_eq!(fig10_table(&s).num_rows(), 4);
        assert_eq!(fig11_table(&s).num_rows(), 4);
        assert_eq!(fig12_table(&s).num_rows(), 4);
    }
}
