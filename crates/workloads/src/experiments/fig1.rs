//! Figure 1: bottleneck queue traces at N = 10 and N = 100.

use dctcp_core::MarkingScheme;
use dctcp_sim::SimDuration;
use dctcp_stats::TimeSeries;

use crate::{LongLivedScenario, Scale, Table};

/// One recorded trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Trace {
    /// Flow count.
    pub flows: u32,
    /// Marking scheme.
    pub scheme: MarkingScheme,
    /// Queue length over time (packets).
    pub trace: TimeSeries,
    /// Time-weighted mean over the window.
    pub mean: f64,
    /// Time-weighted standard deviation over the window.
    pub std: f64,
}

/// The Figure 1 reproduction: queue traces for DCTCP (and, beyond the
/// paper's figure, DT-DCTCP for contrast) at N = 10 and N = 100.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Result {
    /// All recorded traces.
    pub traces: Vec<Fig1Trace>,
}

impl Fig1Result {
    /// Summary table: oscillation grows with N for DCTCP, much less for
    /// DT-DCTCP.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 1 — queue oscillation at the bottleneck (K=40; K1=30, K2=50; g=1/16)",
            &["scheme", "N", "mean [pkts]", "std [pkts]", "min", "max"],
        );
        for tr in &self.traces {
            let s = tr.trace.summary();
            t.row_owned(vec![
                tr.scheme.to_string(),
                tr.flows.to_string(),
                format!("{:.2}", tr.mean),
                format!("{:.2}", tr.std),
                format!("{:.0}", s.min),
                format!("{:.0}", s.max),
            ]);
        }
        t
    }

    /// The trace for a given scheme/flow-count pair.
    pub fn trace(&self, scheme: MarkingScheme, flows: u32) -> Option<&Fig1Trace> {
        self.traces
            .iter()
            .find(|t| t.scheme == scheme && t.flows == flows)
    }
}

/// Runs the Figure 1 experiment: long-lived flows on a 10 Gb/s
/// bottleneck, recording the queue trace.
///
/// The RTT is 300 µs rather than the paper's printed 100 µs: at 100 µs
/// the per-flow window `W0 = R0·C/N` hits the 1-MSS floor beyond
/// N ≈ 40 and every marking scheme saturates identically (α pins at 1);
/// at 300 µs the loop stays marking-controlled across the whole sweep,
/// which is the regime the paper's figures clearly depict. See
/// EXPERIMENTS.md.
pub fn fig1(scale: Scale) -> Fig1Result {
    let (warmup, duration) = match scale {
        Scale::Quick => (0.02, 0.05),
        Scale::Full => (0.05, 0.15),
    };
    let mut traces = Vec::new();
    for scheme in [
        MarkingScheme::dctcp_packets(40),
        MarkingScheme::dt_dctcp_packets(30, 50),
    ] {
        for n in [10u32, 100] {
            let report = LongLivedScenario::builder()
                .flows(n)
                .marking(scheme)
                .rtt_us(300.0)
                .warmup_secs(warmup)
                .duration_secs(duration)
                .trace_interval(SimDuration::from_micros(20))
                .build()
                .expect("valid fig1 scenario")
                .run();
            traces.push(Fig1Trace {
                flows: n,
                scheme,
                trace: report.trace.expect("tracing enabled"),
                mean: report.queue.mean,
                std: report.queue.std,
            });
        }
    }
    Fig1Result { traces }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_growing_oscillation() {
        let r = fig1(Scale::Quick);
        assert_eq!(r.traces.len(), 4);
        let dc = MarkingScheme::dctcp_packets(40);
        let dc10 = r.trace(dc, 10).unwrap();
        let dc100 = r.trace(dc, 100).unwrap();
        // The paper's observation: amplitude at N=100 is several times
        // that at N=10.
        assert!(
            dc100.std > 1.5 * dc10.std,
            "oscillation must grow with N: std {} vs {}",
            dc100.std,
            dc10.std
        );
        // And the table renders every row.
        assert_eq!(r.table().num_rows(), 4);
    }

    #[test]
    fn fig1_dt_oscillates_less_at_high_n() {
        let r = fig1(Scale::Quick);
        let dc100 = r.trace(MarkingScheme::dctcp_packets(40), 100).unwrap();
        let dt100 = r
            .trace(MarkingScheme::dt_dctcp_packets(30, 50), 100)
            .unwrap();
        assert!(
            dt100.std < dc100.std,
            "DT-DCTCP std {} should undercut DCTCP std {}",
            dt100.std,
            dc100.std
        );
    }
}
