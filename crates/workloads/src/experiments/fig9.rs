//! Figure 9: Nyquist analysis of DCTCP vs DT-DCTCP.

use dctcp_control::{analyze, critical_gain, AnalysisGrid, HysteresisDf, PlantParams, RelayDf};

use crate::{Scale, Table};

/// The loop-gain multiplier used to reproduce the paper's Fig. 9
/// *onsets*. Evaluating the paper's printed Eq. (17) verbatim, the
/// `K0·G(jω)` locus never reaches the describing-function critical loci
/// for any flow count (the DCTCP margin bottoms out at ≈ 5.4 near
/// N ≈ 55, exactly where the paper draws its first intersection); this
/// calibration makes both schemes' loci eventually intersect while
/// preserving every scale-free conclusion. See EXPERIMENTS.md.
pub const FIG9_CALIBRATED_GAIN: f64 = 6.5;

/// One row of the Fig. 9 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig9Row {
    /// Flow count.
    pub flows: u32,
    /// Loop-gain margin of DCTCP (critical gain before oscillation).
    pub margin_dctcp: f64,
    /// Loop-gain margin of DT-DCTCP.
    pub margin_dt: f64,
    /// Whether DCTCP's loci intersect at the calibrated gain.
    pub oscillates_dctcp: bool,
    /// Whether DT-DCTCP's loci intersect at the calibrated gain.
    pub oscillates_dt: bool,
    /// Predicted limit-cycle amplitude for DCTCP at the calibrated gain
    /// (queue packets), when oscillating.
    pub amplitude_dctcp: Option<f64>,
    /// Predicted limit-cycle amplitude for DT-DCTCP.
    pub amplitude_dt: Option<f64>,
}

/// The Fig. 9 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Result {
    /// Per-N analysis rows.
    pub rows: Vec<Fig9Row>,
    /// First N at which DCTCP oscillates at the calibrated gain.
    pub onset_dctcp: Option<u32>,
    /// First N at which DT-DCTCP oscillates at the calibrated gain.
    pub onset_dt: Option<u32>,
}

impl Fig9Result {
    /// Renders the sweep as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Fig. 9 — DF/Nyquist analysis (K=40; K1=30, K2=50; calibrated loop gain {FIG9_CALIBRATED_GAIN}); \
                 onsets: DCTCP {:?}, DT-DCTCP {:?} (paper: 60, 70)",
                self.onset_dctcp, self.onset_dt
            ),
            &[
                "N",
                "margin DCTCP",
                "margin DT",
                "osc DCTCP",
                "osc DT",
                "X_dc [pkts]",
                "X_dt [pkts]",
            ],
        );
        for r in &self.rows {
            t.row_owned(vec![
                r.flows.to_string(),
                format!("{:.2}", r.margin_dctcp),
                format!("{:.2}", r.margin_dt),
                if r.oscillates_dctcp { "yes" } else { "no" }.into(),
                if r.oscillates_dt { "yes" } else { "no" }.into(),
                r.amplitude_dctcp
                    .map(|x| format!("{x:.1}"))
                    .unwrap_or_else(|| "-".into()),
                r.amplitude_dt
                    .map(|x| format!("{x:.1}"))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        t
    }
}

/// Runs the Fig. 9 analysis sweep.
pub fn fig9(scale: Scale) -> Fig9Result {
    let (ns, grid): (Vec<u32>, AnalysisGrid) = match scale {
        Scale::Quick => (
            vec![10, 30, 50, 60, 70, 90, 110],
            AnalysisGrid {
                w_points: 1500,
                x_points: 600,
                ..AnalysisGrid::default()
            },
        ),
        Scale::Full => ((10..=150).step_by(5).collect(), AnalysisGrid::default()),
    };
    let relay = RelayDf::new(40.0).expect("valid K");
    let hyst = HysteresisDf::new(30.0, 50.0).expect("valid K1 < K2");

    let mut rows = Vec::new();
    let mut onset_dctcp = None;
    let mut onset_dt = None;
    for &n in &ns {
        let plain = PlantParams::paper_defaults(n as f64);
        let scaled = plain.with_gain(FIG9_CALIBRATED_GAIN);
        let margin_dctcp = critical_gain(&plain, &relay, &grid).unwrap_or(f64::INFINITY);
        let margin_dt = critical_gain(&plain, &hyst, &grid).unwrap_or(f64::INFINITY);
        let rep_dc = analyze(&scaled, &relay, &grid);
        let rep_dt = analyze(&scaled, &hyst, &grid);
        if !rep_dc.stable && onset_dctcp.is_none() {
            onset_dctcp = Some(n);
        }
        if !rep_dt.stable && onset_dt.is_none() {
            onset_dt = Some(n);
        }
        rows.push(Fig9Row {
            flows: n,
            margin_dctcp,
            margin_dt,
            oscillates_dctcp: !rep_dc.stable,
            oscillates_dt: !rep_dt.stable,
            amplitude_dctcp: rep_dc.limit_cycle.map(|lc| lc.amplitude),
            amplitude_dt: rep_dt.limit_cycle.map(|lc| lc.amplitude),
        });
    }
    Fig9Result {
        rows,
        onset_dctcp,
        onset_dt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_reproduces_onset_ordering() {
        let r = fig9(Scale::Quick);
        let on_dc = r.onset_dctcp.expect("DCTCP oscillates at calibrated gain");
        let on_dt = r.onset_dt.expect("DT-DCTCP oscillates at calibrated gain");
        assert!(
            on_dt > on_dc,
            "DT onset {on_dt} must trail DCTCP onset {on_dc}"
        );
    }

    #[test]
    fn dt_margin_dominates_everywhere() {
        let r = fig9(Scale::Quick);
        for row in &r.rows {
            assert!(
                row.margin_dt > row.margin_dctcp,
                "N={}: {} !> {}",
                row.flows,
                row.margin_dt,
                row.margin_dctcp
            );
        }
    }

    #[test]
    fn predicted_amplitudes_exceed_thresholds() {
        let r = fig9(Scale::Quick);
        for row in &r.rows {
            if let Some(x) = row.amplitude_dctcp {
                assert!(x >= 40.0, "relay amplitude {x} below K");
            }
            if let Some(x) = row.amplitude_dt {
                assert!(x >= 50.0, "hysteresis amplitude {x} below K2");
            }
        }
        assert!(r.table().num_rows() == r.rows.len());
    }
}
