//! Figures 14 (Incast goodput) and 15 (partition-aggregate completion
//! time) on the Fig. 13 testbed.

use dctcp_core::MarkingScheme;

use crate::{run_query_rounds, QueryWorkload, Scale, Table, TestbedConfig};

/// One row of a query sweep: both schemes at one synchronized flow
/// count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySweepRow {
    /// Number of synchronized flows.
    pub flows: u32,
    /// Mean goodput under DCTCP, bits/second.
    pub goodput_dctcp_bps: f64,
    /// Mean goodput under DT-DCTCP, bits/second.
    pub goodput_dt_bps: f64,
    /// Mean completion time under DCTCP, seconds (completed rounds).
    pub completion_dctcp: f64,
    /// Mean completion time under DT-DCTCP, seconds.
    pub completion_dt: f64,
    /// 95th-percentile completion under DCTCP, seconds.
    pub p95_dctcp: f64,
    /// 95th-percentile completion under DT-DCTCP, seconds.
    pub p95_dt: f64,
    /// Fraction of DCTCP rounds with at least one RTO.
    pub timeout_frac_dctcp: f64,
    /// Fraction of DT-DCTCP rounds with at least one RTO.
    pub timeout_frac_dt: f64,
}

/// A full query sweep over flow counts.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySweepResult {
    /// Which figure this reproduces ("fig14" or "fig15").
    pub figure: String,
    /// Per-flow-count rows.
    pub rows: Vec<QuerySweepRow>,
    /// The flow count at which each scheme collapses catastrophically
    /// (mean goodput below a quarter of the best observed), if any.
    pub collapse_dctcp: Option<u32>,
    /// DT-DCTCP's collapse point.
    pub collapse_dt: Option<u32>,
}

impl QuerySweepResult {
    /// Renders the goodput view (Fig. 14).
    pub fn goodput_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "{} — Incast goodput (64 KB/worker; collapse: DCTCP {:?}, DT-DCTCP {:?}; paper: 32, 37)",
                self.figure, self.collapse_dctcp, self.collapse_dt
            ),
            &["N", "DCTCP [Mbps]", "DT-DCTCP [Mbps]", "RTO% DCTCP", "RTO% DT"],
        );
        for r in &self.rows {
            t.row_owned(vec![
                r.flows.to_string(),
                format!("{:.1}", r.goodput_dctcp_bps / 1e6),
                format!("{:.1}", r.goodput_dt_bps / 1e6),
                format!("{:.0}", r.timeout_frac_dctcp * 100.0),
                format!("{:.0}", r.timeout_frac_dt * 100.0),
            ]);
        }
        t
    }

    /// Renders the completion-time view (Fig. 15).
    pub fn completion_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "{} — query completion time (1 MB total; Incast onset: DCTCP {:?}, DT-DCTCP {:?}; paper: 40, 42)",
                self.figure, self.collapse_dctcp, self.collapse_dt
            ),
            &[
                "N",
                "DCTCP mean [ms]",
                "DT mean [ms]",
                "DCTCP p95 [ms]",
                "DT p95 [ms]",
            ],
        );
        for r in &self.rows {
            t.row_owned(vec![
                r.flows.to_string(),
                format!("{:.2}", r.completion_dctcp * 1e3),
                format!("{:.2}", r.completion_dt * 1e3),
                format!("{:.2}", r.p95_dctcp * 1e3),
                format!("{:.2}", r.p95_dt * 1e3),
            ]);
        }
        t
    }
}

/// The paper's marking parameters for the testbed: `K = 32 KB` for
/// DCTCP and `(K1, K2) = (28 KB, 34 KB)` for DT-DCTCP (the paper's
/// threshold pair, corrected for its `K1 < K2` definition — see
/// DESIGN.md).
pub(crate) fn testbed_schemes() -> [MarkingScheme; 2] {
    [
        MarkingScheme::dctcp_bytes(32 * 1024),
        MarkingScheme::dt_dctcp_bytes(28 * 1024, 34 * 1024),
    ]
}

fn collapse_point(rows: &[QuerySweepRow], pick: impl Fn(&QuerySweepRow) -> f64) -> Option<u32> {
    let best = rows.iter().map(&pick).fold(0.0f64, f64::max);
    if best <= 0.0 {
        return None;
    }
    rows.iter().find(|r| pick(r) < best / 4.0).map(|r| r.flows)
}

fn run_sweep(
    figure: &str,
    flow_counts: &[u32],
    make_workload: impl Fn(u32) -> QueryWorkload,
) -> QuerySweepResult {
    let [dc, dt] = testbed_schemes();
    let mut rows = Vec::new();
    for &n in flow_counts {
        let wl = make_workload(n);
        let rep_dc = run_query_rounds(&TestbedConfig::paper(dc), &wl).expect("valid testbed");
        let rep_dt = run_query_rounds(&TestbedConfig::paper(dt), &wl).expect("valid testbed");
        let mut comp_dc = rep_dc.completions();
        let mut comp_dt = rep_dt.completions();
        rows.push(QuerySweepRow {
            flows: n,
            goodput_dctcp_bps: rep_dc.mean_goodput_bps(),
            goodput_dt_bps: rep_dt.mean_goodput_bps(),
            completion_dctcp: comp_dc.mean().unwrap_or(f64::NAN),
            completion_dt: comp_dt.mean().unwrap_or(f64::NAN),
            p95_dctcp: comp_dc.quantile(0.95).unwrap_or(f64::NAN),
            p95_dt: comp_dt.quantile(0.95).unwrap_or(f64::NAN),
            timeout_frac_dctcp: rep_dc.timeout_fraction(),
            timeout_frac_dt: rep_dt.timeout_fraction(),
        });
    }
    let collapse_dctcp = collapse_point(&rows, |r| r.goodput_dctcp_bps);
    let collapse_dt = collapse_point(&rows, |r| r.goodput_dt_bps);
    QuerySweepResult {
        figure: figure.to_string(),
        rows,
        collapse_dctcp,
        collapse_dt,
    }
}

/// Runs the Figure 14 Incast sweep.
pub fn fig14(scale: Scale) -> QuerySweepResult {
    let (flow_counts, rounds): (Vec<u32>, u32) = match scale {
        Scale::Quick => (vec![4, 16, 32, 40, 48], 3),
        Scale::Full => ((2..=48).step_by(2).collect(), 30),
    };
    run_sweep("Fig. 14", &flow_counts, |n| {
        QueryWorkload::incast(n, rounds)
    })
}

/// Runs the Figure 15 partition-aggregate sweep.
pub fn fig15(scale: Scale) -> QuerySweepResult {
    let (flow_counts, rounds): (Vec<u32>, u32) = match scale {
        Scale::Quick => (vec![4, 16, 32, 40, 48], 3),
        Scale::Full => ((2..=48).step_by(2).collect(), 30),
    };
    run_sweep("Fig. 15", &flow_counts, |n| {
        QueryWorkload::partition_aggregate(n, rounds)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_small_n_is_healthy() {
        let r = fig14(Scale::Quick);
        let first = &r.rows[0];
        assert_eq!(first.flows, 4);
        assert!(
            first.goodput_dctcp_bps > 3e8,
            "4-flow incast goodput {}",
            first.goodput_dctcp_bps
        );
        assert!(first.goodput_dt_bps > 3e8);
    }

    #[test]
    fn fig15_minimum_near_10ms() {
        let r = fig15(Scale::Quick);
        let best = r
            .rows
            .iter()
            .map(|row| row.completion_dctcp)
            .fold(f64::INFINITY, f64::min);
        // 1 MB at 1 Gb/s is ≈ 8.6 ms with headers; the paper reports
        // ≈ 10 ms.
        assert!(best > 0.008 && best < 0.03, "best completion {best}");
    }

    #[test]
    fn collapse_detection_picks_half_best() {
        let rows = vec![
            QuerySweepRow {
                flows: 8,
                goodput_dctcp_bps: 9e8,
                goodput_dt_bps: 9e8,
                completion_dctcp: 0.01,
                completion_dt: 0.01,
                p95_dctcp: 0.01,
                p95_dt: 0.01,
                timeout_frac_dctcp: 0.0,
                timeout_frac_dt: 0.0,
            },
            QuerySweepRow {
                flows: 16,
                goodput_dctcp_bps: 1e8,
                goodput_dt_bps: 8e8,
                completion_dctcp: 0.2,
                completion_dt: 0.011,
                p95_dctcp: 0.2,
                p95_dt: 0.012,
                timeout_frac_dctcp: 1.0,
                timeout_frac_dt: 0.0,
            },
        ];
        assert_eq!(collapse_point(&rows, |r| r.goodput_dctcp_bps), Some(16));
        // 8e8 is above a quarter of 9e8, so DT has not collapsed.
        assert_eq!(collapse_point(&rows, |r| r.goodput_dt_bps), None);
    }
}
