//! The long-lived-flow scenario: N senders sharing one bottleneck
//! (the setup of the paper's Figs. 1, 10, 11 and 12).

use dctcp_core::MarkingScheme;
use dctcp_sim::{
    Capacity, FaultPlan, FlowId, LinkId, NodeId, QueueConfig, ShardedSimulator, SimDuration,
    SimError, SimTime, TopologyBuilder,
};
use dctcp_stats::{TimeSeries, TimeWeightedSummary, Welford};
use dctcp_tcp::{ScheduledFlow, TcpConfig, TransportHost};

/// A validated long-lived-flow scenario; build with
/// [`LongLivedScenario::builder`], execute with
/// [`LongLivedScenario::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct LongLivedScenario {
    flows: u32,
    bottleneck_bps: u64,
    rtt: SimDuration,
    marking: MarkingScheme,
    tcp: TcpConfig,
    buffer: Capacity,
    warmup: SimDuration,
    duration: SimDuration,
    trace_interval: Option<SimDuration>,
    start_stagger: SimDuration,
}

/// Builder for [`LongLivedScenario`].
#[derive(Debug, Clone, PartialEq)]
pub struct LongLivedScenarioBuilder {
    inner: LongLivedScenario,
}

/// An instantiated long-lived scenario: the simulator plus the node and
/// link handles a harness needs to drive it manually — e.g. to
/// [`install_faults`](ShardedSimulator::install_faults) before running,
/// or to interleave runs with mid-experiment inspection.
#[derive(Debug)]
pub struct LongLivedInstance {
    /// The ready-to-run simulator (no warm-up performed). Honours
    /// `DCTCP_SIM_SHARDS`; results are bit-identical at any shard count.
    pub sim: ShardedSimulator,
    /// The receiver host aggregating all flows.
    pub rx: NodeId,
    /// The bottleneck link (switch → receiver).
    pub bottleneck: LinkId,
    /// The switch at the sending end of the bottleneck.
    pub switch: NodeId,
    /// The sender hosts, one flow each.
    pub senders: Vec<NodeId>,
}

/// Measured outcome of a long-lived run (statistics cover the
/// post-warmup window only).
#[derive(Debug, Clone, PartialEq)]
pub struct LongLivedReport {
    /// Number of flows.
    pub flows: u32,
    /// Marking scheme at the bottleneck.
    pub scheme: MarkingScheme,
    /// Time-weighted bottleneck occupancy in packets.
    pub queue: TimeWeightedSummary,
    /// CE marks applied during the window.
    pub marks: u64,
    /// Packets dropped during the window.
    pub drops: u64,
    /// Queue-length trace (when tracing was enabled).
    pub trace: Option<TimeSeries>,
    /// Pooled per-window `α` samples across all senders.
    pub alpha: Welford,
    /// Receiver goodput over the window, bits/second.
    pub goodput_bps: f64,
    /// Sender retransmission timeouts during the window.
    pub timeouts: u64,
}

impl LongLivedReport {
    /// Bottleneck utilization: receiver goodput as a fraction of the
    /// given bottleneck rate. Goodput excludes header and ACK bytes, so
    /// a saturated link reports slightly below 1.0 (~0.97 at MSS 1460).
    pub fn utilization(&self, bottleneck_bps: u64) -> f64 {
        if bottleneck_bps == 0 {
            return 0.0;
        }
        self.goodput_bps / bottleneck_bps as f64
    }
}

impl LongLivedScenario {
    /// Starts building a scenario with the paper's defaults: 10 Gb/s
    /// bottleneck, 100 µs RTT, DCTCP senders with `g = 1/16`, `K = 40`
    /// packets, a 1000-packet buffer, 20 ms warm-up and a 50 ms
    /// measurement window.
    pub fn builder() -> LongLivedScenarioBuilder {
        LongLivedScenarioBuilder {
            inner: LongLivedScenario {
                flows: 10,
                bottleneck_bps: 10_000_000_000,
                rtt: SimDuration::from_micros(100),
                marking: MarkingScheme::dctcp_packets(40),
                tcp: TcpConfig::dctcp(1.0 / 16.0),
                buffer: Capacity::Packets(1000),
                warmup: SimDuration::from_millis(20),
                duration: SimDuration::from_millis(50),
                trace_interval: None,
                start_stagger: SimDuration::ZERO,
            },
        }
    }

    /// Runs the scenario to completion and reports post-warmup
    /// statistics.
    pub fn run(&self) -> LongLivedReport {
        self.run_with_faults(|_| FaultPlan::new())
            .expect("fault-free scenario")
    }

    /// Runs the scenario with a scripted fault plan installed before
    /// the clock starts. The builder receives the instantiated
    /// topology so plans can reference its links (typically
    /// [`LongLivedInstance::bottleneck`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if instantiation, fault installation or the
    /// run itself fails.
    pub fn run_with_faults(
        &self,
        plan: impl FnOnce(&LongLivedInstance) -> FaultPlan,
    ) -> Result<LongLivedReport, SimError> {
        self.run_supervised(None, plan)
    }

    /// [`LongLivedScenario::run_with_faults`] under an optional
    /// [`CancelToken`](dctcp_sim::CancelToken): a supervisor that fires
    /// the token (e.g. a wall-clock watchdog) stops the run with
    /// [`SimError::Cancelled`](SimError) at the next event-loop poll. An
    /// unfired token leaves the run bit-identical to an unsupervised
    /// one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if instantiation, fault installation or the
    /// run itself fails, including `Cancelled` for a fired token.
    pub fn run_supervised(
        &self,
        cancel: Option<dctcp_sim::CancelToken>,
        plan: impl FnOnce(&LongLivedInstance) -> FaultPlan,
    ) -> Result<LongLivedReport, SimError> {
        let mut instance = self.instantiate()?;
        instance.sim.set_cancel_token(cancel);
        let faults = plan(&instance);
        instance.sim.install_faults(&faults)?;
        let LongLivedInstance {
            mut sim,
            rx,
            bottleneck,
            switch: sw,
            senders,
        } = instance;

        sim.run_for(self.warmup)?;
        sim.reset_all_queue_stats();
        for &h in &senders {
            let host: &mut TransportHost = sim.agent_mut(h).expect("sender host");
            host.reset_sender_stats();
        }
        let rx_host: &TransportHost = sim.agent(rx).expect("receiver host");
        let bytes_before: u64 = rx_host.receivers().map(|r| r.stats().bytes_received).sum();

        sim.run_for(self.duration)?;

        let report = sim.queue_report(bottleneck, sw);
        let rx_host: &TransportHost = sim.agent(rx).expect("receiver host");
        let bytes_after: u64 = rx_host.receivers().map(|r| r.stats().bytes_received).sum();
        let mut alpha = Welford::new();
        let mut timeouts = 0;
        for &h in &senders {
            let host: &TransportHost = sim.agent(h).expect("sender host");
            for s in host.senders() {
                alpha.merge(&s.stats().alpha);
                timeouts += s.stats().timeouts;
            }
        }
        Ok(LongLivedReport {
            flows: self.flows,
            scheme: self.marking,
            queue: report.occupancy_pkts,
            marks: report.counters.marked,
            drops: report.counters.dropped(),
            trace: report.trace,
            alpha,
            goodput_bps: (bytes_after - bytes_before) as f64 * 8.0 / self.duration.as_secs_f64(),
            timeouts,
        })
    }

    /// The configured bottleneck rate in bits per second.
    pub fn bottleneck_bps(&self) -> u64 {
        self.bottleneck_bps
    }

    /// Builds the topology and returns the raw pieces without running
    /// anything, for harnesses that inject faults or drive the clock
    /// themselves.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if topology construction fails.
    pub fn instantiate(&self) -> Result<LongLivedInstance, SimError> {
        let mut b = TopologyBuilder::new();
        let rx = b.host("rx", Box::new(TransportHost::new(self.tcp)));
        let sw = b.switch("sw");
        // Propagation RTT = 2*(d_host + d_bottleneck) = rtt.
        let hop = self.rtt / 4;
        let spec = dctcp_sim::LinkSpec {
            rate_bps: self.bottleneck_bps,
            delay: hop,
        };
        let mut senders = Vec::with_capacity(self.flows as usize);
        for i in 0..self.flows {
            let mut host = TransportHost::new(self.tcp);
            host.schedule(ScheduledFlow {
                flow: FlowId(i as u64 + 1),
                dst: rx,
                bytes: None,
                at: SimTime::ZERO + self.start_stagger * i as u64,
                cfg: self.tcp,
            });
            let h = b.host(format!("tx{i}"), Box::new(host));
            b.link(
                h,
                sw,
                spec,
                QueueConfig::host_nic(),
                QueueConfig::host_nic(),
            )?;
            senders.push(h);
        }
        let mut qcfg = QueueConfig::switch(self.buffer, self.marking);
        qcfg.trace_interval = self.trace_interval;
        let bottleneck = b.link(sw, rx, spec, qcfg, QueueConfig::host_nic())?;
        Ok(LongLivedInstance {
            sim: ShardedSimulator::new(b.build()?)?,
            rx,
            bottleneck,
            switch: sw,
            senders,
        })
    }
}

impl LongLivedScenarioBuilder {
    /// Sets the number of concurrent long-lived flows.
    pub fn flows(mut self, n: u32) -> Self {
        self.inner.flows = n;
        self
    }

    /// Sets the bottleneck rate in Gb/s.
    pub fn bottleneck_gbps(mut self, gbps: f64) -> Self {
        self.inner.bottleneck_bps = (gbps * 1e9) as u64;
        self
    }

    /// Sets the propagation round-trip time in microseconds.
    pub fn rtt_us(mut self, us: f64) -> Self {
        self.inner.rtt = SimDuration::from_secs_f64(us * 1e-6);
        self
    }

    /// Sets the bottleneck marking scheme.
    pub fn marking(mut self, scheme: MarkingScheme) -> Self {
        self.inner.marking = scheme;
        self
    }

    /// Sets the sender/receiver TCP configuration.
    pub fn tcp(mut self, cfg: TcpConfig) -> Self {
        self.inner.tcp = cfg;
        self
    }

    /// Sets the bottleneck buffer size.
    pub fn buffer(mut self, capacity: Capacity) -> Self {
        self.inner.buffer = capacity;
        self
    }

    /// Sets the warm-up length (excluded from statistics).
    pub fn warmup_secs(mut self, s: f64) -> Self {
        self.inner.warmup = SimDuration::from_secs_f64(s);
        self
    }

    /// Sets the measurement window length.
    pub fn duration_secs(mut self, s: f64) -> Self {
        self.inner.duration = SimDuration::from_secs_f64(s);
        self
    }

    /// Enables queue tracing with the given sample spacing.
    pub fn trace_interval(mut self, d: SimDuration) -> Self {
        self.inner.trace_interval = Some(d);
        self
    }

    /// Staggers flow starts by this much per flow (default: simultaneous).
    pub fn start_stagger(mut self, d: SimDuration) -> Self {
        self.inner.start_stagger = d;
        self
    }

    /// Validates and returns the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for a zero flow count or invalid
    /// marking/TCP parameters.
    pub fn build(self) -> Result<LongLivedScenario, SimError> {
        let s = self.inner;
        if s.flows == 0 {
            return Err(SimError::InvalidTopology(
                "at least one flow required".into(),
            ));
        }
        s.marking.build()?; // validates parameters
        s.tcp.validate()?;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(n: u32, scheme: MarkingScheme) -> LongLivedReport {
        LongLivedScenario::builder()
            .flows(n)
            .bottleneck_gbps(1.0)
            .marking(scheme)
            .warmup_secs(0.02)
            .duration_secs(0.04)
            .build()
            .unwrap()
            .run()
    }

    #[test]
    fn builder_rejects_zero_flows() {
        assert!(LongLivedScenario::builder().flows(0).build().is_err());
    }

    #[test]
    fn builder_rejects_bad_marking() {
        let r = LongLivedScenario::builder()
            .marking(MarkingScheme::dt_dctcp_packets(50, 30))
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn dctcp_run_saturates_and_marks() {
        let r = quick(4, MarkingScheme::dctcp_packets(20));
        assert!(r.goodput_bps > 0.85e9, "goodput {}", r.goodput_bps);
        assert!(r.marks > 0);
        assert_eq!(r.drops, 0);
        assert!(
            r.queue.mean > 0.5 && r.queue.mean < 100.0,
            "queue {}",
            r.queue.mean
        );
        assert!(r.alpha.count() > 0);
        assert!(r.alpha.mean() > 0.0 && r.alpha.mean() < 1.0);
    }

    #[test]
    fn dt_run_saturates_and_marks() {
        let r = quick(4, MarkingScheme::dt_dctcp_packets(15, 25));
        assert!(r.goodput_bps > 0.85e9);
        assert!(r.marks > 0);
        assert_eq!(r.drops, 0);
    }

    #[test]
    fn trace_is_captured_when_requested() {
        let r = LongLivedScenario::builder()
            .flows(2)
            .bottleneck_gbps(1.0)
            .marking(MarkingScheme::dctcp_packets(20))
            .warmup_secs(0.01)
            .duration_secs(0.02)
            .trace_interval(SimDuration::from_micros(100))
            .build()
            .unwrap()
            .run();
        let trace = r.trace.expect("trace enabled");
        assert!(trace.len() > 10);
    }

    #[test]
    fn faulted_run_loses_goodput_during_outage() {
        let scenario = LongLivedScenario::builder()
            .flows(2)
            .bottleneck_gbps(1.0)
            .marking(MarkingScheme::dctcp_packets(20))
            .warmup_secs(0.01)
            .duration_secs(0.03)
            .build()
            .unwrap();
        let clean = scenario.run();
        // One 10 ms outage of the bottleneck inside the 10..40 ms
        // measurement window.
        let faulted = scenario
            .run_with_faults(|i| {
                FaultPlan::new().flap(
                    i.bottleneck,
                    SimTime::ZERO + SimDuration::from_millis(15),
                    SimDuration::from_millis(10),
                    SimDuration::from_millis(20),
                    1,
                )
            })
            .unwrap();
        assert!(
            faulted.goodput_bps < clean.goodput_bps * 0.9,
            "outage did not dent goodput: {} vs {}",
            faulted.goodput_bps,
            clean.goodput_bps
        );
    }

    #[test]
    fn fired_token_cancels_a_supervised_run() {
        let scenario = LongLivedScenario::builder()
            .flows(2)
            .bottleneck_gbps(1.0)
            .marking(MarkingScheme::dctcp_packets(20))
            .warmup_secs(0.02)
            .duration_secs(0.04)
            .build()
            .unwrap();
        let token = dctcp_sim::CancelToken::new();
        token.cancel();
        let err = scenario
            .run_supervised(Some(token), |_| FaultPlan::new())
            .unwrap_err();
        assert!(matches!(err, SimError::Cancelled { .. }), "{err:?}");
        // An unfired token changes nothing.
        let clean = scenario.run();
        let supervised = scenario
            .run_supervised(Some(dctcp_sim::CancelToken::new()), |_| FaultPlan::new())
            .unwrap();
        assert_eq!(clean, supervised);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick(3, MarkingScheme::dctcp_packets(20));
        let b = quick(3, MarkingScheme::dctcp_packets(20));
        assert_eq!(a.queue.mean, b.queue.mean);
        assert_eq!(a.marks, b.marks);
        assert_eq!(a.goodput_bps, b.goodput_bps);
    }
}
