//! Seeded randomized tests of the simulator substrate: conservation
//! laws and timing invariants that must survive arbitrary traffic.

use dctcp_core::MarkingScheme;
use dctcp_rng::Pcg32;
use dctcp_sim::{
    Capacity, Ecn, FlowId, NodeId, Offer, OutputQueue, Packet, QueueConfig, SimDuration, SimTime,
};

#[derive(Debug, Clone, Copy)]
enum Op {
    Offer(u16),
    Pop,
}

fn ops(rng: &mut Pcg32) -> Vec<Op> {
    let n = rng.range_usize(1, 499);
    (0..n)
        .map(|_| {
            if rng.chance(0.5) {
                Op::Offer(rng.range_u64(1, 1999) as u16)
            } else {
                Op::Pop
            }
        })
        .collect()
}

fn pkt(payload: u16) -> Packet {
    let mut p = Packet::data(
        FlowId(1),
        NodeId::from_index(0),
        NodeId::from_index(1),
        0,
        payload as u32,
    );
    p.ecn = Ecn::Ect;
    p
}

/// Packet and byte conservation: everything offered is either enqueued,
/// dropped, popped, or still resident — and byte accounting matches
/// exactly.
#[test]
fn queue_conserves_packets_and_bytes() {
    let mut rng = Pcg32::seed_from_u64(0x51B_0001);
    for _ in 0..192 {
        let ops = ops(&mut rng);
        let cap = rng.range_u64(1, 63) as u32;
        let cfg = QueueConfig::switch(Capacity::Packets(cap), MarkingScheme::dctcp_packets(5));
        let mut q = OutputQueue::new(&cfg).unwrap();
        let mut t = 0u64;
        let mut resident_bytes: u64 = 0;
        let mut resident: u32 = 0;
        let mut popped = 0u64;
        for op in &ops {
            t += 1;
            let now = SimTime::from_nanos(t * 1000);
            match *op {
                Op::Offer(payload) => {
                    let p = pkt(payload);
                    let wire = p.wire_bytes() as u64;
                    match q.offer(now, p) {
                        Offer::Enqueued => {
                            resident += 1;
                            resident_bytes += wire;
                        }
                        Offer::DroppedAqm | Offer::DroppedOverflow | Offer::DroppedRandom => {}
                    }
                }
                Op::Pop => {
                    if let Some(p) = q.pop(now) {
                        popped += 1;
                        resident -= 1;
                        resident_bytes -= p.wire_bytes() as u64;
                    }
                }
            }
            assert_eq!(q.len_pkts(), resident);
            assert_eq!(q.len_bytes(), resident_bytes);
            assert!(q.len_pkts() <= cap, "capacity violated");
        }
        let c = q.counters();
        assert_eq!(c.enqueued, resident as u64 + popped);
        assert_eq!(c.dequeued, popped);
        let total_offered = ops.iter().filter(|o| matches!(o, Op::Offer(_))).count() as u64;
        assert_eq!(c.enqueued + c.dropped(), total_offered);
    }
}

/// FIFO order: packets come out in the order they were accepted.
#[test]
fn queue_is_fifo() {
    let mut rng = Pcg32::seed_from_u64(0x51B_0002);
    for _ in 0..192 {
        let ops = ops(&mut rng);
        let cfg = QueueConfig::switch(Capacity::Packets(1_000), MarkingScheme::DropTail);
        let mut q = OutputQueue::new(&cfg).unwrap();
        let mut next_seq = 0u64;
        let mut expected_out = 0u64;
        let mut t = 0u64;
        for op in &ops {
            t += 1;
            let now = SimTime::from_nanos(t * 1000);
            match *op {
                Op::Offer(payload) => {
                    let mut p = pkt(payload);
                    p.seq = next_seq;
                    next_seq += 1;
                    assert_eq!(q.offer(now, p), Offer::Enqueued);
                }
                Op::Pop => {
                    if let Some(p) = q.pop(now) {
                        assert_eq!(p.seq, expected_out);
                        expected_out += 1;
                    }
                }
            }
        }
    }
}

/// Transmission time is additive and monotone in bytes and rate.
#[test]
fn transmission_time_is_monotone() {
    let mut rng = Pcg32::seed_from_u64(0x51B_0003);
    for _ in 0..1024 {
        let a = rng.range_u64(1, 99_999);
        let b = rng.range_u64(1, 99_999);
        let rate = rng.range_u64(1_000_000, 99_999_999_999);
        let ta = SimDuration::transmission(a, rate);
        let tb = SimDuration::transmission(b, rate);
        let tab = SimDuration::transmission(a + b, rate);
        // Ceil rounding makes sums over-estimate by at most 1 ns each.
        assert!(tab <= ta + tb);
        assert!(tab + SimDuration::from_nanos(2) >= ta + tb);
        if a < b {
            assert!(ta <= tb);
        }
        // Faster link, shorter time.
        let t2 = SimDuration::transmission(a, rate * 2);
        assert!(t2 <= ta);
    }
}

/// Marked packets are exactly the ECT arrivals the policy marked —
/// never NotEct ones.
#[test]
fn non_ect_packets_are_never_marked() {
    let mut rng = Pcg32::seed_from_u64(0x51B_0004);
    for _ in 0..192 {
        let ops = ops(&mut rng);
        let cfg = QueueConfig::switch(
            Capacity::Packets(1_000),
            MarkingScheme::dctcp_packets(0), // marks every eligible arrival
        );
        let mut q = OutputQueue::new(&cfg).unwrap();
        let mut t = 0u64;
        let mut offered_ect = 0u64;
        for (i, op) in ops.iter().enumerate() {
            t += 1;
            let now = SimTime::from_nanos(t * 1000);
            match *op {
                Op::Offer(payload) => {
                    let mut p = pkt(payload);
                    if i % 2 == 0 {
                        p.ecn = Ecn::NotEct;
                    } else {
                        offered_ect += 1;
                    }
                    q.offer(now, p);
                }
                Op::Pop => {
                    if let Some(p) = q.pop(now) {
                        if p.ecn.is_ce() {
                            assert!(p.payload > 0); // CE only on our data packets
                        }
                    }
                }
            }
        }
        assert_eq!(q.counters().marked, offered_ect);
    }
}
