//! Cooperative cancellation of a running simulation.
//!
//! A [`CancelToken`] is a cheap, clonable flag shared between a running
//! simulation and an external supervisor (a wall-clock watchdog, a
//! ctrl-c handler, a test harness). The simulator polls it at a coarse
//! stride inside the event loop — see
//! [`Simulator::set_cancel_token`](crate::Simulator::set_cancel_token) —
//! and stops with [`SimError::Cancelled`](crate::SimError) once fired.
//!
//! Cancellation never fires on its own: a run with a token that is
//! never cancelled is event-for-event identical to a run with no token
//! at all, so determinism of completed runs is untouched.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared one-way cancellation flag.
///
/// Cloning shares the flag; once [`CancelToken::cancel`] fires it stays
/// fired for every clone.
///
/// # Examples
///
/// ```
/// use dctcp_sim::CancelToken;
///
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    fired: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Fires the token. Idempotent; every clone observes it.
    pub fn cancel(&self) {
        self.fired.store(true, Ordering::Release);
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        // Idempotent.
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn token_crosses_threads() {
        let token = CancelToken::new();
        let remote = token.clone();
        std::thread::spawn(move || remote.cancel())
            .join()
            .expect("cancel thread");
        assert!(token.is_cancelled());
    }
}
