//! Full-duplex point-to-point links.

use crate::{NodeId, OutputQueue, QueueConfig, SimDuration, SimTime};

/// Rate and propagation delay of a full-duplex link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkSpec {
    /// Line rate in bits per second (both directions).
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub delay: SimDuration,
}

impl LinkSpec {
    /// A link of `gbps` gigabits per second with the given one-way
    /// propagation delay in microseconds.
    pub fn gbps(gbps: f64, delay_us: u64) -> Self {
        LinkSpec {
            rate_bps: (gbps * 1e9) as u64,
            delay: SimDuration::from_micros(delay_us),
        }
    }
}

/// One transmitting end of a link: the attached node, its output queue
/// toward the other end, and the transmitter's busy flag.
#[derive(Debug)]
pub(crate) struct LinkEnd {
    pub(crate) node: NodeId,
    pub(crate) queue: OutputQueue,
    pub(crate) busy: bool,
    /// Accumulated transmitter busy time since the last stats reset.
    pub(crate) busy_time: SimDuration,
    /// Start of the current utilization window.
    pub(crate) window_start: SimTime,
    /// Bytes put on the wire since the last stats reset.
    pub(crate) bytes_sent: u64,
    /// Memo of the last serialization-time computation (wire bytes →
    /// duration). Traffic repeats a handful of packet sizes, so this
    /// one-entry cache removes the division from almost every
    /// transmission start.
    pub(crate) last_tx: (u64, SimDuration),
}

/// A full-duplex link between two nodes with independent per-direction
/// queues and transmitters.
#[derive(Debug)]
pub(crate) struct Link {
    pub(crate) spec: LinkSpec,
    pub(crate) ends: [LinkEnd; 2],
    /// Whether the link is up. While down, neither transmitter starts
    /// new packets; queues keep absorbing arrivals (fault injection).
    pub(crate) up: bool,
}

impl Link {
    pub(crate) fn new(
        spec: LinkSpec,
        a: NodeId,
        queue_a: &QueueConfig,
        b: NodeId,
        queue_b: &QueueConfig,
    ) -> Result<Self, dctcp_core::ParamError> {
        Ok(Link {
            spec,
            ends: [
                LinkEnd {
                    node: a,
                    queue: OutputQueue::new(queue_a)?,
                    busy: false,
                    busy_time: SimDuration::ZERO,
                    window_start: SimTime::ZERO,
                    bytes_sent: 0,
                    last_tx: (0, SimDuration::ZERO),
                },
                LinkEnd {
                    node: b,
                    queue: OutputQueue::new(queue_b)?,
                    busy: false,
                    busy_time: SimDuration::ZERO,
                    window_start: SimTime::ZERO,
                    bytes_sent: 0,
                    last_tx: (0, SimDuration::ZERO),
                },
            ],
            up: true,
        })
    }

    /// Index of the end attached to `node`, if any.
    pub(crate) fn end_of(&self, node: NodeId) -> Option<usize> {
        self.ends.iter().position(|e| e.node == node)
    }

    /// A pristine replica of this link: same spec, endpoints, and queue
    /// configurations, with all runtime state (occupancy, busy flags,
    /// stats) at its initial values.
    ///
    /// Only valid at time zero, before any traffic — the sharded driver
    /// uses it to give each shard its own copy of the topology.
    pub(crate) fn fresh_copy(&self) -> Result<Self, dctcp_core::ParamError> {
        Link::new(
            self.spec,
            self.ends[0].node,
            &self.ends[0].queue.config(),
            self.ends[1].node,
            &self.ends[1].queue.config(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_constructor() {
        let s = LinkSpec::gbps(10.0, 25);
        assert_eq!(s.rate_bps, 10_000_000_000);
        assert_eq!(s.delay, SimDuration::from_micros(25));
    }

    #[test]
    fn end_lookup() {
        let a = NodeId::from_index(3);
        let b = NodeId::from_index(7);
        let l = Link::new(
            LinkSpec::gbps(1.0, 1),
            a,
            &QueueConfig::host_nic(),
            b,
            &QueueConfig::host_nic(),
        )
        .unwrap();
        assert_eq!(l.end_of(a), Some(0));
        assert_eq!(l.end_of(b), Some(1));
        assert_eq!(l.end_of(NodeId::from_index(9)), None);
    }
}
