//! A packet-level discrete-event network simulator.
//!
//! This crate is the ns-2 substitute for the DT-DCTCP reproduction: it
//! models full-duplex links (serialization + propagation), output-queued
//! switches with pluggable AQM marking (from [`dctcp_core`]), static
//! shortest-path routing, and hosts running event-driven [`Agent`]s (the
//! transport state machines live in `dctcp-tcp`).
//!
//! Design points:
//!
//! * **Integer nanosecond clock** ([`SimTime`]) — event instants are
//!   exact; ties break FIFO, so every run is deterministic.
//! * **Exact queue statistics** — queue occupancy is integrated between
//!   events ([`dctcp_stats::TimeWeighted`]), not sampled.
//! * **Deterministic at any parallelism** — the serial [`Simulator`] is
//!   the reference; [`ShardedSimulator`] partitions multi-domain
//!   topologies along high-delay links and runs the domains on worker
//!   threads under conservative time windows, producing *bit-identical*
//!   traces and statistics at every shard count (see
//!   [`ShardedSimulator`] for the lookahead and ordering argument).
//!
//! # Examples
//!
//! Build a dumbbell and run it (see [`TopologyBuilder`] for a complete
//! example):
//!
//! ```
//! use dctcp_sim::{LinkSpec, QueueConfig, SimDuration, Simulator, TopologyBuilder};
//! # use dctcp_sim::{Agent, Context, Packet};
//! # #[derive(Debug)]
//! # struct Nop;
//! # impl Agent for Nop {
//! #     fn on_packet(&mut self, _p: Packet, _c: &mut Context<'_>) {}
//! #     fn as_any(&self) -> &dyn std::any::Any { self }
//! #     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! # }
//!
//! let mut b = TopologyBuilder::new();
//! let h1 = b.host("h1", Box::new(Nop));
//! let h2 = b.host("h2", Box::new(Nop));
//! let link = b.link(
//!     h1,
//!     h2,
//!     LinkSpec::gbps(1.0, 50),
//!     QueueConfig::host_nic(),
//!     QueueConfig::host_nic(),
//! )?;
//! let mut sim = Simulator::new(b.build()?);
//! sim.run_for(SimDuration::from_millis(10))?;
//! let report = sim.queue_report(link, h1);
//! assert_eq!(report.counters.dropped(), 0);
//! # Ok::<(), dctcp_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod cancel;
mod error;
mod event;
mod fault;
mod flow_table;
mod ids;
mod link;
mod node;
mod packet;
mod queue;
mod shard;
mod simulator;
mod time;
mod topology;

pub use cancel::CancelToken;
pub use error::SimError;
pub use fault::{FaultAction, FaultEvent, FaultPlan};
pub use flow_table::{FlowTable, FlowTableError};
pub use ids::{FlowId, LinkId, NodeId, TimerToken};
pub use link::LinkSpec;
pub use node::{Agent, Context};
pub use packet::{Ecn, Packet, PacketKind, HEADER_BYTES};
pub use queue::{
    Capacity, LossModel, Offer, OutputQueue, QueueConfig, QueueCounters, QueueReport, ReorderModel,
};
pub use shard::ShardedSimulator;
pub use simulator::Simulator;
pub use time::{SimDuration, SimTime};
pub use topology::{FatTree, FatTreeIds, FatTreeNet, Network, Routes, TierSpec, TopologyBuilder};

pub use dctcp_trace::{TraceConfig, TraceKind, TraceLog, TraceScope, Tracer};
