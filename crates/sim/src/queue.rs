//! Output queues with pluggable AQM and exact occupancy statistics.

use std::collections::VecDeque;

use dctcp_core::{Codel, CodelParams, EnqueueDecision, MarkingPolicy, MarkingScheme, QueueSnapshot};
use dctcp_stats::{TimeSeries, TimeWeighted, TimeWeightedSummary};
use serde::{Deserialize, Serialize};

use crate::{Ecn, Packet, SimDuration, SimTime};

/// Buffer size limit of an output queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Capacity {
    /// No limit (host NIC queues, which are paced by the transport
    /// window).
    Unbounded,
    /// At most this many packets, counting queued but not in-service
    /// packets.
    Packets(u32),
    /// At most this many queued bytes (wire bytes).
    Bytes(u64),
}

impl Capacity {
    fn admits(&self, len_bytes: u64, len_pkts: u32, arriving: u32) -> bool {
        match *self {
            Capacity::Unbounded => true,
            Capacity::Packets(n) => len_pkts < n,
            Capacity::Bytes(b) => len_bytes + arriving as u64 <= b,
        }
    }
}

/// Random-loss fault injection for a queue: every arriving packet is
/// independently dropped with probability `rate`, before the marking
/// policy sees it. Deterministic per `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossModel {
    /// Drop probability in `[0, 1]`.
    pub rate: f64,
    /// RNG seed (SplitMix64).
    pub seed: u64,
}

/// Configuration of one output queue (one direction of one link).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Buffer limit.
    pub capacity: Capacity,
    /// Marking scheme (built into live policy state per queue).
    pub scheme: MarkingScheme,
    /// Record a queue-length trace, at most one point per this interval.
    /// `None` disables tracing.
    pub trace_interval: Option<SimDuration>,
    /// Optional random-loss fault injection.
    pub loss: Option<LossModel>,
}

impl QueueConfig {
    /// An unbounded FIFO without marking — the default for host NIC
    /// queues.
    pub fn host_nic() -> Self {
        QueueConfig {
            capacity: Capacity::Unbounded,
            scheme: MarkingScheme::DropTail,
            trace_interval: None,
            loss: None,
        }
    }

    /// A bounded switch queue with the given marking scheme.
    pub fn switch(capacity: Capacity, scheme: MarkingScheme) -> Self {
        QueueConfig {
            capacity,
            scheme,
            trace_interval: None,
            loss: None,
        }
    }

    /// Enables queue-length tracing with the given minimum sample
    /// spacing.
    pub fn with_trace(mut self, interval: SimDuration) -> Self {
        self.trace_interval = Some(interval);
        self
    }

    /// Enables random-loss fault injection on this queue.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn with_loss(mut self, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "loss rate {rate} outside [0, 1]");
        self.loss = Some(LossModel { rate, seed });
        self
    }
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self::host_nic()
    }
}

/// Event counters of a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QueueCounters {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets handed to the transmitter.
    pub dequeued: u64,
    /// Packets dropped by the buffer limit.
    pub dropped_overflow: u64,
    /// Packets dropped by the AQM policy (RED drop mode).
    pub dropped_aqm: u64,
    /// Packets dropped by fault injection ([`LossModel`]).
    pub dropped_random: u64,
    /// Packets marked CE by the policy.
    pub marked: u64,
}

impl QueueCounters {
    /// Total packets dropped for any reason.
    pub fn dropped(&self) -> u64 {
        self.dropped_overflow + self.dropped_aqm + self.dropped_random
    }
}

/// Occupancy summary and counters of one queue over an observation
/// window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueReport {
    /// Event counters since the last stats reset.
    pub counters: QueueCounters,
    /// Time-weighted occupancy in packets.
    pub occupancy_pkts: TimeWeightedSummary,
    /// Time-weighted occupancy in bytes.
    pub occupancy_bytes: TimeWeightedSummary,
    /// Queue-length trace in packets, if tracing was enabled.
    pub trace: Option<TimeSeries>,
}

/// What happened to an offered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// Accepted (possibly CE-marked).
    Enqueued,
    /// Rejected by the AQM policy.
    DroppedAqm,
    /// Rejected by the buffer limit.
    DroppedOverflow,
    /// Dropped by fault injection.
    DroppedRandom,
}

/// A FIFO output queue with a marking policy, a buffer limit, and exact
/// time-weighted occupancy statistics.
///
/// Occupancy excludes the packet currently being serialized (it is popped
/// at transmission start), matching ns-2's queue accounting that the
/// paper's `K = 40 packets` refers to.
#[derive(Debug)]
pub struct OutputQueue {
    fifo: VecDeque<Packet>,
    /// Enqueue instants, parallel to `fifo` (for sojourn-based AQM).
    enq_times: VecDeque<SimTime>,
    len_bytes: u64,
    capacity: Capacity,
    policy: Box<dyn MarkingPolicy>,
    counters: QueueCounters,
    tw_pkts: TimeWeighted,
    tw_bytes: TimeWeighted,
    trace: Option<TimeSeries>,
    trace_interval: Option<SimDuration>,
    last_trace_at: Option<SimTime>,
    loss: Option<LossModel>,
    loss_rng: u64,
    codel: Option<Codel>,
    codel_params: Option<CodelParams>,
}

impl OutputQueue {
    /// Builds a queue from its configuration.
    ///
    /// # Errors
    ///
    /// Returns the marking scheme's [`dctcp_core::ParamError`] if its
    /// parameters are invalid.
    pub fn new(config: &QueueConfig) -> Result<Self, dctcp_core::ParamError> {
        let codel = match config.scheme.codel_params() {
            Some(p) => Some(Codel::new(p)?),
            None => None,
        };
        Ok(OutputQueue {
            fifo: VecDeque::new(),
            enq_times: VecDeque::new(),
            len_bytes: 0,
            capacity: config.capacity,
            policy: config.scheme.build()?,
            counters: QueueCounters::default(),
            tw_pkts: TimeWeighted::new(0.0),
            tw_bytes: TimeWeighted::new(0.0),
            trace: config.trace_interval.map(|_| TimeSeries::new()),
            trace_interval: config.trace_interval,
            last_trace_at: None,
            loss: config.loss,
            loss_rng: config.loss.map_or(1, |l| l.seed.max(1)),
            codel,
            codel_params: config.scheme.codel_params(),
        })
    }

    /// Current occupancy in packets (excluding the in-service packet).
    pub fn len_pkts(&self) -> u32 {
        self.fifo.len() as u32
    }

    /// Current occupancy in wire bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len_bytes
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Offers an arriving packet to the queue at time `now`.
    pub fn offer(&mut self, now: SimTime, mut pkt: Packet) -> Offer {
        if let Some(loss) = self.loss {
            if self.next_uniform() < loss.rate {
                self.counters.dropped_random += 1;
                return Offer::DroppedRandom;
            }
        }
        let before = QueueSnapshot::new(self.len_bytes, self.len_pkts());
        let decision = self.policy.on_enqueue(&before);
        match decision {
            EnqueueDecision::Drop => {
                self.counters.dropped_aqm += 1;
                Offer::DroppedAqm
            }
            EnqueueDecision::Enqueue { mark } => {
                if !self
                    .capacity
                    .admits(self.len_bytes, self.len_pkts(), pkt.wire_bytes())
                {
                    self.counters.dropped_overflow += 1;
                    return Offer::DroppedOverflow;
                }
                if mark && pkt.ecn.is_capable() {
                    pkt.ecn = Ecn::Ce;
                    self.counters.marked += 1;
                }
                self.len_bytes += pkt.wire_bytes() as u64;
                self.fifo.push_back(pkt);
                self.enq_times.push_back(now);
                self.counters.enqueued += 1;
                self.record_occupancy(now);
                Offer::Enqueued
            }
        }
    }

    /// Removes the head packet for transmission at time `now`.
    ///
    /// Under CoDel drop mode, head packets the control law condemns are
    /// dropped here and the next survivor returned.
    pub fn pop(&mut self, now: SimTime) -> Option<Packet> {
        loop {
            let mut pkt = self.fifo.pop_front()?;
            let enq = self.enq_times.pop_front().unwrap_or(now);
            self.len_bytes -= pkt.wire_bytes() as u64;
            self.counters.dequeued += 1;
            let after = QueueSnapshot::new(self.len_bytes, self.len_pkts());
            self.policy.on_dequeue(&after);
            self.record_occupancy(now);

            if let (Some(codel), Some(params)) = (self.codel.as_mut(), self.codel_params) {
                let sojourn = now.saturating_duration_since(enq).as_nanos();
                if codel.on_dequeue_sojourn(now.as_nanos(), sojourn, &after) {
                    if params.ecn {
                        if pkt.ecn.is_capable() {
                            pkt.ecn = Ecn::Ce;
                            self.counters.marked += 1;
                        }
                    } else {
                        self.counters.dropped_aqm += 1;
                        self.counters.dequeued -= 1; // it never reached the wire
                        continue;
                    }
                }
            }
            return Some(pkt);
        }
    }

    /// Restarts the statistics window at `now` (used to discard warm-up
    /// transients); queue contents and policy state are preserved.
    pub fn reset_stats(&mut self, now: SimTime) {
        self.counters = QueueCounters::default();
        let t = now.as_secs_f64();
        self.tw_pkts = TimeWeighted::with_initial(t, self.len_pkts() as f64);
        self.tw_bytes = TimeWeighted::with_initial(t, self.len_bytes as f64);
        if self.trace.is_some() {
            self.trace = Some(TimeSeries::new());
            self.last_trace_at = None;
        }
    }

    /// Current sojourn time of the head packet, if any (diagnostics).
    pub fn head_sojourn(&self, now: SimTime) -> Option<SimDuration> {
        self.enq_times
            .front()
            .map(|&t| now.saturating_duration_since(t))
    }

    /// Snapshot of counters and occupancy statistics as of `now`.
    pub fn report(&self, now: SimTime) -> QueueReport {
        let t = now.as_secs_f64();
        QueueReport {
            counters: self.counters,
            occupancy_pkts: self.tw_pkts.finish(t),
            occupancy_bytes: self.tw_bytes.finish(t),
            trace: self.trace.clone(),
        }
    }

    /// Current counters (cheap accessor for in-flight checks).
    pub fn counters(&self) -> QueueCounters {
        self.counters
    }

    fn next_uniform(&mut self) -> f64 {
        // SplitMix64, deterministic per seed.
        self.loss_rng = self.loss_rng.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.loss_rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    fn record_occupancy(&mut self, now: SimTime) {
        let t = now.as_secs_f64();
        self.tw_pkts.update(t, self.len_pkts() as f64);
        self.tw_bytes.update(t, self.len_bytes as f64);
        if let (Some(trace), Some(interval)) = (&mut self.trace, self.trace_interval) {
            let due = match self.last_trace_at {
                None => true,
                Some(last) => now.saturating_duration_since(last) >= interval,
            };
            if due {
                trace.push(t, self.fifo.len() as f64);
                self.last_trace_at = Some(now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlowId, NodeId};
    use dctcp_core::QueueLevel;

    fn pkt(payload: u32) -> Packet {
        let mut p = Packet::data(
            FlowId(0),
            NodeId::from_index(0),
            NodeId::from_index(1),
            0,
            payload,
        );
        p.ecn = Ecn::Ect;
        p
    }

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = OutputQueue::new(&QueueConfig::host_nic()).unwrap();
        for i in 0..5u32 {
            let mut p = pkt(100);
            p.seq = i as u64;
            assert_eq!(q.offer(t(i as u64), p), Offer::Enqueued);
        }
        for i in 0..5u64 {
            assert_eq!(q.pop(t(10)).unwrap().seq, i);
        }
        assert!(q.pop(t(11)).is_none());
    }

    #[test]
    fn byte_accounting_includes_headers() {
        let mut q = OutputQueue::new(&QueueConfig::host_nic()).unwrap();
        q.offer(t(0), pkt(1460));
        assert_eq!(q.len_bytes(), 1500);
        assert_eq!(q.len_pkts(), 1);
        q.pop(t(1));
        assert_eq!(q.len_bytes(), 0);
    }

    #[test]
    fn packet_capacity_overflows() {
        let cfg = QueueConfig::switch(Capacity::Packets(2), MarkingScheme::DropTail);
        let mut q = OutputQueue::new(&cfg).unwrap();
        assert_eq!(q.offer(t(0), pkt(100)), Offer::Enqueued);
        assert_eq!(q.offer(t(0), pkt(100)), Offer::Enqueued);
        assert_eq!(q.offer(t(0), pkt(100)), Offer::DroppedOverflow);
        assert_eq!(q.counters().dropped_overflow, 1);
        assert_eq!(q.counters().enqueued, 2);
    }

    #[test]
    fn byte_capacity_overflows() {
        let cfg = QueueConfig::switch(Capacity::Bytes(3000), MarkingScheme::DropTail);
        let mut q = OutputQueue::new(&cfg).unwrap();
        assert_eq!(q.offer(t(0), pkt(1460)), Offer::Enqueued); // 1500
        assert_eq!(q.offer(t(0), pkt(1460)), Offer::Enqueued); // 3000
        assert_eq!(q.offer(t(0), pkt(1460)), Offer::DroppedOverflow);
    }

    #[test]
    fn dctcp_marking_applies_ce_when_capable() {
        let cfg = QueueConfig::switch(
            Capacity::Packets(100),
            MarkingScheme::Dctcp {
                k: QueueLevel::Packets(2),
            },
        );
        let mut q = OutputQueue::new(&cfg).unwrap();
        q.offer(t(0), pkt(100));
        q.offer(t(0), pkt(100));
        // Third arrival sees occupancy 2 >= K.
        q.offer(t(0), pkt(100));
        assert_eq!(q.counters().marked, 1);
        q.pop(t(1));
        q.pop(t(1));
        let third = q.pop(t(1)).unwrap();
        assert!(third.ecn.is_ce());
    }

    #[test]
    fn marking_skips_non_ect_packets() {
        let cfg = QueueConfig::switch(
            Capacity::Packets(100),
            MarkingScheme::Dctcp {
                k: QueueLevel::Packets(0),
            },
        );
        let mut q = OutputQueue::new(&cfg).unwrap();
        let mut p = pkt(100);
        p.ecn = Ecn::NotEct;
        q.offer(t(0), p);
        assert_eq!(q.counters().marked, 0);
        assert!(!q.pop(t(1)).unwrap().ecn.is_ce());
    }

    #[test]
    fn occupancy_statistics_are_time_weighted() {
        let mut q = OutputQueue::new(&QueueConfig::host_nic()).unwrap();
        // One packet resident from t=0 to t=1s, then empty until t=2s.
        q.offer(SimTime::ZERO, pkt(1460));
        q.pop(SimTime::from_nanos(1_000_000_000));
        let r = q.report(SimTime::from_nanos(2_000_000_000));
        assert!((r.occupancy_pkts.mean - 0.5).abs() < 1e-9);
        assert_eq!(r.occupancy_pkts.max, 1.0);
    }

    #[test]
    fn reset_stats_clears_counters_but_keeps_contents() {
        let mut q = OutputQueue::new(&QueueConfig::host_nic()).unwrap();
        q.offer(t(0), pkt(100));
        q.offer(t(1), pkt(100));
        q.reset_stats(t(2));
        assert_eq!(q.counters().enqueued, 0);
        assert_eq!(q.len_pkts(), 2);
        let r = q.report(t(4));
        // Occupancy over the fresh window is exactly 2 packets.
        assert!((r.occupancy_pkts.mean - 2.0).abs() < 1e-9);
    }

    #[test]
    fn trace_respects_sample_interval() {
        let cfg = QueueConfig::host_nic().with_trace(SimDuration::from_micros(10));
        let mut q = OutputQueue::new(&cfg).unwrap();
        for i in 0..100 {
            q.offer(t(i), pkt(100));
        }
        let r = q.report(t(100));
        let trace = r.trace.expect("tracing enabled");
        // 100 events over 100 us with >= 10 us spacing: at most 11 points.
        assert!(trace.len() <= 11, "trace too dense: {}", trace.len());
        assert!(trace.len() >= 9, "trace too sparse: {}", trace.len());
    }

    #[test]
    fn random_loss_drops_expected_fraction() {
        let cfg = QueueConfig::host_nic().with_loss(0.25, 42);
        let mut q = OutputQueue::new(&cfg).unwrap();
        let mut dropped = 0;
        for i in 0..4000u64 {
            if q.offer(t(i), pkt(100)) == Offer::DroppedRandom {
                dropped += 1;
            } else {
                q.pop(t(i));
            }
        }
        let frac = dropped as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.03, "loss fraction {frac}");
        assert_eq!(q.counters().dropped_random, dropped);
        assert_eq!(q.counters().dropped(), dropped);
    }

    #[test]
    fn zero_loss_model_never_drops() {
        let cfg = QueueConfig::host_nic().with_loss(0.0, 7);
        let mut q = OutputQueue::new(&cfg).unwrap();
        for i in 0..100u64 {
            assert_eq!(q.offer(t(i), pkt(100)), Offer::Enqueued);
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn loss_rate_validated() {
        let _ = QueueConfig::host_nic().with_loss(1.5, 1);
    }

    #[test]
    fn codel_marks_after_sustained_sojourn() {
        let cfg = QueueConfig::switch(Capacity::Packets(1000), MarkingScheme::codel_datacenter());
        let mut q = OutputQueue::new(&cfg).unwrap();
        // Fill a standing queue, then dequeue slowly so sojourn stays
        // far above the 50 us target for more than one 1 ms interval.
        for i in 0..200u64 {
            q.offer(t(i), pkt(1460));
        }
        let mut marked = 0;
        for i in 0..200u64 {
            let now = t(1_000 + i * 100); // 100 us per departure
            if let Some(p) = q.pop(now) {
                if p.ecn.is_ce() {
                    marked += 1;
                }
            }
            q.offer(now, pkt(1460)); // keep the queue standing
        }
        assert!(marked > 0, "CoDel never marked under a standing queue");
        assert!(q.counters().marked > 0);
    }

    #[test]
    fn codel_idle_queue_never_marks() {
        let cfg = QueueConfig::switch(Capacity::Packets(1000), MarkingScheme::codel_datacenter());
        let mut q = OutputQueue::new(&cfg).unwrap();
        for i in 0..100u64 {
            q.offer(t(i * 100), pkt(1460));
            let p = q.pop(t(i * 100 + 1)).unwrap(); // 1 us sojourn
            assert!(!p.ecn.is_ce());
        }
        assert_eq!(q.counters().marked, 0);
    }

    #[test]
    fn head_sojourn_tracks_waiting_time() {
        let mut q = OutputQueue::new(&QueueConfig::host_nic()).unwrap();
        assert_eq!(q.head_sojourn(t(5)), None);
        q.offer(t(5), pkt(100));
        assert_eq!(q.head_sojourn(t(9)), Some(SimDuration::from_micros(4)));
    }

    #[test]
    fn dt_dctcp_queue_end_to_end_hysteresis() {
        let cfg = QueueConfig::switch(
            Capacity::Packets(1000),
            MarkingScheme::dt_dctcp_packets(3, 6),
        );
        let mut q = OutputQueue::new(&cfg).unwrap();
        // Fill to 8 packets: arrivals seeing occupancy >= 3 get marked.
        for _ in 0..8 {
            q.offer(t(0), pkt(100));
        }
        assert_eq!(q.counters().marked, 5);
        // Drain to 5 (< K2 = 6): crossing disarms.
        q.pop(t(1));
        q.pop(t(1));
        q.pop(t(1));
        // Arrival at occupancy 5 (>= K1) on the falling phase: unmarked.
        q.offer(t(2), pkt(100));
        assert_eq!(q.counters().marked, 5);
    }
}
