//! Output queues with pluggable AQM and exact occupancy statistics.

use std::collections::VecDeque;

use dctcp_core::{
    Codel, CodelParams, EnqueueDecision, MarkingPolicy, MarkingScheme, QueueSnapshot,
};
use dctcp_rng::SplitMix64;
use dctcp_stats::{TimeSeries, TimeWeighted, TimeWeightedSummary};
use dctcp_trace::{DropReason, TraceKind, TraceScope, Tracer};

use crate::{Ecn, Packet, SimDuration, SimError, SimTime};

/// Buffer size limit of an output queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Capacity {
    /// No limit (host NIC queues, which are paced by the transport
    /// window).
    Unbounded,
    /// At most this many packets, counting queued but not in-service
    /// packets.
    Packets(u32),
    /// At most this many queued bytes (wire bytes).
    Bytes(u64),
}

impl Capacity {
    fn admits(&self, len_bytes: u64, len_pkts: u32, arriving: u32) -> bool {
        match *self {
            Capacity::Unbounded => true,
            Capacity::Packets(n) => len_pkts < n,
            Capacity::Bytes(b) => len_bytes + arriving as u64 <= b,
        }
    }
}

/// Random-loss fault injection for a queue, applied to every arriving
/// packet before the marking policy sees it. Deterministic per `seed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// Independent (memoryless) loss: each arrival is dropped with
    /// probability `rate`.
    Bernoulli {
        /// Drop probability in `[0, 1]`.
        rate: f64,
        /// RNG seed (SplitMix64).
        seed: u64,
    },
    /// Gilbert–Elliott bursty loss: a two-state Markov chain stepped per
    /// arrival, with a per-state drop probability. Models correlated loss
    /// bursts (flaky optics, a congested middlebox) that memoryless loss
    /// cannot.
    GilbertElliott {
        /// Per-arrival probability of moving good → bad.
        p_gb: f64,
        /// Per-arrival probability of moving bad → good.
        p_bg: f64,
        /// Drop probability while in the good state.
        loss_good: f64,
        /// Drop probability while in the bad state.
        loss_bad: f64,
        /// RNG seed (SplitMix64).
        seed: u64,
    },
}

impl LossModel {
    /// Checks all probabilities are in `[0, 1]` and the GE chain can
    /// leave both states.
    pub fn validate(&self) -> Result<(), SimError> {
        let unit = |name: &str, p: f64| -> Result<(), SimError> {
            if (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(SimError::InvalidConfig(format!(
                    "{name} {p} outside [0, 1]"
                )))
            }
        };
        match *self {
            LossModel::Bernoulli { rate, .. } => unit("loss rate", rate),
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
                ..
            } => {
                unit("p_gb", p_gb)?;
                unit("p_bg", p_bg)?;
                unit("loss_good", loss_good)?;
                unit("loss_bad", loss_bad)?;
                if p_gb + p_bg <= 0.0 {
                    return Err(SimError::InvalidConfig(
                        "gilbert-elliott chain is frozen: p_gb + p_bg must be > 0".into(),
                    ));
                }
                Ok(())
            }
        }
    }

    /// The long-run (stationary) drop probability of this model.
    pub fn stationary_rate(&self) -> f64 {
        match *self {
            LossModel::Bernoulli { rate, .. } => rate,
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
                ..
            } => (p_bg * loss_good + p_gb * loss_bad) / (p_gb + p_bg),
        }
    }

    fn seed(&self) -> u64 {
        match *self {
            LossModel::Bernoulli { seed, .. } | LossModel::GilbertElliott { seed, .. } => seed,
        }
    }
}

/// Bounded packet reordering fault injection: with probability `prob`,
/// an accepted arrival is displaced up to `depth` positions ahead of the
/// packets already queued, so it departs before them. Deterministic per
/// `seed`; displacement is bounded, so reordering never starves a packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReorderModel {
    /// Maximum number of positions an arrival may jump ahead (≥ 1).
    pub depth: u32,
    /// Probability an accepted arrival is displaced.
    pub prob: f64,
    /// RNG seed (SplitMix64).
    pub seed: u64,
}

impl ReorderModel {
    /// Checks `prob` is a probability and `depth` is non-zero.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(0.0..=1.0).contains(&self.prob) {
            return Err(SimError::InvalidConfig(format!(
                "reorder probability {} outside [0, 1]",
                self.prob
            )));
        }
        if self.depth == 0 {
            return Err(SimError::InvalidConfig(
                "reorder depth must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Configuration of one output queue (one direction of one link).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueConfig {
    /// Buffer limit.
    pub capacity: Capacity,
    /// Marking scheme (built into live policy state per queue).
    pub scheme: MarkingScheme,
    /// Record a queue-length trace, at most one point per this interval.
    /// `None` disables tracing.
    pub trace_interval: Option<SimDuration>,
    /// Optional random-loss fault injection.
    pub loss: Option<LossModel>,
    /// Optional bounded-reordering fault injection.
    pub reorder: Option<ReorderModel>,
}

impl QueueConfig {
    /// An unbounded FIFO without marking — the default for host NIC
    /// queues.
    pub fn host_nic() -> Self {
        QueueConfig {
            capacity: Capacity::Unbounded,
            scheme: MarkingScheme::DropTail,
            trace_interval: None,
            loss: None,
            reorder: None,
        }
    }

    /// A bounded switch queue with the given marking scheme.
    pub fn switch(capacity: Capacity, scheme: MarkingScheme) -> Self {
        QueueConfig {
            capacity,
            scheme,
            trace_interval: None,
            loss: None,
            reorder: None,
        }
    }

    /// Enables queue-length tracing with the given minimum sample
    /// spacing.
    pub fn with_trace(mut self, interval: SimDuration) -> Self {
        self.trace_interval = Some(interval);
        self
    }

    /// Enables independent (Bernoulli) random-loss fault injection on
    /// this queue.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `rate` is outside `[0, 1]`.
    pub fn with_loss(self, rate: f64, seed: u64) -> Result<Self, SimError> {
        self.with_loss_model(LossModel::Bernoulli { rate, seed })
    }

    /// Enables Gilbert–Elliott bursty-loss fault injection on this queue.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any probability is outside
    /// `[0, 1]` or the chain cannot change state.
    pub fn with_gilbert_elliott(
        self,
        p_gb: f64,
        p_bg: f64,
        loss_good: f64,
        loss_bad: f64,
        seed: u64,
    ) -> Result<Self, SimError> {
        self.with_loss_model(LossModel::GilbertElliott {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
            seed,
        })
    }

    /// Enables an explicit loss model on this queue.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the model's parameters are
    /// invalid.
    pub fn with_loss_model(mut self, model: LossModel) -> Result<Self, SimError> {
        model.validate()?;
        self.loss = Some(model);
        Ok(self)
    }

    /// Enables bounded packet reordering on this queue.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `prob` is outside `[0, 1]`
    /// or `depth` is zero.
    pub fn with_reorder(mut self, depth: u32, prob: f64, seed: u64) -> Result<Self, SimError> {
        let model = ReorderModel { depth, prob, seed };
        model.validate()?;
        self.reorder = Some(model);
        Ok(self)
    }
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self::host_nic()
    }
}

/// Event counters of a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueCounters {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets handed to the transmitter.
    pub dequeued: u64,
    /// Packets dropped by the buffer limit.
    pub dropped_overflow: u64,
    /// Packets dropped by the AQM policy (RED drop mode).
    pub dropped_aqm: u64,
    /// Packets dropped by fault injection ([`LossModel`]).
    pub dropped_random: u64,
    /// Packets marked CE by the policy.
    pub marked: u64,
    /// CE marks stripped by ECN bleaching (see
    /// [`OutputQueue::set_bleach`]).
    pub bleached: u64,
}

impl QueueCounters {
    /// Total packets dropped for any reason.
    pub fn dropped(&self) -> u64 {
        self.dropped_overflow + self.dropped_aqm + self.dropped_random
    }
}

/// Occupancy summary and counters of one queue over an observation
/// window.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueReport {
    /// Event counters since the last stats reset.
    pub counters: QueueCounters,
    /// Time-weighted occupancy in packets.
    pub occupancy_pkts: TimeWeightedSummary,
    /// Time-weighted occupancy in bytes.
    pub occupancy_bytes: TimeWeightedSummary,
    /// Queue-length trace in packets, if tracing was enabled.
    pub trace: Option<TimeSeries>,
}

/// What happened to an offered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// Accepted (possibly CE-marked).
    Enqueued,
    /// Rejected by the AQM policy.
    DroppedAqm,
    /// Rejected by the buffer limit.
    DroppedOverflow,
    /// Dropped by fault injection.
    DroppedRandom,
}

/// A FIFO output queue with a marking policy, a buffer limit, and exact
/// time-weighted occupancy statistics.
///
/// Occupancy excludes the packet currently being serialized (it is popped
/// at transmission start), matching ns-2's queue accounting that the
/// paper's `K = 40 packets` refers to.
#[derive(Debug)]
pub struct OutputQueue {
    /// Queued packets, struct-of-arrays with `enq_at`: the hot path
    /// (offer/pop) only streams `Packet`s, while the enqueue instants —
    /// touched once per packet for sojourn-based AQM — live in their own
    /// dense ring. Both rings always have identical length and order.
    pkts: VecDeque<Packet>,
    /// Enqueue instant of each queued packet, parallel to `pkts`.
    enq_at: VecDeque<SimTime>,
    len_bytes: u64,
    capacity: Capacity,
    policy: Box<dyn MarkingPolicy>,
    /// True for [`MarkingScheme::DropTail`], whose policy is a stateless
    /// accept-all: the hot path skips the virtual policy calls entirely.
    policy_is_droptail: bool,
    counters: QueueCounters,
    tw_pkts: TimeWeighted,
    tw_bytes: TimeWeighted,
    trace: Option<TimeSeries>,
    trace_interval: Option<SimDuration>,
    last_trace_at: Option<SimTime>,
    loss: Option<LossModel>,
    loss_rng: SplitMix64,
    /// Gilbert–Elliott chain state: `true` while in the bad state.
    loss_bad: bool,
    reorder: Option<ReorderModel>,
    reorder_rng: SplitMix64,
    /// When set, CE marks are stripped from departing packets (an
    /// ECN-bleaching middlebox on the path).
    bleach: bool,
    codel: Option<Codel>,
    codel_params: Option<CodelParams>,
    /// The marking scheme this queue was built from (kept for trace
    /// metadata — the live policy is `policy`).
    scheme: MarkingScheme,
    /// Stable id used in trace events (`link_index * 2 + end`), assigned
    /// by the simulator; 0 for standalone queues.
    trace_id: u32,
}

impl OutputQueue {
    /// Builds a queue from its configuration.
    ///
    /// # Errors
    ///
    /// Returns the marking scheme's [`dctcp_core::ParamError`] if its
    /// parameters are invalid.
    pub fn new(config: &QueueConfig) -> Result<Self, dctcp_core::ParamError> {
        let codel = match config.scheme.codel_params() {
            Some(p) => Some(Codel::new(p)?),
            None => None,
        };
        // Pre-size the buffer to the configured limit (or a generous
        // default for unbounded host queues) so steady-state traffic
        // never reallocates mid-run.
        let presize = match config.capacity {
            Capacity::Packets(n) => n as usize + 1,
            // Worst case is minimum-size (header-only) packets.
            Capacity::Bytes(b) => (b / 40 + 1).min(4096) as usize,
            Capacity::Unbounded => 256,
        };
        Ok(OutputQueue {
            pkts: VecDeque::with_capacity(presize),
            enq_at: VecDeque::with_capacity(presize),
            len_bytes: 0,
            capacity: config.capacity,
            policy: config.scheme.build()?,
            policy_is_droptail: config.scheme == MarkingScheme::DropTail,
            counters: QueueCounters::default(),
            tw_pkts: TimeWeighted::new(0.0),
            tw_bytes: TimeWeighted::new(0.0),
            trace: config.trace_interval.map(|_| TimeSeries::new()),
            trace_interval: config.trace_interval,
            last_trace_at: None,
            loss: config.loss,
            loss_rng: SplitMix64::new(config.loss.map_or(1, |l| l.seed().max(1))),
            loss_bad: false,
            reorder: config.reorder,
            reorder_rng: SplitMix64::new(config.reorder.map_or(1, |r| r.seed.max(1))),
            bleach: false,
            codel,
            codel_params: config.scheme.codel_params(),
            scheme: config.scheme,
            trace_id: 0,
        })
    }

    /// The marking scheme this queue was built from.
    pub fn scheme(&self) -> MarkingScheme {
        self.scheme
    }

    /// Reconstructs the configuration this queue was built from, so an
    /// identical pristine queue can be created (sharded runs replicate
    /// the topology per shard).
    pub(crate) fn config(&self) -> QueueConfig {
        QueueConfig {
            capacity: self.capacity,
            scheme: self.scheme,
            trace_interval: self.trace_interval,
            loss: self.loss,
            reorder: self.reorder,
        }
    }

    /// The buffer limit.
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// The id this queue stamps on trace events.
    pub fn trace_id(&self) -> u32 {
        self.trace_id
    }

    pub(crate) fn set_trace_id(&mut self, id: u32) {
        self.trace_id = id;
    }

    /// Current occupancy in packets (excluding the in-service packet).
    pub fn len_pkts(&self) -> u32 {
        self.pkts.len() as u32
    }

    /// Current occupancy in wire bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len_bytes
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.pkts.is_empty()
    }

    /// Offers an arriving packet to the queue at time `now`.
    pub fn offer(&mut self, now: SimTime, pkt: Packet) -> Offer {
        self.offer_traced(now, pkt, &mut Tracer::disabled())
    }

    /// [`OutputQueue::offer`] with trace recording: emits a
    /// [`TraceKind::MarkDecision`] for every policy consultation
    /// (including packets later lost to overflow) and an
    /// enqueue/drop event for the packet's fate.
    pub fn offer_traced(&mut self, now: SimTime, mut pkt: Packet, tracer: &mut Tracer) -> Offer {
        let t = now.as_nanos();
        if self.loss.is_some() && self.draw_loss() {
            self.counters.dropped_random += 1;
            tracer.record_with(TraceScope::QUEUE, t, || TraceKind::Drop {
                queue: self.trace_id,
                flow: pkt.flow.0,
                pkt_bytes: pkt.wire_bytes(),
                reason: DropReason::Random,
                depth_pkts: self.len_pkts(),
                depth_bytes: self.len_bytes,
            });
            return Offer::DroppedRandom;
        }
        let consulted = !self.policy_is_droptail;
        let before = QueueSnapshot::new(self.len_bytes, self.len_pkts());
        let decision = if consulted {
            self.policy.on_enqueue(&before)
        } else {
            EnqueueDecision::accept()
        };
        match decision {
            EnqueueDecision::Drop => {
                self.counters.dropped_aqm += 1;
                tracer.record_with(TraceScope::QUEUE, t, || TraceKind::MarkDecision {
                    queue: self.trace_id,
                    flow: pkt.flow.0,
                    pre_pkts: before.len_pkts,
                    pre_bytes: before.len_bytes,
                    mark: false,
                    ce_applied: false,
                });
                tracer.record_with(TraceScope::QUEUE, t, || TraceKind::Drop {
                    queue: self.trace_id,
                    flow: pkt.flow.0,
                    pkt_bytes: pkt.wire_bytes(),
                    reason: DropReason::AqmArrival,
                    depth_pkts: self.len_pkts(),
                    depth_bytes: self.len_bytes,
                });
                Offer::DroppedAqm
            }
            EnqueueDecision::Enqueue { mark } => {
                if !self
                    .capacity
                    .admits(self.len_bytes, self.len_pkts(), pkt.wire_bytes())
                {
                    self.counters.dropped_overflow += 1;
                    if consulted {
                        tracer.record_with(TraceScope::QUEUE, t, || TraceKind::MarkDecision {
                            queue: self.trace_id,
                            flow: pkt.flow.0,
                            pre_pkts: before.len_pkts,
                            pre_bytes: before.len_bytes,
                            mark,
                            ce_applied: false,
                        });
                    }
                    tracer.record_with(TraceScope::QUEUE, t, || TraceKind::Drop {
                        queue: self.trace_id,
                        flow: pkt.flow.0,
                        pkt_bytes: pkt.wire_bytes(),
                        reason: DropReason::Overflow,
                        depth_pkts: self.len_pkts(),
                        depth_bytes: self.len_bytes,
                    });
                    return Offer::DroppedOverflow;
                }
                let ce_applied = mark && pkt.ecn.is_capable();
                if ce_applied {
                    pkt.ecn = Ecn::Ce;
                    self.counters.marked += 1;
                }
                if consulted {
                    tracer.record_with(TraceScope::QUEUE, t, || TraceKind::MarkDecision {
                        queue: self.trace_id,
                        flow: pkt.flow.0,
                        pre_pkts: before.len_pkts,
                        pre_bytes: before.len_bytes,
                        mark,
                        ce_applied,
                    });
                }
                self.len_bytes += pkt.wire_bytes() as u64;
                let (flow, wire) = (pkt.flow.0, pkt.wire_bytes());
                self.pkts.push_back(pkt);
                self.enq_at.push_back(now);
                self.counters.enqueued += 1;
                self.maybe_displace();
                self.record_occupancy(now);
                tracer.record_with(TraceScope::QUEUE, t, || TraceKind::Enqueue {
                    queue: self.trace_id,
                    flow,
                    pkt_bytes: wire,
                    depth_pkts: self.len_pkts(),
                    depth_bytes: self.len_bytes,
                });
                Offer::Enqueued
            }
        }
    }

    /// Removes the head packet for transmission at time `now`.
    ///
    /// Under CoDel drop mode, head packets the control law condemns are
    /// dropped here and the next survivor returned.
    pub fn pop(&mut self, now: SimTime) -> Option<Packet> {
        self.pop_traced(now, &mut Tracer::disabled())
    }

    /// [`OutputQueue::pop`] with trace recording: emits a
    /// [`TraceKind::Dequeue`] for the departing packet and a
    /// [`TraceKind::Drop`] for every CoDel head drop along the way.
    pub fn pop_traced(&mut self, now: SimTime, tracer: &mut Tracer) -> Option<Packet> {
        let t = now.as_nanos();
        loop {
            let mut pkt = self.pkts.pop_front()?;
            // Rings move in lockstep; the fallback never fires.
            let enq = self.enq_at.pop_front().unwrap_or(now);
            self.len_bytes -= pkt.wire_bytes() as u64;
            self.counters.dequeued += 1;
            if !self.policy_is_droptail {
                let after = QueueSnapshot::new(self.len_bytes, self.len_pkts());
                self.policy.on_dequeue(&after);
            }
            self.record_occupancy(now);

            let after = QueueSnapshot::new(self.len_bytes, self.len_pkts());
            if let (Some(codel), Some(params)) = (self.codel.as_mut(), self.codel_params) {
                let sojourn = now.saturating_duration_since(enq).as_nanos();
                if codel.on_dequeue_sojourn(now.as_nanos(), sojourn, &after) {
                    if params.ecn {
                        if pkt.ecn.is_capable() {
                            pkt.ecn = Ecn::Ce;
                            self.counters.marked += 1;
                        }
                    } else {
                        self.counters.dropped_aqm += 1;
                        self.counters.dequeued -= 1; // it never reached the wire
                        tracer.record_with(TraceScope::QUEUE, t, || TraceKind::Drop {
                            queue: self.trace_id,
                            flow: pkt.flow.0,
                            pkt_bytes: pkt.wire_bytes(),
                            reason: DropReason::AqmHead,
                            depth_pkts: self.len_pkts(),
                            depth_bytes: self.len_bytes,
                        });
                        continue;
                    }
                }
            }
            if self.bleach && pkt.ecn.is_ce() {
                pkt.ecn = Ecn::Ect;
                self.counters.bleached += 1;
            }
            tracer.record_with(TraceScope::QUEUE, t, || TraceKind::Dequeue {
                queue: self.trace_id,
                flow: pkt.flow.0,
                pkt_bytes: pkt.wire_bytes(),
                ce: pkt.ecn.is_ce(),
                depth_pkts: self.len_pkts(),
                depth_bytes: self.len_bytes,
            });
            return Some(pkt);
        }
    }

    /// Turns ECN bleaching on or off: while on, any CE mark is stripped
    /// from departing packets (downgraded back to ECT), emulating a
    /// broken middlebox that erases congestion signals mid-path.
    pub fn set_bleach(&mut self, on: bool) {
        self.bleach = on;
    }

    /// Whether ECN bleaching is currently active on this queue.
    pub fn is_bleaching(&self) -> bool {
        self.bleach
    }

    /// Restarts the statistics window at `now` (used to discard warm-up
    /// transients); queue contents and policy state are preserved.
    pub fn reset_stats(&mut self, now: SimTime) {
        self.counters = QueueCounters::default();
        let t = now.as_secs_f64();
        self.tw_pkts = TimeWeighted::with_initial(t, self.len_pkts() as f64);
        self.tw_bytes = TimeWeighted::with_initial(t, self.len_bytes as f64);
        if self.trace.is_some() {
            self.trace = Some(TimeSeries::new());
            self.last_trace_at = None;
        }
    }

    /// Current sojourn time of the head packet, if any (diagnostics).
    pub fn head_sojourn(&self, now: SimTime) -> Option<SimDuration> {
        self.enq_at
            .front()
            .map(|&t| now.saturating_duration_since(t))
    }

    /// Snapshot of counters and occupancy statistics as of `now`.
    pub fn report(&self, now: SimTime) -> QueueReport {
        let t = now.as_secs_f64();
        QueueReport {
            counters: self.counters,
            occupancy_pkts: self.tw_pkts.finish(t),
            occupancy_bytes: self.tw_bytes.finish(t),
            trace: self.trace.clone(),
        }
    }

    /// Current counters (cheap accessor for in-flight checks).
    pub fn counters(&self) -> QueueCounters {
        self.counters
    }

    /// Advances the loss model one arrival and decides whether to drop.
    fn draw_loss(&mut self) -> bool {
        match self.loss {
            None => false,
            Some(LossModel::Bernoulli { rate, .. }) => self.loss_rng.next_f64() < rate,
            Some(LossModel::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
                ..
            }) => {
                // Step the chain first, then draw against the new state,
                // so a burst can begin on the arrival that triggers it.
                let flip = self.loss_rng.next_f64();
                if self.loss_bad {
                    if flip < p_bg {
                        self.loss_bad = false;
                    }
                } else if flip < p_gb {
                    self.loss_bad = true;
                }
                let p = if self.loss_bad { loss_bad } else { loss_good };
                self.loss_rng.next_f64() < p
            }
        }
    }

    /// Possibly displaces the just-enqueued tail packet forward by a
    /// bounded number of positions (reordering fault injection).
    fn maybe_displace(&mut self) {
        let Some(model) = self.reorder else { return };
        // Need at least one packet ahead of the new tail to jump over.
        if self.pkts.len() < 2 || self.reorder_rng.next_f64() >= model.prob {
            return;
        }
        let max_jump = (model.depth as usize).min(self.pkts.len() - 1);
        let jump = 1 + (self.reorder_rng.next_u64() as usize) % max_jump;
        let from = self.pkts.len() - 1;
        let to = from - jump;
        // The packet and its enqueue instant move together, so sojourn
        // accounting stays attached to the right packet.
        let (Some(pkt), Some(enq)) = (self.pkts.remove(from), self.enq_at.remove(from)) else {
            return;
        };
        self.pkts.insert(to, pkt);
        self.enq_at.insert(to, enq);
    }

    fn record_occupancy(&mut self, now: SimTime) {
        let t = now.as_secs_f64();
        self.tw_pkts.update(t, self.len_pkts() as f64);
        self.tw_bytes.update(t, self.len_bytes as f64);
        if let (Some(trace), Some(interval)) = (&mut self.trace, self.trace_interval) {
            let due = match self.last_trace_at {
                None => true,
                Some(last) => now.saturating_duration_since(last) >= interval,
            };
            if due {
                trace.push(t, self.pkts.len() as f64);
                self.last_trace_at = Some(now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlowId, NodeId};
    use dctcp_core::QueueLevel;

    fn pkt(payload: u32) -> Packet {
        let mut p = Packet::data(
            FlowId(0),
            NodeId::from_index(0),
            NodeId::from_index(1),
            0,
            payload,
        );
        p.ecn = Ecn::Ect;
        p
    }

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = OutputQueue::new(&QueueConfig::host_nic()).unwrap();
        for i in 0..5u32 {
            let mut p = pkt(100);
            p.seq = i as u64;
            assert_eq!(q.offer(t(i as u64), p), Offer::Enqueued);
        }
        for i in 0..5u64 {
            assert_eq!(q.pop(t(10)).unwrap().seq, i);
        }
        assert!(q.pop(t(11)).is_none());
    }

    #[test]
    fn byte_accounting_includes_headers() {
        let mut q = OutputQueue::new(&QueueConfig::host_nic()).unwrap();
        q.offer(t(0), pkt(1460));
        assert_eq!(q.len_bytes(), 1500);
        assert_eq!(q.len_pkts(), 1);
        q.pop(t(1));
        assert_eq!(q.len_bytes(), 0);
    }

    #[test]
    fn packet_capacity_overflows() {
        let cfg = QueueConfig::switch(Capacity::Packets(2), MarkingScheme::DropTail);
        let mut q = OutputQueue::new(&cfg).unwrap();
        assert_eq!(q.offer(t(0), pkt(100)), Offer::Enqueued);
        assert_eq!(q.offer(t(0), pkt(100)), Offer::Enqueued);
        assert_eq!(q.offer(t(0), pkt(100)), Offer::DroppedOverflow);
        assert_eq!(q.counters().dropped_overflow, 1);
        assert_eq!(q.counters().enqueued, 2);
    }

    #[test]
    fn byte_capacity_overflows() {
        let cfg = QueueConfig::switch(Capacity::Bytes(3000), MarkingScheme::DropTail);
        let mut q = OutputQueue::new(&cfg).unwrap();
        assert_eq!(q.offer(t(0), pkt(1460)), Offer::Enqueued); // 1500
        assert_eq!(q.offer(t(0), pkt(1460)), Offer::Enqueued); // 3000
        assert_eq!(q.offer(t(0), pkt(1460)), Offer::DroppedOverflow);
    }

    #[test]
    fn dctcp_marking_applies_ce_when_capable() {
        let cfg = QueueConfig::switch(
            Capacity::Packets(100),
            MarkingScheme::Dctcp {
                k: QueueLevel::Packets(2),
            },
        );
        let mut q = OutputQueue::new(&cfg).unwrap();
        q.offer(t(0), pkt(100));
        q.offer(t(0), pkt(100));
        // Third arrival sees occupancy 2 >= K.
        q.offer(t(0), pkt(100));
        assert_eq!(q.counters().marked, 1);
        q.pop(t(1));
        q.pop(t(1));
        let third = q.pop(t(1)).unwrap();
        assert!(third.ecn.is_ce());
    }

    #[test]
    fn marking_skips_non_ect_packets() {
        let cfg = QueueConfig::switch(
            Capacity::Packets(100),
            MarkingScheme::Dctcp {
                k: QueueLevel::Packets(0),
            },
        );
        let mut q = OutputQueue::new(&cfg).unwrap();
        let mut p = pkt(100);
        p.ecn = Ecn::NotEct;
        q.offer(t(0), p);
        assert_eq!(q.counters().marked, 0);
        assert!(!q.pop(t(1)).unwrap().ecn.is_ce());
    }

    #[test]
    fn occupancy_statistics_are_time_weighted() {
        let mut q = OutputQueue::new(&QueueConfig::host_nic()).unwrap();
        // One packet resident from t=0 to t=1s, then empty until t=2s.
        q.offer(SimTime::ZERO, pkt(1460));
        q.pop(SimTime::from_nanos(1_000_000_000));
        let r = q.report(SimTime::from_nanos(2_000_000_000));
        assert!((r.occupancy_pkts.mean - 0.5).abs() < 1e-9);
        assert_eq!(r.occupancy_pkts.max, 1.0);
    }

    #[test]
    fn reset_stats_clears_counters_but_keeps_contents() {
        let mut q = OutputQueue::new(&QueueConfig::host_nic()).unwrap();
        q.offer(t(0), pkt(100));
        q.offer(t(1), pkt(100));
        q.reset_stats(t(2));
        assert_eq!(q.counters().enqueued, 0);
        assert_eq!(q.len_pkts(), 2);
        let r = q.report(t(4));
        // Occupancy over the fresh window is exactly 2 packets.
        assert!((r.occupancy_pkts.mean - 2.0).abs() < 1e-9);
    }

    #[test]
    fn trace_respects_sample_interval() {
        let cfg = QueueConfig::host_nic().with_trace(SimDuration::from_micros(10));
        let mut q = OutputQueue::new(&cfg).unwrap();
        for i in 0..100 {
            q.offer(t(i), pkt(100));
        }
        let r = q.report(t(100));
        let trace = r.trace.expect("tracing enabled");
        // 100 events over 100 us with >= 10 us spacing: at most 11 points.
        assert!(trace.len() <= 11, "trace too dense: {}", trace.len());
        assert!(trace.len() >= 9, "trace too sparse: {}", trace.len());
    }

    #[test]
    fn random_loss_drops_expected_fraction() {
        let cfg = QueueConfig::host_nic().with_loss(0.25, 42).unwrap();
        let mut q = OutputQueue::new(&cfg).unwrap();
        let mut dropped = 0;
        for i in 0..4000u64 {
            if q.offer(t(i), pkt(100)) == Offer::DroppedRandom {
                dropped += 1;
            } else {
                q.pop(t(i));
            }
        }
        let frac = dropped as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.03, "loss fraction {frac}");
        assert_eq!(q.counters().dropped_random, dropped);
        assert_eq!(q.counters().dropped(), dropped);
    }

    #[test]
    fn zero_loss_model_never_drops() {
        let cfg = QueueConfig::host_nic().with_loss(0.0, 7).unwrap();
        let mut q = OutputQueue::new(&cfg).unwrap();
        for i in 0..100u64 {
            assert_eq!(q.offer(t(i), pkt(100)), Offer::Enqueued);
        }
    }

    #[test]
    fn loss_rate_validated() {
        let err = QueueConfig::host_nic().with_loss(1.5, 1).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err:?}");
        assert!(err.to_string().contains("outside [0, 1]"));
    }

    #[test]
    fn gilbert_elliott_parameters_validated() {
        let base = QueueConfig::host_nic();
        assert!(base.with_gilbert_elliott(1.2, 0.5, 0.0, 1.0, 1).is_err());
        assert!(base.with_gilbert_elliott(0.1, 0.5, 0.0, -0.1, 1).is_err());
        // A frozen chain (both transition probabilities zero) is rejected.
        assert!(base.with_gilbert_elliott(0.0, 0.0, 0.0, 1.0, 1).is_err());
        assert!(base.with_gilbert_elliott(0.05, 0.4, 0.001, 0.6, 1).is_ok());
    }

    #[test]
    fn gilbert_elliott_matches_stationary_marginal() {
        // pi_bad = p_gb / (p_gb + p_bg) = 0.2; expected loss =
        // 0.8 * 0.01 + 0.2 * 0.5 = 0.108.
        let model = LossModel::GilbertElliott {
            p_gb: 0.05,
            p_bg: 0.20,
            loss_good: 0.01,
            loss_bad: 0.50,
            seed: 99,
        };
        let cfg = QueueConfig::host_nic().with_loss_model(model).unwrap();
        let mut q = OutputQueue::new(&cfg).unwrap();
        let n = 60_000u64;
        let mut dropped = 0u64;
        for i in 0..n {
            if q.offer(t(i), pkt(100)) == Offer::DroppedRandom {
                dropped += 1;
            } else {
                q.pop(t(i));
            }
        }
        let frac = dropped as f64 / n as f64;
        let expect = model.stationary_rate();
        assert!((expect - 0.108).abs() < 1e-12);
        assert!(
            (frac - expect).abs() < 0.01,
            "empirical loss {frac} vs stationary {expect}"
        );
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Compare run-length structure: with a sticky bad state, losses
        // cluster far more than Bernoulli at the same marginal rate.
        let ge = QueueConfig::host_nic()
            .with_gilbert_elliott(0.02, 0.2, 0.0, 1.0, 7)
            .unwrap();
        let marginal = ge.loss.unwrap().stationary_rate();
        let bern = QueueConfig::host_nic().with_loss(marginal, 7).unwrap();
        let run_lengths = |cfg: &QueueConfig| {
            let mut q = OutputQueue::new(cfg).unwrap();
            let (mut runs, mut cur, mut losses) = (0u64, 0u64, 0u64);
            for i in 0..40_000u64 {
                if q.offer(t(i), pkt(100)) == Offer::DroppedRandom {
                    cur += 1;
                    losses += 1;
                } else {
                    q.pop(t(i));
                    if cur > 0 {
                        runs += 1;
                        cur = 0;
                    }
                }
            }
            if cur > 0 {
                runs += 1;
            }
            losses as f64 / runs.max(1) as f64
        };
        let ge_mean_run = run_lengths(&ge);
        let bern_mean_run = run_lengths(&bern);
        assert!(
            ge_mean_run > 2.0 * bern_mean_run,
            "GE mean burst {ge_mean_run} not bursty vs Bernoulli {bern_mean_run}"
        );
    }

    #[test]
    fn bleaching_strips_ce_marks_and_counts_them() {
        let cfg = QueueConfig::switch(
            Capacity::Packets(100),
            MarkingScheme::Dctcp {
                k: QueueLevel::Packets(0),
            },
        );
        let mut q = OutputQueue::new(&cfg).unwrap();
        q.set_bleach(true);
        assert!(q.is_bleaching());
        for _ in 0..5 {
            q.offer(t(0), pkt(100));
        }
        assert_eq!(q.counters().marked, 5);
        for _ in 0..5 {
            let p = q.pop(t(1)).unwrap();
            assert_eq!(p.ecn, Ecn::Ect, "CE mark survived bleaching");
        }
        assert_eq!(q.counters().bleached, 5);
        // Turned off, marks pass through again.
        q.set_bleach(false);
        q.offer(t(2), pkt(100));
        assert!(q.pop(t(3)).unwrap().ecn.is_ce());
        assert_eq!(q.counters().bleached, 5);
    }

    #[test]
    fn reordering_is_bounded_and_conserves_packets() {
        let cfg = QueueConfig::host_nic().with_reorder(3, 0.5, 11).unwrap();
        let mut q = OutputQueue::new(&cfg).unwrap();
        let n = 500u64;
        for i in 0..n {
            let mut p = pkt(100);
            p.seq = i;
            assert_eq!(q.offer(t(i), p), Offer::Enqueued);
        }
        let mut seqs = Vec::new();
        while let Some(p) = q.pop(t(n)) {
            seqs.push(p.seq);
        }
        assert_eq!(seqs.len(), n as usize, "packets lost by reordering");
        let mut inversions = 0u64;
        for w in seqs.windows(2) {
            if w[0] > w[1] {
                inversions += 1;
            }
        }
        assert!(inversions > 0, "reordering never displaced a packet");
        // Displacement stays bounded: a packet jumps forward at most
        // `depth` slots at enqueue, and can only be overtaken while it
        // sits within `depth` of the tail, so drift stays small (the
        // seed is fixed, making this deterministic).
        let max_drift = seqs
            .iter()
            .enumerate()
            .map(|(idx, &s)| (s as i64 - idx as i64).abs())
            .max()
            .unwrap();
        assert!(max_drift <= 20, "packet displaced {max_drift} slots");
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn reorder_parameters_validated() {
        assert!(QueueConfig::host_nic().with_reorder(0, 0.5, 1).is_err());
        assert!(QueueConfig::host_nic().with_reorder(3, 1.5, 1).is_err());
        assert!(QueueConfig::host_nic().with_reorder(3, 0.0, 1).is_ok());
    }

    #[test]
    fn codel_marks_after_sustained_sojourn() {
        let cfg = QueueConfig::switch(Capacity::Packets(1000), MarkingScheme::codel_datacenter());
        let mut q = OutputQueue::new(&cfg).unwrap();
        // Fill a standing queue, then dequeue slowly so sojourn stays
        // far above the 50 us target for more than one 1 ms interval.
        for i in 0..200u64 {
            q.offer(t(i), pkt(1460));
        }
        let mut marked = 0;
        for i in 0..200u64 {
            let now = t(1_000 + i * 100); // 100 us per departure
            if let Some(p) = q.pop(now) {
                if p.ecn.is_ce() {
                    marked += 1;
                }
            }
            q.offer(now, pkt(1460)); // keep the queue standing
        }
        assert!(marked > 0, "CoDel never marked under a standing queue");
        assert!(q.counters().marked > 0);
    }

    #[test]
    fn codel_idle_queue_never_marks() {
        let cfg = QueueConfig::switch(Capacity::Packets(1000), MarkingScheme::codel_datacenter());
        let mut q = OutputQueue::new(&cfg).unwrap();
        for i in 0..100u64 {
            q.offer(t(i * 100), pkt(1460));
            let p = q.pop(t(i * 100 + 1)).unwrap(); // 1 us sojourn
            assert!(!p.ecn.is_ce());
        }
        assert_eq!(q.counters().marked, 0);
    }

    #[test]
    fn head_sojourn_tracks_waiting_time() {
        let mut q = OutputQueue::new(&QueueConfig::host_nic()).unwrap();
        assert_eq!(q.head_sojourn(t(5)), None);
        q.offer(t(5), pkt(100));
        assert_eq!(q.head_sojourn(t(9)), Some(SimDuration::from_micros(4)));
    }

    #[test]
    fn dt_dctcp_queue_end_to_end_hysteresis() {
        let cfg = QueueConfig::switch(
            Capacity::Packets(1000),
            MarkingScheme::dt_dctcp_packets(3, 6),
        );
        let mut q = OutputQueue::new(&cfg).unwrap();
        // Fill to 8 packets: arrivals seeing occupancy >= 3 get marked.
        for _ in 0..8 {
            q.offer(t(0), pkt(100));
        }
        assert_eq!(q.counters().marked, 5);
        // Drain to 5 (< K2 = 6): crossing disarms.
        q.pop(t(1));
        q.pop(t(1));
        q.pop(t(1));
        // Arrival at occupancy 5 (>= K1) on the falling phase: unmarked.
        q.offer(t(2), pkt(100));
        assert_eq!(q.counters().marked, 5);
    }
}
