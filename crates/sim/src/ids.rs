//! Identifier newtypes for simulator entities.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// The raw index value.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a raw index. Intended for tests and
            /// tools that re-create ids from reports; passing an index
            /// that was never issued by the simulator yields an id that
            /// fails lookups.
            pub fn from_index(i: usize) -> Self {
                $name(i as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a node (host or switch) in the topology.
    NodeId,
    "n"
);
id_type!(
    /// Identifies a full-duplex link in the topology.
    LinkId,
    "l"
);

/// Identifies one end-to-end transport flow. Allocated by the experiment
/// harness; the simulator only uses it for dispatching packets to
/// connections.
///
/// Harnesses that recycle per-flow state (see
/// [`FlowTable`](crate::FlowTable)) pack a *generation tag* into the id
/// with [`FlowId::tagged`], so a packet or timer from a previous
/// incarnation of a recycled slot fails the generation check and is
/// safely ignored instead of corrupting the new flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// Bit width of the generation field in a tagged [`FlowId`].
const GEN_BITS: u32 = 24;
/// Bit width of the origin (source-host) field in a tagged [`FlowId`].
const ORIGIN_BITS: u32 = 16;
/// Bit width of the slot field in a tagged [`FlowId`].
const SLOT_BITS: u32 = 24;

impl FlowId {
    /// Maximum generation value representable in a tagged id; recycling
    /// past it wraps (equality checks stay deterministic, and 16 M
    /// incarnations per slot is far beyond any committed run).
    pub const MAX_GENERATION: u32 = (1 << GEN_BITS) - 1;
    /// Maximum origin (source host) index in a tagged id.
    pub const MAX_ORIGIN: u32 = (1 << ORIGIN_BITS) - 1;
    /// Maximum slot index in a tagged id.
    pub const MAX_SLOT: u32 = (1 << SLOT_BITS) - 1;

    /// Packs `[generation:24 | origin:16 | slot:24]` into a flow id.
    /// Each field is masked to its width; `origin` is the source host's
    /// unique index, `slot`/`generation` come from the host's
    /// [`FlowTable`](crate::FlowTable).
    pub fn tagged(generation: u32, origin: u32, slot: u32) -> FlowId {
        let g = (generation & Self::MAX_GENERATION) as u64;
        let o = (origin & Self::MAX_ORIGIN) as u64;
        let s = (slot & Self::MAX_SLOT) as u64;
        FlowId((g << (ORIGIN_BITS + SLOT_BITS)) | (o << SLOT_BITS) | s)
    }

    /// The generation field of a tagged id.
    pub fn generation(self) -> u32 {
        ((self.0 >> (ORIGIN_BITS + SLOT_BITS)) as u32) & Self::MAX_GENERATION
    }

    /// The origin (source host) field of a tagged id.
    pub fn origin(self) -> u32 {
        ((self.0 >> SLOT_BITS) as u32) & Self::MAX_ORIGIN
    }

    /// The slot field of a tagged id.
    pub fn slot(self) -> u32 {
        (self.0 as u32) & Self::MAX_SLOT
    }

    /// The id with the generation field cleared: a stable key for "this
    /// slot on this origin" across incarnations (receiver-side recycling
    /// keys on this).
    pub fn incarnation_key(self) -> u64 {
        self.0 & ((1u64 << (ORIGIN_BITS + SLOT_BITS)) - 1)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A handle to a pending timer, returned by
/// [`Context::set_timer`](crate::Context::set_timer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerToken(pub(crate) u64);

impl TimerToken {
    /// A token that never matches a scheduled timer; useful as an "unset"
    /// placeholder in agent state.
    pub const NONE: TimerToken = TimerToken(u64::MAX);

    /// Fabricates a token from a raw value. Intended for test harnesses
    /// (mock timer hosts) — tokens made this way are distinct from each
    /// other but never match a simulator-issued token.
    pub fn from_raw(raw: u64) -> TimerToken {
        TimerToken(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(0).to_string(), "l0");
        assert_eq!(FlowId(7).to_string(), "f7");
    }

    #[test]
    fn index_roundtrip() {
        let n = NodeId::from_index(5);
        assert_eq!(n.index(), 5);
    }

    #[test]
    fn tagged_flow_id_roundtrips() {
        let f = FlowId::tagged(3, 7, 42);
        assert_eq!(f.generation(), 3);
        assert_eq!(f.origin(), 7);
        assert_eq!(f.slot(), 42);
        // Same slot+origin, next generation: different id, same key.
        let g = FlowId::tagged(4, 7, 42);
        assert_ne!(f, g);
        assert_eq!(f.incarnation_key(), g.incarnation_key());
        // Different slot: different key.
        assert_ne!(
            f.incarnation_key(),
            FlowId::tagged(3, 7, 43).incarnation_key()
        );
    }

    #[test]
    fn tagged_flow_id_masks_at_field_limits() {
        let f = FlowId::tagged(FlowId::MAX_GENERATION, FlowId::MAX_ORIGIN, FlowId::MAX_SLOT);
        assert_eq!(f.generation(), FlowId::MAX_GENERATION);
        assert_eq!(f.origin(), FlowId::MAX_ORIGIN);
        assert_eq!(f.slot(), FlowId::MAX_SLOT);
        // Overflow wraps instead of bleeding into neighbouring fields.
        let w = FlowId::tagged(FlowId::MAX_GENERATION + 1, 5, 6);
        assert_eq!(w.generation(), 0);
        assert_eq!(w.origin(), 5);
        assert_eq!(w.slot(), 6);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(FlowId(1));
        s.insert(FlowId(2));
        assert!(s.contains(&FlowId(1)));
        assert!(FlowId(1) < FlowId(2));
    }
}
