//! Identifier newtypes for simulator entities.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// The raw index value.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a raw index. Intended for tests and
            /// tools that re-create ids from reports; passing an index
            /// that was never issued by the simulator yields an id that
            /// fails lookups.
            pub fn from_index(i: usize) -> Self {
                $name(i as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a node (host or switch) in the topology.
    NodeId,
    "n"
);
id_type!(
    /// Identifies a full-duplex link in the topology.
    LinkId,
    "l"
);

/// Identifies one end-to-end transport flow. Allocated by the experiment
/// harness; the simulator only uses it for dispatching packets to
/// connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A handle to a pending timer, returned by
/// [`Context::set_timer`](crate::Context::set_timer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerToken(pub(crate) u64);

impl TimerToken {
    /// A token that never matches a scheduled timer; useful as an "unset"
    /// placeholder in agent state.
    pub const NONE: TimerToken = TimerToken(u64::MAX);

    /// Fabricates a token from a raw value. Intended for test harnesses
    /// (mock timer hosts) — tokens made this way are distinct from each
    /// other but never match a simulator-issued token.
    pub fn from_raw(raw: u64) -> TimerToken {
        TimerToken(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(0).to_string(), "l0");
        assert_eq!(FlowId(7).to_string(), "f7");
    }

    #[test]
    fn index_roundtrip() {
        let n = NodeId::from_index(5);
        assert_eq!(n.index(), 5);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(FlowId(1));
        s.insert(FlowId(2));
        assert!(s.contains(&FlowId(1)));
        assert!(FlowId(1) < FlowId(2));
    }
}
