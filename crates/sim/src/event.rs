//! The event queue: a two-level bucketed calendar queue.
//!
//! The future-event list is the hottest structure in the engine — every
//! packet costs four to six schedule/pop round-trips — so it is built
//! for the event mix discrete-event network simulations actually
//! produce: almost all deadlines land within a few link round-trips of
//! the clock, with a thin tail of far-out timers (RTOs, flow starts,
//! fault plans).
//!
//! * **Level 0 — timer wheel.** A power-of-two array of buckets, each
//!   covering [`BUCKET_WIDTH_NS`] nanoseconds, spanning a sliding window
//!   of ~1 ms ahead of the cursor. Scheduling is O(1) (append to the
//!   deadline's bucket); popping scans an occupancy bitmap to the next
//!   non-empty bucket and selects its earliest `(at, prio, seq)` entry.
//!   Because the window is exactly one wheel revolution, a bucket never
//!   mixes events from different laps.
//! * **Level 1 — sorted overflow.** Deadlines beyond the window go to a
//!   binary heap ordered by `(at, prio, seq)` and migrate into the wheel
//!   as the cursor advances toward them.
//!
//! All ordering decisions compare the key `(at, prio, seq)` — a
//! **content-derived** key that every engine (serial or sharded) can
//! compute for the same logical event without global coordination:
//!
//! * `at` is the deadline;
//! * `prio` is the *scheduling instant* (the clock value when the event
//!   was scheduled);
//! * `seq` packs the event's **origin** (the node whose local activity
//!   caused the schedule — an agent callback, a transmitter on one of
//!   the node's link ends, or the topology-wide fault pseudo-origin)
//!   with a per-origin monotone counter:
//!   `seq = origin << SEQ_COUNTER_BITS | counter`.
//!
//! For a serial run with a single origin this degenerates to the classic
//! `(at, seq)` FIFO order: the clock never runs backwards, so `prio` is
//! nondecreasing in the counter and same-instant events fire in
//! scheduling order. With multiple origins, ties at equal `(at, sched)`
//! break by origin index, then per-origin scheduling order — arbitrary
//! but *reproducible from the event's content alone*. That is what makes
//! sharded execution bit-identical: each origin's schedule sequence
//! happens entirely inside the shard that owns it, so the owning shard
//! assigns exactly the counters the serial engine would have, and a
//! cross-shard arrival ships its full key through the window mailbox
//! ([`EventQueue::insert_keyed`]) to sort in the destination shard
//! precisely where the serial engine would have dispatched it —
//! regardless of mailbox drain order.
//!
//! The queue also owns the in-flight **packet slab**: arrival events
//! carry a `u32` slot into a recycled [`Packet`] arena instead of an
//! inline packet, which keeps [`ScheduledEvent`] small (cheaper bucket
//! scans and `swap_remove` moves on the hot path) and makes the
//! steady-state forwarding path allocation-free.
//!
//! Timer cancellation is O(1): [`EventQueue::cancel_timer`] records a
//! tombstone and the pop path drops the stale entry inside the queue,
//! so cancelled retransmit timers are never dispatched to an agent.
//! Tombstones are additionally reaped in bulk: when they come to
//! dominate the queue ([`COMPACT_MIN`] onward), a compaction sweep
//! drops every cancelled entry from both levels and empties the
//! tombstone set, so cancel-heavy workloads (arm/disarm retransmit
//! timers per ACK) do not drag dead entries through the overflow heap,
//! the migration path and the wheel before finally discarding them.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

use crate::fault::FaultAction;
use crate::{LinkId, NodeId, Packet, SimTime, TimerToken};

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum EventKind {
    /// A transmitter finished serializing a packet and becomes free.
    TxComplete {
        link: LinkId,
        /// Which end of the link was transmitting (0 or 1).
        end: usize,
    },
    /// A packet fully arrived at a node (after serialization and
    /// propagation). The packet itself lives in the queue's slab; `slot`
    /// is claimed with [`EventQueue::alloc_packet`] and redeemed exactly
    /// once with [`EventQueue::take_packet`] at dispatch.
    Arrival { node: NodeId, slot: u32 },
    /// An agent timer fires.
    Timer { node: NodeId, token: TimerToken },
    /// A scheduled fault fires (see [`crate::FaultPlan`]).
    Fault { link: LinkId, action: FaultAction },
}

#[derive(Debug)]
struct ScheduledEvent {
    at: SimTime,
    /// Scheduling-instant priority: the clock value (in nanoseconds) at
    /// the moment the event was scheduled. Monotone over a run, so among
    /// equal deadlines earlier-scheduled events fire first.
    prio: u64,
    /// Content-derived tie-breaker: `origin << SEQ_COUNTER_BITS |
    /// counter`, where `origin` identifies the node whose activity
    /// scheduled the event and `counter` is that origin's monotone
    /// schedule count. Identical in serial and sharded runs (see the
    /// module docs), which is what makes sharding bit-identical.
    seq: u64,
    kind: EventKind,
}

impl ScheduledEvent {
    #[inline]
    fn key(&self) -> (SimTime, u64, u64) {
        (self.at, self.prio, self.seq)
    }
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for ScheduledEvent {}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        other.key().cmp(&self.key())
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// log2 of the bucket count. 512 buckets.
const BUCKET_BITS: u32 = 9;
/// Number of wheel buckets; the window spans one full revolution.
const NUM_BUCKETS: usize = 1 << BUCKET_BITS;
/// log2 of the bucket width in nanoseconds. 2048 ns per bucket is a
/// little above one 1500-byte serialization at 10 Gb/s, so under load
/// buckets hold only a handful of events each.
const WIDTH_SHIFT: u32 = 11;
/// Occupancy bitmap words (one bit per bucket).
const BITMAP_WORDS: usize = NUM_BUCKETS / 64;
/// Tombstone count below which compaction is never attempted: a full
/// sweep touches every bucket, so it must amortize over enough reaped
/// entries to beat the pop path's one-hashset-probe-per-event cost.
const COMPACT_MIN: usize = 256;
/// Bits of `seq` reserved for the per-origin counter; the origin index
/// occupies the bits above. 2^40 ≈ 1.1e12 schedules per origin and
/// 2^24 ≈ 16.7M origins — both far beyond any realistic run, enforced
/// by debug assertions in [`EventQueue::next_seq`].
pub(crate) const SEQ_COUNTER_BITS: u32 = 40;

/// Identity-strength hasher for [`TimerToken`]s, which are sequential
/// `u64`s: one multiply by a 64-bit odd constant spreads the low bits
/// without SipHash's per-lookup cost on the cancellation set.
#[derive(Debug, Default)]
pub(crate) struct TokenHasher(u64);

impl Hasher for TokenHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u64(&mut self, x: u64) {
        let h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = h ^ (h >> 32);
    }
}

type TokenSet = HashSet<TimerToken, BuildHasherDefault<TokenHasher>>;

/// A deterministic future-event list: earliest deadline first, FIFO among
/// equal deadlines. See the module docs for the structure.
#[derive(Debug)]
pub(crate) struct EventQueue {
    /// Level 0: the timer wheel. All entries in bucket `i & mask` share
    /// the absolute bucket index `i ∈ [cursor, cursor + NUM_BUCKETS)`.
    wheel: Vec<Vec<ScheduledEvent>>,
    /// One occupancy bit per bucket, so the pop path skips empty
    /// stretches with `trailing_zeros` instead of probing each bucket.
    occupied: [u64; BITMAP_WORDS],
    /// Absolute bucket index (deadline >> WIDTH_SHIFT) of the earliest
    /// bucket that may still hold events.
    cursor: u64,
    wheel_len: usize,
    /// Level 1: deadlines at or beyond `cursor + NUM_BUCKETS`.
    overflow: BinaryHeap<ScheduledEvent>,
    /// Live entries across both levels (including not-yet-reaped
    /// cancelled timers, as with the previous heap implementation).
    len: usize,
    /// Per-origin schedule counters, indexed by origin id (node index,
    /// or the fault pseudo-origin one past the last node). Grown on
    /// demand; each entry is the number of events that origin has
    /// scheduled so far, which — combined with the origin id — forms the
    /// content-derived `seq` tie-breaker.
    origin_seq: Vec<u64>,
    /// Tombstones for cancelled timers; matching entries are dropped by
    /// the pop path instead of being dispatched.
    cancelled: TokenSet,
    /// In-flight packet slab: [`EventKind::Arrival`] events index into
    /// this arena instead of carrying the packet inline. Arrivals are
    /// never cancelled, so every allocated slot is redeemed exactly once
    /// and the freelist fully recycles — the arena stops growing once it
    /// covers the peak in-flight population.
    packets: Vec<Packet>,
    /// LIFO freelist of reusable `packets` slots.
    free: Vec<u32>,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue {
            wheel: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; BITMAP_WORDS],
            cursor: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            origin_seq: Vec::new(),
            cancelled: TokenSet::default(),
            packets: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Parks an in-flight packet in the slab and returns its slot, for
    /// embedding in an [`EventKind::Arrival`]. O(1), allocation-free once
    /// the arena covers the peak in-flight population.
    #[inline]
    pub(crate) fn alloc_packet(&mut self, pkt: Packet) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.packets[slot as usize] = pkt;
            slot
        } else {
            self.packets.push(pkt);
            (self.packets.len() - 1) as u32
        }
    }

    /// Redeems an arrival's slab slot, recycling it. Each slot must be
    /// taken exactly once, at dispatch.
    #[inline]
    pub(crate) fn take_packet(&mut self, slot: u32) -> Packet {
        self.free.push(slot);
        self.packets[slot as usize]
    }

    /// Draws the next content-derived `seq` for `origin`: the origin id
    /// packed with that origin's monotone schedule count. Serial and
    /// sharded engines draw identical sequences for the same origin
    /// (all of an origin's schedules happen in the shard that owns it),
    /// so the value is a globally consistent tie-breaker. O(1) amortized.
    #[inline]
    pub(crate) fn next_seq(&mut self, origin: u32) -> u64 {
        debug_assert!(
            u64::from(origin) < 1 << (64 - SEQ_COUNTER_BITS),
            "origin id overflow"
        );
        let i = origin as usize;
        if i >= self.origin_seq.len() {
            self.origin_seq.resize(i + 1, 0);
        }
        let counter = self.origin_seq[i];
        self.origin_seq[i] = counter + 1;
        debug_assert!(
            counter < 1 << SEQ_COUNTER_BITS,
            "per-origin counter overflow"
        );
        (u64::from(origin) << SEQ_COUNTER_BITS) | counter
    }

    /// Schedules `kind` to fire at `at`; `sched` is the current clock
    /// value (the scheduling instant, which orders same-deadline events)
    /// and `origin` the node whose activity caused the schedule. O(1).
    #[inline]
    pub(crate) fn schedule(&mut self, at: SimTime, sched: SimTime, origin: u32, kind: EventKind) {
        let seq = self.next_seq(origin);
        self.insert_keyed(at, sched, seq, kind);
    }

    /// Inserts an event under an explicit, already-drawn key — the
    /// cross-shard injection path. The sending shard draws `seq` from
    /// the origin's counter ([`EventQueue::next_seq`]) and ships it with
    /// the packet, so the event sorts here exactly where the serial
    /// engine would have dispatched it, independent of mailbox drain
    /// order. Does not touch the origin counters.
    #[inline]
    pub(crate) fn insert_keyed(&mut self, at: SimTime, sched: SimTime, seq: u64, kind: EventKind) {
        self.insert(ScheduledEvent {
            at,
            prio: sched.as_nanos(),
            seq,
            kind,
        });
    }

    /// Marks an armed timer as dead. Amortized O(1); the entry itself is
    /// reaped by the pop path, by overflow migration, or by a bulk
    /// compaction sweep once tombstones dominate the queue — it never
    /// reaches dispatch. Cancelling a token that already fired (or was
    /// never armed through this queue) leaves a tombstone that the next
    /// compaction discards.
    pub(crate) fn cancel_timer(&mut self, token: TimerToken) {
        self.cancelled.insert(token);
        if self.cancelled.len() >= COMPACT_MIN && self.cancelled.len() * 2 >= self.len {
            self.compact();
        }
    }

    /// Drops every cancelled entry from both levels and empties the
    /// tombstone set.
    ///
    /// Clearing *unmatched* tombstones is sound because timer tokens are
    /// issued by a single monotone counter (see `Context::set_timer`)
    /// and cancellation always follows arming: a tombstone with no live
    /// entry now belongs to a timer that already fired, and its token
    /// can never be armed again.
    fn compact(&mut self) {
        let cancelled = &self.cancelled;
        let is_dead = |e: &ScheduledEvent| matches!(&e.kind, EventKind::Timer { token, .. } if cancelled.contains(token));
        let mut removed = 0;
        for (slot, bucket) in self.wheel.iter_mut().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let before = bucket.len();
            bucket.retain(|e| !is_dead(e));
            removed += before - bucket.len();
            if bucket.is_empty() {
                self.occupied[slot >> 6] &= !(1u64 << (slot & 63));
            }
        }
        self.wheel_len -= removed;
        if !self.overflow.is_empty() {
            let before = self.overflow.len();
            let mut entries = std::mem::take(&mut self.overflow).into_vec();
            entries.retain(|e| !is_dead(e));
            removed += before - entries.len();
            self.overflow = BinaryHeap::from(entries);
        }
        self.len -= removed;
        self.cancelled.clear();
    }

    #[inline]
    fn insert(&mut self, ev: ScheduledEvent) {
        self.len += 1;
        // The simulator never schedules into the past, so the bucket
        // index is at or ahead of the cursor; clamping keeps ordering
        // correct regardless because pops compare exact `(at, seq)`.
        let idx = (ev.at.as_nanos() >> WIDTH_SHIFT).max(self.cursor);
        if idx < self.cursor + NUM_BUCKETS as u64 {
            let slot = (idx as usize) & (NUM_BUCKETS - 1);
            self.wheel[slot].push(ev);
            self.occupied[slot >> 6] |= 1u64 << (slot & 63);
            self.wheel_len += 1;
        } else {
            self.overflow.push(ev);
        }
    }

    /// Moves every overflow entry whose deadline now falls inside the
    /// wheel window onto the wheel. Kept out of line: the hot pop path
    /// calls it only when the overflow level is non-empty, which steady
    /// forwarding (all deadlines within a few RTTs) never hits.
    #[inline(never)]
    fn migrate_overflow(&mut self) {
        let horizon = self.cursor + NUM_BUCKETS as u64;
        while let Some(head) = self.overflow.peek() {
            if head.at.as_nanos() >> WIDTH_SHIFT >= horizon {
                break;
            }
            let ev = self.overflow.pop().expect("peeked entry exists");
            self.len -= 1; // insert() re-adds it
            if !self.cancelled.is_empty() {
                if let EventKind::Timer { token, .. } = &ev.kind {
                    if self.cancelled.remove(token) {
                        continue; // reaped en route, never reaches the wheel
                    }
                }
            }
            self.insert(ev);
        }
    }

    /// Circular distance from the cursor's slot to the next occupied
    /// slot, if any.
    #[inline]
    fn next_occupied_distance(&self) -> Option<u64> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = (self.cursor as usize) & (NUM_BUCKETS - 1);
        let mut word = start >> 6;
        let mut bits = self.occupied[word] & (!0u64 << (start & 63));
        for step in 0..=BITMAP_WORDS {
            if bits != 0 {
                let slot = (word << 6) + bits.trailing_zeros() as usize;
                let dist = (slot + NUM_BUCKETS - start) & (NUM_BUCKETS - 1);
                return Some(
                    dist as u64
                        + if step > 0 && slot == start {
                            NUM_BUCKETS as u64
                        } else {
                            0
                        },
                );
            }
            word = (word + 1) % BITMAP_WORDS;
            bits = self.occupied[word];
        }
        None
    }

    /// Index of the earliest `(at, prio, seq)` entry in `bucket`.
    #[inline]
    fn bucket_min(bucket: &[ScheduledEvent]) -> usize {
        let mut best = 0;
        for (i, e) in bucket.iter().enumerate().skip(1) {
            if e.key() < bucket[best].key() {
                best = i;
            }
        }
        best
    }

    /// Removes and returns the earliest event — deadline, the `(prio,
    /// seq)` tail of its key (used to rank same-instant trace records
    /// when merging shard logs), and payload — whose deadline is at or
    /// before `until`; `None` leaves the queue untouched apart from
    /// cursor advancement over empty buckets. Cancelled timers are
    /// reaped here without being returned.
    pub(crate) fn pop_before(&mut self, until: SimTime) -> Option<(SimTime, u64, u64, EventKind)> {
        loop {
            if self.len == 0 {
                return None;
            }
            let overflow_live = !self.overflow.is_empty();
            if overflow_live {
                self.migrate_overflow();
            }
            if self.wheel_len == 0 {
                // Jump the window to the overflow's earliest bucket.
                let head_at = self.overflow.peek().expect("len > 0 with empty wheel").at;
                self.cursor = head_at.as_nanos() >> WIDTH_SHIFT;
                self.migrate_overflow();
                // The wheel may still be empty if every migrated entry
                // was a cancelled timer reaped en route; the next lap
                // jumps again (or observes len == 0 and stops).
                continue;
            }
            let Some(dist) = self.next_occupied_distance() else {
                unreachable!("wheel_len > 0 but bitmap empty");
            };
            self.cursor += dist;
            let slot = (self.cursor as usize) & (NUM_BUCKETS - 1);
            // Advancing the cursor widens the window; anything that just
            // slid into it must be considered before this bucket drains.
            if dist > 0 && overflow_live && !self.overflow.is_empty() {
                self.migrate_overflow();
            }
            let bucket = &mut self.wheel[slot];
            debug_assert!(!bucket.is_empty());
            let best = Self::bucket_min(bucket);
            if bucket[best].at > until {
                return None;
            }
            let ev = bucket.swap_remove(best);
            if bucket.is_empty() {
                self.occupied[slot >> 6] &= !(1u64 << (slot & 63));
            }
            self.wheel_len -= 1;
            self.len -= 1;
            if !self.cancelled.is_empty() {
                if let EventKind::Timer { token, .. } = &ev.kind {
                    if self.cancelled.remove(token) {
                        continue; // reaped without dispatch
                    }
                }
            }
            return Some((ev.at, ev.prio, ev.seq, ev.kind));
        }
    }

    /// Removes and returns the earliest event.
    #[cfg(test)]
    pub(crate) fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        self.pop_before(SimTime::from_nanos(u64::MAX))
            .map(|(at, _, _, kind)| (at, kind))
    }

    /// Deadline of the earliest scheduled event (including cancelled
    /// timers not yet reaped). Used by the sharded driver to compute the
    /// global window bound; a not-yet-reaped cancelled timer only makes
    /// the bound conservative (an empty window), never wrong.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        let wheel_min = self.next_occupied_distance().map(|dist| {
            let slot = ((self.cursor + dist) as usize) & (NUM_BUCKETS - 1);
            let bucket = &self.wheel[slot];
            bucket[Self::bucket_min(bucket)].at
        });
        let overflow_min = self.overflow.peek().map(|e| e.at);
        match (wheel_min, overflow_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of scheduled entries, in O(1). Cancelled timers count
    /// until reaped — by the pop path, by overflow migration, or by a
    /// compaction sweep.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// [`EventQueue::schedule`] with the scheduling instant pinned to
    /// zero and a single origin, for ordering tests that predate those
    /// parameters: the key then degenerates to `(at, counter)`.
    #[cfg(test)]
    pub(crate) fn schedule_t0(&mut self, at: SimTime, kind: EventKind) {
        self.schedule(at, SimTime::ZERO, 0, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dctcp_rng::SplitMix64;

    fn timer(node: usize, token: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId::from_index(node),
            token: TimerToken(token),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_t0(SimTime::from_nanos(30), timer(0, 0));
        q.schedule_t0(SimTime::from_nanos(10), timer(0, 1));
        q.schedule_t0(SimTime::from_nanos(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_nanos())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_t0(SimTime::from_nanos(5), timer(0, i));
        }
        let tokens: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { token, .. } => token.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tokens, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn equal_times_fire_fifo_across_levels() {
        // Same instant, far enough out that early schedules land in the
        // overflow level and late ones (after the cursor jumps) in the
        // wheel: FIFO order must hold regardless.
        let far = SimTime::from_nanos(50_000_000);
        let mut q = EventQueue::new();
        for i in 0..4 {
            q.schedule_t0(far, timer(0, i));
        }
        // Drain an early event so the cursor advances, then add more
        // same-instant events (these go straight onto the wheel once the
        // window covers them).
        q.schedule_t0(SimTime::from_nanos(1), timer(0, 100));
        assert_eq!(q.pop().unwrap().0, SimTime::from_nanos(1));
        for i in 4..8 {
            q.schedule_t0(far, timer(0, i));
        }
        let tokens: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { token, .. } => token.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tokens, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule_t0(SimTime::from_nanos(7), timer(0, 0));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn pop_before_respects_the_horizon() {
        let mut q = EventQueue::new();
        q.schedule_t0(SimTime::from_nanos(100), timer(0, 0));
        q.schedule_t0(SimTime::from_nanos(200), timer(0, 1));
        assert_eq!(q.pop_before(SimTime::from_nanos(50)), None);
        assert_eq!(q.len(), 2);
        let (at, ..) = q.pop_before(SimTime::from_nanos(150)).unwrap();
        assert_eq!(at, SimTime::from_nanos(100));
        assert_eq!(q.pop_before(SimTime::from_nanos(150)), None);
        let (at, ..) = q.pop_before(SimTime::from_nanos(10_000)).unwrap();
        assert_eq!(at, SimTime::from_nanos(200));
        assert!(q.is_empty());
    }

    #[test]
    fn cancelled_timer_is_reaped_not_returned() {
        let mut q = EventQueue::new();
        q.schedule_t0(SimTime::from_nanos(10), timer(0, 0));
        q.schedule_t0(SimTime::from_nanos(20), timer(0, 1));
        q.schedule_t0(SimTime::from_nanos(30), timer(0, 2));
        q.cancel_timer(TimerToken(1));
        let tokens: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { token, .. } => token.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tokens, vec![0, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_of_unknown_or_fired_token_is_inert() {
        let mut q = EventQueue::new();
        q.schedule_t0(SimTime::from_nanos(10), timer(0, 0));
        assert!(q.pop().is_some());
        // Cancelling after the fact (or a token never armed) must not
        // disturb later events.
        q.cancel_timer(TimerToken(0));
        q.cancel_timer(TimerToken(999));
        q.schedule_t0(SimTime::from_nanos(20), timer(0, 1));
        let (_, k) = q.pop().unwrap();
        assert_eq!(k, timer(0, 1));
    }

    #[test]
    fn cancelled_far_timer_never_surfaces_across_migration() {
        let mut q = EventQueue::new();
        // Deadline far beyond the wheel window: lives in overflow.
        q.schedule_t0(SimTime::from_nanos(10_000_000), timer(0, 7));
        q.cancel_timer(TimerToken(7));
        q.schedule_t0(SimTime::from_nanos(20_000_000), timer(0, 8));
        let (at, k) = q.pop().unwrap();
        assert_eq!(at, SimTime::from_nanos(20_000_000));
        assert_eq!(k, timer(0, 8));
        assert!(q.pop().is_none());
    }

    #[test]
    fn compaction_reaps_tombstones_without_reordering() {
        let mut q = EventQueue::new();
        // Enough cancels to trip compaction (> COMPACT_MIN), spread over
        // wheel buckets and the overflow level. Survivors are every
        // fourth timer.
        let n = 4 * COMPACT_MIN as u64;
        for i in 0..n {
            // ~3 per bucket near the cursor, plus a far overflow tail.
            let at = if i % 5 == 4 { 10_000_000 + i } else { i * 700 };
            q.schedule_t0(SimTime::from_nanos(at), timer(0, i));
        }
        assert_eq!(q.len(), n as usize);
        for i in 0..n {
            if i % 4 != 0 {
                q.cancel_timer(TimerToken(i));
            }
        }
        // Compaction has already dropped the dead entries — no pops yet.
        assert_eq!(q.len(), (n / 4) as usize);
        let tokens: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { token, .. } => token.0,
                _ => unreachable!(),
            })
            .collect();
        let mut expected: Vec<u64> = (0..n).step_by(4).collect();
        expected.sort_by_key(|&i| {
            if i % 5 == 4 {
                (10_000_000 + i, i)
            } else {
                (i * 700, i)
            }
        });
        assert_eq!(tokens, expected);
        assert!(q.is_empty());
    }

    #[test]
    fn compaction_discards_unmatched_tombstones_safely() {
        let mut q = EventQueue::new();
        // A flood of cancels for timers that already fired: compaction
        // trips and clears the set without touching live state.
        q.schedule_t0(SimTime::from_nanos(1), timer(0, 0));
        assert!(q.pop().is_some());
        for t in 0..2 * COMPACT_MIN as u64 {
            q.cancel_timer(TimerToken(t));
        }
        assert!(q.is_empty());
        // Cancellation of freshly armed timers still works afterwards.
        q.schedule_t0(SimTime::from_nanos(10), timer(0, 10_000));
        q.schedule_t0(SimTime::from_nanos(20), timer(0, 10_001));
        q.cancel_timer(TimerToken(10_000));
        let (_, k) = q.pop().unwrap();
        assert_eq!(k, timer(0, 10_001));
        assert!(q.pop().is_none());
    }

    /// A reference entry deliberately ordered by the *old* `(at, seq)`
    /// key, so the differential test proves the production `(at, prio,
    /// seq)` key preserves the classic FIFO order whenever the
    /// scheduling instant is monotone (i.e. for every serial run).
    struct RefEvent {
        at: SimTime,
        seq: u64,
        kind: EventKind,
    }

    impl PartialEq for RefEvent {
        fn eq(&self, other: &Self) -> bool {
            (self.at, self.seq) == (other.at, other.seq)
        }
    }

    impl Eq for RefEvent {}

    impl Ord for RefEvent {
        fn cmp(&self, other: &Self) -> Ordering {
            (other.at, other.seq).cmp(&(self.at, self.seq))
        }
    }

    impl PartialOrd for RefEvent {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    /// The pre-calendar-queue implementation (a plain `(at, seq)` binary
    /// heap), kept as the ordering oracle for the differential test
    /// below.
    #[derive(Default)]
    struct ReferenceQueue {
        heap: BinaryHeap<RefEvent>,
        next_seq: u64,
        cancelled: std::collections::HashSet<TimerToken>,
    }

    impl ReferenceQueue {
        fn schedule(&mut self, at: SimTime, kind: EventKind) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(RefEvent { at, seq, kind });
        }

        fn cancel_timer(&mut self, token: TimerToken) {
            self.cancelled.insert(token);
        }

        fn pop(&mut self) -> Option<(SimTime, EventKind)> {
            while let Some(e) = self.heap.pop() {
                if let EventKind::Timer { token, .. } = &e.kind {
                    if self.cancelled.remove(token) {
                        continue;
                    }
                }
                return Some((e.at, e.kind));
            }
            None
        }
    }

    /// Seeded differential test: a random interleaving of schedules,
    /// cancellations, and pops must produce the identical event order on
    /// the calendar queue and the reference heap. Deadlines mix bucket
    /// collisions, exact ties, and far-overflow times.
    #[test]
    fn differential_against_reference_heap() {
        for seed in 1..=8u64 {
            let mut rng = SplitMix64::new(seed);
            let mut cal = EventQueue::new();
            let mut oracle = ReferenceQueue::default();
            let mut clock = 0u64; // lower bound for new deadlines
            let mut armed: Vec<u64> = Vec::new();
            let mut next_token = 0u64;
            let mut popped = 0usize;
            for _ in 0..5_000 {
                match rng.next_u64() % 10 {
                    // Schedule (weighted toward near deadlines, with
                    // exact ties and far overflow tails mixed in).
                    0..=5 => {
                        let at = match rng.next_u64() % 8 {
                            0 => clock,                                // exact tie with "now"
                            1..=4 => clock + rng.next_u64() % 4_000,   // in-bucket / near
                            5 | 6 => clock + rng.next_u64() % 400_000, // within window
                            _ => clock + rng.next_u64() % 50_000_000,  // overflow
                        };
                        let token = next_token;
                        next_token += 1;
                        armed.push(token);
                        let at = SimTime::from_nanos(at);
                        // The calendar queue runs with the real (monotone)
                        // scheduling instant and a single origin, so its
                        // counter is the global insertion order; the oracle
                        // orders by the old (at, seq) key. Equality of the
                        // two pop sequences proves the (at, prio, seq) key
                        // preserves serial FIFO order.
                        cal.schedule(at, SimTime::from_nanos(clock), 0, timer(0, token));
                        oracle.schedule(at, timer(0, token));
                    }
                    6 => {
                        if let Some(&t) = armed.get(rng.next_u64() as usize % armed.len().max(1)) {
                            cal.cancel_timer(TimerToken(t));
                            oracle.cancel_timer(TimerToken(t));
                        }
                    }
                    _ => {
                        let a = cal.pop();
                        let b = oracle.pop();
                        assert_eq!(a, b, "divergence after {popped} pops (seed {seed})");
                        if let Some((at, _)) = a {
                            clock = clock.max(at.as_nanos());
                            popped += 1;
                        }
                    }
                }
            }
            // Drain both completely.
            loop {
                let a = cal.pop();
                let b = oracle.pop();
                assert_eq!(a, b, "divergence while draining (seed {seed})");
                if a.is_none() {
                    break;
                }
            }
            assert!(popped > 100, "degenerate interleaving (seed {seed})");
        }
    }

    fn drain_tokens(q: &mut EventQueue) -> Vec<u64> {
        std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { token, .. } => token.0,
                other => panic!("unexpected event {other:?}"),
            })
            .collect()
    }

    /// Ties at equal `(at, sched)` break by origin index, then each
    /// origin's own scheduling order — derived from the event's content,
    /// so serial and sharded engines agree without coordination.
    #[test]
    fn equal_instant_ties_order_by_origin_then_counter() {
        let mut q = EventQueue::new();
        let at = SimTime::from_nanos(500);
        let sched = SimTime::from_nanos(100);
        q.schedule(at, sched, 2, timer(0, 20));
        q.schedule(at, sched, 1, timer(0, 10));
        q.schedule(at, sched, 2, timer(0, 21));
        q.schedule(at, sched, 1, timer(0, 11));
        assert_eq!(drain_tokens(&mut q), vec![10, 11, 20, 21]);
    }

    /// A cross-shard injection carries the key its origin drew in the
    /// *sending* queue; the receiving queue sorts it purely by that key,
    /// so the mailbox drain order is irrelevant — even when two
    /// injections and a local event tie on `(at, sched)`.
    #[test]
    fn keyed_injection_is_independent_of_drain_order() {
        // Sending shard: origin 3 draws two consecutive keys.
        let mut tx = EventQueue::new();
        let first = tx.next_seq(3);
        let second = tx.next_seq(3);
        assert!(first < second);
        // Receiving shard: a local event from origin 5 at the same
        // instant, then the injections delivered in *reversed* order.
        let mut q = EventQueue::new();
        let at = SimTime::from_nanos(500);
        let sched = SimTime::from_nanos(100);
        q.schedule(at, sched, 5, timer(0, 50));
        q.insert_keyed(at, sched, second, timer(0, 31));
        q.insert_keyed(at, sched, first, timer(0, 30));
        // Origin 3 sorts before origin 5; within origin 3, draw order.
        assert_eq!(drain_tokens(&mut q), vec![30, 31, 50]);
    }

    /// The scheduling instant dominates the origin tie-break: an
    /// injection scheduled from an *earlier* instant sorts ahead of a
    /// local event scheduled later, so windows replay exactly as a
    /// serial run would have interleaved them.
    #[test]
    fn scheduling_instant_dominates_origin() {
        let mut tx = EventQueue::new();
        let key = tx.next_seq(9);
        let mut q = EventQueue::new();
        let at = SimTime::from_nanos(900);
        q.schedule(at, SimTime::from_nanos(800), 0, timer(0, 1));
        q.insert_keyed(at, SimTime::from_nanos(200), key, timer(0, 2));
        assert_eq!(drain_tokens(&mut q), vec![2, 1]);
    }

    /// Per-origin counters are independent: interleaved draws from two
    /// origins each count 0, 1, 2, … — the property that lets a shard
    /// reproduce exactly the serial engine's counters for the origins it
    /// owns while other shards count theirs.
    #[test]
    fn origin_counters_are_independent() {
        let mut q = EventQueue::new();
        let a0 = q.next_seq(1);
        let b0 = q.next_seq(7);
        let a1 = q.next_seq(1);
        let b1 = q.next_seq(7);
        assert_eq!(a0, 1 << SEQ_COUNTER_BITS);
        assert_eq!(a1, (1 << SEQ_COUNTER_BITS) | 1);
        assert_eq!(b0, 7 << SEQ_COUNTER_BITS);
        assert_eq!(b1, (7 << SEQ_COUNTER_BITS) | 1);
    }
}

#[cfg(test)]
mod perf_probe {
    use super::*;
    use std::time::Instant;

    #[test]
    #[ignore]
    fn probe_schedule_pop() {
        let mut q = EventQueue::new();
        let kind = EventKind::TxComplete {
            link: LinkId::from_index(0),
            end: 0,
        };
        // Steady state: ~4 events in flight, spaced ~1.2us like the
        // forward bench.
        let mut t = 0u64;
        for i in 0..4 {
            q.schedule(
                SimTime::from_nanos(1180 * i),
                SimTime::ZERO,
                0,
                kind.clone(),
            );
        }
        let n = 4_000_000u64;
        let start = Instant::now();
        for _ in 0..n {
            let (at, _, _, k) = q.pop_before(SimTime::from_nanos(u64::MAX)).unwrap();
            t = at.as_nanos();
            q.schedule(SimTime::from_nanos(t + 4 * 1180), at, 0, k);
        }
        let dt = start.elapsed().as_nanos() as u64;
        println!(
            "schedule+pop pair: {:.1} ns (clock {})",
            dt as f64 / n as f64,
            t
        );
    }
}
