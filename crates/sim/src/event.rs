//! The event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::fault::FaultAction;
use crate::{LinkId, NodeId, Packet, SimTime, TimerToken};

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum EventKind {
    /// A transmitter finished serializing a packet and becomes free.
    TxComplete {
        link: LinkId,
        /// Which end of the link was transmitting (0 or 1).
        end: usize,
    },
    /// A packet fully arrived at a node (after serialization and
    /// propagation).
    Arrival { node: NodeId, packet: Packet },
    /// An agent timer fires.
    Timer { node: NodeId, token: TimerToken },
    /// A scheduled fault fires (see [`crate::FaultPlan`]).
    Fault { link: LinkId, action: FaultAction },
}

#[derive(Debug)]
struct ScheduledEvent {
    at: SimTime,
    /// Monotone tie-breaker so same-instant events fire in scheduling
    /// order (FIFO), keeping runs deterministic.
    seq: u64,
    kind: EventKind,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for ScheduledEvent {}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list: earliest deadline first, FIFO among
/// equal deadlines.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, kind });
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        self.heap.pop().map(|e| (e.at, e.kind))
    }

    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: usize, token: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId::from_index(node),
            token: TimerToken(token),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), timer(0, 0));
        q.schedule(SimTime::from_nanos(10), timer(0, 1));
        q.schedule(SimTime::from_nanos(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_nanos())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::from_nanos(5), timer(0, i));
        }
        let tokens: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { token, .. } => token.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tokens, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(7), timer(0, 0));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
