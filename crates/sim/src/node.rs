//! Hosts, agents, and the action context.

use std::any::Any;
use std::fmt;

use dctcp_trace::{TraceKind, TraceScope, Tracer};

use crate::{NodeId, Packet, SimDuration, SimTime, TimerToken};

/// Transport or application logic attached to a host.
///
/// Agents are event-driven: the simulator invokes the callbacks and the
/// agent responds by queueing actions on the [`Context`] (send a packet,
/// arm or cancel a timer). Actions are applied by the simulator after the
/// callback returns, so an agent never re-enters itself.
///
/// `as_any`/`as_any_mut` allow the experiment harness to downcast agents
/// back to their concrete type after a run to harvest per-flow
/// statistics.
///
/// Agents must be `Send`: the sharded engine
/// ([`ShardedSimulator`](crate::ShardedSimulator)) moves each shard —
/// including its hosts' agents — onto a worker thread. Agents are never
/// shared between threads (`Sync` is not required) and each is only ever
/// called from the single thread driving its shard.
pub trait Agent: fmt::Debug + Any + Send {
    /// Called once at simulation start (time zero).
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }

    /// Called when a packet addressed to this host arrives.
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Context<'_>);

    /// Called when a timer armed by this agent fires (and was not
    /// cancelled).
    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_>) {
        let _ = (token, ctx);
    }

    /// Upcast for downcasting to the concrete agent type.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for downcasting to the concrete agent type.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// An action queued by an agent during a callback.
#[derive(Debug)]
pub(crate) enum Action {
    Send(Packet),
    SetTimer { at: SimTime, token: TimerToken },
    CancelTimer(TimerToken),
}

/// The interface an [`Agent`] uses to interact with the simulation during
/// a callback.
#[derive(Debug)]
pub struct Context<'a> {
    now: SimTime,
    node: NodeId,
    actions: &'a mut Vec<Action>,
    next_timer: &'a mut u64,
    tracer: &'a mut Tracer,
}

impl<'a> Context<'a> {
    pub(crate) fn new(
        now: SimTime,
        node: NodeId,
        actions: &'a mut Vec<Action>,
        next_timer: &'a mut u64,
        tracer: &'a mut Tracer,
    ) -> Self {
        Context {
            now,
            node,
            actions,
            next_timer,
            tracer,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The host this agent is attached to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Queues a packet for transmission from this host. The packet's
    /// `sent_at` is stamped with the current time when it is handed to
    /// the NIC.
    pub fn send(&mut self, pkt: Packet) {
        self.actions.push(Action::Send(pkt));
    }

    /// Arms a timer to fire after `delay`; returns its token.
    pub fn set_timer(&mut self, delay: SimDuration) -> TimerToken {
        self.set_timer_at(self.now + delay)
    }

    /// Arms a timer to fire at the absolute time `at` (clamped to now if
    /// in the past); returns its token.
    pub fn set_timer_at(&mut self, at: SimTime) -> TimerToken {
        let token = TimerToken(*self.next_timer);
        *self.next_timer += 1;
        let at = at.max(self.now);
        self.actions.push(Action::SetTimer { at, token });
        token
    }

    /// Cancels a previously armed timer. Cancelling an already-fired or
    /// unknown token is a no-op.
    pub fn cancel_timer(&mut self, token: TimerToken) {
        if token != TimerToken::NONE {
            self.actions.push(Action::CancelTimer(token));
        }
    }

    /// Whether the simulator is recording events in `scope`. Lets agents
    /// skip building trace payloads when tracing is off.
    pub fn trace_enabled(&self, scope: TraceScope) -> bool {
        self.tracer.scope_enabled(scope)
    }

    /// Records a trace event at the current simulation time if `scope`
    /// is enabled; a no-op (one branch) otherwise.
    pub fn trace(&mut self, scope: TraceScope, kind: TraceKind) {
        self.tracer.record_with(scope, self.now.as_nanos(), || kind);
    }
}

/// A node in the topology.
#[derive(Debug)]
pub(crate) enum Node {
    Host { name: String, agent: Box<dyn Agent> },
    Switch { name: String },
}

impl Node {
    pub(crate) fn name(&self) -> &str {
        match self {
            Node::Host { name, .. } | Node::Switch { name } => name,
        }
    }

    pub(crate) fn is_host(&self) -> bool {
        matches!(self, Node::Host { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Nop;

    impl Agent for Nop {
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Context<'_>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn context_queues_actions_in_order() {
        let mut actions = Vec::new();
        let mut next = 0u64;
        let mut tracer = Tracer::disabled();
        let mut ctx = Context::new(
            SimTime::ZERO,
            NodeId::from_index(0),
            &mut actions,
            &mut next,
            &mut tracer,
        );
        let t1 = ctx.set_timer(SimDuration::from_micros(5));
        let t2 = ctx.set_timer(SimDuration::from_micros(9));
        assert_ne!(t1, t2);
        ctx.cancel_timer(t1);
        assert_eq!(actions.len(), 3);
        assert!(matches!(actions[0], Action::SetTimer { .. }));
        assert!(matches!(actions[2], Action::CancelTimer(t) if t == t1));
    }

    #[test]
    fn cancel_none_token_is_noop() {
        let mut actions = Vec::new();
        let mut next = 0u64;
        let mut tracer = Tracer::disabled();
        let mut ctx = Context::new(
            SimTime::ZERO,
            NodeId::from_index(0),
            &mut actions,
            &mut next,
            &mut tracer,
        );
        ctx.cancel_timer(TimerToken::NONE);
        assert!(actions.is_empty());
    }

    #[test]
    fn past_deadline_clamps_to_now() {
        let mut actions = Vec::new();
        let mut next = 0u64;
        let now = SimTime::from_nanos(100);
        let mut tracer = Tracer::disabled();
        let mut ctx = Context::new(
            now,
            NodeId::from_index(0),
            &mut actions,
            &mut next,
            &mut tracer,
        );
        ctx.set_timer_at(SimTime::from_nanos(10));
        match &actions[0] {
            Action::SetTimer { at, .. } => assert_eq!(*at, now),
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn node_accessors() {
        let h = Node::Host {
            name: "h1".into(),
            agent: Box::new(Nop),
        };
        let s = Node::Switch { name: "s1".into() };
        assert!(h.is_host());
        assert!(!s.is_host());
        assert_eq!(h.name(), "h1");
        assert_eq!(s.name(), "s1");
    }
}
