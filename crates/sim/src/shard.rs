//! Sharded event engine: conservative, bit-identical intra-run
//! parallelism.
//!
//! A [`ShardedSimulator`] splits one topology into *domains* (groups of
//! nodes), runs each domain on its own [`Simulator`] instance, and
//! synchronizes them with barrier-delimited time windows:
//!
//! 1. **Partition.** Link propagation delays induce the domains: for a
//!    delay threshold `D`, contracting every link with delay `< D`
//!    yields connected components whose *cross* links all have delay
//!    `≥ D`. The partitioner picks the largest `D` that still yields at
//!    least the requested number of components, then packs components
//!    onto shards (largest-remaining into least-loaded, ties to the
//!    lowest shard id — fully deterministic).
//! 2. **Lookahead.** `W = min` propagation delay over links whose
//!    endpoints land on different shards. A packet crossing shards at
//!    simulation time `s` arrives no earlier than `s + tx + W`, and
//!    serialization time `tx` is at least 1 ns (wire bytes are ≥ 40 and
//!    [`SimDuration::transmission`] rounds up), so arrivals land
//!    *strictly* after `s + W`.
//! 3. **Windows.** Each round, the driver first drains every shard's
//!    outgoing mailbox into the destination shards, then computes
//!    `E = min` pending event time across shards and runs every shard to
//!    `w_end = min(until, E + W)` behind a barrier
//!    ([`dctcp_parallel::drive_windows`]). Any cross packet generated in
//!    the window comes from an event at `s ≥ E` and thus arrives
//!    strictly after `w_end`: injection never lands in a shard's past.
//!
//! # Determinism
//!
//! Each shard is itself a serial, deterministic simulator; the only new
//! ordering question is where barrier-injected arrivals fall among a
//! shard's own events. The event queue orders by the **content-derived
//! key** `(at, sched, origin, counter)` — deadline, scheduling instant,
//! originating node, and that origin's monotone schedule count (see
//! [`crate::event`]). Every schedule attributed to an origin happens in
//! the shard that owns it, so by induction over windows each shard
//! draws exactly the counter values the serial engine would; a packet
//! crossing shards ships its full key through the mailbox and the
//! destination inserts it under that key verbatim. Serial and sharded
//! runs therefore dispatch *identical* event sequences — mailbox drain
//! order is irrelevant — and results are byte-identical to the serial
//! engine at any shard count, on every scenario in the test suite
//! (golden digests, chaos suite, artifact diff gate).
//!
//! # When it falls back to serial
//!
//! One node, one requested shard, a zero-delay cross link, or no cross
//! links at all: the wrapper silently runs the plain serial engine. The
//! `DCTCP_SIM_SHARDS` environment variable overrides the shard count
//! (`0`/`1` force serial); unset, it defaults to the machine's available
//! parallelism.

use std::sync::Arc;

use dctcp_parallel::{drive_windows, WindowError};
use dctcp_trace::{merge_logs, TraceConfig, TraceLog};

use crate::link::Link;
use crate::simulator::{CrossPacket, ShardCtx};
use crate::{
    Agent, FaultPlan, LinkId, Network, NodeId, QueueReport, SimDuration, SimError, SimTime,
    Simulator,
};

/// Node-count floor below which sharding is never attempted.
const MIN_NODES: usize = 2;

/// A computed domain decomposition of a topology.
#[derive(Debug)]
struct Partition {
    /// Node index → shard id.
    domain_of: Vec<u32>,
    /// Number of shards (≥ 2).
    shards: usize,
    /// Minimum propagation delay over cross-shard links (> 0).
    lookahead: SimDuration,
}

/// Union-find over node indices with path halving and union by size.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
    }
}

/// Computes the domain decomposition, or `None` when the topology (or
/// the requested count) does not admit a safe one.
fn partition(num_nodes: usize, links: &[Link], target: usize) -> Option<Partition> {
    if target <= 1 || num_nodes < MIN_NODES {
        return None;
    }
    // Candidate thresholds are the distinct link delays, largest first:
    // a larger threshold contracts more links, giving fewer components
    // but a larger guaranteed cross-link delay (= lookahead floor).
    let mut thresholds: Vec<SimDuration> = links.iter().map(|l| l.spec.delay).collect();
    thresholds.sort_unstable();
    thresholds.dedup();

    let components_for = |threshold: SimDuration| -> Vec<u32> {
        let mut uf = UnionFind::new(num_nodes);
        for l in links {
            if l.spec.delay < threshold {
                uf.union(l.ends[0].node.index() as u32, l.ends[1].node.index() as u32);
            }
        }
        (0..num_nodes as u32).map(|i| uf.find(i)).collect()
    };

    let count_components = |roots: &[u32]| -> usize {
        let mut seen = vec![false; roots.len()];
        let mut count = 0;
        for &r in roots {
            if !seen[r as usize] {
                seen[r as usize] = true;
                count += 1;
            }
        }
        count
    };

    // Largest threshold that still yields enough components; when even
    // no contraction (threshold = smallest delay) gives fewer than
    // `target` components, fall back to per-node domains.
    let mut chosen: Option<Vec<u32>> = None;
    for &threshold in thresholds.iter().rev() {
        let roots = components_for(threshold);
        if count_components(&roots) >= target {
            chosen = Some(roots);
            break;
        }
    }
    let roots = chosen.unwrap_or_else(|| (0..num_nodes as u32).collect());
    let num_components = count_components(&roots);
    let shards = target.min(num_components);
    if shards < 2 {
        return None;
    }

    // Components in first-appearance (min node index) order, with their
    // node counts.
    let mut order: Vec<u32> = Vec::new();
    let mut weight: Vec<u32> = Vec::new();
    let mut comp_index = vec![u32::MAX; num_nodes];
    for &r in &roots {
        if comp_index[r as usize] == u32::MAX {
            comp_index[r as usize] = order.len() as u32;
            order.push(r);
            weight.push(0);
        }
        weight[comp_index[r as usize] as usize] += 1;
    }
    // Greedy balance: biggest remaining component onto the least-loaded
    // shard, ties broken by lowest component / shard index. Sorting is
    // by (weight desc, appearance order asc) — deterministic.
    let mut by_size: Vec<usize> = (0..order.len()).collect();
    by_size.sort_by_key(|&c| (std::cmp::Reverse(weight[c]), c));
    let mut load = vec![0u32; shards];
    let mut bin_of_comp = vec![0u32; order.len()];
    for &c in &by_size {
        let bin = (0..shards).min_by_key(|&b| (load[b], b)).unwrap_or(0);
        bin_of_comp[c] = bin as u32;
        load[bin] += weight[c];
    }
    let domain_of: Vec<u32> = roots
        .iter()
        .map(|&r| bin_of_comp[comp_index[r as usize] as usize])
        .collect();

    // Lookahead: the minimum delay over links that actually cross
    // shards. No cross link, or a zero-delay one, means windowed
    // execution is pointless or unsafe to bound — run serial.
    let lookahead = links
        .iter()
        .filter(|l| domain_of[l.ends[0].node.index()] != domain_of[l.ends[1].node.index()])
        .map(|l| l.spec.delay)
        .min()?;
    if lookahead.is_zero() {
        return None;
    }
    Some(Partition {
        domain_of,
        shards,
        lookahead,
    })
}

/// Shard count requested by the environment: `DCTCP_SIM_SHARDS` if set,
/// otherwise the machine's available parallelism.
fn shards_from_env() -> Result<usize, SimError> {
    match std::env::var("DCTCP_SIM_SHARDS") {
        Err(std::env::VarError::NotPresent) => Ok(std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)),
        Err(std::env::VarError::NotUnicode(_)) => Err(SimError::InvalidConfig(
            "DCTCP_SIM_SHARDS is not valid unicode".into(),
        )),
        Ok(v) => v.trim().parse::<usize>().map_err(|_| {
            SimError::InvalidConfig(format!(
                "DCTCP_SIM_SHARDS={v:?} is not a non-negative integer"
            ))
        }),
    }
}

/// The sharded engine state when a decomposition was found.
#[derive(Debug)]
struct Sharded {
    shards: Vec<Simulator>,
    domain_of: Arc<Vec<u32>>,
    lookahead: SimDuration,
    /// Worker threads for the window barrier (1 ⇒ inline execution).
    threads: usize,
    now: SimTime,
    /// Whether agents' `on_start` callbacks have run.
    primed: bool,
    /// Scratch buffer reused across window exchanges.
    scratch: Vec<CrossPacket>,
}

#[derive(Debug)]
enum Mode {
    Serial(Box<Simulator>),
    Sharded(Sharded),
}

/// A drop-in simulator front end that transparently runs multi-domain
/// topologies on several cooperating [`Simulator`] shards — with results
/// **bit-identical** to the serial engine — and falls back to a single
/// serial instance whenever the topology does not decompose.
///
/// See the module-level docs in `crates/sim/src/shard.rs` for the
/// synchronization protocol and the determinism argument. Shard count
/// comes from `DCTCP_SIM_SHARDS` (or
/// the machine's parallelism) via [`ShardedSimulator::new`], or
/// explicitly via [`ShardedSimulator::with_shards`].
#[derive(Debug)]
pub struct ShardedSimulator {
    mode: Mode,
}

impl ShardedSimulator {
    /// Creates a sharded simulator with the environment-selected shard
    /// count (`DCTCP_SIM_SHARDS`, else available parallelism).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `DCTCP_SIM_SHARDS` is set
    /// but not a non-negative integer, and [`SimError::Param`] if the
    /// topology cannot be replicated per shard.
    pub fn new(network: Network) -> Result<Self, SimError> {
        let target = shards_from_env()?;
        Self::with_shards(network, target)
    }

    /// Creates a sharded simulator with an explicit shard-count target.
    /// The actual count may be lower (bounded by the number of domains)
    /// or 1 (serial fallback).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Param`] if the topology cannot be replicated
    /// per shard (cannot happen for a network built by
    /// [`TopologyBuilder`](crate::TopologyBuilder), whose configurations
    /// are already validated).
    pub fn with_shards(network: Network, target: usize) -> Result<Self, SimError> {
        let Some(part) = partition(network.nodes.len(), &network.links, target) else {
            return Ok(ShardedSimulator {
                mode: Mode::Serial(Box::new(Simulator::new(network))),
            });
        };
        let num_shards = part.shards;
        let domain_of = Arc::new(part.domain_of);
        let Network {
            nodes,
            links,
            routes,
        } = network;

        // Every shard gets the full topology: pristine link replicas and
        // identical routes, with real hosts only where it owns them (a
        // named switch stands in elsewhere — never dispatched to, since
        // arrivals for foreign nodes are intercepted at the sender).
        let mut shard_links: Vec<Vec<Link>> = Vec::with_capacity(num_shards);
        for _ in 0..num_shards {
            let replica: Result<Vec<Link>, _> = links.iter().map(Link::fresh_copy).collect();
            shard_links.push(replica.map_err(SimError::Param)?);
        }
        let mut shard_nodes: Vec<Vec<crate::node::Node>> = (0..num_shards)
            .map(|_| Vec::with_capacity(nodes.len()))
            .collect();
        for (i, node) in nodes.into_iter().enumerate() {
            let owner = domain_of[i] as usize;
            for (k, shard) in shard_nodes.iter_mut().enumerate() {
                if k != owner {
                    shard.push(crate::node::Node::Switch {
                        name: node.name().to_string(),
                    });
                }
            }
            shard_nodes[owner].push(node);
        }

        let mut shards = Vec::with_capacity(num_shards);
        for (id, (shard_nodes, shard_links)) in shard_nodes.into_iter().zip(shard_links).enumerate()
        {
            let mut sim = Simulator::new(Network {
                nodes: shard_nodes,
                links: shard_links,
                routes: routes.clone(),
            });
            sim.set_shard(ShardCtx {
                id: id as u32,
                domain_of: Arc::clone(&domain_of),
                outbox: Vec::new(),
            });
            shards.push(sim);
        }
        let threads = num_shards.min(dctcp_parallel::available_threads());
        Ok(ShardedSimulator {
            mode: Mode::Sharded(Sharded {
                shards,
                domain_of,
                lookahead: part.lookahead,
                threads,
                now: SimTime::ZERO,
                primed: false,
                scratch: Vec::new(),
            }),
        })
    }

    /// Number of shards actually driving this simulation (1 = serial).
    pub fn shard_count(&self) -> usize {
        match &self.mode {
            Mode::Serial(_) => 1,
            Mode::Sharded(s) => s.shards.len(),
        }
    }

    /// The conservative lookahead (minimum cross-shard propagation
    /// delay), or `None` in serial mode.
    pub fn lookahead(&self) -> Option<SimDuration> {
        match &self.mode {
            Mode::Serial(_) => None,
            Mode::Sharded(s) => Some(s.lookahead),
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        match &self.mode {
            Mode::Serial(sim) => sim.now(),
            Mode::Sharded(s) => s.now,
        }
    }

    /// Total events dispatched across all shards. Cross-shard arrivals
    /// and replicated fault events are counted once, so this equals the
    /// serial engine's count for the same scenario.
    pub fn events_processed(&self) -> u64 {
        match &self.mode {
            Mode::Serial(sim) => sim.events_processed(),
            Mode::Sharded(s) => s.shards.iter().map(Simulator::events_processed).sum(),
        }
    }

    /// Advances the simulation to `until`. See [`Simulator::run_until`]
    /// for the error contract; a sharded run can additionally fail with
    /// [`SimError::ShardPanicked`].
    ///
    /// # Errors
    ///
    /// Propagates the lowest-indexed failing shard's error.
    pub fn run_until(&mut self, until: SimTime) -> Result<(), SimError> {
        match &mut self.mode {
            Mode::Serial(sim) => sim.run_until(until),
            Mode::Sharded(s) => s.run_until(until),
        }
    }

    /// Advances the simulation by `duration`.
    ///
    /// # Errors
    ///
    /// Same contract as [`ShardedSimulator::run_until`].
    pub fn run_for(&mut self, duration: SimDuration) -> Result<(), SimError> {
        self.run_until(self.now() + duration)
    }

    /// Installs a fault plan. Sharded runs install it into every shard
    /// (each applies the state change; one owner per fault traces and
    /// counts it).
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulator::install_faults`].
    pub fn install_faults(&mut self, plan: &FaultPlan) -> Result<(), SimError> {
        match &mut self.mode {
            Mode::Serial(sim) => sim.install_faults(plan),
            Mode::Sharded(s) => {
                for sim in &mut s.shards {
                    sim.install_faults(plan)?;
                }
                Ok(())
            }
        }
    }

    /// Turns on event tracing (see [`Simulator::enable_trace`]). Each
    /// shard records only the queues it owns; [`Self::take_trace`]
    /// merges the logs chronologically.
    pub fn enable_trace(&mut self, cfg: TraceConfig) {
        match &mut self.mode {
            Mode::Serial(sim) => sim.enable_trace(cfg),
            Mode::Sharded(s) => {
                for sim in &mut s.shards {
                    sim.enable_trace(cfg);
                }
            }
        }
    }

    /// Whether event tracing is currently recording.
    pub fn trace_enabled(&self) -> bool {
        match &self.mode {
            Mode::Serial(sim) => sim.trace_enabled(),
            Mode::Sharded(s) => s.shards.iter().any(Simulator::trace_enabled),
        }
    }

    /// Takes the recorded trace (merged across shards), leaving tracing
    /// disabled.
    pub fn take_trace(&mut self) -> TraceLog {
        match &mut self.mode {
            Mode::Serial(sim) => sim.take_trace(),
            Mode::Sharded(s) => {
                merge_logs(s.shards.iter_mut().map(Simulator::take_trace).collect())
            }
        }
    }

    /// Installs a cooperative cancellation token on every shard.
    pub fn set_cancel_token(&mut self, token: Option<crate::CancelToken>) {
        match &mut self.mode {
            Mode::Serial(sim) => sim.set_cancel_token(token),
            Mode::Sharded(s) => {
                for sim in &mut s.shards {
                    sim.set_cancel_token(token.clone());
                }
            }
        }
    }

    /// Sets the per-instant livelock threshold on every shard.
    pub fn set_livelock_threshold(&mut self, threshold: u64) {
        self.for_each(|sim| sim.set_livelock_threshold(threshold));
    }

    /// Caps events per `run_until` call, per shard.
    pub fn set_event_budget(&mut self, budget: Option<u64>) {
        self.for_each(|sim| sim.set_event_budget(budget));
    }

    /// Restarts the statistics window of every queue and transmitter.
    pub fn reset_all_queue_stats(&mut self) {
        self.for_each(Simulator::reset_all_queue_stats);
    }

    /// Downcasts the agent at `node` (owned by exactly one shard).
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulator::agent`].
    pub fn agent<T: Agent>(&self, node: NodeId) -> Result<&T, SimError> {
        self.owner_of(node)?.agent(node)
    }

    /// Mutable variant of [`ShardedSimulator::agent`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulator::agent_mut`].
    pub fn agent_mut<T: Agent>(&mut self, node: NodeId) -> Result<&mut T, SimError> {
        self.owner_of_mut(node)?.agent_mut(node)
    }

    /// Occupancy/counters report for the queue on `link` transmitting
    /// from `from` (the queue lives with `from`'s owner shard).
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of `link`.
    pub fn queue_report(&self, link: LinkId, from: NodeId) -> QueueReport {
        self.owner_or_first(from).queue_report(link, from)
    }

    /// Link utilization measured at `from`'s transmitter.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of `link`.
    pub fn link_utilization(&self, link: LinkId, from: NodeId) -> f64 {
        self.owner_or_first(from).link_utilization(link, from)
    }

    /// Bytes sent from `from` on `link` since the last stats reset.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of `link`.
    pub fn link_bytes_sent(&self, link: LinkId, from: NodeId) -> u64 {
        self.owner_or_first(from).link_bytes_sent(link, from)
    }

    /// Current queue occupancy in packets on `link` transmitting from
    /// `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of `link`.
    pub fn queue_len_pkts(&self, link: LinkId, from: NodeId) -> u32 {
        self.owner_or_first(from).queue_len_pkts(link, from)
    }

    /// Whether `link` is currently up (consistent across shards: fault
    /// state is replicated).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownLink`] if `link` is not in this
    /// topology.
    pub fn link_is_up(&self, link: LinkId) -> Result<bool, SimError> {
        self.first().link_is_up(link)
    }

    /// Ids of every link in the topology, in creation order.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.first().link_ids()
    }

    /// The name given to a node at topology construction.
    pub fn node_name(&self, node: NodeId) -> &str {
        self.first().node_name(node)
    }

    fn for_each(&mut self, f: impl Fn(&mut Simulator)) {
        match &mut self.mode {
            Mode::Serial(sim) => f(sim),
            Mode::Sharded(s) => s.shards.iter_mut().for_each(f),
        }
    }

    fn first(&self) -> &Simulator {
        match &self.mode {
            Mode::Serial(sim) => sim.as_ref(),
            Mode::Sharded(s) => &s.shards[0],
        }
    }

    fn owner_or_first(&self, node: NodeId) -> &Simulator {
        match self.owner_of(node) {
            Ok(sim) => sim,
            Err(_) => self.first(),
        }
    }

    fn owner_of(&self, node: NodeId) -> Result<&Simulator, SimError> {
        match &self.mode {
            Mode::Serial(sim) => Ok(sim.as_ref()),
            Mode::Sharded(s) => {
                let owner = *s
                    .domain_of
                    .get(node.index())
                    .ok_or(SimError::UnknownNode(node))?;
                Ok(&s.shards[owner as usize])
            }
        }
    }

    fn owner_of_mut(&mut self, node: NodeId) -> Result<&mut Simulator, SimError> {
        match &mut self.mode {
            Mode::Serial(sim) => Ok(sim.as_mut()),
            Mode::Sharded(s) => {
                let owner = *s
                    .domain_of
                    .get(node.index())
                    .ok_or(SimError::UnknownNode(node))?;
                Ok(&mut s.shards[owner as usize])
            }
        }
    }
}

impl Sharded {
    fn run_until(&mut self, until: SimTime) -> Result<(), SimError> {
        if until < self.now {
            return Err(SimError::TimeReversal {
                now: self.now,
                requested: until,
            });
        }
        if !self.primed {
            self.primed = true;
            for sim in &mut self.shards {
                sim.prime();
            }
        }
        let domain_of = Arc::clone(&self.domain_of);
        let lookahead = self.lookahead;
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut done = false;
        let result = drive_windows(
            &mut self.shards,
            self.threads,
            |shards| {
                if done {
                    return None;
                }
                // Exchange: drain every outbox into the receivers. Each
                // packet carries its full event key, so delivery order
                // here cannot affect results. Cross packets left over
                // from a previous `run_until` call are delivered too.
                for sim in shards.iter_mut() {
                    sim.take_outbox(&mut scratch);
                }
                for cp in scratch.drain(..) {
                    shards[domain_of[cp.node.index()] as usize].inject_arrival(cp);
                }
                // Conservative window bound: no event before E exists
                // anywhere, so every cross packet generated in the
                // window arrives strictly after E + lookahead.
                let horizon = shards.iter().filter_map(Simulator::peek_event_time).min();
                let w_end = match horizon {
                    Some(e) if e <= until => (e + lookahead).min(until),
                    _ => until,
                };
                if w_end >= until {
                    done = true;
                }
                Some(w_end)
            },
            |_idx, sim, w_end| sim.run_until(w_end),
        );
        self.scratch = scratch;
        match result {
            Ok(()) => {
                self.now = until;
                Ok(())
            }
            Err(WindowError::Job { error, .. }) => Err(error),
            Err(WindowError::Panic { index, panic }) => Err(SimError::ShardPanicked {
                shard: index,
                message: panic.message,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Context, Ecn, FlowId, LinkSpec, Packet, PacketKind, QueueConfig, TopologyBuilder};
    use std::any::Any;

    /// Sends `count` packets to `peer` at start; counts acks.
    #[derive(Debug)]
    struct Pinger {
        peer: NodeId,
        count: u32,
        acked: u32,
    }

    impl Agent for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for i in 0..self.count {
                let mut p = Packet::data(FlowId(1), ctx.node(), self.peer, i as u64, 960);
                p.ecn = Ecn::Ect;
                ctx.send(p);
            }
        }
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Context<'_>) {
            assert_eq!(pkt.kind, PacketKind::Ack);
            self.acked += 1;
            let _ = ctx;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Acks every data packet.
    #[derive(Debug)]
    struct Echo {
        received: u32,
    }

    impl Agent for Echo {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Context<'_>) {
            self.received += 1;
            ctx.send(Packet::ack(pkt.flow, ctx.node(), pkt.src, pkt.end_seq()));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Two racks joined by a long trunk: h1—s1 ==trunk== s2—h2.
    fn two_rack_network(count: u32) -> Network {
        let mut b = TopologyBuilder::new();
        let h1 = b.host(
            "h1",
            Box::new(Pinger {
                peer: NodeId::from_index(1),
                count,
                acked: 0,
            }),
        );
        let h2 = b.host("h2", Box::new(Echo { received: 0 }));
        let s1 = b.switch("s1");
        let s2 = b.switch("s2");
        let rack = LinkSpec::gbps(10.0, 2);
        let trunk = LinkSpec::gbps(10.0, 50);
        b.link(
            h1,
            s1,
            rack,
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
        b.link(
            s1,
            s2,
            trunk,
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
        b.link(
            s2,
            h2,
            rack,
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn partition_splits_on_the_long_trunk() {
        let net = two_rack_network(1);
        let part = partition(net.nodes.len(), &net.links, 2).expect("partitions");
        assert_eq!(part.shards, 2);
        assert_eq!(part.lookahead, SimDuration::from_micros(50));
        // h1 (0) with s1 (2); h2 (1) with s2 (3).
        assert_eq!(part.domain_of[0], part.domain_of[2]);
        assert_eq!(part.domain_of[1], part.domain_of[3]);
        assert_ne!(part.domain_of[0], part.domain_of[1]);
    }

    #[test]
    fn partition_declines_degenerate_inputs() {
        let net = two_rack_network(1);
        assert!(partition(net.nodes.len(), &net.links, 1).is_none());
        assert!(partition(net.nodes.len(), &net.links, 0).is_none());
        assert!(partition(1, &[], 4).is_none());
    }

    #[test]
    fn uniform_delay_topologies_shard_per_node() {
        // A star with equal delays everywhere has no natural cut; the
        // partitioner falls back to per-node domains, which is still
        // bit-identical (just more synchronization).
        let mut b = TopologyBuilder::new();
        let h1 = b.host(
            "h1",
            Box::new(Pinger {
                peer: NodeId::from_index(1),
                count: 4,
                acked: 0,
            }),
        );
        let h2 = b.host("h2", Box::new(Echo { received: 0 }));
        let s = b.switch("s");
        let spec = LinkSpec::gbps(1.0, 10);
        b.link(
            h1,
            s,
            spec,
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
        b.link(
            s,
            h2,
            spec,
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
        let net = b.build().unwrap();
        let part = partition(net.nodes.len(), &net.links, 2).expect("partitions");
        assert_eq!(part.shards, 2);
        assert_eq!(part.lookahead, SimDuration::from_micros(10));
    }

    fn run_counts(target: usize, count: u32) -> (u64, u32, u32) {
        let mut sim = ShardedSimulator::with_shards(two_rack_network(count), target).unwrap();
        if target >= 2 {
            assert!(sim.shard_count() >= 2, "expected a sharded run");
        }
        sim.run_for(SimDuration::from_millis(5)).unwrap();
        let h1 = NodeId::from_index(0);
        let h2 = NodeId::from_index(1);
        let acked = sim.agent::<Pinger>(h1).unwrap().acked;
        let received = sim.agent::<Echo>(h2).unwrap().received;
        (sim.events_processed(), acked, received)
    }

    #[test]
    fn sharded_matches_serial_exactly() {
        let serial = run_counts(1, 64);
        assert_eq!(serial.1, 64);
        assert_eq!(serial.2, 64);
        for target in [2, 4] {
            assert_eq!(run_counts(target, 64), serial, "target {target}");
        }
    }

    #[test]
    fn sharded_trace_digest_matches_serial() {
        let run = |target: usize| {
            let mut sim = ShardedSimulator::with_shards(two_rack_network(32), target).unwrap();
            sim.enable_trace(TraceConfig::all());
            sim.run_for(SimDuration::from_millis(5)).unwrap();
            sim.take_trace()
        };
        let serial = run(1);
        assert_eq!(serial.dropped, 0);
        let sharded = run(2);
        assert_eq!(sharded.dropped, 0);
        assert_eq!(serial.digest(), sharded.digest());
        assert_eq!(serial.events.len(), sharded.events.len());
    }

    #[test]
    fn sharded_run_is_resumable() {
        let mut a = ShardedSimulator::with_shards(two_rack_network(16), 2).unwrap();
        let mut b = ShardedSimulator::with_shards(two_rack_network(16), 2).unwrap();
        a.run_for(SimDuration::from_millis(5)).unwrap();
        // Same total horizon, but in uneven pieces (some cutting through
        // mid-flight windows).
        for step_us in [3, 7, 90, 400, 4500] {
            b.run_for(SimDuration::from_micros(step_us)).unwrap();
        }
        b.run_until(SimTime::from_nanos(5_000_000)).unwrap();
        assert_eq!(a.now(), b.now());
        assert_eq!(a.events_processed(), b.events_processed());
        assert_eq!(
            a.agent::<Pinger>(NodeId::from_index(0)).unwrap().acked,
            b.agent::<Pinger>(NodeId::from_index(0)).unwrap().acked,
        );
    }

    #[test]
    fn sharded_time_reversal_is_typed() {
        let mut sim = ShardedSimulator::with_shards(two_rack_network(1), 2).unwrap();
        sim.run_until(SimTime::from_nanos(1000)).unwrap();
        let err = sim.run_until(SimTime::from_nanos(10)).unwrap_err();
        assert!(matches!(err, SimError::TimeReversal { .. }), "{err:?}");
    }

    #[test]
    fn faults_apply_identically_under_sharding() {
        let run = |target: usize| {
            let net = two_rack_network(32);
            let trunk = LinkId::from_index(1);
            let mut sim = ShardedSimulator::with_shards(net, target).unwrap();
            let plan = FaultPlan::new()
                .at(
                    SimTime::from_nanos(20_000),
                    trunk,
                    crate::FaultAction::LinkDown,
                )
                .at(
                    SimTime::from_nanos(400_000),
                    trunk,
                    crate::FaultAction::LinkUp,
                );
            sim.install_faults(&plan).unwrap();
            sim.run_for(SimDuration::from_millis(5)).unwrap();
            (
                sim.events_processed(),
                sim.agent::<Pinger>(NodeId::from_index(0)).unwrap().acked,
            )
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial.1, 32, "all packets delivered after link recovery");
    }

    #[test]
    fn env_override_is_validated() {
        // Not touching the process env (racy): exercise the parser path
        // through with_shards' serial fallback instead, and the error
        // variant directly.
        let err = "abc".parse::<usize>().map_err(|_| {
            SimError::InvalidConfig("DCTCP_SIM_SHARDS=\"abc\" is not a non-negative integer".into())
        });
        assert!(matches!(err, Err(SimError::InvalidConfig(_))));
    }
}
