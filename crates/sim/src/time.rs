//! Simulation clock types.
//!
//! The simulator uses an integer nanosecond clock. At 10 Gb/s a 1500-byte
//! packet serializes in 1200 ns, so nanosecond resolution keeps every
//! event instant exact and event ordering deterministic — two floats that
//! "should" be equal never tie-break differently across platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since simulation
/// start.
///
/// # Examples
///
/// ```
/// use dctcp_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(100);
/// assert_eq!(t.as_secs_f64(), 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for statistics and reports).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// The duration since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: {earlier} is after {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating duration since another instant (zero if `earlier` is in
    /// the future).
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Whether the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Serialization time of `bytes` at `rate_bps` bits per second,
    /// rounded up to the next nanosecond so a transmitter never finishes
    /// early.
    ///
    /// # Panics
    ///
    /// Panics if `rate_bps` is zero.
    pub fn transmission(bytes: u64, rate_bps: u64) -> Self {
        assert!(rate_bps > 0, "link rate must be positive");
        // Packet-sized inputs fit the numerator in 64 bits, where the
        // division is a single machine instruction instead of a 128-bit
        // software divide; both paths compute the same ceiling.
        if let Some(bits_ns) = bytes
            .checked_mul(8)
            .and_then(|b| b.checked_mul(1_000_000_000))
        {
            return SimDuration(bits_ns.div_ceil(rate_bps));
        }
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(rate_bps as u128);
        SimDuration(ns as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_nanos(500);
        let d = SimDuration::from_nanos(200);
        assert_eq!((t + d).duration_since(t), d);
        assert_eq!((t + d) - d, t);
        assert_eq!(d * 3, SimDuration::from_nanos(600));
        assert_eq!(d / 2, SimDuration::from_nanos(100));
    }

    #[test]
    fn transmission_time_1500b_at_10g() {
        // 1500 B = 12000 bits at 10^10 bps = 1200 ns.
        assert_eq!(
            SimDuration::transmission(1500, 10_000_000_000),
            SimDuration::from_nanos(1200)
        );
    }

    #[test]
    fn transmission_rounds_up() {
        // 1 byte at 3 bps = 8/3 s ≈ 2.666…; must round up.
        let d = SimDuration::transmission(1, 3);
        assert_eq!(d.as_nanos(), 2_666_666_667);
    }

    #[test]
    fn saturating_duration() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_duration_since(a), SimDuration::from_nanos(10));
    }

    #[test]
    #[should_panic(expected = "is after")]
    fn duration_since_panics_when_reversed() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(42).to_string(), "42ns");
        assert_eq!(SimDuration::from_micros(100).to_string(), "100.000us");
        assert_eq!(SimDuration::from_millis(10).to_string(), "10.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }
}
