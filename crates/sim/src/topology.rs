//! Topology construction and static routing.
//!
//! Routing is computed once at build time: a BFS from every destination
//! records *all* equal-cost first hops per `(src, dst)` pair into a
//! compact next-hop table ([`Routes`]). Packets crossing a node with
//! more than one candidate pick one by a seeded, purely functional ECMP
//! hash over `(flow, packet src, packet dst, current node)` — the same
//! packet takes the same path in every run, at every thread count and
//! at every shard count, because the choice depends only on packet
//! content and static tables.

use std::collections::VecDeque;

use dctcp_rng::SplitMix64;

use crate::link::Link;
use crate::node::Node;
use crate::{Agent, LinkId, LinkSpec, NodeId, Packet, QueueConfig, SimError};

/// Builds a network of hosts, switches and links, then computes static
/// shortest-path routes.
///
/// # Examples
///
/// A two-host dumbbell through one switch:
///
/// ```
/// use dctcp_sim::{LinkSpec, QueueConfig, TopologyBuilder};
/// # use dctcp_sim::{Agent, Context, Packet};
/// # #[derive(Debug)]
/// # struct Nop;
/// # impl Agent for Nop {
/// #     fn on_packet(&mut self, _p: Packet, _c: &mut Context<'_>) {}
/// #     fn as_any(&self) -> &dyn std::any::Any { self }
/// #     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
/// # }
///
/// let mut b = TopologyBuilder::new();
/// let h1 = b.host("h1", Box::new(Nop));
/// let h2 = b.host("h2", Box::new(Nop));
/// let s = b.switch("s1");
/// b.link(h1, s, LinkSpec::gbps(1.0, 10), QueueConfig::host_nic(), QueueConfig::host_nic())?;
/// b.link(s, h2, LinkSpec::gbps(1.0, 10), QueueConfig::host_nic(), QueueConfig::host_nic())?;
/// let network = b.build()?;
/// # Ok::<(), dctcp_sim::SimError>(())
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
    ecmp_seed: u64,
}

/// A validated topology with routing tables, ready to simulate.
#[derive(Debug)]
pub struct Network {
    pub(crate) nodes: Vec<Node>,
    pub(crate) links: Vec<Link>,
    pub(crate) routes: Routes,
}

/// Per-switch next-hop tables with equal-cost multipath support.
///
/// Stored in CSR form: `index[src * n + dst]` gives the offset and
/// count of the `(src, dst)` candidate group inside `hops`. Groups are
/// in link-id order, so the table itself is a pure function of the
/// topology — independent of build iteration order, thread count or
/// shard count.
#[derive(Debug, Clone)]
pub struct Routes {
    /// `(offset, candidate count)` per row-major `(src, dst)` pair.
    index: Vec<(u32, u16)>,
    /// Equal-cost `(link, transmitting end)` candidates, grouped per
    /// `(src, dst)` in link-id order.
    hops: Vec<(LinkId, usize)>,
    num_nodes: usize,
    /// Key material for the ECMP hash; part of every path decision.
    ecmp_seed: u64,
}

/// The seeded ECMP hash: a SplitMix64 absorption chain over the flow
/// id, the packet's endpoints, and the node making the decision. Every
/// input is packet content or static configuration, so the result is
/// identical across runs, thread counts and shard counts.
#[inline]
fn ecmp_hash(seed: u64, flow: u64, src: u32, dst: u32, node: u32) -> u64 {
    let mut h = SplitMix64::new(seed);
    for x in [
        flow,
        (u64::from(src) << 32) | u64::from(dst),
        u64::from(node),
    ] {
        let mixed = h.next_u64() ^ x;
        h = SplitMix64::new(mixed);
    }
    h.next_u64()
}

impl Routes {
    /// All equal-cost next hops from `src` toward `dst`, in link-id
    /// order. Empty when no route exists.
    pub fn candidates(&self, src: NodeId, dst: NodeId) -> &[(LinkId, usize)] {
        let (off, len) = self.index[src.index() * self.num_nodes + dst.index()];
        &self.hops[off as usize..off as usize + len as usize]
    }

    /// The deterministic ECMP choice for `pkt` at `node`: the single
    /// candidate when the shortest path is unique, otherwise the
    /// hash-selected member of the equal-cost group.
    #[inline]
    pub fn select(&self, node: NodeId, pkt: &Packet) -> Option<(LinkId, usize)> {
        let (off, len) = self.index[node.index() * self.num_nodes + pkt.dst.index()];
        match len {
            0 => None,
            1 => Some(self.hops[off as usize]),
            _ => {
                let h = ecmp_hash(
                    self.ecmp_seed,
                    pkt.flow.0,
                    pkt.src.index() as u32,
                    pkt.dst.index() as u32,
                    node.index() as u32,
                );
                Some(self.hops[off as usize + (h % u64::from(len)) as usize])
            }
        }
    }

    /// The seed feeding the ECMP hash.
    pub fn ecmp_seed(&self) -> u64 {
        self.ecmp_seed
    }

    /// First (lowest-link-id) candidate, if any.
    fn first(&self, src: NodeId, dst: NodeId) -> Option<(LinkId, usize)> {
        self.candidates(src, dst).first().copied()
    }
}

impl TopologyBuilder {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the seed for the deterministic ECMP hash (default 0). Only
    /// observable on topologies with equal-cost multipath.
    pub fn ecmp_seed(&mut self, seed: u64) -> &mut Self {
        self.ecmp_seed = seed;
        self
    }

    /// Adds a host running the given agent.
    pub fn host(&mut self, name: impl Into<String>, agent: Box<dyn Agent>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Host {
            name: name.into(),
            agent,
        });
        id
    }

    /// Adds a switch.
    pub fn switch(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Switch { name: name.into() });
        id
    }

    /// Connects `a` and `b` with a full-duplex link. `queue_ab` configures
    /// the queue at `a` transmitting toward `b`; `queue_ba` the reverse.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for self-links, unknown nodes, or invalid
    /// queue parameters.
    pub fn link(
        &mut self,
        a: NodeId,
        b: NodeId,
        spec: LinkSpec,
        queue_ab: QueueConfig,
        queue_ba: QueueConfig,
    ) -> Result<LinkId, SimError> {
        if a == b {
            return Err(SimError::InvalidTopology(format!("self-link at {a}")));
        }
        for n in [a, b] {
            if n.index() >= self.nodes.len() {
                return Err(SimError::InvalidTopology(format!("unknown node {n}")));
            }
        }
        if spec.rate_bps == 0 {
            return Err(SimError::InvalidTopology(format!(
                "zero-rate link between {a} and {b}"
            )));
        }
        let id = LinkId(self.links.len() as u32);
        self.links
            .push(Link::new(spec, a, &queue_ab, b, &queue_ba)?);
        Ok(id)
    }

    /// Validates the topology and computes shortest-path routes. All
    /// equal-cost first hops (BFS hop count) are recorded per `(src,
    /// dst)` pair in link-id order; single-path queries resolve to the
    /// lowest-link-id candidate, deterministically.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if any two hosts cannot reach each other.
    pub fn build(self) -> Result<Network, SimError> {
        let n = self.nodes.len();
        // Outgoing adjacency in link-id order: out[v] holds (u, link,
        // end-at-v) — the transmitting end v uses to send toward u.
        let mut out: Vec<Vec<(usize, LinkId, usize)>> = vec![Vec::new(); n];
        for (li, link) in self.links.iter().enumerate() {
            let (a, b) = (link.ends[0].node, link.ends[1].node);
            out[a.index()].push((b.index(), LinkId(li as u32), 0));
            out[b.index()].push((a.index(), LinkId(li as u32), 1));
        }

        // BFS from every destination, then collect every neighbor that
        // is strictly closer to the destination as an equal-cost first
        // hop. Strictly decreasing distance makes every selectable path
        // loop-free and shortest by construction.
        let mut index = vec![(0u32, 0u16); n * n];
        let mut hops: Vec<(LinkId, usize)> = Vec::new();
        let mut dist = vec![u32::MAX; n];
        for dst in 0..n {
            dist.fill(u32::MAX);
            let mut frontier = VecDeque::new();
            dist[dst] = 0;
            frontier.push_back(dst);
            while let Some(u) = frontier.pop_front() {
                for &(v, _, _) in &out[u] {
                    if dist[v] == u32::MAX {
                        dist[v] = dist[u] + 1;
                        frontier.push_back(v);
                    }
                }
            }
            for src in 0..n {
                if src == dst || dist[src] == u32::MAX {
                    continue;
                }
                let off = hops.len();
                for &(v, link, end) in &out[src] {
                    if dist[v] != u32::MAX && dist[v] + 1 == dist[src] {
                        hops.push((link, end));
                    }
                }
                let len = hops.len() - off;
                if len > usize::from(u16::MAX) {
                    return Err(SimError::InvalidTopology(format!(
                        "{len} equal-cost next hops from node {src} exceed the table limit"
                    )));
                }
                index[src * n + dst] = (off as u32, len as u16);
            }
            for (src, node) in self.nodes.iter().enumerate() {
                if src != dst
                    && node.is_host()
                    && self.nodes[dst].is_host()
                    && dist[src] == u32::MAX
                {
                    return Err(SimError::InvalidTopology(format!(
                        "host {} cannot reach host {}",
                        self.nodes[src].name(),
                        self.nodes[dst].name()
                    )));
                }
            }
        }

        Ok(Network {
            nodes: self.nodes,
            links: self.links,
            routes: Routes {
                index,
                hops,
                num_nodes: n,
                ecmp_seed: self.ecmp_seed,
            },
        })
    }
}

impl Network {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// The name given to a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of this network.
    pub fn node_name(&self, node: NodeId) -> &str {
        self.nodes[node.index()].name()
    }

    /// The lowest-link-id next hop from `src` toward `dst`, if a route
    /// exists. On equal-cost topologies, per-packet forwarding may pick
    /// a different member of [`Network::equal_cost_routes`].
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<(LinkId, usize)> {
        self.routes.first(src, dst)
    }

    /// Every equal-cost next hop from `src` toward `dst`, in link-id
    /// order.
    pub fn equal_cost_routes(&self, src: NodeId, dst: NodeId) -> &[(LinkId, usize)] {
        self.routes.candidates(src, dst)
    }

    /// The full next-hop table, including the ECMP selector.
    pub fn routes(&self) -> &Routes {
        &self.routes
    }

    /// The two endpoint nodes of a link, in transmitting-end order.
    ///
    /// # Panics
    ///
    /// Panics if `link` is not part of this network.
    pub fn link_ends(&self, link: LinkId) -> (NodeId, NodeId) {
        let l = &self.links[link.index()];
        (l.ends[0].node, l.ends[1].node)
    }
}

/// Link rate/delay and queue configuration for one fat-tree tier.
#[derive(Debug, Clone, Copy)]
pub struct TierSpec {
    /// Full-duplex link parameters for every link of the tier.
    pub link: LinkSpec,
    /// Queue configuration at switch-side transmitting ends of the
    /// tier. (Host NIC ends always use [`QueueConfig::host_nic`].)
    pub queue: QueueConfig,
}

impl TierSpec {
    /// A tier with the given link spec and switch queue.
    pub fn new(link: LinkSpec, queue: QueueConfig) -> Self {
        TierSpec { link, queue }
    }
}

/// A parameterized k-ary fat-tree (folded Clos) topology: `k` pods of
/// `k/2` edge and `k/2` aggregation switches each, `(k/2)²` cores, and
/// `hosts_per_edge` hosts under every edge switch. Aggregation switch
/// `a` of every pod connects to cores `a·k/2 .. (a+1)·k/2`, giving
/// `(k/2)²` equal-cost paths between hosts in different pods.
///
/// Node creation order is hosts (pod-major), then edges, aggregations
/// and cores, so host indices are dense from zero. Tier delays are free
/// parameters, but giving core links the largest propagation delay lets
/// the sharded engine split the tree into per-pod domains with the core
/// delay as lookahead.
#[derive(Debug, Clone)]
pub struct FatTree {
    k: u32,
    hosts_per_edge: u32,
    host_tier: TierSpec,
    agg_tier: TierSpec,
    core_tier: TierSpec,
    ecmp_seed: u64,
}

/// Node and link ids of a built fat-tree, grouped per tier.
#[derive(Debug, Clone)]
pub struct FatTreeIds {
    /// Hosts, pod-major then edge-major: host `i` sits under edge
    /// `i / hosts_per_edge`.
    pub hosts: Vec<NodeId>,
    /// Edge switches, pod-major (`k/2` per pod).
    pub edges: Vec<NodeId>,
    /// Aggregation switches, pod-major (`k/2` per pod).
    pub aggs: Vec<NodeId>,
    /// Core switches (`(k/2)²`).
    pub cores: Vec<NodeId>,
    /// Host↔edge access links, in host order.
    pub host_links: Vec<LinkId>,
    /// Edge↔aggregation pod-fabric links.
    pub pod_links: Vec<LinkId>,
    /// Aggregation↔core links.
    pub core_links: Vec<LinkId>,
}

/// A built fat-tree: the validated network plus its tier id map.
#[derive(Debug)]
pub struct FatTreeNet {
    /// The routed network, ready for a simulator.
    pub network: Network,
    /// Per-tier node and link ids.
    pub ids: FatTreeIds,
}

impl FatTree {
    /// A fat-tree of arity `k` with `hosts_per_edge` hosts per edge
    /// switch, using placeholder 10/10/40 Gb/s tiers. Configure tiers
    /// with [`FatTree::with_tiers`]; validation happens in
    /// [`FatTree::build`].
    pub fn new(k: u32, hosts_per_edge: u32) -> Self {
        let nic = QueueConfig::host_nic();
        FatTree {
            k,
            hosts_per_edge,
            host_tier: TierSpec::new(LinkSpec::gbps(10.0, 5), nic),
            agg_tier: TierSpec::new(LinkSpec::gbps(10.0, 10), nic),
            core_tier: TierSpec::new(LinkSpec::gbps(40.0, 20), nic),
            ecmp_seed: 0,
        }
    }

    /// Sets the per-tier link and queue parameters (host↔edge,
    /// edge↔aggregation, aggregation↔core).
    pub fn with_tiers(mut self, host: TierSpec, agg: TierSpec, core: TierSpec) -> Self {
        self.host_tier = host;
        self.agg_tier = agg;
        self.core_tier = core;
        self
    }

    /// Sets the ECMP hash seed baked into the routing tables.
    pub fn ecmp_seed(mut self, seed: u64) -> Self {
        self.ecmp_seed = seed;
        self
    }

    /// Total number of hosts: `k · (k/2) · hosts_per_edge`.
    pub fn num_hosts(&self) -> usize {
        self.k as usize * (self.k as usize / 2) * self.hosts_per_edge as usize
    }

    /// Checks the arity, host count and tier parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an odd or out-of-range
    /// `k`, zero hosts per edge, a zero-rate or zero-delay tier, or a
    /// zero-capacity tier queue.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.k < 4 || self.k > 16 {
            return Err(SimError::InvalidConfig(format!(
                "fat-tree arity k = {} must be in 4..=16",
                self.k
            )));
        }
        if self.k % 2 != 0 {
            return Err(SimError::InvalidConfig(format!(
                "fat-tree arity k = {} must be even",
                self.k
            )));
        }
        if self.hosts_per_edge == 0 {
            return Err(SimError::InvalidConfig(
                "fat-tree needs at least one host per edge switch".into(),
            ));
        }
        for (name, tier) in [
            ("host", &self.host_tier),
            ("agg", &self.agg_tier),
            ("core", &self.core_tier),
        ] {
            if tier.link.rate_bps == 0 {
                return Err(SimError::InvalidConfig(format!(
                    "fat-tree {name} tier has a zero-rate link"
                )));
            }
            if tier.link.delay.is_zero() {
                return Err(SimError::InvalidConfig(format!(
                    "fat-tree {name} tier has a zero-delay link"
                )));
            }
            let empty = match tier.queue.capacity {
                crate::Capacity::Packets(p) => p == 0,
                crate::Capacity::Bytes(b) => b == 0,
                crate::Capacity::Unbounded => false,
            };
            if empty {
                return Err(SimError::InvalidConfig(format!(
                    "fat-tree {name} tier queue has zero capacity"
                )));
            }
        }
        Ok(())
    }

    /// Builds and routes the fat-tree. `agents` is called once per host
    /// index (0 .. [`FatTree::num_hosts`]) to supply each host's agent.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for invalid parameters (see
    /// [`FatTree::validate`]) and propagates link construction errors.
    pub fn build<F>(&self, mut agents: F) -> Result<FatTreeNet, SimError>
    where
        F: FnMut(usize) -> Box<dyn Agent>,
    {
        self.validate()?;
        let k = self.k as usize;
        let half = k / 2;
        let hpe = self.hosts_per_edge as usize;
        let mut b = TopologyBuilder::new();
        b.ecmp_seed(self.ecmp_seed);

        let hosts: Vec<NodeId> = (0..self.num_hosts())
            .map(|i| b.host(format!("h{i}"), agents(i)))
            .collect();
        let mut edges = Vec::with_capacity(k * half);
        let mut aggs = Vec::with_capacity(k * half);
        for p in 0..k {
            for e in 0..half {
                edges.push(b.switch(format!("edge{p}_{e}")));
            }
        }
        for p in 0..k {
            for a in 0..half {
                aggs.push(b.switch(format!("agg{p}_{a}")));
            }
        }
        let cores: Vec<NodeId> = (0..half * half)
            .map(|c| b.switch(format!("core{c}")))
            .collect();

        let mut host_links = Vec::with_capacity(hosts.len());
        for (i, &h) in hosts.iter().enumerate() {
            host_links.push(b.link(
                h,
                edges[i / hpe],
                self.host_tier.link,
                QueueConfig::host_nic(),
                self.host_tier.queue,
            )?);
        }
        let mut pod_links = Vec::with_capacity(k * half * half);
        for p in 0..k {
            for e in 0..half {
                for a in 0..half {
                    pod_links.push(b.link(
                        edges[p * half + e],
                        aggs[p * half + a],
                        self.agg_tier.link,
                        self.agg_tier.queue,
                        self.agg_tier.queue,
                    )?);
                }
            }
        }
        let mut core_links = Vec::with_capacity(k * half * half);
        for p in 0..k {
            for a in 0..half {
                for c in 0..half {
                    core_links.push(b.link(
                        aggs[p * half + a],
                        cores[a * half + c],
                        self.core_tier.link,
                        self.core_tier.queue,
                        self.core_tier.queue,
                    )?);
                }
            }
        }
        Ok(FatTreeNet {
            network: b.build()?,
            ids: FatTreeIds {
                hosts,
                edges,
                aggs,
                cores,
                host_links,
                pod_links,
                core_links,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Context, FlowId, Packet};
    use std::any::Any;

    #[derive(Debug)]
    struct Nop;

    impl Agent for Nop {
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Context<'_>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn nic() -> QueueConfig {
        QueueConfig::host_nic()
    }

    #[test]
    fn star_routes_through_hub() {
        let mut b = TopologyBuilder::new();
        let hub = b.switch("hub");
        let hosts: Vec<NodeId> = (0..4)
            .map(|i| b.host(format!("h{i}"), Box::new(Nop)))
            .collect();
        let mut links = Vec::new();
        for &h in &hosts {
            links.push(
                b.link(h, hub, LinkSpec::gbps(1.0, 5), nic(), nic())
                    .unwrap(),
            );
        }
        let net = b.build().unwrap();
        // h0 -> h3 goes via its own uplink first.
        let (l, end) = net.route(hosts[0], hosts[3]).unwrap();
        assert_eq!(l, links[0]);
        assert_eq!(end, 0); // transmitting from the host side
                            // hub -> h3 uses h3's access link, transmitting from the hub side.
        let (l, end) = net.route(hub, hosts[3]).unwrap();
        assert_eq!(l, links[3]);
        assert_eq!(end, 1);
    }

    #[test]
    fn disconnected_hosts_rejected() {
        let mut b = TopologyBuilder::new();
        let _h1 = b.host("h1", Box::new(Nop));
        let _h2 = b.host("h2", Box::new(Nop));
        let err = b.build().unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(_)));
    }

    #[test]
    fn self_link_rejected() {
        let mut b = TopologyBuilder::new();
        let h = b.host("h", Box::new(Nop));
        let err = b
            .link(h, h, LinkSpec::gbps(1.0, 1), nic(), nic())
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(_)));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = TopologyBuilder::new();
        let h = b.host("h", Box::new(Nop));
        let ghost = NodeId::from_index(42);
        assert!(b
            .link(h, ghost, LinkSpec::gbps(1.0, 1), nic(), nic())
            .is_err());
    }

    #[test]
    fn zero_rate_rejected() {
        let mut b = TopologyBuilder::new();
        let h1 = b.host("h1", Box::new(Nop));
        let h2 = b.host("h2", Box::new(Nop));
        let spec = LinkSpec {
            rate_bps: 0,
            delay: crate::SimDuration::from_micros(1),
        };
        assert!(b.link(h1, h2, spec, nic(), nic()).is_err());
    }

    #[test]
    fn multihop_chain_routes_hop_by_hop() {
        // h1 - s1 - s2 - h2
        let mut b = TopologyBuilder::new();
        let h1 = b.host("h1", Box::new(Nop));
        let s1 = b.switch("s1");
        let s2 = b.switch("s2");
        let h2 = b.host("h2", Box::new(Nop));
        let l0 = b
            .link(h1, s1, LinkSpec::gbps(1.0, 1), nic(), nic())
            .unwrap();
        let l1 = b
            .link(s1, s2, LinkSpec::gbps(1.0, 1), nic(), nic())
            .unwrap();
        let l2 = b
            .link(s2, h2, LinkSpec::gbps(1.0, 1), nic(), nic())
            .unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.route(h1, h2).unwrap().0, l0);
        assert_eq!(net.route(s1, h2).unwrap().0, l1);
        assert_eq!(net.route(s2, h2).unwrap().0, l2);
        // And the reverse path.
        assert_eq!(net.route(h2, h1).unwrap().0, l2);
        assert_eq!(net.route(s2, h1).unwrap().0, l1);
    }

    #[test]
    fn network_accessors() {
        let mut b = TopologyBuilder::new();
        let h1 = b.host("alpha", Box::new(Nop));
        let h2 = b.host("beta", Box::new(Nop));
        let l = b
            .link(h1, h2, LinkSpec::gbps(1.0, 1), nic(), nic())
            .unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.num_nodes(), 2);
        assert_eq!(net.num_links(), 1);
        assert_eq!(net.node_name(h1), "alpha");
        assert_eq!(net.link_ends(l), (h1, h2));
    }

    /// A diamond (h1 - s1 - {sa, sb} - s2 - h2) has two equal-cost
    /// paths; the candidate set is exposed in link-id order.
    fn diamond() -> (Network, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let h1 = b.host("h1", Box::new(Nop));
        let h2 = b.host("h2", Box::new(Nop));
        let s1 = b.switch("s1");
        let sa = b.switch("sa");
        let sb = b.switch("sb");
        let s2 = b.switch("s2");
        let spec = LinkSpec::gbps(1.0, 5);
        b.link(h1, s1, spec, nic(), nic()).unwrap();
        b.link(s1, sa, spec, nic(), nic()).unwrap();
        b.link(s1, sb, spec, nic(), nic()).unwrap();
        b.link(sa, s2, spec, nic(), nic()).unwrap();
        b.link(sb, s2, spec, nic(), nic()).unwrap();
        b.link(s2, h2, spec, nic(), nic()).unwrap();
        (b.build().unwrap(), h1, h2, s1)
    }

    #[test]
    fn equal_cost_candidates_exposed_in_link_id_order() {
        let (net, h1, h2, s1) = diamond();
        let set = net.equal_cost_routes(s1, h2);
        assert_eq!(set.len(), 2);
        assert!(set[0].0 < set[1].0, "candidates must be link-id ordered");
        // The single-path legs are unique.
        assert_eq!(net.equal_cost_routes(h1, h2).len(), 1);
        // route() is the lowest-link-id candidate.
        assert_eq!(net.route(s1, h2), Some(set[0]));
    }

    #[test]
    fn ecmp_selection_is_deterministic_and_flow_sensitive() {
        let (net, h1, h2, s1) = diamond();
        let pick = |flow: u64| {
            net.routes()
                .select(s1, &Packet::data(FlowId(flow), h1, h2, 0, 1460))
                .unwrap()
        };
        let mut seen = std::collections::BTreeSet::new();
        for flow in 0..64 {
            // Same packet, same choice — repeatedly.
            assert_eq!(pick(flow), pick(flow));
            seen.insert(pick(flow).0);
        }
        // Across many flows both equal-cost links are exercised.
        assert_eq!(seen.len(), 2, "hash never spread across candidates");
    }

    #[test]
    fn ecmp_seed_changes_the_spread() {
        let build = |seed: u64| {
            let mut b = TopologyBuilder::new();
            b.ecmp_seed(seed);
            let h1 = b.host("h1", Box::new(Nop));
            let h2 = b.host("h2", Box::new(Nop));
            let s1 = b.switch("s1");
            let sa = b.switch("sa");
            let sb = b.switch("sb");
            let s2 = b.switch("s2");
            let spec = LinkSpec::gbps(1.0, 5);
            b.link(h1, s1, spec, nic(), nic()).unwrap();
            b.link(s1, sa, spec, nic(), nic()).unwrap();
            b.link(s1, sb, spec, nic(), nic()).unwrap();
            b.link(sa, s2, spec, nic(), nic()).unwrap();
            b.link(sb, s2, spec, nic(), nic()).unwrap();
            b.link(s2, h2, spec, nic(), nic()).unwrap();
            let net = b.build().unwrap();
            let picks: Vec<LinkId> = (0..32)
                .map(|f| {
                    net.routes()
                        .select(s1, &Packet::data(FlowId(f), h1, h2, 0, 1460))
                        .unwrap()
                        .0
                })
                .collect();
            picks
        };
        assert_ne!(build(1), build(2), "seed must be ECMP key material");
    }

    #[test]
    fn fat_tree_k4_shape() {
        let ft = FatTree::new(4, 2);
        let built = ft.build(|_| Box::new(Nop)).unwrap();
        let (net, ids) = (built.network, built.ids);
        assert_eq!(ids.hosts.len(), 16);
        assert_eq!(ids.edges.len(), 8);
        assert_eq!(ids.aggs.len(), 8);
        assert_eq!(ids.cores.len(), 4);
        assert_eq!(net.num_nodes(), 36);
        assert_eq!(net.num_links(), 16 + 16 + 16);
        // Inter-pod: the edge switch fans out over both pod aggs.
        let h0 = ids.hosts[0];
        let far = ids.hosts[15];
        assert_eq!(net.equal_cost_routes(ids.edges[0], far).len(), 2);
        // And each agg fans out over its two cores.
        assert_eq!(net.equal_cost_routes(ids.aggs[0], far).len(), 2);
        // The host's own uplink is unique.
        assert_eq!(net.equal_cost_routes(h0, far).len(), 1);
    }

    #[test]
    fn fat_tree_invalid_parameters_are_typed_errors() {
        let invalid = |ft: FatTree| {
            let err = ft.build(|_| Box::new(Nop) as Box<dyn Agent>).unwrap_err();
            assert!(
                matches!(err, SimError::InvalidConfig(_)),
                "expected InvalidConfig, got {err:?}"
            );
            err.to_string()
        };
        assert!(invalid(FatTree::new(5, 2)).contains("even"));
        assert!(invalid(FatTree::new(2, 2)).contains("4..=16"));
        assert!(invalid(FatTree::new(18, 2)).contains("4..=16"));
        assert!(invalid(FatTree::new(4, 0)).contains("host per edge"));

        let zero_rate = FatTree::new(4, 1).with_tiers(
            TierSpec::new(
                LinkSpec {
                    rate_bps: 0,
                    delay: crate::SimDuration::from_micros(1),
                },
                nic(),
            ),
            TierSpec::new(LinkSpec::gbps(10.0, 10), nic()),
            TierSpec::new(LinkSpec::gbps(10.0, 20), nic()),
        );
        assert!(invalid(zero_rate).contains("zero-rate"));

        let zero_delay = FatTree::new(4, 1).with_tiers(
            TierSpec::new(LinkSpec::gbps(10.0, 5), nic()),
            TierSpec::new(
                LinkSpec {
                    rate_bps: 10_000_000_000,
                    delay: crate::SimDuration::ZERO,
                },
                nic(),
            ),
            TierSpec::new(LinkSpec::gbps(10.0, 20), nic()),
        );
        assert!(invalid(zero_delay).contains("zero-delay"));

        let zero_cap = FatTree::new(4, 1).with_tiers(
            TierSpec::new(LinkSpec::gbps(10.0, 5), nic()),
            TierSpec::new(LinkSpec::gbps(10.0, 10), nic()),
            TierSpec::new(
                LinkSpec::gbps(10.0, 20),
                QueueConfig {
                    capacity: crate::Capacity::Packets(0),
                    ..nic()
                },
            ),
        );
        assert!(invalid(zero_cap).contains("zero capacity"));
    }
}
