//! Topology construction and static routing.

use std::collections::VecDeque;

use crate::link::Link;
use crate::node::Node;
use crate::{Agent, LinkId, LinkSpec, NodeId, QueueConfig, SimError};

/// Builds a network of hosts, switches and links, then computes static
/// shortest-path routes.
///
/// # Examples
///
/// A two-host dumbbell through one switch:
///
/// ```
/// use dctcp_sim::{LinkSpec, QueueConfig, TopologyBuilder};
/// # use dctcp_sim::{Agent, Context, Packet};
/// # #[derive(Debug)]
/// # struct Nop;
/// # impl Agent for Nop {
/// #     fn on_packet(&mut self, _p: Packet, _c: &mut Context<'_>) {}
/// #     fn as_any(&self) -> &dyn std::any::Any { self }
/// #     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
/// # }
///
/// let mut b = TopologyBuilder::new();
/// let h1 = b.host("h1", Box::new(Nop));
/// let h2 = b.host("h2", Box::new(Nop));
/// let s = b.switch("s1");
/// b.link(h1, s, LinkSpec::gbps(1.0, 10), QueueConfig::host_nic(), QueueConfig::host_nic())?;
/// b.link(s, h2, LinkSpec::gbps(1.0, 10), QueueConfig::host_nic(), QueueConfig::host_nic())?;
/// let network = b.build()?;
/// # Ok::<(), dctcp_sim::SimError>(())
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

/// A validated topology with routing tables, ready to simulate.
#[derive(Debug)]
pub struct Network {
    pub(crate) nodes: Vec<Node>,
    pub(crate) links: Vec<Link>,
    /// `routes[src][dst]` = the link and transmitting end to use for the
    /// next hop from `src` toward `dst`.
    pub(crate) routes: Vec<Vec<Option<(LinkId, usize)>>>,
}

impl TopologyBuilder {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a host running the given agent.
    pub fn host(&mut self, name: impl Into<String>, agent: Box<dyn Agent>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Host {
            name: name.into(),
            agent,
        });
        id
    }

    /// Adds a switch.
    pub fn switch(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::Switch { name: name.into() });
        id
    }

    /// Connects `a` and `b` with a full-duplex link. `queue_ab` configures
    /// the queue at `a` transmitting toward `b`; `queue_ba` the reverse.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for self-links, unknown nodes, or invalid
    /// queue parameters.
    pub fn link(
        &mut self,
        a: NodeId,
        b: NodeId,
        spec: LinkSpec,
        queue_ab: QueueConfig,
        queue_ba: QueueConfig,
    ) -> Result<LinkId, SimError> {
        if a == b {
            return Err(SimError::InvalidTopology(format!("self-link at {a}")));
        }
        for n in [a, b] {
            if n.index() >= self.nodes.len() {
                return Err(SimError::InvalidTopology(format!("unknown node {n}")));
            }
        }
        if spec.rate_bps == 0 {
            return Err(SimError::InvalidTopology(format!(
                "zero-rate link between {a} and {b}"
            )));
        }
        let id = LinkId(self.links.len() as u32);
        self.links
            .push(Link::new(spec, a, &queue_ab, b, &queue_ba)?);
        Ok(id)
    }

    /// Validates the topology and computes shortest-path routes (BFS hop
    /// count; ties broken by lowest link id, deterministically).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if any two hosts cannot reach each other.
    pub fn build(self) -> Result<Network, SimError> {
        let n = self.nodes.len();
        // Adjacency: node -> [(neighbor, link, transmitting end)].
        // adj[u] holds (v, link, end-at-v): the transmitting end v would
        // use to send toward u over this link.
        let mut adj: Vec<Vec<(usize, LinkId, usize)>> = vec![Vec::new(); n];
        for (li, link) in self.links.iter().enumerate() {
            let (a, b) = (link.ends[0].node, link.ends[1].node);
            adj[a.index()].push((b.index(), LinkId(li as u32), 1));
            adj[b.index()].push((a.index(), LinkId(li as u32), 0));
        }

        // BFS from every destination: routes[src][dst] = first hop.
        let mut routes: Vec<Vec<Option<(LinkId, usize)>>> = vec![vec![None; n]; n];
        for dst in 0..n {
            let mut dist = vec![usize::MAX; n];
            let mut frontier = VecDeque::new();
            dist[dst] = 0;
            frontier.push_back(dst);
            while let Some(u) = frontier.pop_front() {
                // Deterministic neighbor order: as inserted (link id order).
                for &(v, link, end_at_v_to_u) in &adj[u] {
                    // Edge u <-> v; from v the transmitting end toward u.
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        routes[v][dst] = Some((link, end_at_v_to_u));
                        frontier.push_back(v);
                    }
                }
            }
            for (src, node) in self.nodes.iter().enumerate() {
                if src != dst
                    && node.is_host()
                    && self.nodes[dst].is_host()
                    && routes[src][dst].is_none()
                {
                    return Err(SimError::InvalidTopology(format!(
                        "host {} cannot reach host {}",
                        self.nodes[src].name(),
                        self.nodes[dst].name()
                    )));
                }
            }
        }

        Ok(Network {
            nodes: self.nodes,
            links: self.links,
            routes,
        })
    }
}

impl Network {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// The name given to a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of this network.
    pub fn node_name(&self, node: NodeId) -> &str {
        self.nodes[node.index()].name()
    }

    /// The next-hop link and transmitting end from `src` toward `dst`,
    /// if a route exists.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<(LinkId, usize)> {
        self.routes[src.index()][dst.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Context, Packet};
    use std::any::Any;

    #[derive(Debug)]
    struct Nop;

    impl Agent for Nop {
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Context<'_>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn nic() -> QueueConfig {
        QueueConfig::host_nic()
    }

    #[test]
    fn star_routes_through_hub() {
        let mut b = TopologyBuilder::new();
        let hub = b.switch("hub");
        let hosts: Vec<NodeId> = (0..4)
            .map(|i| b.host(format!("h{i}"), Box::new(Nop)))
            .collect();
        let mut links = Vec::new();
        for &h in &hosts {
            links.push(
                b.link(h, hub, LinkSpec::gbps(1.0, 5), nic(), nic())
                    .unwrap(),
            );
        }
        let net = b.build().unwrap();
        // h0 -> h3 goes via its own uplink first.
        let (l, end) = net.route(hosts[0], hosts[3]).unwrap();
        assert_eq!(l, links[0]);
        assert_eq!(end, 0); // transmitting from the host side
                            // hub -> h3 uses h3's access link, transmitting from the hub side.
        let (l, end) = net.route(hub, hosts[3]).unwrap();
        assert_eq!(l, links[3]);
        assert_eq!(end, 1);
    }

    #[test]
    fn disconnected_hosts_rejected() {
        let mut b = TopologyBuilder::new();
        let _h1 = b.host("h1", Box::new(Nop));
        let _h2 = b.host("h2", Box::new(Nop));
        let err = b.build().unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(_)));
    }

    #[test]
    fn self_link_rejected() {
        let mut b = TopologyBuilder::new();
        let h = b.host("h", Box::new(Nop));
        let err = b
            .link(h, h, LinkSpec::gbps(1.0, 1), nic(), nic())
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidTopology(_)));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = TopologyBuilder::new();
        let h = b.host("h", Box::new(Nop));
        let ghost = NodeId::from_index(42);
        assert!(b
            .link(h, ghost, LinkSpec::gbps(1.0, 1), nic(), nic())
            .is_err());
    }

    #[test]
    fn zero_rate_rejected() {
        let mut b = TopologyBuilder::new();
        let h1 = b.host("h1", Box::new(Nop));
        let h2 = b.host("h2", Box::new(Nop));
        let spec = LinkSpec {
            rate_bps: 0,
            delay: crate::SimDuration::from_micros(1),
        };
        assert!(b.link(h1, h2, spec, nic(), nic()).is_err());
    }

    #[test]
    fn multihop_chain_routes_hop_by_hop() {
        // h1 - s1 - s2 - h2
        let mut b = TopologyBuilder::new();
        let h1 = b.host("h1", Box::new(Nop));
        let s1 = b.switch("s1");
        let s2 = b.switch("s2");
        let h2 = b.host("h2", Box::new(Nop));
        let l0 = b
            .link(h1, s1, LinkSpec::gbps(1.0, 1), nic(), nic())
            .unwrap();
        let l1 = b
            .link(s1, s2, LinkSpec::gbps(1.0, 1), nic(), nic())
            .unwrap();
        let l2 = b
            .link(s2, h2, LinkSpec::gbps(1.0, 1), nic(), nic())
            .unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.route(h1, h2).unwrap().0, l0);
        assert_eq!(net.route(s1, h2).unwrap().0, l1);
        assert_eq!(net.route(s2, h2).unwrap().0, l2);
        // And the reverse path.
        assert_eq!(net.route(h2, h1).unwrap().0, l2);
        assert_eq!(net.route(s2, h1).unwrap().0, l1);
    }

    #[test]
    fn network_accessors() {
        let mut b = TopologyBuilder::new();
        let h1 = b.host("alpha", Box::new(Nop));
        let h2 = b.host("beta", Box::new(Nop));
        b.link(h1, h2, LinkSpec::gbps(1.0, 1), nic(), nic())
            .unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.num_nodes(), 2);
        assert_eq!(net.num_links(), 1);
        assert_eq!(net.node_name(h1), "alpha");
    }
}
