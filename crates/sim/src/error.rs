//! Simulator errors.

use std::error::Error;
use std::fmt;

use dctcp_core::ParamError;

/// Errors from building or running a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The topology is malformed (disconnected hosts, self-links,
    /// duplicate attachments, …).
    InvalidTopology(String),
    /// A queue or algorithm parameter is invalid.
    Param(ParamError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            SimError::Param(e) => write!(f, "invalid parameter: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Param(e) => Some(e),
            SimError::InvalidTopology(_) => None,
        }
    }
}

impl From<ParamError> for SimError {
    fn from(e: ParamError) -> Self {
        SimError::Param(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_lowercase_and_informative() {
        let e = SimError::InvalidTopology("host h9 unreachable".into());
        assert_eq!(e.to_string(), "invalid topology: host h9 unreachable");
    }

    #[test]
    fn param_error_chains_source() {
        let inner = dctcp_core::DoubleThreshold::new(
            dctcp_core::QueueLevel::Packets(5),
            dctcp_core::QueueLevel::Packets(5),
        )
        .unwrap_err();
        let e = SimError::from(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
