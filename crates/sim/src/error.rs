//! Simulator errors.

use std::error::Error;
use std::fmt;

use dctcp_core::ParamError;

use crate::{LinkId, NodeId, SimTime};

/// Errors from building or running a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The topology is malformed (disconnected hosts, self-links,
    /// duplicate attachments, …).
    InvalidTopology(String),
    /// A queue or algorithm parameter is invalid.
    Param(ParamError),
    /// A queue fault-injection or reordering configuration is invalid
    /// (out-of-range probability, zero reorder depth, …).
    InvalidConfig(String),
    /// A node id does not name any node in this network.
    UnknownNode(NodeId),
    /// The node exists but is a switch, and the operation needs a host
    /// agent.
    NotAHost(NodeId),
    /// The host exists but runs an agent of a different concrete type
    /// than the one requested.
    AgentTypeMismatch(NodeId),
    /// A link id does not name any link in this network.
    UnknownLink(LinkId),
    /// A fault event was scheduled in the simulation's past.
    FaultInPast {
        /// The requested fault instant.
        at: SimTime,
        /// The simulator clock when the plan was installed.
        now: SimTime,
    },
    /// `run_until` was asked to run to an instant before the current
    /// clock.
    TimeReversal {
        /// The current simulator clock.
        now: SimTime,
        /// The requested (earlier) target instant.
        requested: SimTime,
    },
    /// The progress watchdog tripped: too many events fired at a single
    /// instant without the clock advancing (an agent is looping on
    /// zero-delay timers or messages).
    Livelock {
        /// The instant the simulation is stuck at.
        at: SimTime,
        /// Events dispatched at that instant before giving up.
        dispatched: u64,
    },
    /// The run's total event budget was exhausted before reaching the
    /// target time.
    EventBudgetExhausted {
        /// The configured budget.
        budget: u64,
        /// The simulator clock when the budget ran out.
        at: SimTime,
    },
    /// An external supervisor fired the run's
    /// [`CancelToken`](crate::CancelToken) (wall-clock deadline,
    /// shutdown request) and the event loop stopped cooperatively.
    Cancelled {
        /// The simulator clock when the cancellation was observed.
        at: SimTime,
    },
    /// A worker thread of a sharded run panicked. The window barrier is
    /// still released (no deadlock); the run as a whole fails with this
    /// error and the panic message.
    ShardPanicked {
        /// Index of the shard whose worker panicked.
        shard: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            SimError::Param(e) => write!(f, "invalid parameter: {e}"),
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::UnknownNode(n) => write!(f, "unknown node {n}"),
            SimError::NotAHost(n) => write!(f, "node {n} is a switch, not a host"),
            SimError::AgentTypeMismatch(n) => {
                write!(f, "host {n} runs a different agent type")
            }
            SimError::UnknownLink(l) => write!(f, "unknown link {l}"),
            SimError::FaultInPast { at, now } => {
                write!(f, "fault scheduled at {at}, before current time {now}")
            }
            SimError::TimeReversal { now, requested } => {
                write!(f, "cannot run backwards to {requested} from {now}")
            }
            SimError::Livelock { at, dispatched } => write!(
                f,
                "livelock: {dispatched} events dispatched at {at} without the clock advancing"
            ),
            SimError::EventBudgetExhausted { budget, at } => {
                write!(f, "event budget of {budget} exhausted at {at}")
            }
            SimError::Cancelled { at } => {
                write!(f, "run cancelled by supervisor at {at}")
            }
            SimError::ShardPanicked { shard, message } => {
                write!(f, "shard {shard} worker panicked: {message}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Param(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParamError> for SimError {
    fn from(e: ParamError) -> Self {
        SimError::Param(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_lowercase_and_informative() {
        let e = SimError::InvalidTopology("host h9 unreachable".into());
        assert_eq!(e.to_string(), "invalid topology: host h9 unreachable");
        let e = SimError::Livelock {
            at: SimTime::from_nanos(5),
            dispatched: 1000,
        };
        assert!(e.to_string().contains("livelock"));
        let e = SimError::TimeReversal {
            now: SimTime::from_nanos(100),
            requested: SimTime::from_nanos(50),
        };
        assert!(e.to_string().contains("cannot run backwards"));
    }

    #[test]
    fn param_error_chains_source() {
        let inner = dctcp_core::DoubleThreshold::new(
            dctcp_core::QueueLevel::Packets(5),
            dctcp_core::QueueLevel::Packets(4),
        )
        .unwrap_err();
        let e = SimError::from(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
