//! Scheduled, deterministic fault injection.
//!
//! A [`FaultPlan`] is a time-scripted list of [`FaultAction`]s bound to
//! links: link flaps (down/up), and ECN bleaching windows during which CE
//! marks are stripped from packets departing either end of a link. Plans
//! are installed with [`Simulator::install_faults`](crate::Simulator::install_faults)
//! and fire as ordinary simulation events, so fault runs replay
//! bit-identically per seed like everything else in the engine.
//!
//! Loss and reordering faults live on individual queues (see
//! [`LossModel`](crate::LossModel) and
//! [`QueueConfig::with_reorder`](crate::QueueConfig::with_reorder)); this
//! module covers faults whose timing is part of the scenario script.

use dctcp_rng::Pcg32;

use crate::{LinkId, SimDuration, SimTime};

/// One fault applied to a link when its scheduled instant arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultAction {
    /// Take the link down: neither transmitter starts new packets.
    /// Packets already serialized keep propagating and deliver; queued
    /// packets wait for the link to come back.
    LinkDown,
    /// Bring the link back up and restart both transmitters.
    LinkUp,
    /// Start stripping CE marks from packets departing either end of the
    /// link (a broken middlebox erasing congestion signals).
    BleachOn,
    /// Stop stripping CE marks.
    BleachOff,
}

/// A [`FaultAction`] bound to a link and an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// The link it applies to.
    pub link: LinkId,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic, time-scripted fault schedule.
///
/// Build one by chaining [`at`](FaultPlan::at) /
/// [`flap`](FaultPlan::flap) / [`bleach_window`](FaultPlan::bleach_window),
/// or generate a seeded random plan with
/// [`randomized`](FaultPlan::randomized) for chaos testing.
///
/// # Examples
///
/// ```
/// use dctcp_sim::{FaultPlan, LinkId, SimDuration, SimTime};
///
/// let link = LinkId::from_index(0);
/// let plan = FaultPlan::new()
///     .flap(
///         link,
///         SimTime::from_nanos(1_000_000),
///         SimDuration::from_micros(200),
///         SimDuration::from_millis(1),
///         3,
///     )
///     .bleach_window(link, SimTime::from_nanos(0), SimTime::from_nanos(500_000));
/// assert_eq!(plan.len(), 8); // 3 x (down + up) + bleach on/off
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Appends one fault event.
    pub fn push(&mut self, at: SimTime, link: LinkId, action: FaultAction) {
        self.events.push(FaultEvent { at, link, action });
    }

    /// Builder form of [`push`](FaultPlan::push).
    pub fn at(mut self, at: SimTime, link: LinkId, action: FaultAction) -> Self {
        self.push(at, link, action);
        self
    }

    /// Schedules `count` down/up flaps of `link`: the first outage starts
    /// at `first_down`, each lasts `down_for`, and outage starts repeat
    /// every `period`.
    pub fn flap(
        mut self,
        link: LinkId,
        first_down: SimTime,
        down_for: SimDuration,
        period: SimDuration,
        count: u32,
    ) -> Self {
        for i in 0..count {
            let down = first_down + period * u64::from(i);
            self.push(down, link, FaultAction::LinkDown);
            self.push(down + down_for, link, FaultAction::LinkUp);
        }
        self
    }

    /// Schedules an ECN-bleaching window on `link` from `from` to
    /// `until`.
    pub fn bleach_window(mut self, link: LinkId, from: SimTime, until: SimTime) -> Self {
        self.push(from, link, FaultAction::BleachOn);
        self.push(until, link, FaultAction::BleachOff);
        self
    }

    /// Generates a seeded random plan over the given links and time
    /// horizon: per link, up to two link flaps and possibly one bleaching
    /// window, all placed so every outage ends within the horizon. The
    /// same seed always yields the same plan.
    pub fn randomized(seed: u64, links: &[LinkId], horizon: SimDuration) -> Self {
        let mut rng = Pcg32::seed_from_u64(seed);
        let h = horizon.as_nanos();
        let mut plan = FaultPlan::new();
        for &link in links {
            let flaps = rng.range_u64(0, 2);
            for _ in 0..flaps {
                let start = rng.range_u64(h / 10, h * 7 / 10);
                let dur = rng.range_u64(h / 100, h * 3 / 20);
                plan = plan.flap(
                    link,
                    SimTime::from_nanos(start),
                    SimDuration::from_nanos(dur),
                    horizon, // period > horizon: exactly one outage per flap call
                    1,
                );
            }
            if rng.chance(0.5) {
                let from = rng.range_u64(0, h / 2);
                let until = from + rng.range_u64(h / 100, h * 2 / 5);
                plan =
                    plan.bleach_window(link, SimTime::from_nanos(from), SimTime::from_nanos(until));
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: usize) -> LinkId {
        LinkId::from_index(i)
    }

    #[test]
    fn flap_pairs_every_down_with_an_up() {
        let plan = FaultPlan::new().flap(
            l(0),
            SimTime::from_nanos(100),
            SimDuration::from_nanos(10),
            SimDuration::from_nanos(50),
            3,
        );
        assert_eq!(plan.len(), 6);
        let downs: Vec<u64> = plan
            .events()
            .iter()
            .filter(|e| e.action == FaultAction::LinkDown)
            .map(|e| e.at.as_nanos())
            .collect();
        assert_eq!(downs, vec![100, 150, 200]);
        for pair in plan.events().chunks(2) {
            assert_eq!(pair[0].action, FaultAction::LinkDown);
            assert_eq!(pair[1].action, FaultAction::LinkUp);
            assert_eq!(pair[1].at.as_nanos() - pair[0].at.as_nanos(), 10);
        }
    }

    #[test]
    fn randomized_is_deterministic_per_seed() {
        let links = [l(0), l(1), l(2)];
        let a = FaultPlan::randomized(42, &links, SimDuration::from_millis(10));
        let b = FaultPlan::randomized(42, &links, SimDuration::from_millis(10));
        let c = FaultPlan::randomized(43, &links, SimDuration::from_millis(10));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn randomized_outages_end_within_horizon() {
        for seed in 0..50 {
            let links = [l(0), l(1)];
            let horizon = SimDuration::from_millis(5);
            let plan = FaultPlan::randomized(seed, &links, horizon);
            let mut down: std::collections::HashMap<LinkId, u64> = Default::default();
            for e in plan.events() {
                match e.action {
                    FaultAction::LinkDown => {
                        *down.entry(e.link).or_default() += 1;
                    }
                    FaultAction::LinkUp => {
                        *down.entry(e.link).or_default() -= 1;
                        assert!(
                            e.at.as_nanos() <= horizon.as_nanos(),
                            "seed {seed}: up at {} past horizon",
                            e.at
                        );
                    }
                    _ => {}
                }
            }
            assert!(down.values().all(|&d| d == 0), "seed {seed}: unpaired down");
        }
    }

    #[test]
    fn builder_records_events_in_order() {
        let mut plan = FaultPlan::new();
        assert!(plan.is_empty());
        plan.push(SimTime::from_nanos(5), l(1), FaultAction::BleachOn);
        let plan = plan.at(SimTime::from_nanos(9), l(1), FaultAction::BleachOff);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[0].action, FaultAction::BleachOn);
        assert_eq!(plan.events()[1].at, SimTime::from_nanos(9));
    }
}
