//! The packet model.

use crate::{FlowId, NodeId, SimTime};

/// Protocol header overhead charged to every packet on the wire
/// (IP + TCP without options), in bytes.
pub const HEADER_BYTES: u32 = 40;

/// The ECN codepoint carried in the IP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Ecn {
    /// Not ECN-capable transport; a marking AQM cannot mark this packet.
    #[default]
    NotEct,
    /// ECN-capable transport.
    Ect,
    /// Congestion Experienced — set by a switch whose marking policy
    /// fired.
    Ce,
}

impl Ecn {
    /// Whether a switch may set CE on this packet.
    pub fn is_capable(self) -> bool {
        matches!(self, Ecn::Ect | Ecn::Ce)
    }

    /// Whether CE is set.
    pub fn is_ce(self) -> bool {
        matches!(self, Ecn::Ce)
    }
}

/// Transport-level packet role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Carries `payload` bytes of flow data starting at `seq`.
    Data,
    /// Pure acknowledgement; `ack` is the cumulative ACK number.
    Ack,
    /// Application control message (e.g. an Incast query).
    Control,
}

/// A simulated packet.
///
/// Fields are public: packets are plain data that agents construct and
/// switches forward; there is no invariant beyond `wire_bytes()`
/// consistency, which is derived rather than stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Packet {
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Originating host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Role of the packet.
    pub kind: PacketKind,
    /// First payload byte's sequence number (Data) or opaque (otherwise).
    pub seq: u64,
    /// Cumulative acknowledgement number (Ack packets).
    pub ack: u64,
    /// Payload bytes carried (0 for pure ACKs and control packets).
    pub payload: u32,
    /// ECN codepoint.
    pub ecn: Ecn,
    /// ECN-Echo flag (meaningful on ACKs: echoes CE receipt to sender).
    pub ece: bool,
    /// When the packet was handed to the sender's NIC; used for RTT
    /// sampling.
    pub sent_at: SimTime,
    /// On ACKs: the `sent_at` of the data packet that triggered this
    /// acknowledgement, echoed back for RTT measurement.
    pub ts_echo: Option<SimTime>,
    /// PSH: this data segment ends the application write (the flow's
    /// final bytes). Receivers acknowledge it immediately rather than
    /// holding it for the delayed-ACK timer, so a flow's completion
    /// time is never inflated by an odd straggler segment.
    pub push: bool,
}

impl Packet {
    /// Creates a data packet of `payload` bytes at sequence `seq`.
    pub fn data(flow: FlowId, src: NodeId, dst: NodeId, seq: u64, payload: u32) -> Self {
        Packet {
            flow,
            src,
            dst,
            kind: PacketKind::Data,
            seq,
            ack: 0,
            payload,
            ecn: Ecn::NotEct,
            ece: false,
            sent_at: SimTime::ZERO,
            ts_echo: None,
            push: false,
        }
    }

    /// Creates a pure acknowledgement up to (excluding) `ack`.
    pub fn ack(flow: FlowId, src: NodeId, dst: NodeId, ack: u64) -> Self {
        Packet {
            flow,
            src,
            dst,
            kind: PacketKind::Ack,
            seq: 0,
            ack,
            payload: 0,
            ecn: Ecn::NotEct,
            ece: false,
            sent_at: SimTime::ZERO,
            ts_echo: None,
            push: false,
        }
    }

    /// Creates an application control packet (no payload accounting).
    pub fn control(flow: FlowId, src: NodeId, dst: NodeId) -> Self {
        Packet {
            flow,
            src,
            dst,
            kind: PacketKind::Control,
            seq: 0,
            ack: 0,
            payload: 0,
            ecn: Ecn::NotEct,
            ece: false,
            sent_at: SimTime::ZERO,
            ts_echo: None,
            push: false,
        }
    }

    /// Bytes the packet occupies on the wire (payload plus
    /// [`HEADER_BYTES`]).
    pub fn wire_bytes(&self) -> u32 {
        self.payload + HEADER_BYTES
    }

    /// Sequence number one past the last payload byte.
    pub fn end_seq(&self) -> u64 {
        self.seq + self.payload as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (FlowId, NodeId, NodeId) {
        (FlowId(1), NodeId::from_index(0), NodeId::from_index(1))
    }

    #[test]
    fn data_packet_accounting() {
        let (f, a, b) = ids();
        let p = Packet::data(f, a, b, 1000, 1460);
        assert_eq!(p.wire_bytes(), 1500);
        assert_eq!(p.end_seq(), 2460);
        assert_eq!(p.kind, PacketKind::Data);
    }

    #[test]
    fn ack_packet_is_header_only() {
        let (f, a, b) = ids();
        let p = Packet::ack(f, b, a, 5000);
        assert_eq!(p.wire_bytes(), HEADER_BYTES);
        assert_eq!(p.payload, 0);
        assert_eq!(p.ack, 5000);
    }

    #[test]
    fn ecn_capability() {
        assert!(!Ecn::NotEct.is_capable());
        assert!(Ecn::Ect.is_capable());
        assert!(Ecn::Ce.is_capable());
        assert!(Ecn::Ce.is_ce());
        assert!(!Ecn::Ect.is_ce());
    }
}
