//! The discrete-event simulation engine.

use dctcp_core::{MarkingScheme, QueueLevel};
use dctcp_trace::{FaultKind, MarkThreshold, TraceConfig, TraceKind, TraceLog, TraceScope, Tracer};

use crate::event::{EventKind, EventQueue};
use crate::fault::{FaultAction, FaultPlan};
use crate::node::{Action, Node};
use crate::queue::{Capacity, Offer};
use crate::{
    Agent, Context, LinkId, Network, NodeId, Packet, QueueReport, SimDuration, SimError, SimTime,
};

/// Default number of events allowed at a single instant before
/// [`Simulator::run_until`] reports a livelock. Generous: a legitimate
/// same-instant burst is bounded by topology size, not millions.
const DEFAULT_LIVELOCK_THRESHOLD: u64 = 1_000_000;

/// Events dispatched between [`CancelToken`](crate::CancelToken) polls.
/// Coarse enough that the atomic load vanishes against per-event work,
/// fine enough that a fired token stops the run within microseconds of
/// wall time.
const CANCEL_CHECK_STRIDE: u64 = 4096;

/// Drives a [`Network`] through time.
///
/// The engine is single-threaded and fully deterministic: events at equal
/// instants fire in scheduling order, so two runs of the same scenario
/// produce identical traces.
///
/// # Examples
///
/// See [`TopologyBuilder`](crate::TopologyBuilder) for building the
/// network; a typical run is:
///
/// ```no_run
/// # fn network() -> dctcp_sim::Network { unreachable!() }
/// use dctcp_sim::{SimDuration, Simulator};
///
/// let mut sim = Simulator::new(network());
/// sim.run_for(SimDuration::from_millis(100)).unwrap();
/// ```
#[derive(Debug)]
pub struct Simulator {
    now: SimTime,
    events: EventQueue,
    nodes: Vec<Node>,
    links: Vec<crate::link::Link>,
    routes: Vec<Vec<Option<(LinkId, usize)>>>,
    next_timer: u64,
    actions: Vec<Action>,
    started: bool,
    events_processed: u64,
    /// Max events at one instant before a run reports a livelock.
    livelock_threshold: u64,
    /// Optional cap on events dispatched per `run_until` call.
    event_budget: Option<u64>,
    /// Optional cooperative cancellation flag, polled every
    /// [`CANCEL_CHECK_STRIDE`] events.
    cancel_token: Option<crate::CancelToken>,
    /// Event recorder; disabled (one branch per record point) unless
    /// [`Simulator::enable_trace`] was called.
    tracer: Tracer,
}

impl Simulator {
    /// Creates a simulator over a validated network, positioned at time
    /// zero. Agents' `on_start` callbacks run when time first advances.
    pub fn new(network: Network) -> Self {
        Simulator {
            now: SimTime::ZERO,
            events: EventQueue::new(),
            nodes: network.nodes,
            links: network.links,
            routes: network.routes,
            next_timer: 0,
            actions: Vec::new(),
            started: false,
            events_processed: 0,
            livelock_threshold: DEFAULT_LIVELOCK_THRESHOLD,
            event_budget: None,
            cancel_token: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Turns on event tracing. Every queue gets a stable trace id
    /// (`link_index * 2 + end`) and a [`TraceKind::QueueInfo`] event
    /// describing its capacity and marking threshold, so the oracle in
    /// [`dctcp_trace::oracle`] can check conservation and marking laws.
    ///
    /// Call before the first `run_*` so stateful oracle checks see the
    /// whole history.
    pub fn enable_trace(&mut self, cfg: TraceConfig) {
        self.tracer = Tracer::new(cfg);
        let t = self.now.as_nanos();
        for (i, l) in self.links.iter_mut().enumerate() {
            for (end, e) in l.ends.iter_mut().enumerate() {
                let id = (i * 2 + end) as u32;
                e.queue.set_trace_id(id);
                let (capacity_pkts, capacity_bytes) = match e.queue.capacity() {
                    Capacity::Unbounded => (None, None),
                    Capacity::Packets(n) => (Some(n), None),
                    Capacity::Bytes(b) => (None, Some(b)),
                };
                let threshold = threshold_of(e.queue.scheme());
                self.tracer
                    .record_with(TraceScope::QUEUE, t, || TraceKind::QueueInfo {
                        queue: id,
                        link: i as u32,
                        capacity_pkts,
                        capacity_bytes,
                        threshold,
                    });
            }
        }
    }

    /// Whether event tracing is currently recording.
    pub fn trace_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// Takes the recorded trace, leaving tracing disabled.
    pub fn take_trace(&mut self) -> TraceLog {
        std::mem::replace(&mut self.tracer, Tracer::disabled()).into_log()
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events currently pending in the queue, O(1). Cancelled
    /// timers still count until their deadline passes and they are
    /// reaped.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Advances the simulation to time `until`, dispatching every event
    /// scheduled at or before it.
    ///
    /// # Errors
    ///
    /// * [`SimError::TimeReversal`] if `until` is in the past — the
    ///   simulation state is untouched.
    /// * [`SimError::Livelock`] if more than the livelock threshold of
    ///   events fire at a single instant without the clock advancing
    ///   (see [`Simulator::set_livelock_threshold`]).
    /// * [`SimError::EventBudgetExhausted`] if an event budget is set
    ///   and this call exceeds it (see [`Simulator::set_event_budget`]).
    /// * [`SimError::Cancelled`] if a cancel token is installed and an
    ///   external supervisor fired it (see
    ///   [`Simulator::set_cancel_token`]). The poll is strided, so the
    ///   stop lags the fire by at most a few thousand events.
    ///
    /// On error the simulation stops at the offending instant; state is
    /// consistent but the run should be treated as failed.
    pub fn run_until(&mut self, until: SimTime) -> Result<(), SimError> {
        if until < self.now {
            return Err(SimError::TimeReversal {
                now: self.now,
                requested: until,
            });
        }
        if let Some(token) = &self.cancel_token {
            if token.is_cancelled() {
                return Err(SimError::Cancelled { at: self.now });
            }
        }
        self.start_agents();
        let mut dispatched_this_run: u64 = 0;
        let mut at_this_instant: u64 = 0;
        let mut last_instant = self.now;
        while let Some((at, kind)) = self.events.pop_before(until) {
            debug_assert!(at >= self.now, "event in the past");
            if at > last_instant {
                last_instant = at;
                at_this_instant = 0;
            }
            at_this_instant += 1;
            if at_this_instant > self.livelock_threshold {
                return Err(SimError::Livelock {
                    at,
                    dispatched: at_this_instant,
                });
            }
            dispatched_this_run += 1;
            if let Some(budget) = self.event_budget {
                if dispatched_this_run > budget {
                    return Err(SimError::EventBudgetExhausted { budget, at });
                }
            }
            if dispatched_this_run % CANCEL_CHECK_STRIDE == 0 {
                if let Some(token) = &self.cancel_token {
                    if token.is_cancelled() {
                        return Err(SimError::Cancelled { at });
                    }
                }
            }
            self.now = at;
            self.events_processed += 1;
            self.dispatch(kind);
        }
        self.now = until;
        Ok(())
    }

    /// Advances the simulation by `duration`.
    ///
    /// # Errors
    ///
    /// Propagates the progress-watchdog errors of
    /// [`Simulator::run_until`].
    pub fn run_for(&mut self, duration: SimDuration) -> Result<(), SimError> {
        self.run_until(self.now + duration)
    }

    /// Sets how many events may fire at a single instant before
    /// [`Simulator::run_until`] reports [`SimError::Livelock`]. The
    /// default (one million) is far above any legitimate same-instant
    /// burst; lower it in tests to catch zero-delay loops quickly.
    pub fn set_livelock_threshold(&mut self, threshold: u64) {
        self.livelock_threshold = threshold.max(1);
    }

    /// Caps the number of events a single [`Simulator::run_until`] call
    /// may dispatch; exceeding it returns
    /// [`SimError::EventBudgetExhausted`]. `None` (the default) disables
    /// the cap.
    pub fn set_event_budget(&mut self, budget: Option<u64>) {
        self.event_budget = budget;
    }

    /// Installs a cooperative cancellation token, polled every few
    /// thousand dispatched events (and once on entry to each
    /// [`Simulator::run_until`] call). A fired token makes the next poll
    /// return [`SimError::Cancelled`]; a token that never fires leaves
    /// the run event-for-event identical to one with no token.
    pub fn set_cancel_token(&mut self, token: Option<crate::CancelToken>) {
        self.cancel_token = token;
    }

    /// Schedules every event of a [`FaultPlan`] onto the simulation
    /// clock.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownLink`] if the plan names a link outside this
    ///   topology.
    /// * [`SimError::FaultInPast`] if an event is scheduled before the
    ///   current time.
    ///
    /// Validation happens before anything is scheduled, so a failed
    /// install leaves the simulation untouched.
    pub fn install_faults(&mut self, plan: &FaultPlan) -> Result<(), SimError> {
        for ev in plan.events() {
            if ev.link.index() >= self.links.len() {
                return Err(SimError::UnknownLink(ev.link));
            }
            if ev.at < self.now {
                return Err(SimError::FaultInPast {
                    at: ev.at,
                    now: self.now,
                });
            }
        }
        for ev in plan.events() {
            self.events.schedule(
                ev.at,
                EventKind::Fault {
                    link: ev.link,
                    action: ev.action,
                },
            );
        }
        Ok(())
    }

    /// Whether `link` is currently up (links start up; only
    /// [`FaultAction::LinkDown`](crate::FaultAction::LinkDown) takes one
    /// down).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownLink`] if `link` is not in this
    /// topology.
    pub fn link_is_up(&self, link: LinkId) -> Result<bool, SimError> {
        self.links
            .get(link.index())
            .map(|l| l.up)
            .ok_or(SimError::UnknownLink(link))
    }

    /// Ids of every link in the topology, in creation order.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len()).map(LinkId::from_index)
    }

    /// Whether any events remain scheduled.
    pub fn has_pending_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Number of events currently scheduled.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Occupancy/counters report for the queue on `link` transmitting
    /// from `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of `link`.
    pub fn queue_report(&self, link: LinkId, from: NodeId) -> QueueReport {
        let l = &self.links[link.index()];
        let end = l
            .end_of(from)
            .unwrap_or_else(|| panic!("{from} is not an endpoint of {link}"));
        l.ends[end].queue.report(self.now)
    }

    /// Restarts the statistics window of every queue and transmitter
    /// (discarding warm-up transients).
    pub fn reset_all_queue_stats(&mut self) {
        let now = self.now;
        for l in &mut self.links {
            for e in &mut l.ends {
                e.queue.reset_stats(now);
                e.busy_time = SimDuration::ZERO;
                e.bytes_sent = 0;
                e.window_start = now;
            }
        }
    }

    /// Fraction of wall-clock the transmitter on `link` (from `from`)
    /// spent serializing packets since the last stats reset — the link's
    /// utilization. `0.0` before any time has passed.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of `link`.
    pub fn link_utilization(&self, link: LinkId, from: NodeId) -> f64 {
        let l = &self.links[link.index()];
        let end = l
            .end_of(from)
            .unwrap_or_else(|| panic!("{from} is not an endpoint of {link}"));
        let e = &l.ends[end];
        let elapsed = self.now.saturating_duration_since(e.window_start);
        if elapsed.is_zero() {
            0.0
        } else {
            e.busy_time.as_secs_f64() / elapsed.as_secs_f64()
        }
    }

    /// Bytes the transmitter on `link` (from `from`) put on the wire
    /// since the last stats reset.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of `link`.
    pub fn link_bytes_sent(&self, link: LinkId, from: NodeId) -> u64 {
        let l = &self.links[link.index()];
        let end = l
            .end_of(from)
            .unwrap_or_else(|| panic!("{from} is not an endpoint of {link}"));
        l.ends[end].bytes_sent
    }

    /// Current queue occupancy in packets on `link` transmitting from
    /// `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of `link`.
    pub fn queue_len_pkts(&self, link: LinkId, from: NodeId) -> u32 {
        let l = &self.links[link.index()];
        let end = l
            .end_of(from)
            .unwrap_or_else(|| panic!("{from} is not an endpoint of {link}"));
        l.ends[end].queue.len_pkts()
    }

    /// Downcasts the agent at `node` to its concrete type.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownNode`] if `node` is not in this topology.
    /// * [`SimError::NotAHost`] if `node` is a switch.
    /// * [`SimError::AgentTypeMismatch`] if the host runs a different
    ///   agent type than `T`.
    pub fn agent<T: Agent>(&self, node: NodeId) -> Result<&T, SimError> {
        match self.nodes.get(node.index()) {
            None => Err(SimError::UnknownNode(node)),
            Some(Node::Switch { .. }) => Err(SimError::NotAHost(node)),
            Some(Node::Host { agent, .. }) => agent
                .as_any()
                .downcast_ref::<T>()
                .ok_or(SimError::AgentTypeMismatch(node)),
        }
    }

    /// Mutable variant of [`Simulator::agent`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::agent`].
    pub fn agent_mut<T: Agent>(&mut self, node: NodeId) -> Result<&mut T, SimError> {
        match self.nodes.get_mut(node.index()) {
            None => Err(SimError::UnknownNode(node)),
            Some(Node::Switch { .. }) => Err(SimError::NotAHost(node)),
            Some(Node::Host { agent, .. }) => agent
                .as_any_mut()
                .downcast_mut::<T>()
                .ok_or(SimError::AgentTypeMismatch(node)),
        }
    }

    /// The name given to a node at topology construction.
    pub fn node_name(&self, node: NodeId) -> &str {
        self.nodes[node.index()].name()
    }

    fn start_agents(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let node = NodeId::from_index(i);
            if self.nodes[i].is_host() {
                self.with_agent(node, |agent, ctx| agent.on_start(ctx));
            }
        }
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::TxComplete { link, end } => {
                self.links[link.index()].ends[end].busy = false;
                self.tracer
                    .record_with(TraceScope::LINK, self.now.as_nanos(), || {
                        TraceKind::TxComplete {
                            link: link.index() as u32,
                            end: end as u8,
                        }
                    });
                self.try_start_tx(link, end);
            }
            EventKind::Arrival { node, packet } => {
                if self.nodes[node.index()].is_host() {
                    self.with_agent(node, |agent, ctx| agent.on_packet(packet, ctx));
                } else {
                    self.forward(node, packet);
                }
            }
            EventKind::Timer { node, token } => {
                // Cancelled timers are reaped inside the event queue and
                // never reach this arm.
                self.with_agent(node, |agent, ctx| agent.on_timer(token, ctx));
            }
            EventKind::Fault { link, action } => self.apply_fault(link, action),
        }
    }

    fn apply_fault(&mut self, link: LinkId, action: FaultAction) {
        let kind = match action {
            FaultAction::LinkDown => FaultKind::LinkDown,
            FaultAction::LinkUp => FaultKind::LinkUp,
            FaultAction::BleachOn => FaultKind::BleachOn,
            FaultAction::BleachOff => FaultKind::BleachOff,
        };
        self.tracer
            .record_with(TraceScope::FAULT, self.now.as_nanos(), || {
                TraceKind::Fault {
                    link: link.index() as u32,
                    kind,
                }
            });
        match action {
            FaultAction::LinkDown => {
                self.links[link.index()].up = false;
            }
            FaultAction::LinkUp => {
                self.links[link.index()].up = true;
                // Restart both transmitters: queued packets resume.
                self.try_start_tx(link, 0);
                self.try_start_tx(link, 1);
            }
            FaultAction::BleachOn => {
                for e in &mut self.links[link.index()].ends {
                    e.queue.set_bleach(true);
                }
            }
            FaultAction::BleachOff => {
                for e in &mut self.links[link.index()].ends {
                    e.queue.set_bleach(false);
                }
            }
        }
    }

    /// Runs an agent callback and applies the actions it queued.
    fn with_agent(&mut self, node: NodeId, f: impl FnOnce(&mut Box<dyn Agent>, &mut Context<'_>)) {
        debug_assert!(self.actions.is_empty());
        let mut actions = std::mem::take(&mut self.actions);
        {
            let Node::Host { agent, .. } = &mut self.nodes[node.index()] else {
                panic!("agent callback on switch {node}");
            };
            let mut ctx = Context::new(
                self.now,
                node,
                &mut actions,
                &mut self.next_timer,
                &mut self.tracer,
            );
            f(agent, &mut ctx);
        }
        for action in actions.drain(..) {
            match action {
                Action::Send(mut pkt) => {
                    pkt.sent_at = self.now;
                    if pkt.dst == node {
                        // Loopback: deliver on the next event round.
                        self.events
                            .schedule(self.now, EventKind::Arrival { node, packet: pkt });
                    } else {
                        self.forward(node, pkt);
                    }
                }
                Action::SetTimer { at, token } => {
                    self.events.schedule(at, EventKind::Timer { node, token });
                }
                Action::CancelTimer(token) => {
                    self.events.cancel_timer(token);
                }
            }
        }
        self.actions = actions;
    }

    /// Places a packet on `node`'s next-hop queue toward its destination.
    fn forward(&mut self, node: NodeId, packet: Packet) {
        let Some((link, end)) = self.routes[node.index()][packet.dst.index()] else {
            // No route (packet addressed to a switch, or a partitioned
            // topology admitted for switch-only destinations): drop.
            debug_assert!(false, "no route from {node} to {}", packet.dst);
            return;
        };
        let offer = self.links[link.index()].ends[end].queue.offer_traced(
            self.now,
            packet,
            &mut self.tracer,
        );
        if offer == Offer::Enqueued {
            self.try_start_tx(link, end);
        }
    }

    /// Starts transmitting the queue head if the transmitter is idle and
    /// the link is up.
    fn try_start_tx(&mut self, link: LinkId, end: usize) {
        let tracer = &mut self.tracer;
        let l = &mut self.links[link.index()];
        if !l.up || l.ends[end].busy {
            return;
        }
        let Some(pkt) = l.ends[end].queue.pop_traced(self.now, tracer) else {
            return;
        };
        l.ends[end].busy = true;
        let wire = pkt.wire_bytes() as u64;
        let tx = if l.ends[end].last_tx.0 == wire {
            l.ends[end].last_tx.1
        } else {
            let d = SimDuration::transmission(wire, l.spec.rate_bps);
            l.ends[end].last_tx = (wire, d);
            d
        };
        l.ends[end].busy_time += tx;
        l.ends[end].bytes_sent += pkt.wire_bytes() as u64;
        let other = l.ends[1 - end].node;
        self.events
            .schedule(self.now + tx, EventKind::TxComplete { link, end });
        self.events.schedule(
            self.now + tx + l.spec.delay,
            EventKind::Arrival {
                node: other,
                packet: pkt,
            },
        );
    }
}

/// Maps a queue's marking scheme onto the trace-schema threshold shape
/// the oracle replays against.
fn threshold_of(scheme: MarkingScheme) -> MarkThreshold {
    match scheme {
        MarkingScheme::Dctcp { k } => MarkThreshold::Single {
            k: k.raw(),
            bytes: matches!(k, QueueLevel::Bytes(_)),
        },
        MarkingScheme::DtDctcp { k1, k2 } => MarkThreshold::Hysteresis {
            k1: k1.raw(),
            k2: k2.raw(),
            bytes: matches!(k1, QueueLevel::Bytes(_)),
        },
        _ => MarkThreshold::None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkSpec, QueueConfig, TimerToken, TopologyBuilder};
    use std::any::Any;

    /// Sends `count` back-to-back packets to `peer` at start; records
    /// ack arrival times.
    #[derive(Debug)]
    struct Pinger {
        peer: NodeId,
        count: u32,
        ack_times: Vec<SimTime>,
    }

    impl Agent for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for i in 0..self.count {
                let mut p = Packet::data(crate::FlowId(1), ctx.node(), self.peer, i as u64, 960);
                p.ecn = crate::Ecn::Ect;
                ctx.send(p);
            }
        }
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Context<'_>) {
            assert_eq!(pkt.kind, crate::PacketKind::Ack);
            self.ack_times.push(ctx.now());
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Acks every data packet immediately.
    #[derive(Debug)]
    struct Echo {
        received: u32,
    }

    impl Agent for Echo {
        fn on_packet(&mut self, pkt: Packet, ctx: &mut Context<'_>) {
            self.received += 1;
            ctx.send(Packet::ack(pkt.flow, ctx.node(), pkt.src, pkt.end_seq()));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// One ping through a switch; checks the exact end-to-end timing.
    #[test]
    fn single_packet_timing_is_exact() {
        let mut b = TopologyBuilder::new();
        let h1 = b.host(
            "h1",
            Box::new(Pinger {
                peer: NodeId::from_index(1),
                count: 1,
                ack_times: Vec::new(),
            }),
        );
        let h2 = b.host("h2", Box::new(Echo { received: 0 }));
        let s = b.switch("s");
        // 1 Gbps, 10 us one-way per hop.
        let spec = LinkSpec::gbps(1.0, 10);
        b.link(
            h1,
            s,
            spec,
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
        b.link(
            s,
            h2,
            spec,
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.run_for(SimDuration::from_millis(1)).unwrap();

        // Data: 1000 B wire = 8 us serialization per hop, 10 us prop per
        // hop => h1->h2 = 8+10+8+10 = 36 us.
        // Ack: 40 B = 0.32 us per hop => h2->h1 = 0.32+10+0.32+10 = 20.64 us.
        // Total 56.64 us.
        let pinger: &Pinger = sim.agent(h1).expect("agent type");
        assert_eq!(pinger.ack_times.len(), 1);
        assert_eq!(pinger.ack_times[0].as_nanos(), 56_640);
        let echo: &Echo = sim.agent(h2).expect("agent type");
        assert_eq!(echo.received, 1);
    }

    /// A traced ping-pong run yields a non-empty log that the invariant
    /// oracle accepts with zero violations.
    #[test]
    fn traced_run_satisfies_oracle() {
        let mut b = TopologyBuilder::new();
        let h1 = b.host(
            "h1",
            Box::new(Pinger {
                peer: NodeId::from_index(1),
                count: 8,
                ack_times: Vec::new(),
            }),
        );
        let h2 = b.host("h2", Box::new(Echo { received: 0 }));
        let s = b.switch("s");
        let spec = LinkSpec::gbps(1.0, 10);
        b.link(
            h1,
            s,
            spec,
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
        b.link(
            s,
            h2,
            spec,
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.enable_trace(TraceConfig::all());
        assert!(sim.trace_enabled());
        sim.run_for(SimDuration::from_millis(1)).unwrap();
        let log = sim.take_trace();
        assert!(!sim.trace_enabled());
        assert_eq!(log.dropped, 0);
        let digest = log.digest();
        assert!(digest.count("enqueue") >= 8);
        assert_eq!(digest.count("enqueue"), digest.count("dequeue"));
        assert_eq!(digest.count("tx_complete"), digest.count("dequeue"));
        let violations = dctcp_trace::oracle::check_log(&log);
        assert!(violations.is_empty(), "oracle violations: {violations:?}");
    }

    #[test]
    fn back_to_back_packets_serialize_fifo() {
        let mut b = TopologyBuilder::new();
        let h1 = b.host(
            "h1",
            Box::new(Pinger {
                peer: NodeId::from_index(1),
                count: 10,
                ack_times: Vec::new(),
            }),
        );
        let h2 = b.host("h2", Box::new(Echo { received: 0 }));
        let spec = LinkSpec::gbps(1.0, 10);
        b.link(
            h1,
            h2,
            spec,
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.run_for(SimDuration::from_millis(1)).unwrap();
        let pinger: &Pinger = sim.agent(h1).unwrap();
        assert_eq!(pinger.ack_times.len(), 10);
        // Successive acks separated by exactly one data serialization
        // time (8 us) once the pipe is full.
        let deltas: Vec<u64> = pinger
            .ack_times
            .windows(2)
            .map(|w| w[1].as_nanos() - w[0].as_nanos())
            .collect();
        for d in deltas {
            assert_eq!(d, 8_000);
        }
    }

    #[derive(Debug)]
    struct TimerAgent {
        fired: Vec<u64>,
        cancel_me: TimerToken,
    }

    impl Agent for TimerAgent {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_micros(10));
            let t = ctx.set_timer(SimDuration::from_micros(20));
            ctx.set_timer(SimDuration::from_micros(30));
            self.cancel_me = t;
            ctx.cancel_timer(t);
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Context<'_>) {}
        fn on_timer(&mut self, _token: TimerToken, ctx: &mut Context<'_>) {
            self.fired.push(ctx.now().as_nanos());
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn timers_fire_and_cancel() {
        let mut b = TopologyBuilder::new();
        let h1 = b.host(
            "h1",
            Box::new(TimerAgent {
                fired: Vec::new(),
                cancel_me: TimerToken::NONE,
            }),
        );
        let h2 = b.host("h2", Box::new(Echo { received: 0 }));
        b.link(
            h1,
            h2,
            LinkSpec::gbps(1.0, 1),
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.run_for(SimDuration::from_millis(1)).unwrap();
        let a: &TimerAgent = sim.agent(h1).unwrap();
        assert_eq!(a.fired, vec![10_000, 30_000]);
    }

    #[test]
    fn event_count_tracks_pending_events() {
        let mut b = TopologyBuilder::new();
        let h1 = b.host(
            "h1",
            Box::new(TimerAgent {
                fired: Vec::new(),
                cancel_me: TimerToken::NONE,
            }),
        );
        let h2 = b.host("h2", Box::new(Echo { received: 0 }));
        b.link(
            h1,
            h2,
            LinkSpec::gbps(1.0, 1),
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        assert_eq!(sim.event_count(), 0);
        // Stop between the two surviving timers (10 us and 30 us): the
        // later one is still pending.
        sim.run_until(SimTime::from_nanos(20_000)).unwrap();
        assert!(sim.event_count() > 0);
        sim.run_for(SimDuration::from_millis(1)).unwrap();
        assert_eq!(sim.event_count(), 0);
        assert!(sim.events_processed() > 0);
    }

    #[test]
    fn run_until_is_resumable_and_monotone() {
        let mut b = TopologyBuilder::new();
        let h1 = b.host(
            "h1",
            Box::new(Pinger {
                peer: NodeId::from_index(1),
                count: 1,
                ack_times: Vec::new(),
            }),
        );
        let h2 = b.host("h2", Box::new(Echo { received: 0 }));
        b.link(
            h1,
            h2,
            LinkSpec::gbps(1.0, 10),
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.run_until(SimTime::from_nanos(1000)).unwrap();
        assert_eq!(sim.now(), SimTime::from_nanos(1000));
        // Packet (8 us + 10 us) not yet delivered.
        let echo: &Echo = sim.agent(h2).unwrap();
        assert_eq!(echo.received, 0);
        sim.run_for(SimDuration::from_millis(1)).unwrap();
        let echo: &Echo = sim.agent(h2).unwrap();
        assert_eq!(echo.received, 1);
        assert!(sim.events_processed() > 0);
    }

    #[test]
    fn run_backwards_is_a_typed_error() {
        let mut b = TopologyBuilder::new();
        let h1 = b.host("h1", Box::new(Echo { received: 0 }));
        let h2 = b.host("h2", Box::new(Echo { received: 0 }));
        b.link(
            h1,
            h2,
            LinkSpec::gbps(1.0, 1),
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.run_until(SimTime::from_nanos(100)).unwrap();
        let err = sim.run_until(SimTime::from_nanos(50)).unwrap_err();
        assert_eq!(
            err,
            SimError::TimeReversal {
                now: SimTime::from_nanos(100),
                requested: SimTime::from_nanos(50),
            }
        );
        // The failed call left the clock alone.
        assert_eq!(sim.now(), SimTime::from_nanos(100));
    }

    #[test]
    fn link_utilization_reflects_busy_time() {
        let mut b = TopologyBuilder::new();
        let h1 = b.host(
            "h1",
            Box::new(Pinger {
                peer: NodeId::from_index(1),
                count: 100,
                ack_times: Vec::new(),
            }),
        );
        let h2 = b.host("h2", Box::new(Echo { received: 0 }));
        let link = b
            .link(
                h1,
                h2,
                LinkSpec::gbps(1.0, 10),
                QueueConfig::host_nic(),
                QueueConfig::host_nic(),
            )
            .unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        // 100 packets x 1000 B = 0.8 ms of serialization at 1 Gb/s.
        sim.run_until(SimTime::from_nanos(1_000_000)).unwrap();
        let util = sim.link_utilization(link, h1);
        assert!((util - 0.8).abs() < 0.01, "utilization {util}");
        assert_eq!(sim.link_bytes_sent(link, h1), 100 * 1000);
        // Reverse direction carries only 40 B acks.
        let back = sim.link_utilization(link, h2);
        assert!(back < 0.05, "ack-path utilization {back}");
        // Reset clears the window.
        sim.reset_all_queue_stats();
        sim.run_until(SimTime::from_nanos(2_000_000)).unwrap();
        assert_eq!(sim.link_utilization(link, h1), 0.0);
        assert_eq!(sim.link_bytes_sent(link, h1), 0);
    }

    #[test]
    fn agent_downcast_mismatch_is_none() {
        let mut b = TopologyBuilder::new();
        let h1 = b.host("h1", Box::new(Echo { received: 0 }));
        let h2 = b.host("h2", Box::new(Echo { received: 0 }));
        b.link(
            h1,
            h2,
            LinkSpec::gbps(1.0, 1),
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
        let sim = Simulator::new(b.build().unwrap());
        assert_eq!(
            sim.agent::<Pinger>(h1).unwrap_err(),
            SimError::AgentTypeMismatch(h1)
        );
        assert!(sim.agent::<Echo>(h1).is_ok());
        assert_eq!(
            sim.agent::<Echo>(NodeId::from_index(99)).unwrap_err(),
            SimError::UnknownNode(NodeId::from_index(99))
        );
    }

    #[test]
    fn agent_lookup_on_switch_is_not_a_host() {
        let mut b = TopologyBuilder::new();
        let h1 = b.host("h1", Box::new(Echo { received: 0 }));
        let h2 = b.host("h2", Box::new(Echo { received: 0 }));
        let s = b.switch("s");
        let spec = LinkSpec::gbps(1.0, 1);
        b.link(
            h1,
            s,
            spec,
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
        b.link(
            s,
            h2,
            spec,
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        assert_eq!(sim.agent::<Echo>(s).unwrap_err(), SimError::NotAHost(s));
        assert_eq!(sim.agent_mut::<Echo>(s).unwrap_err(), SimError::NotAHost(s));
    }

    /// Sets a zero-delay timer from every timer callback: a livelock.
    #[derive(Debug)]
    struct ZeroLoop;

    impl Agent for ZeroLoop {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::ZERO);
        }
        fn on_packet(&mut self, _pkt: Packet, _ctx: &mut Context<'_>) {}
        fn on_timer(&mut self, _token: TimerToken, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::ZERO);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn zero_loop_sim() -> Simulator {
        let mut b = TopologyBuilder::new();
        let h1 = b.host("h1", Box::new(ZeroLoop));
        let h2 = b.host("h2", Box::new(Echo { received: 0 }));
        b.link(
            h1,
            h2,
            LinkSpec::gbps(1.0, 1),
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
        Simulator::new(b.build().unwrap())
    }

    #[test]
    fn livelock_watchdog_trips_on_zero_delay_loop() {
        let mut sim = zero_loop_sim();
        sim.set_livelock_threshold(1_000);
        let err = sim.run_for(SimDuration::from_millis(1)).unwrap_err();
        match err {
            SimError::Livelock { at, dispatched } => {
                assert_eq!(at, SimTime::ZERO);
                assert!(dispatched > 1_000);
            }
            other => panic!("expected livelock, got {other:?}"),
        }
    }

    #[test]
    fn event_budget_bounds_a_run() {
        let mut sim = zero_loop_sim();
        sim.set_event_budget(Some(500));
        let err = sim.run_for(SimDuration::from_millis(1)).unwrap_err();
        assert!(
            matches!(err, SimError::EventBudgetExhausted { budget: 500, .. }),
            "{err:?}"
        );
        // A healthy simulation under the same budget completes fine.
        let mut b = TopologyBuilder::new();
        let h1 = b.host(
            "h1",
            Box::new(Pinger {
                peer: NodeId::from_index(1),
                count: 3,
                ack_times: Vec::new(),
            }),
        );
        let h2 = b.host("h2", Box::new(Echo { received: 0 }));
        b.link(
            h1,
            h2,
            LinkSpec::gbps(1.0, 1),
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        sim.set_event_budget(Some(500));
        sim.run_for(SimDuration::from_millis(1)).unwrap();
    }

    #[test]
    fn fired_cancel_token_stops_a_run() {
        // A pre-fired token stops the run before any event dispatches.
        let mut sim = zero_loop_sim();
        let token = crate::CancelToken::new();
        sim.set_cancel_token(Some(token.clone()));
        token.cancel();
        let err = sim.run_for(SimDuration::from_millis(1)).unwrap_err();
        assert!(matches!(err, SimError::Cancelled { .. }), "{err:?}");
        assert_eq!(sim.events_processed(), 0);

        // A token fired mid-run stops within one poll stride.
        let mut sim = zero_loop_sim();
        let token = crate::CancelToken::new();
        sim.set_cancel_token(Some(token.clone()));
        token.cancel();
        // Entry check already fired above; exercise the strided check by
        // clearing and re-firing after entry is impossible from outside,
        // so instead bound the dispatch count: a fired token must stop a
        // zero-delay loop long before the livelock threshold.
        let err = sim.run_for(SimDuration::from_millis(1)).unwrap_err();
        assert!(matches!(err, SimError::Cancelled { .. }), "{err:?}");
        assert!(sim.events_processed() <= CANCEL_CHECK_STRIDE);
    }

    #[test]
    fn unfired_cancel_token_changes_nothing() {
        let run = |with_token: bool| {
            let mut b = TopologyBuilder::new();
            let h1 = b.host(
                "h1",
                Box::new(Pinger {
                    peer: NodeId::from_index(1),
                    count: 5,
                    ack_times: Vec::new(),
                }),
            );
            let h2 = b.host("h2", Box::new(Echo { received: 0 }));
            b.link(
                h1,
                h2,
                LinkSpec::gbps(1.0, 1),
                QueueConfig::host_nic(),
                QueueConfig::host_nic(),
            )
            .unwrap();
            let mut sim = Simulator::new(b.build().unwrap());
            if with_token {
                sim.set_cancel_token(Some(crate::CancelToken::new()));
            }
            sim.run_for(SimDuration::from_millis(1)).unwrap();
            sim.events_processed()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn link_down_pauses_and_link_up_resumes_delivery() {
        let mut b = TopologyBuilder::new();
        let h1 = b.host(
            "h1",
            Box::new(Pinger {
                peer: NodeId::from_index(1),
                count: 10,
                ack_times: Vec::new(),
            }),
        );
        let h2 = b.host("h2", Box::new(Echo { received: 0 }));
        let link = b
            .link(
                h1,
                h2,
                LinkSpec::gbps(1.0, 10),
                QueueConfig::host_nic(),
                QueueConfig::host_nic(),
            )
            .unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        // Down from the start; up at 1 ms.
        let plan = crate::FaultPlan::new()
            .at(SimTime::ZERO, link, crate::FaultAction::LinkDown)
            .at(
                SimTime::from_nanos(1_000_000),
                link,
                crate::FaultAction::LinkUp,
            );
        sim.install_faults(&plan).unwrap();
        sim.run_until(SimTime::from_nanos(900_000)).unwrap();
        assert!(!sim.link_is_up(link).unwrap());
        // The first packet entered service during on_start, before the
        // t=0 LinkDown event fired; in-flight packets still deliver. The
        // other nine wait in the queue.
        let echo: &Echo = sim.agent(h2).unwrap();
        assert_eq!(echo.received, 1, "packets crossed a downed link");
        assert_eq!(
            sim.queue_len_pkts(link, h1),
            9,
            "queue should hold the rest"
        );
        sim.run_until(SimTime::from_nanos(3_000_000)).unwrap();
        assert!(sim.link_is_up(link).unwrap());
        let echo: &Echo = sim.agent(h2).unwrap();
        assert_eq!(echo.received, 10, "delivery did not resume after LinkUp");
    }

    #[test]
    fn install_faults_validates_before_scheduling() {
        let mut sim = zero_loop_sim();
        let bogus = crate::FaultPlan::new().at(
            SimTime::from_nanos(10),
            LinkId::from_index(7),
            crate::FaultAction::LinkDown,
        );
        assert_eq!(
            sim.install_faults(&bogus).unwrap_err(),
            SimError::UnknownLink(LinkId::from_index(7))
        );
        let mut b = TopologyBuilder::new();
        let h1 = b.host("h1", Box::new(Echo { received: 0 }));
        let h2 = b.host("h2", Box::new(Echo { received: 0 }));
        let link = b
            .link(
                h1,
                h2,
                LinkSpec::gbps(1.0, 1),
                QueueConfig::host_nic(),
                QueueConfig::host_nic(),
            )
            .unwrap();
        let mut sim3 = Simulator::new(b.build().unwrap());
        sim3.run_until(SimTime::from_nanos(1_000)).unwrap();
        let past = crate::FaultPlan::new().at(
            SimTime::from_nanos(500),
            link,
            crate::FaultAction::BleachOn,
        );
        assert_eq!(
            sim3.install_faults(&past).unwrap_err(),
            SimError::FaultInPast {
                at: SimTime::from_nanos(500),
                now: SimTime::from_nanos(1_000),
            }
        );
        // Nothing was scheduled by the failed installs.
        assert!(!sim3.has_pending_events());
    }

    #[test]
    fn bleach_faults_toggle_both_queue_directions() {
        let mut b = TopologyBuilder::new();
        let h1 = b.host("h1", Box::new(Echo { received: 0 }));
        let h2 = b.host("h2", Box::new(Echo { received: 0 }));
        let link = b
            .link(
                h1,
                h2,
                LinkSpec::gbps(1.0, 1),
                QueueConfig::host_nic(),
                QueueConfig::host_nic(),
            )
            .unwrap();
        let mut sim = Simulator::new(b.build().unwrap());
        let plan = crate::FaultPlan::new().bleach_window(
            link,
            SimTime::from_nanos(100),
            SimTime::from_nanos(200),
        );
        sim.install_faults(&plan).unwrap();
        sim.run_until(SimTime::from_nanos(150)).unwrap();
        assert!(sim.links[link.index()]
            .ends
            .iter()
            .all(|e| e.queue.is_bleaching()));
        sim.run_until(SimTime::from_nanos(250)).unwrap();
        assert!(sim.links[link.index()]
            .ends
            .iter()
            .all(|e| !e.queue.is_bleaching()));
    }

    #[test]
    fn link_ids_enumerates_topology_links() {
        let sim = zero_loop_sim();
        let ids: Vec<LinkId> = sim.link_ids().collect();
        assert_eq!(ids, vec![LinkId::from_index(0)]);
        assert!(sim.link_is_up(ids[0]).unwrap());
        assert_eq!(
            sim.link_is_up(LinkId::from_index(5)).unwrap_err(),
            SimError::UnknownLink(LinkId::from_index(5))
        );
    }
}
