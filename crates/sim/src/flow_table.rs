//! A generation-tagged slab for recycled per-flow state.
//!
//! Opening and closing millions of short flows must not allocate per
//! flow: a [`FlowTable`] hands out fixed slots from a freelist, and the
//! caller resets the slot's value in place instead of constructing a new
//! one. Every slot carries a *generation* counter, bumped on release, so
//! a lookup with a stale generation — an ACK or timer from a previous
//! incarnation of the slot — returns `None` and is safely ignored.
//!
//! Combined with [`FlowId::tagged`](crate::FlowId::tagged) (which packs
//! the `(generation, origin, slot)` triple into the wire-visible flow
//! id), this gives O(1) amortized flow open/close with zero steady-state
//! allocations.

use std::error::Error;
use std::fmt;

/// Why a [`FlowTable`] release was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlowTableError {
    /// The slot index is beyond the table's capacity.
    SlotOutOfRange {
        /// The offending slot.
        slot: u32,
        /// The table capacity.
        capacity: u32,
    },
    /// The slot is not currently occupied.
    SlotVacant {
        /// The offending slot.
        slot: u32,
    },
    /// The caller's generation does not match the slot's current
    /// incarnation (a stale handle).
    StaleGeneration {
        /// The offending slot.
        slot: u32,
        /// Generation presented by the caller.
        presented: u32,
        /// Generation currently live in the slot.
        current: u32,
    },
}

impl fmt::Display for FlowTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowTableError::SlotOutOfRange { slot, capacity } => {
                write!(f, "slot {slot} out of range for capacity {capacity}")
            }
            FlowTableError::SlotVacant { slot } => write!(f, "slot {slot} is vacant"),
            FlowTableError::StaleGeneration {
                slot,
                presented,
                current,
            } => write!(
                f,
                "slot {slot}: stale generation {presented} (current {current})"
            ),
        }
    }
}

impl Error for FlowTableError {}

#[derive(Debug)]
struct Slot<T> {
    generation: u32,
    occupied: bool,
    value: T,
}

/// A bounded slab of recyclable per-flow values with generation-checked
/// handles.
///
/// # Examples
///
/// ```
/// use dctcp_sim::FlowTable;
///
/// let mut t: FlowTable<String> = FlowTable::with_capacity(2);
/// let (slot, generation) = t.acquire(String::new).unwrap();
/// t.get_mut(slot, generation).unwrap().push_str("flow state");
/// t.release(slot, generation).unwrap();
/// // The old handle is now stale: lookups miss instead of aliasing the
/// // slot's next occupant.
/// assert!(t.get(slot, generation).is_none());
/// let (slot2, generation2) = t.acquire(String::new).unwrap();
/// assert_eq!(slot2, slot);
/// assert_eq!(generation2, generation + 1);
/// // The recycled value still holds the previous incarnation's data;
/// // the caller resets it in place (no allocation).
/// assert_eq!(t.get(slot2, generation2).unwrap(), "flow state");
/// ```
#[derive(Debug)]
pub struct FlowTable<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    capacity: u32,
    live: u32,
    high_water: u32,
}

impl<T> FlowTable<T> {
    /// Creates an empty table that will hold at most `capacity` live
    /// flows. Slot storage grows to the high-water mark once and is
    /// never reallocated afterwards.
    pub fn with_capacity(capacity: u32) -> Self {
        FlowTable {
            slots: Vec::with_capacity(capacity as usize),
            free: Vec::with_capacity(capacity as usize),
            capacity,
            live: 0,
            high_water: 0,
        }
    }

    /// Maximum number of concurrently live flows.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Currently live flows.
    pub fn live(&self) -> u32 {
        self.live
    }

    /// Whether no flows are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether every slot is occupied.
    pub fn is_full(&self) -> bool {
        self.live == self.capacity
    }

    /// The most flows ever live at once — the table's real footprint.
    pub fn high_water(&self) -> u32 {
        self.high_water
    }

    /// Claims a slot and returns its `(slot, generation)` handle, or
    /// `None` when the table is full (the caller queues the flow).
    ///
    /// A recycled slot keeps its previous incarnation's value — the
    /// caller must reset it in place via [`FlowTable::get_mut`]. `init`
    /// runs only the first time a slot index is touched, so steady-state
    /// churn performs no allocation.
    pub fn acquire(&mut self, init: impl FnOnce() -> T) -> Option<(u32, u32)> {
        let slot = if let Some(slot) = self.free.pop() {
            let entry = &mut self.slots[slot as usize];
            entry.occupied = true;
            slot
        } else {
            if self.slots.len() as u32 >= self.capacity {
                return None;
            }
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                generation: 0,
                occupied: true,
                value: init(),
            });
            slot
        };
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        Some((slot, self.slots[slot as usize].generation))
    }

    /// Releases a live slot back to the freelist and bumps its
    /// generation, invalidating every outstanding handle (wraps at
    /// 2^24 to match the tagged-[`FlowId`](crate::FlowId) field width).
    ///
    /// # Errors
    ///
    /// Returns a [`FlowTableError`] for an out-of-range slot, a vacant
    /// slot, or a stale generation — all signs of a harness bug, so they
    /// surface as typed errors rather than silent corruption.
    pub fn release(&mut self, slot: u32, generation: u32) -> Result<(), FlowTableError> {
        let entry = self.entry_mut(slot, generation)?;
        entry.occupied = false;
        entry.generation = (entry.generation + 1) & crate::FlowId::MAX_GENERATION;
        self.free.push(slot);
        self.live -= 1;
        Ok(())
    }

    /// The value at `(slot, generation)`, or `None` when the slot is
    /// vacant, out of range, or the generation is stale — the
    /// ignore-stale-traffic path, deliberately not an error.
    pub fn get(&self, slot: u32, generation: u32) -> Option<&T> {
        let entry = self.slots.get(slot as usize)?;
        (entry.occupied && entry.generation == generation).then_some(&entry.value)
    }

    /// Mutable access to the value at `(slot, generation)`; `None` on
    /// any mismatch, like [`FlowTable::get`].
    pub fn get_mut(&mut self, slot: u32, generation: u32) -> Option<&mut T> {
        let entry = self.slots.get_mut(slot as usize)?;
        (entry.occupied && entry.generation == generation).then_some(&mut entry.value)
    }

    /// Iterates over live flows as `(slot, generation, &value)`, in slot
    /// order (deterministic).
    pub fn iter_live(&self) -> impl Iterator<Item = (u32, u32, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, e)| e.occupied)
            .map(|(i, e)| (i as u32, e.generation, &e.value))
    }

    fn entry_mut(&mut self, slot: u32, generation: u32) -> Result<&mut Slot<T>, FlowTableError> {
        let capacity = self.capacity;
        let entry = self
            .slots
            .get_mut(slot as usize)
            .ok_or(FlowTableError::SlotOutOfRange { slot, capacity })?;
        if !entry.occupied {
            return Err(FlowTableError::SlotVacant { slot });
        }
        if entry.generation != generation {
            return Err(FlowTableError::StaleGeneration {
                slot,
                presented: generation,
                current: entry.generation,
            });
        }
        Ok(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_until_full_then_none() {
        let mut t: FlowTable<u32> = FlowTable::with_capacity(2);
        let a = t.acquire(|| 0).unwrap();
        let b = t.acquire(|| 0).unwrap();
        assert_ne!(a.0, b.0);
        assert!(t.is_full());
        assert_eq!(t.acquire(|| 0), None);
        assert_eq!(t.live(), 2);
        assert_eq!(t.high_water(), 2);
    }

    #[test]
    fn release_recycles_with_bumped_generation() {
        let mut t: FlowTable<u32> = FlowTable::with_capacity(4);
        let (s, g) = t.acquire(|| 7).unwrap();
        *t.get_mut(s, g).unwrap() = 99;
        t.release(s, g).unwrap();
        assert!(t.is_empty());
        let (s2, g2) = t.acquire(|| 7).unwrap();
        assert_eq!(s2, s, "freelist reuses the slot");
        assert_eq!(g2, g + 1);
        // Value survives for in-place reset; init closure not re-run.
        assert_eq!(*t.get(s2, g2).unwrap(), 99);
        // Old handle is dead.
        assert!(t.get(s, g).is_none());
        assert!(t.get_mut(s, g).is_none());
    }

    #[test]
    fn release_errors_are_typed() {
        let mut t: FlowTable<u32> = FlowTable::with_capacity(2);
        let (s, g) = t.acquire(|| 0).unwrap();
        assert_eq!(
            t.release(9, 0),
            Err(FlowTableError::SlotOutOfRange {
                slot: 9,
                capacity: 2
            })
        );
        assert_eq!(
            t.release(s, g + 5),
            Err(FlowTableError::StaleGeneration {
                slot: s,
                presented: g + 5,
                current: g
            })
        );
        t.release(s, g).unwrap();
        assert_eq!(
            t.release(s, g + 1),
            Err(FlowTableError::SlotVacant { slot: s })
        );
        let msg = FlowTableError::SlotVacant { slot: 3 }.to_string();
        assert!(msg.contains("vacant"), "{msg}");
    }

    #[test]
    fn generation_wraps_at_flow_id_width() {
        let mut t: FlowTable<()> = FlowTable::with_capacity(1);
        // Force the generation to the wrap point.
        let (s, _) = t.acquire(|| ()).unwrap();
        t.release(s, 0).unwrap();
        for _ in 0..5 {
            let (s, g) = t.acquire(|| ()).unwrap();
            t.release(s, g).unwrap();
        }
        let (_, g) = t.acquire(|| ()).unwrap();
        assert_eq!(g, 6);
        assert!(g <= crate::FlowId::MAX_GENERATION);
    }

    #[test]
    fn iter_live_is_slot_ordered() {
        let mut t: FlowTable<u32> = FlowTable::with_capacity(4);
        let handles: Vec<_> = (0..4).map(|i| (t.acquire(|| i).unwrap(), i)).collect();
        let ((s1, g1), _) = handles[1];
        t.release(s1, g1).unwrap();
        let live: Vec<u32> = t.iter_live().map(|(s, _, _)| s).collect();
        assert_eq!(live, vec![0, 2, 3]);
        assert_eq!(t.live(), 3);
        assert_eq!(t.high_water(), 4);
    }

    #[test]
    fn churn_many_flows_without_growing() {
        let mut t: FlowTable<u64> = FlowTable::with_capacity(8);
        let mut live: Vec<(u32, u32)> = Vec::new();
        for i in 0..10_000u64 {
            if live.len() == 8 || (i % 3 == 0 && !live.is_empty()) {
                let (s, g) = live.remove((i % live.len() as u64) as usize);
                t.release(s, g).unwrap();
            }
            let (s, g) = t.acquire(|| 0).unwrap();
            *t.get_mut(s, g).unwrap() = i;
            live.push((s, g));
        }
        assert!(t.high_water() <= 8);
        // Every live handle still resolves and holds its own value.
        for &(s, g) in &live {
            assert!(t.get(s, g).is_some());
        }
    }
}
