//! Describing-function stability analysis of DCTCP and DT-DCTCP
//! (Sections IV–V of the paper).
//!
//! The marking mechanism at the switch is a *static nonlinearity* inside
//! the congestion-control loop: a relay (single threshold, DCTCP) or a
//! hysteresis (double threshold, DT-DCTCP). Linear analysis cannot see
//! the difference; the describing-function (DF) method replaces the
//! nonlinearity with its amplitude-dependent quasi-linear gain `N(X)` and
//! predicts self-oscillation where the loop satisfies
//! `K0·G(jω) = −1/N0(X)` (Eq. 9).
//!
//! This crate provides:
//!
//! * [`Complex`] — frequency-domain arithmetic.
//! * [`PlantParams`] — the linearized fluid-model plant `G(jω)` of
//!   Eq. (18).
//! * [`RelayDf`] / [`HysteresisDf`] — the closed-form DFs of Eqs. (22)
//!   and (27), plus [`numerical_df`] to cross-check them by direct
//!   Fourier integration of the marking waveform.
//! * [`analyze`] / [`oscillation_onset`] — the Nyquist intersection
//!   machinery behind Theorems 1 and 2 and Figure 9.
//!
//! # Examples
//!
//! How much loop gain does each scheme tolerate before self-oscillating?
//!
//! ```
//! use dctcp_control::{critical_gain, AnalysisGrid, HysteresisDf, PlantParams, RelayDf};
//!
//! let grid = AnalysisGrid { w_points: 1500, x_points: 600, ..AnalysisGrid::default() };
//! let plant = PlantParams::paper_defaults(55.0);
//! let margin_dc = critical_gain(&plant, &RelayDf::new(40.0)?, &grid).unwrap();
//! let margin_dt = critical_gain(&plant, &HysteresisDf::new(30.0, 50.0)?, &grid).unwrap();
//! assert!(margin_dt > margin_dc, "hysteresis tolerates more gain");
//! # Ok::<(), dctcp_core::ParamError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod complex;
mod design;
mod df;
mod nyquist;
mod plant;

pub use complex::Complex;
pub use design::{recommend_thresholds, ThresholdCandidate, ThresholdRecommendation};
pub use df::{
    ideal_hysteresis, ideal_relay, numerical_df, DescribingFunction, HysteresisDf, RelayDf,
};
pub use nyquist::{
    analyze, critical_gain, df_locus, intersections, oscillation_onset, plant_locus, AnalysisGrid,
    Intersection, Locus, LocusPoint, StabilityReport,
};
pub use plant::PlantParams;
