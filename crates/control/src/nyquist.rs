//! Nyquist loci, intersections, and limit-cycle prediction.

use crate::{Complex, DescribingFunction, PlantParams};

/// One sampled point of a locus, tagged with its parameter (`ω` for the
/// plant, `X` for a describing function).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocusPoint {
    /// The sweep parameter that produced this point.
    pub param: f64,
    /// The point in the complex plane.
    pub z: Complex,
}

/// A polyline in the complex plane traced by sweeping a parameter.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Locus {
    points: Vec<LocusPoint>,
}

impl Locus {
    /// The sampled points.
    pub fn points(&self) -> &[LocusPoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the locus is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Renders the locus as CSV (`param,re,im` rows) for external
    /// plotting of Nyquist diagrams.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("param,re,im\n");
        for p in &self.points {
            out.push_str(&format!("{},{},{}\n", p.param, p.z.re, p.z.im));
        }
        out
    }
}

/// Samples the scaled plant locus `K0·G(jω)` over a logarithmic
/// frequency grid `[w_min, w_max]`.
///
/// # Panics
///
/// Panics if the range is not positive-increasing or `n < 2`.
pub fn plant_locus(plant: &PlantParams, k0: f64, w_min: f64, w_max: f64, n: usize) -> Locus {
    assert!(w_min > 0.0 && w_max > w_min && n >= 2, "bad frequency grid");
    let ratio = (w_max / w_min).ln();
    let points = (0..n)
        .map(|i| {
            let w = w_min * (ratio * i as f64 / (n - 1) as f64).exp();
            LocusPoint {
                param: w,
                z: plant.g_of_jw(w) * k0,
            }
        })
        .collect();
    Locus { points }
}

/// Samples the locus `−1/N0(X)` for `X` from the DF's minimum amplitude
/// up to `max_factor` times it, on a logarithmic grid.
///
/// # Panics
///
/// Panics if `max_factor <= 1` or `n < 2`.
pub fn df_locus(df: &dyn DescribingFunction, max_factor: f64, n: usize) -> Locus {
    assert!(max_factor > 1.0 && n >= 2, "bad amplitude grid");
    let x0 = df.min_amplitude();
    let ratio = max_factor.ln();
    let points = (0..n)
        .filter_map(|i| {
            let x = x0 * (ratio * i as f64 / (n - 1) as f64).exp();
            let z = df.neg_recip_relative(x)?;
            z.is_finite().then_some(LocusPoint { param: x, z })
        })
        .collect();
    Locus { points }
}

/// A solution of the characteristic equation `K0·G(jω) = −1/N0(X)`
/// (Eq. 19 / 24): a predicted limit cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Intersection {
    /// Where the loci cross.
    pub point: Complex,
    /// Oscillation angular frequency `ω` (rad/s).
    pub frequency: f64,
    /// Oscillation amplitude `X` (queue packets).
    pub amplitude: f64,
}

fn cross(a: Complex, b: Complex) -> f64 {
    a.re * b.im - a.im * b.re
}

/// Finds all crossings between two polylines, interpolating each locus's
/// parameter linearly within the crossing segments.
///
/// Runs in `O(n + k·m)` where `k` is the number of plant segments whose
/// bounding box overlaps the DF locus's bounding box — the DF locus hugs
/// the negative real axis, so almost all plant segments are rejected by
/// the box test.
pub fn intersections(plant: &Locus, df: &Locus) -> Vec<Intersection> {
    let mut found = Vec::new();
    if df.points.len() < 2 || plant.points.len() < 2 {
        return found;
    }
    // Bounding box of the DF locus, padded slightly.
    let (mut lo_re, mut hi_re) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut lo_im, mut hi_im) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in &df.points {
        lo_re = lo_re.min(p.z.re);
        hi_re = hi_re.max(p.z.re);
        lo_im = lo_im.min(p.z.im);
        hi_im = hi_im.max(p.z.im);
    }
    let pad = 1e-9 + 1e-6 * (hi_re - lo_re).abs().max((hi_im - lo_im).abs());
    lo_re -= pad;
    hi_re += pad;
    lo_im -= pad;
    hi_im += pad;

    for pw in plant.points.windows(2) {
        let (p1, p2) = (pw[0], pw[1]);
        // Box rejection against the whole DF locus.
        if p1.z.re.max(p2.z.re) < lo_re
            || p1.z.re.min(p2.z.re) > hi_re
            || p1.z.im.max(p2.z.im) < lo_im
            || p1.z.im.min(p2.z.im) > hi_im
        {
            continue;
        }
        let d1 = p2.z - p1.z;
        for qw in df.points.windows(2) {
            let (q1, q2) = (qw[0], qw[1]);
            let d2 = q2.z - q1.z;
            let denom = cross(d1, d2);
            if denom.abs() < 1e-30 {
                continue;
            }
            let s = q1.z - p1.z;
            let t = cross(s, d2) / denom;
            let u = cross(s, d1) / denom;
            if (0.0..=1.0).contains(&t) && (0.0..=1.0).contains(&u) {
                found.push(Intersection {
                    point: p1.z + d1 * t,
                    frequency: p1.param + (p2.param - p1.param) * t,
                    amplitude: q1.param + (q2.param - q1.param) * u,
                });
            }
        }
    }
    found
}

/// Result of a stability analysis per Theorem 1/2.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityReport {
    /// Whether the loci are disjoint (no predicted self-oscillation).
    pub stable: bool,
    /// All characteristic-equation solutions found.
    pub intersections: Vec<Intersection>,
    /// The predicted *stable* limit cycle (the largest-amplitude
    /// solution), when oscillation is predicted.
    pub limit_cycle: Option<Intersection>,
}

/// Sampling resolution for [`analyze`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalysisGrid {
    /// Lowest angular frequency sampled.
    pub w_min: f64,
    /// Highest angular frequency sampled.
    pub w_max: f64,
    /// Plant locus samples.
    pub w_points: usize,
    /// Amplitude sweep extends to `min_amplitude * x_max_factor`.
    pub x_max_factor: f64,
    /// DF locus samples.
    pub x_points: usize,
}

impl Default for AnalysisGrid {
    fn default() -> Self {
        AnalysisGrid {
            w_min: 1e2,
            w_max: 1e7,
            w_points: 4000,
            x_max_factor: 200.0,
            x_points: 2000,
        }
    }
}

/// Applies the paper's stability criterion: intersect `K0·G(jω)` with
/// `−1/N0(X)` and report predicted limit cycles.
pub fn analyze(
    plant: &PlantParams,
    df: &dyn DescribingFunction,
    grid: &AnalysisGrid,
) -> StabilityReport {
    let gl = plant_locus(plant, df.k0(), grid.w_min, grid.w_max, grid.w_points);
    let dl = df_locus(df, grid.x_max_factor, grid.x_points);
    let mut xs = intersections(&gl, &dl);
    xs.sort_by(|a, b| a.amplitude.partial_cmp(&b.amplitude).expect("finite"));
    let limit_cycle = xs.last().copied();
    StabilityReport {
        stable: xs.is_empty(),
        intersections: xs,
        limit_cycle,
    }
}

/// The loop-gain multiplier at which the scaled plant locus first
/// touches the DF locus: the system's *gain margin relative to the
/// describing-function critical locus*.
///
/// A value above `plant.gain` means the loci are disjoint at the current
/// gain (no predicted oscillation); at or below means they intersect.
/// Returns `None` when no finite multiplier up to `10^6` produces an
/// intersection.
///
/// Found by bisection on the multiplier (the locus scales radially from
/// the origin, so "intersects" is monotone in the gain for loci that
/// extend to infinity along a ray, as both DF loci here do).
pub fn critical_gain(
    plant: &PlantParams,
    df: &dyn DescribingFunction,
    grid: &AnalysisGrid,
) -> Option<f64> {
    let dl = df_locus(df, grid.x_max_factor, grid.x_points);
    let hits = |gain: f64| -> bool {
        let scaled = plant.with_gain(gain);
        let gl = plant_locus(&scaled, df.k0(), grid.w_min, grid.w_max, grid.w_points);
        !intersections(&gl, &dl).is_empty()
    };
    let (mut lo, mut hi) = (1e-6, 1e6);
    if !hits(hi) {
        return None;
    }
    if hits(lo) {
        return Some(lo);
    }
    for _ in 0..60 {
        let mid = (lo * hi).sqrt();
        if hits(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// Sweeps the flow count and returns the smallest `N` at which the
/// describing-function analysis predicts oscillation, or `None` if the
/// system stays stable over the whole range.
pub fn oscillation_onset(
    base: &PlantParams,
    df: &dyn DescribingFunction,
    n_values: impl IntoIterator<Item = u32>,
    grid: &AnalysisGrid,
) -> Option<u32> {
    for n in n_values {
        let plant = PlantParams {
            flows: n as f64,
            ..*base
        };
        if !analyze(&plant, df, grid).stable {
            return Some(n);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HysteresisDf, RelayDf};

    fn paper_plant(n: f64) -> PlantParams {
        PlantParams::paper_defaults(n)
    }

    #[test]
    fn locus_sampling_is_monotone_in_param() {
        let l = plant_locus(&paper_plant(40.0), 1.0 / 40.0, 1e2, 1e6, 100);
        assert_eq!(l.len(), 100);
        for w in l.points().windows(2) {
            assert!(w[1].param > w[0].param);
        }
    }

    #[test]
    fn locus_csv_has_one_row_per_point() {
        let df = RelayDf::new(40.0).unwrap();
        let l = df_locus(&df, 10.0, 20);
        let csv = l.to_csv();
        assert_eq!(csv.lines().count(), l.len() + 1);
        assert!(csv.starts_with("param,re,im"));
    }

    #[test]
    fn df_locus_skips_invalid_amplitudes() {
        let df = RelayDf::new(40.0).unwrap();
        let l = df_locus(&df, 10.0, 50);
        assert!(!l.is_empty());
        for p in l.points() {
            assert!(p.param >= 40.0);
            assert!(p.z.re < 0.0, "-1/N0 lies on the negative real side");
        }
    }

    #[test]
    fn segment_intersection_finds_crossing() {
        // Two hand-made loci crossing at the origin.
        let a = Locus {
            points: vec![
                LocusPoint {
                    param: 0.0,
                    z: Complex::new(-1.0, -1.0),
                },
                LocusPoint {
                    param: 1.0,
                    z: Complex::new(1.0, 1.0),
                },
            ],
        };
        let b = Locus {
            points: vec![
                LocusPoint {
                    param: 10.0,
                    z: Complex::new(-1.0, 1.0),
                },
                LocusPoint {
                    param: 20.0,
                    z: Complex::new(1.0, -1.0),
                },
            ],
        };
        let xs = intersections(&a, &b);
        assert_eq!(xs.len(), 1);
        assert!(xs[0].point.norm() < 1e-12);
        assert!((xs[0].frequency - 0.5).abs() < 1e-12);
        assert!((xs[0].amplitude - 15.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let a = Locus {
            points: vec![
                LocusPoint {
                    param: 0.0,
                    z: Complex::new(0.0, 0.0),
                },
                LocusPoint {
                    param: 1.0,
                    z: Complex::new(1.0, 0.0),
                },
            ],
        };
        let b = Locus {
            points: vec![
                LocusPoint {
                    param: 0.0,
                    z: Complex::new(0.0, 1.0),
                },
                LocusPoint {
                    param: 1.0,
                    z: Complex::new(1.0, 1.0),
                },
            ],
        };
        assert!(intersections(&a, &b).is_empty());
    }

    /// The Fig. 9 calibration: a loop-gain multiplier large enough that
    /// both schemes' loci eventually intersect (DCTCP's margin dips to
    /// ≈ 5.4, DT-DCTCP's to ≈ 6.4; see EXPERIMENTS.md).
    const FIG9_GAIN: f64 = 6.5;

    fn test_grid() -> AnalysisGrid {
        AnalysisGrid {
            w_points: 1500,
            x_points: 600,
            ..AnalysisGrid::default()
        }
    }

    #[test]
    fn few_flows_are_stable_many_oscillate() {
        let df = RelayDf::new(40.0).unwrap();
        let grid = test_grid();
        let small = analyze(&paper_plant(10.0).with_gain(FIG9_GAIN), &df, &grid);
        assert!(small.stable, "N=10 should be stable for DCTCP");
        let large = analyze(&paper_plant(60.0).with_gain(FIG9_GAIN), &df, &grid);
        assert!(!large.stable, "N=60 should oscillate for DCTCP");
        let lc = large.limit_cycle.expect("limit cycle predicted");
        assert!(lc.amplitude > 40.0, "amplitude {} above K", lc.amplitude);
        assert!(lc.frequency > 0.0);
    }

    #[test]
    fn printed_gain_never_reaches_the_critical_locus() {
        // With Eq. (17) verbatim the DCTCP loci stay disjoint for every
        // flow count; the gap is smallest near N ≈ 55 where the critical
        // gain dips to ≈ 5.4 (this motivates the FIG9_GAIN calibration).
        let df = RelayDf::new(40.0).unwrap();
        let grid = test_grid();
        assert!(analyze(&paper_plant(55.0), &df, &grid).stable);
        let cg = critical_gain(&paper_plant(55.0), &df, &grid).expect("finite critical gain");
        assert!(
            cg > 5.0 && cg < 6.0,
            "critical gain {cg} out of expected band"
        );
    }

    #[test]
    fn critical_gain_is_smallest_near_the_paper_onset() {
        let df = RelayDf::new(40.0).unwrap();
        let grid = test_grid();
        let cg = |n: f64| critical_gain(&paper_plant(n), &df, &grid).unwrap();
        let at_10 = cg(10.0);
        let at_55 = cg(55.0);
        let at_150 = cg(150.0);
        assert!(at_55 < at_10, "{at_55} !< {at_10}");
        assert!(at_55 < at_150, "{at_55} !< {at_150}");
    }

    #[test]
    fn dt_dctcp_onset_is_later_than_dctcp() {
        // The paper's headline analysis (Fig. 9): with K=40 vs
        // (K1, K2) = (30, 50), the DT-DCTCP loci intersect only at a
        // larger flow count than DCTCP's (60 vs 70 in the paper).
        let relay = RelayDf::new(40.0).unwrap();
        let hyst = HysteresisDf::new(30.0, 50.0).unwrap();
        let grid = test_grid();
        let base = paper_plant(1.0).with_gain(FIG9_GAIN);
        let on_dc = oscillation_onset(&base, &relay, (5..=150).step_by(5), &grid)
            .expect("DCTCP must eventually oscillate");
        let on_dt = oscillation_onset(&base, &hyst, (5..=150).step_by(5), &grid)
            .expect("DT-DCTCP must eventually oscillate");
        assert!(
            on_dt > on_dc,
            "DT onset {on_dt} should exceed DCTCP onset {on_dc}"
        );
    }

    #[test]
    fn dt_margin_always_exceeds_dctcp_margin() {
        // Scale-free version of Theorem 1 vs Theorem 2: at every flow
        // count the hysteresis needs strictly more loop gain to
        // oscillate than the relay.
        let relay = RelayDf::new(40.0).unwrap();
        let hyst = HysteresisDf::new(30.0, 50.0).unwrap();
        let grid = test_grid();
        for n in [10.0, 30.0, 55.0, 80.0, 120.0] {
            let m_dc = critical_gain(&paper_plant(n), &relay, &grid).unwrap();
            let m_dt = critical_gain(&paper_plant(n), &hyst, &grid).unwrap();
            assert!(
                m_dt > m_dc,
                "N={n}: DT margin {m_dt} should exceed DCTCP margin {m_dc}"
            );
        }
    }

    #[test]
    fn wider_hysteresis_is_more_stable() {
        let grid = test_grid();
        let base = paper_plant(55.0);
        let narrow = HysteresisDf::new(38.0, 42.0).unwrap();
        let wide = HysteresisDf::new(25.0, 55.0).unwrap();
        let m_narrow = critical_gain(&base, &narrow, &grid).unwrap();
        let m_wide = critical_gain(&base, &wide, &grid).unwrap();
        assert!(
            m_wide > m_narrow,
            "wider hysteresis should have a larger margin: {m_wide} vs {m_narrow}"
        );
    }
}
