//! The linearized DCTCP plant `G(jω)` (Section V-A of the paper).

use dctcp_core::ParamError;

use crate::Complex;

/// Network parameters of the linearized fluid model.
///
/// All quantities use the paper's units: capacity in packets/second,
/// round-trip time in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlantParams {
    /// Bottleneck capacity `C` in packets per second.
    pub capacity_pps: f64,
    /// Number of flows `N`.
    pub flows: f64,
    /// Round-trip time `R0` in seconds.
    pub rtt: f64,
    /// DCTCP EWMA gain `g`.
    pub g: f64,
    /// Loop-gain calibration multiplier applied to `P(s)`.
    ///
    /// `1.0` evaluates the paper's printed Eq. (17) verbatim. With the
    /// printed coefficients the scaled locus `K0·G(jω)` never reaches the
    /// relay DF's critical point `−π` for *any* flow count (its
    /// negative-real-axis crossing peaks at ≈ 0.58 near N ≈ 55), so the
    /// intersections drawn in the paper's Fig. 9 require a larger loop
    /// gain. [`crate::critical_gain`] computes the exact multiplier at
    /// which the loci first touch; see EXPERIMENTS.md for the calibration
    /// used to reproduce Fig. 9's onset flow counts.
    pub gain: f64,
}

impl PlantParams {
    /// The paper's simulation setup: 10 Gb/s bottleneck, 1500-byte
    /// packets, 100 µs RTT, `g = 1/16`, with `n` flows.
    pub fn paper_defaults(n: f64) -> Self {
        PlantParams::from_link(10e9, 1500, n, 100e-6, 1.0 / 16.0)
    }

    /// Builds parameters from a link rate in bits/s and a packet size in
    /// bytes.
    pub fn from_link(rate_bps: f64, pkt_bytes: u32, flows: f64, rtt: f64, g: f64) -> Self {
        PlantParams {
            capacity_pps: rate_bps / (8.0 * pkt_bytes as f64),
            flows,
            rtt,
            g,
            gain: 1.0,
        }
    }

    /// Returns the same parameters with a different loop-gain multiplier.
    pub fn with_gain(mut self, gain: f64) -> Self {
        self.gain = gain;
        self
    }

    /// Linearizes at a delay-differential operating point: a standing
    /// queue of `q_star` packets stretches every lag term from `R0` to
    /// the effective round-trip `R* = R0 + q*/C`, which is the delay the
    /// DDE fluid model (`dctcp_fluid::DdeModel`) actually feeds back.
    /// Feed the closed-form fixed-point queue from
    /// `dctcp_fluid::equilibrium` to analyze the loop the scale-out
    /// sweeps integrate; with `q_star = 0` this is the paper's original
    /// `R0` plant.
    pub fn at_operating_point(mut self, q_star: f64) -> Self {
        self.rtt += q_star.max(0.0) / self.capacity_pps;
        self
    }

    /// Checks parameters for positivity.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if any parameter is non-positive or `g` is
    /// not in `(0, 1]`.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.capacity_pps.is_nan() || self.capacity_pps <= 0.0 {
            return Err(ParamError::new("capacity must be positive"));
        }
        if self.flows.is_nan() || self.flows <= 0.0 {
            return Err(ParamError::new("flow count must be positive"));
        }
        if self.rtt.is_nan() || self.rtt <= 0.0 {
            return Err(ParamError::new("rtt must be positive"));
        }
        if !(self.g > 0.0 && self.g <= 1.0) {
            return Err(ParamError::new("g must be in (0, 1]"));
        }
        if self.gain.is_nan() || self.gain <= 0.0 {
            return Err(ParamError::new("gain must be positive"));
        }
        Ok(())
    }

    /// The per-flow operating window `W0 = R0·C/N` in packets.
    pub fn w0(&self) -> f64 {
        self.rtt * self.capacity_pps / self.flows
    }

    /// The operating-point marking probability `p0 = α0 = √(2/W0)`.
    pub fn alpha0(&self) -> f64 {
        (2.0 / self.w0()).sqrt()
    }

    /// The delay-free plant `P(s)` of Eq. (17):
    ///
    /// ```text
    ///        √(C/2NR0) · (2g/R0 + s) · N/R0
    /// P(s) = ───────────────────────────────────────
    ///        (s + g/R0)(s + N/(R0²C))(s + 1/R0)
    /// ```
    pub fn p_of_s(&self, s: Complex) -> Complex {
        let r0 = self.rtt;
        let n = self.flows;
        let c = self.capacity_pps;
        let g = self.g;
        let k = self.gain * (c / (2.0 * n * r0)).sqrt() * (n / r0);
        let numer = s + 2.0 * g / r0;
        let denom = (s + g / r0) * (s + n / (r0 * r0 * c)) * (s + 1.0 / r0);
        k * numer / denom
    }

    /// The open-loop frequency response `G(jω) = P(jω)·e^{−jωR0}`
    /// (Eq. 18), the loop transfer seen by the marking nonlinearity.
    pub fn g_of_jw(&self, w: f64) -> Complex {
        let p = self.p_of_s(Complex::new(0.0, w));
        p * Complex::polar(1.0, -w * self.rtt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: f64) -> PlantParams {
        PlantParams::paper_defaults(n)
    }

    #[test]
    fn paper_defaults_units() {
        let p = params(10.0);
        // 10 Gb/s of 1500 B packets = 833,333 pkt/s.
        assert!((p.capacity_pps - 833_333.333_3).abs() < 1.0);
        assert_eq!(p.rtt, 1e-4);
        assert_eq!(p.g, 1.0 / 16.0);
    }

    #[test]
    fn operating_point() {
        let p = params(10.0);
        // W0 = R0 C / N = 1e-4 * 833333 / 10 ≈ 8.33 packets.
        assert!((p.w0() - 8.3333).abs() < 0.01);
        // alpha0 = sqrt(2/W0) ≈ 0.49.
        assert!((p.alpha0() - (2.0 / p.w0()).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn dc_gain_is_positive_real() {
        let p = params(40.0);
        let g0 = p.p_of_s(Complex::ZERO);
        assert!(g0.im.abs() < 1e-9);
        assert!(g0.re > 0.0, "DC gain {g0} must be positive");
    }

    #[test]
    fn dc_gain_closed_form() {
        // P(0) = sqrt(C/2NR0) * (2g/R0) * (N/R0) / [(g/R0)(N/R0²C)(1/R0)]
        //      = sqrt(C/2NR0) * 2 C R0.
        let p = params(25.0);
        let expected = (p.capacity_pps / (2.0 * p.flows * p.rtt)).sqrt()
            * 2.0
            * p.capacity_pps
            * p.rtt
            * p.rtt;
        let got = p.p_of_s(Complex::ZERO).re;
        assert!(
            (got - expected).abs() / expected < 1e-9,
            "{got} vs {expected}"
        );
    }

    #[test]
    fn magnitude_rolls_off_at_high_frequency() {
        let p = params(40.0);
        let low = p.g_of_jw(1e2).norm();
        let high = p.g_of_jw(1e7).norm();
        assert!(high < low / 100.0, "no roll-off: {low} -> {high}");
    }

    #[test]
    fn delay_only_rotates() {
        let p = params(40.0);
        for w in [1e3, 1e4, 1e5] {
            let without = p.p_of_s(Complex::new(0.0, w)).norm();
            let with = p.g_of_jw(w).norm();
            assert!((without - with).abs() / without < 1e-12);
        }
    }

    #[test]
    fn phase_crossing_shifts_left_then_recedes() {
        // The paper: "K0·G(jω) shifts to the left as N increases". With
        // the printed coefficients the negative-real-axis crossing
        // magnitude grows from N = 10 up to a peak near N ≈ 55 (which is
        // where the paper's Fig. 9 places the first intersection) and
        // then slowly recedes — the linearization's operating point
        // leaves its validity region (α0 ≥ 1) beyond N ≈ 42.
        let cross_mag = |n: f64| -> f64 {
            let p = params(n);
            let mut w = 1e3;
            let mut prev = p.g_of_jw(w);
            let mut best: f64 = 0.0;
            while w < 1e7 {
                let w2 = w * 1.005;
                let z = p.g_of_jw(w2);
                if prev.im.signum() != z.im.signum() && z.re < 0.0 {
                    best = best.max(-z.re);
                }
                prev = z;
                w = w2;
            }
            assert!(best > 0.0, "no crossover found for N = {n}");
            best
        };
        let m10 = cross_mag(10.0);
        let m55 = cross_mag(55.0);
        let m150 = cross_mag(150.0);
        assert!(m10 < m55, "left shift: {m10} !< {m55}");
        assert!(m150 < m55, "recession past the peak: {m150} !< {m55}");
    }

    #[test]
    fn operating_point_queue_stretches_the_delay() {
        let p = params(40.0);
        let shifted = p.at_operating_point(40.0);
        // 40 packets over 833,333 pkt/s adds 48 µs of queueing delay.
        assert!((shifted.rtt - (p.rtt + 40.0 / p.capacity_pps)).abs() < 1e-15);
        // Zero (or clamped negative) queue leaves the plant unchanged.
        assert_eq!(p.at_operating_point(0.0), p);
        assert_eq!(p.at_operating_point(-5.0), p);
        // A longer loop delay slows the predicted dynamics: the phase
        // lag at a fixed frequency grows.
        let w = 1e3;
        let base_phase = p.g_of_jw(w).im.atan2(p.g_of_jw(w).re);
        let q = p.at_operating_point(200.0);
        let shifted_phase = q.g_of_jw(w).im.atan2(q.g_of_jw(w).re);
        assert!(
            shifted_phase < base_phase,
            "{shifted_phase} !< {base_phase}"
        );
    }

    #[test]
    fn validate_rejects_nonsense() {
        let mut p = params(10.0);
        p.flows = 0.0;
        assert!(p.validate().is_err());
        let mut p = params(10.0);
        p.g = 1.5;
        assert!(p.validate().is_err());
        let mut p = params(10.0);
        p.rtt = -1.0;
        assert!(p.validate().is_err());
        assert!(params(10.0).validate().is_ok());
    }
}
