//! Threshold-design helper: choosing `(K1, K2)` from the DF analysis.
//!
//! The paper picks `(30, 50)` around `K = 40` by hand. This module turns
//! Theorem 2 into a design procedure: for a given network and midpoint,
//! sweep the hysteresis width and report the loop-gain margin of each
//! candidate, picking the narrowest width that achieves a requested
//! margin improvement over the single threshold — narrow widths keep the
//! guaranteed limit-cycle amplitude (which is at least `K2`) small, so
//! more width than necessary is pure queue-excursion cost.

use crate::{critical_gain, AnalysisGrid, HysteresisDf, PlantParams, RelayDf};

/// One candidate from [`recommend_thresholds`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdCandidate {
    /// Arming threshold `K1` (packets).
    pub k1: f64,
    /// Release threshold `K2` (packets).
    pub k2: f64,
    /// Loop-gain margin of the hysteresis at the worst sampled flow
    /// count.
    pub margin: f64,
    /// Margin improvement over the single threshold at the midpoint
    /// (`margin / relay_margin`).
    pub improvement: f64,
}

/// The result of a threshold design sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdRecommendation {
    /// The single-threshold baseline margin at the worst sampled N.
    pub relay_margin: f64,
    /// Every candidate evaluated, ordered by increasing width.
    pub candidates: Vec<ThresholdCandidate>,
    /// The narrowest candidate meeting the requested improvement, if
    /// any.
    pub recommended: Option<ThresholdCandidate>,
}

/// Sweeps hysteresis widths around `midpoint` and recommends the
/// narrowest `(K1, K2)` whose worst-case loop-gain margin beats the
/// single threshold's by at least `min_improvement` (e.g. `1.15` for
/// +15 %).
///
/// The margin is evaluated at each flow count in `flows` and the
/// minimum (worst case) is used, mirroring how an operator would
/// provision for a range of loads.
///
/// # Panics
///
/// Panics if `midpoint` is not positive, `flows` is empty, or
/// `min_improvement < 1`.
pub fn recommend_thresholds(
    base: &PlantParams,
    midpoint: f64,
    flows: &[f64],
    min_improvement: f64,
    grid: &AnalysisGrid,
) -> ThresholdRecommendation {
    assert!(midpoint > 1.0, "midpoint must exceed one packet");
    assert!(!flows.is_empty(), "need at least one flow count");
    assert!(min_improvement >= 1.0, "improvement must be >= 1");

    let worst_margin = |df: &dyn crate::DescribingFunction| -> f64 {
        flows
            .iter()
            .map(|&n| {
                let plant = PlantParams { flows: n, ..*base };
                critical_gain(&plant, df, grid).unwrap_or(f64::INFINITY)
            })
            .fold(f64::INFINITY, f64::min)
    };

    let relay = RelayDf::new(midpoint).expect("positive midpoint");
    let relay_margin = worst_margin(&relay);

    let max_half_width = (midpoint - 1.0).floor();
    let mut candidates = Vec::new();
    let mut recommended = None;
    let mut half = 1.0;
    while half <= max_half_width {
        let (k1, k2) = (midpoint - half, midpoint + half);
        let hyst = HysteresisDf::new(k1, k2).expect("0 < k1 < k2");
        let margin = worst_margin(&hyst);
        let cand = ThresholdCandidate {
            k1,
            k2,
            margin,
            improvement: margin / relay_margin,
        };
        candidates.push(cand);
        if recommended.is_none() && cand.improvement >= min_improvement {
            recommended = Some(cand);
        }
        half += 1.0;
    }

    ThresholdRecommendation {
        relay_margin,
        candidates,
        recommended,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> AnalysisGrid {
        AnalysisGrid {
            w_points: 1000,
            x_points: 400,
            ..AnalysisGrid::default()
        }
    }

    #[test]
    fn margins_increase_with_width() {
        let base = PlantParams::paper_defaults(1.0);
        let rec = recommend_thresholds(&base, 40.0, &[55.0], 1.0, &grid());
        assert!(!rec.candidates.is_empty());
        for w in rec.candidates.windows(2) {
            assert!(
                w[1].margin >= w[0].margin - 1e-6,
                "wider hysteresis must not lose margin: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
        // Every candidate beats the relay.
        for c in &rec.candidates {
            assert!(c.improvement >= 1.0 - 1e-9, "{c:?}");
        }
    }

    #[test]
    fn recommendation_is_narrowest_sufficient() {
        let base = PlantParams::paper_defaults(1.0);
        let rec = recommend_thresholds(&base, 40.0, &[55.0], 1.10, &grid());
        let r = rec.recommended.expect("10% improvement is attainable");
        // No narrower candidate attains the target.
        for c in &rec.candidates {
            if c.k2 - c.k1 < r.k2 - r.k1 {
                assert!(c.improvement < 1.10);
            }
        }
        assert!(r.improvement >= 1.10);
    }

    #[test]
    fn paper_choice_is_in_the_reasonable_band() {
        // The paper's (30, 50) pair: width 20 around midpoint 40. Its
        // margin improvement over the relay should be in line with the
        // sweep's candidates at that width.
        let base = PlantParams::paper_defaults(1.0);
        let rec = recommend_thresholds(&base, 40.0, &[55.0], 1.0, &grid());
        let ten = rec
            .candidates
            .iter()
            .find(|c| (c.k2 - c.k1 - 20.0).abs() < 1e-9)
            .expect("width-20 candidate evaluated");
        assert!(
            ten.improvement > 1.1 && ten.improvement < 2.0,
            "paper-width improvement {:.3} out of band",
            ten.improvement
        );
    }

    #[test]
    fn unattainable_target_gives_no_recommendation() {
        let base = PlantParams::paper_defaults(1.0);
        let rec = recommend_thresholds(&base, 40.0, &[55.0], 100.0, &grid());
        assert!(rec.recommended.is_none());
        assert!(!rec.candidates.is_empty());
    }

    #[test]
    #[should_panic(expected = "improvement must be >= 1")]
    fn rejects_sub_unity_target() {
        let base = PlantParams::paper_defaults(1.0);
        let _ = recommend_thresholds(&base, 40.0, &[55.0], 0.5, &grid());
    }
}
