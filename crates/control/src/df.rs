//! Describing functions of the marking nonlinearities (Section IV/V).

use dctcp_core::ParamError;

use crate::Complex;

/// A describing function `N(X)` of a static nonlinearity, with the
/// paper's "relative" normalization `N(X) = K0·N0(X)` (Eq. 8).
pub trait DescribingFunction {
    /// The describing function at input amplitude `x`, or `None` when the
    /// amplitude is below the nonlinearity's validity bound
    /// ([`DescribingFunction::min_amplitude`]).
    fn df(&self, x: f64) -> Option<Complex>;

    /// The characteristic gain `K0` (`1/K` for DCTCP, `1/K2` for
    /// DT-DCTCP).
    fn k0(&self) -> f64;

    /// Smallest amplitude at which the DF is defined (`K`, resp. `K2`).
    fn min_amplitude(&self) -> f64;

    /// The relative DF `N0(X) = N(X)/K0`.
    fn relative_df(&self, x: f64) -> Option<Complex> {
        Some(self.df(x)? / self.k0())
    }

    /// The locus `−1/N0(X)` plotted against `K0·G(jω)` on the Nyquist
    /// diagram (Eq. 9).
    fn neg_recip_relative(&self, x: f64) -> Option<Complex> {
        let n0 = self.relative_df(x)?;
        if n0.norm_sqr() == 0.0 {
            return None;
        }
        Some(-n0.inv())
    }
}

/// DCTCP's single-threshold relay (Theorem 1):
/// `N_dc(X) = (2/πX)·√(1 − (K/X)²)` for `X ≥ K`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelayDf {
    k: f64,
}

impl RelayDf {
    /// Creates the relay DF with threshold `k` (packets).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `k > 0`.
    pub fn new(k: f64) -> Result<Self, ParamError> {
        if k.is_nan() || k <= 0.0 {
            return Err(ParamError::new(format!(
                "relay threshold must be positive, got {k}"
            )));
        }
        Ok(RelayDf { k })
    }

    /// The threshold `K`.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// The supremum of `−1/N0(X)` along the real axis, reached at
    /// `X = K√2`: `max(−1/N0) = −π`.
    pub fn neg_recip_max(&self) -> f64 {
        -std::f64::consts::PI
    }
}

impl DescribingFunction for RelayDf {
    fn df(&self, x: f64) -> Option<Complex> {
        if x < self.k {
            return None;
        }
        let r = self.k / x;
        let b1 = (2.0 / (std::f64::consts::PI)) * (1.0 - r * r).sqrt();
        Some(Complex::new(b1 / x, 0.0))
    }

    fn k0(&self) -> f64 {
        1.0 / self.k
    }

    fn min_amplitude(&self) -> f64 {
        self.k
    }
}

/// DT-DCTCP's hysteresis (Theorem 2), for `X ≥ K2`:
///
/// ```text
/// N_dt(X) = (1/πX)·[√(1 − (K1/X)²) + √(1 − (K2/X)²)] + j·(K2 − K1)/(πX²)
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HysteresisDf {
    k1: f64,
    k2: f64,
}

impl HysteresisDf {
    /// Creates the hysteresis DF with arming threshold `k1` and release
    /// threshold `k2`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `0 < k1 < k2`.
    pub fn new(k1: f64, k2: f64) -> Result<Self, ParamError> {
        if !(k1 > 0.0 && k2 > k1) {
            return Err(ParamError::new(format!(
                "hysteresis thresholds must satisfy 0 < K1 < K2, got {k1}, {k2}"
            )));
        }
        Ok(HysteresisDf { k1, k2 })
    }

    /// The arming threshold `K1`.
    pub fn k1(&self) -> f64 {
        self.k1
    }

    /// The release threshold `K2`.
    pub fn k2(&self) -> f64 {
        self.k2
    }
}

impl DescribingFunction for HysteresisDf {
    fn df(&self, x: f64) -> Option<Complex> {
        if x < self.k2 {
            return None;
        }
        let pi = std::f64::consts::PI;
        let r1 = self.k1 / x;
        let r2 = self.k2 / x;
        let b1 = ((1.0 - r1 * r1).sqrt() + (1.0 - r2 * r2).sqrt()) / pi;
        let a1 = (self.k2 - self.k1) / (pi * x);
        Some(Complex::new(b1 / x, a1 / x))
    }

    fn k0(&self) -> f64 {
        1.0 / self.k2
    }

    fn min_amplitude(&self) -> f64 {
        self.k2
    }
}

/// Numerically computes the describing function of an arbitrary
/// binary marking waveform by integrating the Fourier fundamental of the
/// output over one period of `x(θ) = X·sin θ`.
///
/// `marking(θ, x)` returns whether the marker is on at phase `θ` given
/// input value `x`. Used to cross-validate the closed forms against the
/// actual switch-side state machines.
pub fn numerical_df(
    x_amp: f64,
    steps: usize,
    mut marking: impl FnMut(f64, f64) -> bool,
) -> Complex {
    let pi = std::f64::consts::PI;
    let dt = 2.0 * pi / steps as f64;
    let mut a1 = 0.0;
    let mut b1 = 0.0;
    // One warm-up period settles any hysteresis state.
    for k in 0..steps {
        let theta = k as f64 * dt;
        let _ = marking(theta, x_amp * theta.sin());
    }
    for k in 0..steps {
        let theta = k as f64 * dt;
        let y = if marking(theta, x_amp * theta.sin()) {
            1.0
        } else {
            0.0
        };
        a1 += y * theta.cos() * dt;
        b1 += y * theta.sin() * dt;
    }
    a1 /= pi;
    b1 /= pi;
    Complex::new(b1 / x_amp, a1 / x_amp)
}

/// Reference implementation of the ideal relay for [`numerical_df`]:
/// on whenever the input is at or above `k`.
pub fn ideal_relay(k: f64) -> impl FnMut(f64, f64) -> bool {
    move |_theta, x| x >= k
}

/// Reference implementation of the paper's hysteresis for
/// [`numerical_df`]: arms when the input rises through `k1`, releases
/// when it falls through `k2`.
pub fn ideal_hysteresis(k1: f64, k2: f64) -> impl FnMut(f64, f64) -> bool {
    let mut armed = false;
    let mut prev = f64::NEG_INFINITY;
    move |_theta, x| {
        let rising = x > prev;
        if x >= k2 || (rising && prev < k1 && x >= k1) {
            armed = true;
        } else if !rising && prev >= k2 && x < k2 {
            armed = false;
        }
        if x < k1 {
            armed = false;
        }
        prev = x;
        armed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn relay_df_matches_paper_formula() {
        let df = RelayDf::new(40.0).unwrap();
        // At X = K√2 the relative DF peaks at 1/π.
        let x = 40.0 * 2f64.sqrt();
        let n0 = df.relative_df(x).unwrap();
        assert!(n0.im.abs() < 1e-12);
        assert!((n0.re - 1.0 / PI).abs() < 1e-12);
        // And −1/N0 = −π there.
        let nr = df.neg_recip_relative(x).unwrap();
        assert!((nr.re + PI).abs() < 1e-9);
        assert!(nr.im.abs() < 1e-9);
    }

    #[test]
    fn relay_df_undefined_below_threshold() {
        let df = RelayDf::new(40.0).unwrap();
        assert!(df.df(39.9).is_none());
        assert!(df.df(40.0).is_some());
    }

    #[test]
    fn relay_df_vanishes_at_extremes() {
        let df = RelayDf::new(10.0).unwrap();
        assert!(df.df(10.0).unwrap().norm() < 1e-12);
        assert!(df.df(1e9).unwrap().norm() < 1e-9);
    }

    #[test]
    fn hysteresis_df_matches_paper_formula() {
        let df = HysteresisDf::new(30.0, 50.0).unwrap();
        let x = 100.0;
        let n = df.df(x).unwrap();
        let b1 = ((1.0 - 0.09f64).sqrt() + (1.0 - 0.25f64).sqrt()) / PI;
        let a1 = 20.0 / (PI * 100.0);
        assert!((n.re - b1 / 100.0).abs() < 1e-12);
        assert!((n.im - a1 / 100.0).abs() < 1e-12);
        // Relative DF imaginary part: K2²/(πX²)(1 − K1/K2).
        let n0 = df.relative_df(x).unwrap();
        let expected_im = 50.0f64.powi(2) / (PI * x * x) * (1.0 - 30.0 / 50.0);
        assert!((n0.im - expected_im).abs() < 1e-12);
    }

    #[test]
    fn hysteresis_neg_recip_has_positive_imag() {
        // The paper's stability argument: −1/N0dt lies above the real
        // axis, away from the G locus.
        let df = HysteresisDf::new(30.0, 50.0).unwrap();
        for x in [50.0, 60.0, 80.0, 120.0, 500.0] {
            let nr = df.neg_recip_relative(x).unwrap();
            assert!(nr.re < 0.0, "Re < 0 at X={x}");
            assert!(nr.im > 0.0, "Im > 0 at X={x}, got {nr}");
        }
    }

    #[test]
    fn hysteresis_rejects_bad_thresholds() {
        assert!(HysteresisDf::new(50.0, 30.0).is_err());
        assert!(HysteresisDf::new(0.0, 30.0).is_err());
        assert!(HysteresisDf::new(30.0, 30.0).is_err());
    }

    #[test]
    fn numerical_relay_df_matches_closed_form() {
        let k = 37.0;
        let df = RelayDf::new(k).unwrap();
        for x in [40.0, 55.0, 90.0, 200.0] {
            let closed = df.df(x).unwrap();
            let numeric = numerical_df(x, 200_000, ideal_relay(k));
            assert!(
                (closed - numeric).norm() < 2e-4 * closed.norm().max(1e-3),
                "X={x}: closed {closed} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn numerical_hysteresis_df_matches_closed_form() {
        let (k1, k2) = (30.0, 50.0);
        let df = HysteresisDf::new(k1, k2).unwrap();
        for x in [55.0, 70.0, 120.0, 400.0] {
            let closed = df.df(x).unwrap();
            let numeric = numerical_df(x, 200_000, ideal_hysteresis(k1, k2));
            assert!(
                (closed - numeric).norm() < 2e-3 * closed.norm(),
                "X={x}: closed {closed} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn hysteresis_approaches_relay_as_thresholds_merge() {
        let relay = RelayDf::new(40.0).unwrap();
        let near = HysteresisDf::new(39.999, 40.001).unwrap();
        for x in [60.0, 100.0] {
            let a = relay.df(x).unwrap();
            let b = near.df(x).unwrap();
            assert!((a - b).norm() < 1e-4, "X={x}: {a} vs {b}");
        }
    }
}
