//! Minimal complex arithmetic for frequency-domain analysis.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number with `f64` parts.
///
/// The analysis crate needs only evaluation of rational transfer
/// functions and delay terms; a small local type avoids an external
/// dependency.
///
/// # Examples
///
/// ```
/// use dctcp_control::Complex;
///
/// let j = Complex::I;
/// assert_eq!(j * j, Complex::new(-1.0, 0.0));
/// assert!((Complex::polar(2.0, std::f64::consts::PI / 2.0) - 2.0 * j).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates `re + j·im`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates from polar form `r·e^{jθ}`.
    pub fn polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Modulus `|z|`.
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when inverting zero.
    pub fn inv(self) -> Self {
        let n = self.norm_sqr();
        debug_assert!(n > 0.0, "inverting zero");
        Complex::new(self.re / n, -self.im / n)
    }

    /// Whether both parts are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division as multiplication by the inverse is the standard complex
    // formula, not a typo.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Add<f64> for Complex {
    type Output = Complex;
    fn add(self, rhs: f64) -> Complex {
        Complex::new(self.re + rhs, self.im)
    }
}

impl Add<Complex> for f64 {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        rhs + self
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        rhs * self
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}j", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}j", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn field_axioms_hold_numerically() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.5, 3.0);
        let c = Complex::new(2.0, 0.25);
        assert!(((a + b) + c - (a + (b + c))).norm() < 1e-12);
        assert!((a * b - b * a).norm() < 1e-12);
        assert!((a * (b + c) - (a * b + a * c)).norm() < 1e-12);
    }

    #[test]
    fn inverse_roundtrips() {
        let a = Complex::new(3.0, -4.0);
        assert!((a * a.inv() - Complex::ONE).norm() < 1e-12);
        assert!((a / a - Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn polar_matches_cartesian() {
        let z = Complex::polar(5.0, 0.9273);
        assert!((z.re - 3.0).abs() < 1e-3);
        assert!((z.im - 4.0).abs() < 1e-3);
        assert!((z.norm() - 5.0).abs() < 1e-12);
        assert!((z.arg() - 0.9273).abs() < 1e-12);
    }

    #[test]
    fn conjugate_and_norms() {
        let z = Complex::new(1.0, 2.0);
        assert_eq!(z.conj(), Complex::new(1.0, -2.0));
        assert!((z.norm_sqr() - 5.0).abs() < 1e-12);
        assert!(((z * z.conj()).re - 5.0).abs() < 1e-12);
    }

    #[test]
    fn delay_term_has_unit_magnitude() {
        for k in 0..20 {
            let w = 10f64.powi(k - 10);
            let d = Complex::polar(1.0, -w * 1e-4);
            assert!((d.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn scalar_ops() {
        let z = Complex::new(1.0, 1.0);
        assert_eq!(z * 2.0, Complex::new(2.0, 2.0));
        assert_eq!(2.0 * z, Complex::new(2.0, 2.0));
        assert_eq!(z / 2.0, Complex::new(0.5, 0.5));
        assert_eq!(z + 1.0, Complex::new(2.0, 1.0));
        assert_eq!(1.0 + z, Complex::new(2.0, 1.0));
        assert_eq!(-z, Complex::new(-1.0, -1.0));
        assert_eq!(Complex::from(3.0), Complex::new(3.0, 0.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1.000000+2.000000j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1.000000-2.000000j");
    }

    #[test]
    fn rotation_by_pi_negates() {
        let z = Complex::new(0.7, -0.3);
        let r = z * Complex::polar(1.0, PI);
        assert!((r + z).norm() < 1e-12);
    }
}
