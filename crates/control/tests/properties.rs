//! Seeded randomized tests of the describing-function machinery: the
//! closed forms of Theorems 1 and 2 against direct Fourier integration,
//! and structural properties of the loci.

use dctcp_control::{
    ideal_hysteresis, ideal_relay, numerical_df, DescribingFunction, HysteresisDf, PlantParams,
    RelayDf,
};
use dctcp_rng::Pcg32;

/// Eq. (22): the relay's closed-form DF equals the Fourier
/// fundamental of the actual marking waveform.
#[test]
fn relay_closed_form_matches_fourier() {
    let mut rng = Pcg32::seed_from_u64(0xDF_0001);
    for _ in 0..64 {
        let k = rng.range_f64(1.0, 100.0);
        let factor = rng.range_f64(1.05, 20.0);
        let x = k * factor;
        let df = RelayDf::new(k).unwrap();
        let closed = df.df(x).unwrap();
        let numeric = numerical_df(x, 100_000, ideal_relay(k));
        let tol = 5e-4 * closed.norm().max(1e-4);
        assert!(
            (closed - numeric).norm() < tol,
            "K={k}, X={x}: {closed} vs {numeric}"
        );
    }
}

/// Eq. (27): the hysteresis's closed-form DF equals the Fourier
/// fundamental of its waveform.
#[test]
fn hysteresis_closed_form_matches_fourier() {
    let mut rng = Pcg32::seed_from_u64(0xDF_0002);
    for _ in 0..64 {
        let k1 = rng.range_f64(1.0, 60.0);
        let width = rng.range_f64(0.5, 40.0);
        let factor = rng.range_f64(1.05, 15.0);
        let k2 = k1 + width;
        let x = k2 * factor;
        let df = HysteresisDf::new(k1, k2).unwrap();
        let closed = df.df(x).unwrap();
        let numeric = numerical_df(x, 100_000, ideal_hysteresis(k1, k2));
        let tol = 5e-3 * closed.norm().max(1e-4);
        assert!(
            (closed - numeric).norm() < tol,
            "K1={k1}, K2={k2}, X={x}: {closed} vs {numeric}"
        );
    }
}

/// The relay's relative DF peaks at X = K√2 with value 1/π
/// (where −1/N0 attains its maximum −π), for every K.
#[test]
fn relay_relative_df_peak() {
    let mut rng = Pcg32::seed_from_u64(0xDF_0003);
    for _ in 0..64 {
        let k = rng.range_f64(0.5, 500.0);
        let df = RelayDf::new(k).unwrap();
        let peak = df.relative_df(k * 2f64.sqrt()).unwrap().re;
        assert!((peak - 1.0 / std::f64::consts::PI).abs() < 1e-9);
        // Neighbouring amplitudes give smaller values.
        for factor in [1.05, 1.2, 2.0, 5.0] {
            let v = df.relative_df(k * factor).unwrap().re;
            assert!(v <= peak + 1e-12);
        }
    }
}

/// −1/N0 of the hysteresis always sits strictly above the real axis
/// (positive imaginary part) — the geometric heart of Theorem 2.
#[test]
fn hysteresis_neg_recip_upper_half_plane() {
    let mut rng = Pcg32::seed_from_u64(0xDF_0004);
    for _ in 0..64 {
        let k1 = rng.range_f64(0.5, 60.0);
        let width = rng.range_f64(0.1, 40.0);
        let factor = rng.range_f64(1.01, 50.0);
        let df = HysteresisDf::new(k1, k1 + width).unwrap();
        let z = df.neg_recip_relative((k1 + width) * factor).unwrap();
        assert!(z.im > 0.0, "Im = {}", z.im);
        assert!(z.re < 0.0, "Re = {}", z.re);
    }
}

/// The plant magnitude is continuous and finite over the frequency
/// band, for any sane parameter set.
#[test]
fn plant_is_finite_over_the_band() {
    let mut rng = Pcg32::seed_from_u64(0xDF_0005);
    for _ in 0..64 {
        let n = rng.range_f64(1.0, 500.0);
        let rtt_us = rng.range_f64(10.0, 5_000.0);
        let g_denom = rng.range_u64(1, 63) as u32;
        let p = PlantParams::from_link(10e9, 1500, n, rtt_us * 1e-6, 1.0 / g_denom as f64);
        p.validate().unwrap();
        for i in 0..200 {
            let w = 10f64.powf(1.0 + 6.0 * i as f64 / 199.0);
            let z = p.g_of_jw(w);
            assert!(z.is_finite(), "G(j{w}) = {z}");
        }
    }
}

/// Loop-gain scaling is exact: the locus with gain γ is γ times the
/// locus with gain 1.
#[test]
fn gain_scales_locus_linearly() {
    let mut rng = Pcg32::seed_from_u64(0xDF_0006);
    for _ in 0..64 {
        let n = rng.range_f64(1.0, 200.0);
        let gain = rng.range_f64(0.1, 50.0);
        let w = rng.range_f64(100.0, 1e6);
        let base = PlantParams::paper_defaults(n);
        let scaled = base.with_gain(gain);
        let a = base.g_of_jw(w);
        let b = scaled.g_of_jw(w);
        assert!((b - a * gain).norm() < 1e-9 * b.norm().max(1e-12));
    }
}
