//! Bridges the theory and the implementation: drive the *actual*
//! packet-level marking policies from `dctcp-core` with a discretized
//! sinusoidal queue trajectory and check that their Fourier fundamental
//! matches the closed-form describing functions of Theorems 1 and 2.
//!
//! This is the strongest cross-layer check in the repository: the DF the
//! Nyquist analysis uses and the state machine the switch runs are the
//! same object.

use dctcp_control::{Complex, DescribingFunction, HysteresisDf, RelayDf};
use dctcp_core::{DoubleThreshold, MarkingPolicy, QueueLevel, QueueSnapshot, SingleThreshold};

/// Replays `q(θ) = C0 + X·sin θ` (integer-quantized) through a policy by
/// issuing unit enqueues/dequeues, sampling the marking state at each
/// step, and returns the Fourier fundamental as a DF (relative to the
/// centred sinusoid of amplitude `x`).
fn measured_df(
    policy: &mut dyn MarkingPolicy,
    is_on: &mut dyn FnMut(&dyn MarkingPolicy, u32) -> bool,
    c0: u32,
    x: f64,
    steps: usize,
) -> Complex {
    let q_of = |theta: f64| -> u32 { (c0 as f64 + x * theta.sin()).round().max(0.0) as u32 };
    let mut q = c0;
    // Walk the queue to a trajectory point by unit steps, driving the
    // policy's enqueue/dequeue hooks exactly like the real queue does.
    let walk_to = |policy: &mut dyn MarkingPolicy, target: u32, q: &mut u32| {
        while *q < target {
            let _ = policy.on_enqueue(&QueueSnapshot::packets(*q));
            *q += 1;
        }
        while *q > target {
            *q -= 1;
            policy.on_dequeue(&QueueSnapshot::packets(*q));
        }
    };

    let dt = 2.0 * std::f64::consts::PI / steps as f64;
    // Warm-up period to settle hysteresis state.
    for k in 0..steps {
        walk_to(policy, q_of(k as f64 * dt), &mut q);
    }
    let (mut a1, mut b1) = (0.0, 0.0);
    for k in 0..steps {
        let theta = k as f64 * dt;
        walk_to(policy, q_of(theta), &mut q);
        let y = if is_on(policy, q) { 1.0 } else { 0.0 };
        a1 += y * theta.cos() * dt;
        b1 += y * theta.sin() * dt;
    }
    a1 /= std::f64::consts::PI;
    b1 /= std::f64::consts::PI;
    Complex::new(b1 / x, a1 / x)
}

#[test]
fn packet_level_relay_matches_theorem_1() {
    // Large amplitudes keep integer quantization error small.
    let (c0, k, x) = (600u32, 160.0f64, 400.0f64);
    let mut policy = SingleThreshold::new(QueueLevel::Packets(c0 + k as u32));
    let mut on = |_p: &dyn MarkingPolicy, q: u32| q >= c0 + k as u32;
    let measured = measured_df(&mut policy, &mut on, c0, x, 40_000);
    let closed = RelayDf::new(k).unwrap().df(x).unwrap();
    let err = (measured - closed).norm() / closed.norm();
    assert!(
        err < 0.02,
        "relay: measured {measured} vs closed {closed} (err {err:.4})"
    );
}

#[test]
fn packet_level_hysteresis_matches_theorem_2() {
    let (c0, k1, k2, x) = (600u32, 120.0f64, 200.0f64, 400.0f64);
    let mut policy = DoubleThreshold::new(
        QueueLevel::Packets(c0 + k1 as u32),
        QueueLevel::Packets(c0 + k2 as u32),
    )
    .unwrap();
    // DoubleThreshold exposes is_armed(); drive it directly (the
    // generic helper cannot read concrete-policy state).
    let q_of = |theta: f64, x: f64| -> u32 { (c0 as f64 + x * theta.sin()).round() as u32 };
    let steps = 40_000usize;
    let dt = 2.0 * std::f64::consts::PI / steps as f64;
    let mut q = c0;
    let walk_to = |policy: &mut DoubleThreshold, target: u32, q: &mut u32| {
        while *q < target {
            let _ = policy.on_enqueue(&QueueSnapshot::packets(*q));
            *q += 1;
        }
        while *q > target {
            *q -= 1;
            policy.on_dequeue(&QueueSnapshot::packets(*q));
        }
    };
    for k in 0..steps {
        walk_to(&mut policy, q_of(k as f64 * dt, x), &mut q);
    }
    let (mut a1, mut b1) = (0.0, 0.0);
    for k in 0..steps {
        let theta = k as f64 * dt;
        walk_to(&mut policy, q_of(theta, x), &mut q);
        let y = if policy.is_armed() { 1.0 } else { 0.0 };
        a1 += y * theta.cos() * dt;
        b1 += y * theta.sin() * dt;
    }
    a1 /= std::f64::consts::PI;
    b1 /= std::f64::consts::PI;
    let measured = Complex::new(b1 / x, a1 / x);

    let closed = HysteresisDf::new(k1, k2).unwrap().df(x).unwrap();
    let err = (measured - closed).norm() / closed.norm();
    assert!(
        err < 0.03,
        "hysteresis: measured {measured} vs closed {closed} (err {err:.4})"
    );
}

#[test]
fn packet_level_hysteresis_leads_the_relay() {
    // The phase lead (positive imaginary DF) that stabilizes DT-DCTCP
    // must be visible in the packet-level machine, not just the formula.
    let (c0, x) = (600u32, 400.0f64);
    let mut relay = SingleThreshold::new(QueueLevel::Packets(c0 + 160));
    let mut on = |_p: &dyn MarkingPolicy, q: u32| q >= c0 + 160;
    let relay_df = measured_df(&mut relay, &mut on, c0, x, 40_000);
    assert!(
        relay_df.im.abs() < 0.02 * relay_df.re,
        "relay DF should be (nearly) real: {relay_df}"
    );
}
