//! Fault-injection tests: the transport must make progress and
//! eventually complete through lossy links.

use dctcp_core::MarkingScheme;
use dctcp_sim::{
    Capacity, FlowId, LinkSpec, QueueConfig, SimDuration, SimTime, Simulator, TopologyBuilder,
};
use dctcp_tcp::{ScheduledFlow, TcpConfig, TransportHost};

fn run_lossy(loss_rate: f64, bytes: u64, horizon_ms: u64) -> (bool, u64, u64) {
    let cfg = TcpConfig::dctcp(1.0 / 16.0).with_rto_min(SimDuration::from_millis(10));
    let mut b = TopologyBuilder::new();
    let rx = b.host("rx", Box::new(TransportHost::new(cfg)));
    let mut host = TransportHost::new(cfg);
    host.schedule(ScheduledFlow {
        flow: FlowId(1),
        dst: rx,
        bytes: Some(bytes),
        at: SimTime::ZERO,
        cfg,
    });
    let tx = b.host("tx", Box::new(host));
    let sw = b.switch("sw");
    let spec = LinkSpec::gbps(1.0, 20);
    b.link(
        tx,
        sw,
        spec,
        QueueConfig::host_nic(),
        QueueConfig::host_nic(),
    )
    .unwrap();
    // Loss on the data direction of the bottleneck.
    b.link(
        sw,
        rx,
        spec,
        QueueConfig::switch(Capacity::Packets(200), MarkingScheme::dctcp_packets(20))
            .with_loss(loss_rate, 0xfeed)
            .unwrap(),
        QueueConfig::host_nic(),
    )
    .unwrap();
    let mut sim = Simulator::new(b.build().unwrap());
    sim.run_for(SimDuration::from_millis(horizon_ms)).unwrap();
    let host: &TransportHost = sim.agent(tx).unwrap();
    let s = host.sender(FlowId(1)).unwrap();
    (
        s.is_complete(),
        s.stats().fast_retransmits,
        s.stats().timeouts,
    )
}

#[test]
fn transfer_completes_through_one_percent_loss() {
    let (complete, frx, _rto) = run_lossy(0.01, 2_000_000, 2_000);
    assert!(complete, "2 MB transfer must survive 1% loss");
    assert!(
        frx > 0,
        "losses must have been repaired via fast retransmit"
    );
}

#[test]
fn transfer_completes_through_heavy_loss() {
    let (complete, frx, rto) = run_lossy(0.10, 200_000, 20_000);
    assert!(complete, "200 KB transfer must survive 10% loss");
    assert!(
        frx + rto > 0,
        "heavy loss must show recovery activity (frx {frx}, rto {rto})"
    );
}

#[test]
fn lossless_baseline_has_no_recoveries() {
    let (complete, frx, rto) = run_lossy(0.0, 2_000_000, 2_000);
    assert!(complete);
    assert_eq!(frx, 0);
    assert_eq!(rto, 0);
}

#[test]
fn progress_is_monotone_in_loss_rate() {
    // Completion must get *harder*, never easier, with more loss — a
    // coarse sanity property over the whole recovery machinery.
    let mut last_completed = true;
    for &rate in &[0.0, 0.02, 0.05] {
        let (complete, _, _) = run_lossy(rate, 500_000, 1_000);
        if !last_completed {
            assert!(
                !complete,
                "completed at loss {rate} after failing at a lower rate"
            );
        }
        last_completed = complete;
    }
}
