//! End-to-end transport tests over the packet simulator: DCTCP and
//! DT-DCTCP flows through a marked bottleneck.

use dctcp_core::MarkingScheme;
use dctcp_sim::{
    Capacity, FlowId, LinkId, LinkSpec, NodeId, QueueConfig, SimDuration, SimTime, Simulator,
    TopologyBuilder,
};
use dctcp_tcp::{ScheduledFlow, TcpConfig, TransportHost};

/// Builds `n` senders -> switch -> one receiver with the bottleneck on
/// the switch->receiver link. Returns (sim, sender node ids, receiver id,
/// bottleneck link id, switch id).
fn star(
    n: usize,
    scheme: MarkingScheme,
    cfg: TcpConfig,
    rate_gbps: f64,
    buffer: Capacity,
) -> (Simulator, Vec<NodeId>, NodeId, LinkId, NodeId) {
    let mut b = TopologyBuilder::new();
    let receiver = b.host("rx", Box::new(TransportHost::new(cfg)));
    let sw = b.switch("sw");
    let mut senders = Vec::new();
    for i in 0..n {
        let mut host = TransportHost::new(cfg);
        host.schedule(ScheduledFlow {
            flow: FlowId(i as u64 + 1),
            dst: receiver,
            bytes: None,
            at: SimTime::ZERO,
            cfg,
        });
        let h = b.host(format!("tx{i}"), Box::new(host));
        b.link(
            h,
            sw,
            LinkSpec::gbps(rate_gbps, 10),
            QueueConfig::host_nic(),
            QueueConfig::host_nic(),
        )
        .unwrap();
        senders.push(h);
    }
    let bottleneck = b
        .link(
            sw,
            receiver,
            LinkSpec::gbps(rate_gbps, 10),
            QueueConfig::switch(buffer, scheme),
            QueueConfig::host_nic(),
        )
        .unwrap();
    let sim = Simulator::new(b.build().unwrap());
    (sim, senders, receiver, bottleneck, sw)
}

#[test]
fn dctcp_flows_fill_the_link_with_small_queue() {
    let cfg = TcpConfig::dctcp(1.0 / 16.0);
    let (mut sim, _senders, receiver, bottleneck, sw) = star(
        4,
        MarkingScheme::dctcp_packets(20),
        cfg,
        1.0,
        Capacity::Packets(250),
    );
    // Warm up, then measure.
    sim.run_for(SimDuration::from_millis(50)).unwrap();
    sim.reset_all_queue_stats(); // fresh window
    let start = sim.now();
    sim.run_for(SimDuration::from_millis(100)).unwrap();

    let report = sim.queue_report(bottleneck, sw);
    // Marks must be happening.
    assert!(report.counters.marked > 0, "no ECN marks at the bottleneck");
    // Queue sits near (below ~2x) the threshold and never overflows.
    assert!(
        report.occupancy_pkts.mean > 1.0 && report.occupancy_pkts.mean < 60.0,
        "queue mean {} out of band",
        report.occupancy_pkts.mean
    );
    assert_eq!(report.counters.dropped(), 0, "DCTCP should not drop here");

    // Receiver-side goodput close to line rate (>85%).
    let host: &TransportHost = sim.agent(receiver).expect("transport host");
    let bytes: u64 = host.receivers().map(|r| r.stats().bytes_received).sum();
    let elapsed = sim.now().duration_since(start).as_secs_f64();
    let goodput = bytes as f64 * 8.0 / elapsed;
    assert!(
        goodput > 0.85e9,
        "goodput {goodput:.3e} bps too low for a 1 Gbps bottleneck"
    );
}

#[test]
fn dt_dctcp_flows_also_saturate_and_mark() {
    let cfg = TcpConfig::dctcp(1.0 / 16.0);
    let (mut sim, _senders, receiver, bottleneck, sw) = star(
        4,
        MarkingScheme::dt_dctcp_packets(15, 25),
        cfg,
        1.0,
        Capacity::Packets(250),
    );
    sim.run_for(SimDuration::from_millis(50)).unwrap();
    sim.reset_all_queue_stats();
    let start = sim.now();
    sim.run_for(SimDuration::from_millis(100)).unwrap();

    let report = sim.queue_report(bottleneck, sw);
    assert!(report.counters.marked > 0);
    assert_eq!(report.counters.dropped(), 0);
    assert!(
        report.occupancy_pkts.mean > 1.0 && report.occupancy_pkts.mean < 60.0,
        "queue mean {} out of band",
        report.occupancy_pkts.mean
    );

    let host: &TransportHost = sim.agent(receiver).expect("transport host");
    let bytes: u64 = host.receivers().map(|r| r.stats().bytes_received).sum();
    let elapsed = sim.now().duration_since(start).as_secs_f64();
    assert!(bytes as f64 * 8.0 / elapsed > 0.85e9);
}

#[test]
fn droptail_reno_recovers_from_losses() {
    let cfg = TcpConfig::reno();
    let (mut sim, senders, receiver, bottleneck, sw) =
        star(4, MarkingScheme::DropTail, cfg, 1.0, Capacity::Packets(30));
    sim.run_for(SimDuration::from_millis(200)).unwrap();
    let report = sim.queue_report(bottleneck, sw);
    assert!(
        report.counters.dropped_overflow > 0,
        "a 30-packet droptail buffer must overflow under 4 Reno flows"
    );
    // Despite losses, data keeps flowing end to end.
    let host: &TransportHost = sim.agent(receiver).expect("transport host");
    let bytes: u64 = host.receivers().map(|r| r.stats().bytes_received).sum();
    assert!(bytes > 10_000_000, "only {bytes} bytes delivered");
    // Senders saw the losses.
    let loss_signals: u64 = senders
        .iter()
        .map(|&h| {
            let host: &TransportHost = sim.agent(h).expect("host");
            host.senders()
                .map(|s| s.stats().fast_retransmits + s.stats().timeouts)
                .sum::<u64>()
        })
        .sum();
    assert!(loss_signals > 0);
}

#[test]
fn finite_flows_complete_and_report_times() {
    let cfg = TcpConfig::dctcp(1.0 / 16.0);
    let mut b = TopologyBuilder::new();
    let rx = b.host("rx", Box::new(TransportHost::new(cfg)));
    let mut host = TransportHost::new(cfg);
    for i in 0..3u64 {
        host.schedule(ScheduledFlow {
            flow: FlowId(i + 1),
            dst: rx,
            bytes: Some(100_000),
            at: SimTime::ZERO + SimDuration::from_millis(i),
            cfg,
        });
    }
    let tx = b.host("tx", Box::new(host));
    b.link(
        tx,
        rx,
        LinkSpec::gbps(1.0, 10),
        QueueConfig::host_nic(),
        QueueConfig::host_nic(),
    )
    .unwrap();
    let mut sim = Simulator::new(b.build().unwrap());
    sim.run_for(SimDuration::from_millis(100)).unwrap();
    let host: &TransportHost = sim.agent(tx).expect("host");
    for i in 0..3u64 {
        let s = host.sender(FlowId(i + 1)).expect("sender exists");
        assert!(s.is_complete(), "flow {} incomplete", i + 1);
        let ct = s.stats().completion_time().expect("completed");
        assert!(ct > 0.0 && ct < 0.1, "completion {ct}s out of range");
        assert_eq!(s.stats().bytes_acked, 100_000);
    }
}
