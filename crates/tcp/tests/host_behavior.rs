//! Behavioural tests of `TransportHost`: flow scheduling, multiplexing,
//! and statistics plumbing on a live simulator.

use dctcp_core::MarkingScheme;
use dctcp_sim::{
    Capacity, FlowId, LinkSpec, QueueConfig, SimDuration, SimTime, Simulator, TopologyBuilder,
};
use dctcp_tcp::{ScheduledFlow, TcpConfig, TransportHost};

fn two_hosts(schedule: Vec<ScheduledFlow>) -> (Simulator, dctcp_sim::NodeId, dctcp_sim::NodeId) {
    let cfg = TcpConfig::dctcp(1.0 / 16.0);
    let mut b = TopologyBuilder::new();
    let rx = b.host("rx", Box::new(TransportHost::new(cfg)));
    let mut host = TransportHost::new(cfg);
    for f in schedule {
        host.schedule(f);
    }
    let tx = b.host("tx", Box::new(host));
    b.link(
        tx,
        rx,
        LinkSpec::gbps(1.0, 20),
        QueueConfig::switch(Capacity::Packets(100), MarkingScheme::dctcp_packets(20)),
        QueueConfig::host_nic(),
    )
    .unwrap();
    (Simulator::new(b.build().unwrap()), tx, rx)
}

fn flow(id: u64, dst: usize, bytes: u64, at_ms: u64) -> ScheduledFlow {
    ScheduledFlow {
        flow: FlowId(id),
        dst: dctcp_sim::NodeId::from_index(dst),
        bytes: Some(bytes),
        at: SimTime::ZERO + SimDuration::from_millis(at_ms),
        cfg: TcpConfig::dctcp(1.0 / 16.0),
    }
}

#[test]
fn delayed_flows_start_at_their_scheduled_time() {
    let (mut sim, tx, _rx) = two_hosts(vec![flow(1, 0, 50_000, 0), flow(2, 0, 50_000, 5)]);
    sim.run_for(SimDuration::from_millis(2)).unwrap();
    let host: &TransportHost = sim.agent(tx).unwrap();
    assert!(host.sender(FlowId(1)).is_some(), "flow 1 started at t=0");
    assert!(
        host.sender(FlowId(2)).is_none(),
        "flow 2 must not exist yet"
    );
    sim.run_for(SimDuration::from_millis(10)).unwrap();
    let host: &TransportHost = sim.agent(tx).unwrap();
    let s2 = host.sender(FlowId(2)).expect("flow 2 started at 5 ms");
    let started = s2.stats().started_at.expect("has start mark");
    assert_eq!(started, SimTime::ZERO + SimDuration::from_millis(5));
}

#[test]
fn many_flows_multiplex_on_one_host_pair() {
    let flows: Vec<ScheduledFlow> = (0..10).map(|i| flow(i + 1, 0, 30_000, 0)).collect();
    let (mut sim, tx, rx) = two_hosts(flows);
    sim.run_for(SimDuration::from_millis(200)).unwrap();
    let host: &TransportHost = sim.agent(tx).unwrap();
    assert_eq!(host.senders().count(), 10);
    for i in 0..10u64 {
        let s = host.sender(FlowId(i + 1)).unwrap();
        assert!(s.is_complete(), "flow {} incomplete", i + 1);
    }
    let rx_host: &TransportHost = sim.agent(rx).unwrap();
    assert_eq!(rx_host.receivers().count(), 10);
    let total: u64 = rx_host.receivers().map(|r| r.stats().bytes_received).sum();
    assert_eq!(total, 10 * 30_000);
}

#[test]
fn stray_ack_for_unknown_flow_is_ignored() {
    // A receiver-side host that never sent anything gets an ACK packet:
    // nothing should panic and no sender state should appear.
    let (mut sim, tx, rx) = two_hosts(vec![flow(1, 0, 10_000, 0)]);
    sim.run_for(SimDuration::from_millis(50)).unwrap();
    // rx never originated flows; its sender table must be empty while
    // its receiver table has exactly the one incoming flow.
    let rx_host: &TransportHost = sim.agent(rx).unwrap();
    assert_eq!(rx_host.senders().count(), 0);
    assert_eq!(rx_host.receivers().count(), 1);
    let tx_host: &TransportHost = sim.agent(tx).unwrap();
    assert_eq!(tx_host.receivers().count(), 0, "tx received no data");
}

#[test]
fn reset_sender_stats_clears_counters_mid_run() {
    let (mut sim, tx, _rx) = two_hosts(vec![flow(1, 0, 5_000_000, 0)]);
    sim.run_for(SimDuration::from_millis(10)).unwrap();
    {
        let host: &mut TransportHost = sim.agent_mut(tx).unwrap();
        let before = host.sender(FlowId(1)).unwrap().stats().segments_sent;
        assert!(before > 0);
        host.reset_sender_stats();
        assert_eq!(host.sender(FlowId(1)).unwrap().stats().segments_sent, 0);
    }
    // The connection keeps running after the reset.
    sim.run_for(SimDuration::from_millis(10)).unwrap();
    let host: &TransportHost = sim.agent(tx).unwrap();
    assert!(host.sender(FlowId(1)).unwrap().stats().segments_sent > 0);
}

#[test]
fn per_flow_stats_are_independent() {
    let (mut sim, tx, _rx) = two_hosts(vec![flow(1, 0, 1_000, 0), flow(2, 0, 2_000_000, 0)]);
    sim.run_for(SimDuration::from_millis(100)).unwrap();
    let host: &TransportHost = sim.agent(tx).unwrap();
    let s1 = host.sender(FlowId(1)).unwrap();
    let s2 = host.sender(FlowId(2)).unwrap();
    assert_eq!(s1.stats().bytes_acked, 1_000);
    assert_eq!(s2.stats().bytes_acked, 2_000_000);
    assert!(s1.stats().completion_time().unwrap() < s2.stats().completion_time().unwrap());
}
