//! Seeded randomized tests of the transport state machines.

use dctcp_rng::Pcg32;
use dctcp_sim::{FlowId, NodeId, Packet, SimDuration, SimTime};
use dctcp_tcp::testing::MockWire;
use dctcp_tcp::{Receiver, Sender, SeqRanges, TcpConfig, Wire};
use std::collections::BTreeSet;

/// SeqRanges agrees with a naive per-byte set model.
#[test]
fn seq_ranges_match_byte_set_model() {
    let mut rng = Pcg32::seed_from_u64(0x7C9_0001);
    for _ in 0..256 {
        let n_ranges = rng.range_usize(0, 39);
        let ranges: Vec<(u64, u64)> = (0..n_ranges)
            .map(|_| (rng.range_u64(0, 499), rng.range_u64(1, 49)))
            .collect();
        let n_pts = rng.range_usize(0, 9);
        let advance_points: Vec<u64> = (0..n_pts).map(|_| rng.range_u64(0, 599)).collect();
        let mut sut = SeqRanges::new();
        let mut model: BTreeSet<u64> = BTreeSet::new();
        for &(start, len) in &ranges {
            sut.insert(start, start + len);
            model.extend(start..start + len);
        }
        assert_eq!(sut.bytes(), model.len() as u64);
        for &(start, len) in &ranges {
            assert!(sut.contains(start, start + len));
        }
        for &p in &advance_points {
            let mut sut2 = sut.clone();
            let advanced = sut2.advance(p);
            // The model: walk forward from p while bytes are present.
            let mut expect = p;
            while model.contains(&expect) {
                expect += 1;
            }
            // advance() consumes only the single covering range, which
            // equals the contiguous run from p.
            assert_eq!(advanced, expect, "advance({p})");
        }
    }
}

/// The receiver's cumulative ACK equals the model's contiguous
/// frontier, for any arrival order of a segmented transfer.
#[test]
fn receiver_tracks_contiguous_frontier() {
    let mut rng = Pcg32::seed_from_u64(0x7C9_0002);
    for _ in 0..256 {
        const SEG: u64 = 1000;
        let n = rng.range_usize(1, 59);
        let order: Vec<usize> = (0..n).map(|_| rng.range_usize(0, 19)).collect();
        let mut cfg = TcpConfig::dctcp(1.0 / 16.0);
        cfg.delayed_ack = 1; // ack every packet: simplest oracle
        let mut rx = Receiver::new(FlowId(1), NodeId::from_index(0), cfg);
        let mut w = MockWire::new(NodeId::from_index(9));
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for (i, &seg) in order.iter().enumerate() {
            w.set_now(SimTime::from_nanos((i as u64 + 1) * 1000));
            let mut p = Packet::data(
                FlowId(1),
                NodeId::from_index(0),
                NodeId::from_index(9),
                seg as u64 * SEG,
                SEG as u32,
            );
            p.ecn = dctcp_sim::Ecn::Ect;
            rx.on_data(p, &mut w);
            model.insert(seg);
            let mut frontier = 0usize;
            while model.contains(&frontier) {
                frontier += 1;
            }
            assert_eq!(rx.bytes_received(), frontier as u64 * SEG);
            // Every arrival produced at least one ack in per-packet mode.
            assert!(!w.take_sent().is_empty());
        }
    }
}

/// A sender driven by an in-order ACK stream never regresses: cwnd
/// stays within bounds, bytes_acked is monotone, and the flow
/// completes exactly when the last byte is acked.
#[test]
fn sender_progress_is_monotone() {
    let mut rng = Pcg32::seed_from_u64(0x7C9_0003);
    for _ in 0..256 {
        const MSS: u64 = 1000;
        let total_segments = rng.range_u64(1, 199);
        let n_chunks = rng.range_usize(1, 299);
        let ack_chunks: Vec<u64> = (0..n_chunks).map(|_| rng.range_u64(1, 9)).collect();
        let mut cfg = TcpConfig::dctcp(1.0 / 16.0);
        cfg.mss = MSS as u32;
        let total = total_segments * MSS;
        let mut s = Sender::new(FlowId(1), NodeId::from_index(9), Some(total), cfg);
        let mut w = MockWire::new(NodeId::from_index(0));
        s.start(&mut w);
        let mut acked = 0u64;
        let mut last_bytes_acked = 0u64;
        for &chunk in &ack_chunks {
            if acked >= total {
                break;
            }
            // Only ack data that has actually been sent.
            let sent_frontier: u64 = w
                .sent
                .iter()
                .map(|p| p.end_seq())
                .max()
                .unwrap_or(0)
                .max(acked);
            if sent_frontier == acked {
                break; // window closed and nothing in flight (shouldn't happen)
            }
            acked = (acked + chunk * MSS).min(sent_frontier).min(total);
            w.advance(SimDuration::from_micros(100));
            let mut ack = Packet::ack(
                FlowId(1),
                NodeId::from_index(9),
                NodeId::from_index(0),
                acked,
            );
            ack.ts_echo = Some(w.now());
            s.on_ack(ack, &mut w);

            assert!(s.cwnd() >= 1.0 && s.cwnd() <= cfg.max_cwnd);
            assert!(s.stats().bytes_acked >= last_bytes_acked);
            last_bytes_acked = s.stats().bytes_acked;
            assert_eq!(s.is_complete(), acked >= total);
        }
        // Sequence space sanity: nothing beyond `total` was ever sent.
        for p in &w.sent {
            assert!(p.end_seq() <= total);
        }
    }
}

/// Alpha never leaves [0, 1] under arbitrary ECE patterns.
#[test]
fn sender_alpha_bounded_under_random_ece() {
    let mut rng = Pcg32::seed_from_u64(0x7C9_0004);
    for _ in 0..256 {
        const MSS: u64 = 1000;
        let n = rng.range_usize(1, 299);
        let pattern: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        let mut cfg = TcpConfig::dctcp(1.0 / 16.0);
        cfg.mss = MSS as u32;
        let mut s = Sender::new(FlowId(1), NodeId::from_index(9), None, cfg);
        let mut w = MockWire::new(NodeId::from_index(0));
        s.start(&mut w);
        let mut acked = 0u64;
        for &ece in &pattern {
            acked += MSS;
            w.advance(SimDuration::from_micros(50));
            let mut ack = Packet::ack(
                FlowId(1),
                NodeId::from_index(9),
                NodeId::from_index(0),
                acked,
            );
            ack.ece = ece;
            ack.ts_echo = Some(w.now());
            s.on_ack(ack, &mut w);
            assert!((0.0..=1.0).contains(&s.alpha()), "alpha = {}", s.alpha());
            assert!(s.cwnd() >= 1.0);
        }
    }
}
