//! Typed per-flow failures.

use std::error::Error;
use std::fmt;

use dctcp_sim::FlowId;

/// A terminal failure of one flow. Once a sender reports a `FlowError`
/// it stops transmitting; the experiment harness decides whether that is
/// an acceptable outcome (chaos runs) or a bug (clean-path runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlowError {
    /// The flow hit its configured cap of back-to-back retransmission
    /// timeouts without any forward progress (see
    /// [`TcpConfig::with_max_consecutive_rtos`](crate::TcpConfig::with_max_consecutive_rtos))
    /// and aborted, like a kernel giving up after `tcp_retries2`.
    TooManyRtos {
        /// The aborted flow.
        flow: FlowId,
        /// Consecutive timeouts observed when the cap was hit.
        consecutive: u32,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::TooManyRtos { flow, consecutive } => write!(
                f,
                "{flow} aborted after {consecutive} consecutive retransmission timeouts"
            ),
        }
    }
}

impl Error for FlowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_flow() {
        let e = FlowError::TooManyRtos {
            flow: FlowId(3),
            consecutive: 8,
        };
        assert_eq!(
            e.to_string(),
            "f3 aborted after 8 consecutive retransmission timeouts"
        );
    }
}
