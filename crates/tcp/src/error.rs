//! Typed per-flow failures.

use std::error::Error;
use std::fmt;

use dctcp_core::ParamError;
use dctcp_sim::FlowId;

/// A terminal failure of one flow. Once a sender reports a `FlowError`
/// it stops transmitting; the experiment harness decides whether that is
/// an acceptable outcome (chaos runs) or a bug (clean-path runs).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlowError {
    /// The flow hit its configured cap of back-to-back retransmission
    /// timeouts without any forward progress (see
    /// [`TcpConfig::with_max_consecutive_rtos`](crate::TcpConfig::with_max_consecutive_rtos))
    /// and aborted, like a kernel giving up after `tcp_retries2`.
    TooManyRtos {
        /// The aborted flow.
        flow: FlowId,
        /// Consecutive timeouts observed when the cap was hit.
        consecutive: u32,
    },
    /// The flow's [`TcpConfig`](crate::TcpConfig) failed validation when
    /// the connection was created, so it never transmitted. Surfaced
    /// instead of panicking mid-simulation.
    InvalidConfig {
        /// The flow that could not start.
        flow: FlowId,
        /// What the configuration validator rejected.
        reason: ParamError,
    },
}

impl FlowError {
    /// The flow this failure belongs to.
    pub fn flow(&self) -> FlowId {
        match self {
            FlowError::TooManyRtos { flow, .. } | FlowError::InvalidConfig { flow, .. } => *flow,
        }
    }
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::TooManyRtos { flow, consecutive } => write!(
                f,
                "{flow} aborted after {consecutive} consecutive retransmission timeouts"
            ),
            FlowError::InvalidConfig { flow, reason } => {
                write!(f, "{flow} rejected its TcpConfig: {reason}")
            }
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::TooManyRtos { .. } => None,
            FlowError::InvalidConfig { reason, .. } => Some(reason),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_flow() {
        let e = FlowError::TooManyRtos {
            flow: FlowId(3),
            consecutive: 8,
        };
        assert_eq!(
            e.to_string(),
            "f3 aborted after 8 consecutive retransmission timeouts"
        );
    }

    #[test]
    fn invalid_config_chains_the_param_error() {
        let e = FlowError::InvalidConfig {
            flow: FlowId(7),
            reason: ParamError::new("mss must be positive"),
        };
        assert_eq!(e.flow(), FlowId(7));
        assert_eq!(
            e.to_string(),
            "f7 rejected its TcpConfig: mss must be positive"
        );
        assert_eq!(e.source().unwrap().to_string(), "mss must be positive");
    }
}
