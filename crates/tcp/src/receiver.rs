//! The receiving side of a connection.

use dctcp_sim::{FlowId, NodeId, Packet, SimTime, TimerToken};
use dctcp_trace::TraceKind;

use crate::{ReceiverStats, SeqRanges, TcpConfig, TimerKind, Wire};

/// A TCP receiver: cumulative acknowledgements, out-of-order buffering,
/// delayed ACKs (with immediate acknowledgement of PSH segments), and
/// the DCTCP CE-echo state machine.
///
/// DCTCP's receiver conveys the *exact* sequence of CE marks back to the
/// sender despite delayed ACKs: whenever the CE state of arriving data
/// changes, it immediately acknowledges the data received so far with the
/// *old* state's ECE value, then resumes delayed ACKs carrying the new
/// state (Alizadeh et al., SIGCOMM 2010). This is what makes the sender's
/// marked-byte fraction `F` faithful.
#[derive(Debug)]
pub struct Receiver {
    cfg: TcpConfig,
    flow: FlowId,
    peer: NodeId,

    rcv_nxt: u64,
    ooo: SeqRanges,

    /// CE state of the most recent data.
    ce_state: bool,
    /// Data packets received since the last ACK.
    pending: u32,
    /// Timestamp echo for the next ACK.
    last_ts: Option<SimTime>,
    delack_timer: TimerToken,
    delack_deadline: SimTime,

    stats: ReceiverStats,
}

impl Receiver {
    /// Creates a receiver for `flow` whose sender is `peer`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`TcpConfig::validate`].
    pub fn new(flow: FlowId, peer: NodeId, cfg: TcpConfig) -> Self {
        cfg.validate().expect("invalid TcpConfig");
        Receiver {
            cfg,
            flow,
            peer,
            rcv_nxt: 0,
            ooo: SeqRanges::new(),
            ce_state: false,
            pending: 0,
            last_ts: None,
            delack_timer: TimerToken::NONE,
            delack_deadline: SimTime::ZERO,
            stats: ReceiverStats::default(),
        }
    }

    /// Resets this receiver in place for a fresh flow, reusing its
    /// out-of-order buffer allocation — the recycle path of the churn
    /// harness ([`ChurnSink`](crate::ChurnSink)). `cfg` must already be
    /// validated (the sink validates its shared config once at
    /// construction); any armed delayed-ACK timer must be
    /// generation-guarded by the caller.
    pub fn reset(&mut self, flow: FlowId, peer: NodeId, cfg: TcpConfig) {
        self.cfg = cfg;
        self.flow = flow;
        self.peer = peer;
        self.rcv_nxt = 0;
        self.ooo.clear();
        self.ce_state = false;
        self.pending = 0;
        self.last_ts = None;
        self.delack_timer = TimerToken::NONE;
        self.delack_deadline = SimTime::ZERO;
        self.stats = ReceiverStats::default();
    }

    /// The flow id.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// The sending host.
    pub fn peer(&self) -> NodeId {
        self.peer
    }

    /// Contiguous bytes received so far.
    pub fn bytes_received(&self) -> u64 {
        self.rcv_nxt
    }

    /// Collected statistics.
    pub fn stats(&self) -> &ReceiverStats {
        &self.stats
    }

    /// Processes an arriving data packet.
    pub fn on_data(&mut self, pkt: Packet, wire: &mut dyn Wire) {
        let now = wire.now();
        self.stats.segments_received += 1;
        if self.stats.first_arrival.is_none() {
            self.stats.first_arrival = Some(now);
        }
        self.stats.last_arrival = Some(now);

        let ce = pkt.ecn.is_ce();
        if ce {
            self.stats.ce_segments += 1;
        }
        if wire.trace_enabled() {
            wire.trace(TraceKind::DataRecv {
                flow: self.flow.0,
                seq: pkt.seq,
                ce,
            });
        }

        // DCTCP CE-echo state machine: flush pending ACKs with the old
        // state before switching.
        if ce != self.ce_state {
            if self.pending > 0 {
                self.send_ack(wire);
            }
            self.ce_state = ce;
            if wire.trace_enabled() {
                wire.trace(TraceKind::CeState {
                    flow: self.flow.0,
                    ce,
                });
            }
        }

        self.last_ts = Some(pkt.sent_at);
        let mut force_ack = false;

        if pkt.end_seq() <= self.rcv_nxt {
            // Fully duplicate data: ack immediately so the sender's RTT
            // and loss detection stay live.
            self.stats.duplicate_segments += 1;
            force_ack = true;
        } else if pkt.seq <= self.rcv_nxt {
            // In-order (possibly partially duplicate) data.
            self.rcv_nxt = pkt.end_seq();
            let jumped = self.ooo.advance(self.rcv_nxt);
            if jumped > self.rcv_nxt {
                // This segment filled a hole: acknowledge immediately so
                // the sender exits recovery promptly (RFC 5681 §4.2).
                self.rcv_nxt = jumped;
                force_ack = true;
            }
            self.stats.bytes_received = self.rcv_nxt;
            self.pending += 1;
        } else {
            // A hole: buffer and send an immediate duplicate ACK for fast
            // retransmit.
            self.ooo.insert(pkt.seq, pkt.end_seq());
            self.stats.out_of_order_segments += 1;
            force_ack = true;
        }

        if force_ack || pkt.push || self.pending >= self.cfg.delayed_ack {
            self.send_ack(wire);
        } else if self.pending > 0 {
            self.arm_delack(wire);
        }
    }

    /// Handles a fired delayed-ACK timer.
    pub fn on_delack(&mut self, wire: &mut dyn Wire) {
        self.delack_timer = TimerToken::NONE;
        if self.pending == 0 {
            return;
        }
        if wire.now() < self.delack_deadline {
            let remaining = self.delack_deadline.duration_since(wire.now());
            self.delack_timer = wire.arm(remaining, TimerKind::DelAck);
            return;
        }
        self.send_ack(wire);
    }

    fn send_ack(&mut self, wire: &mut dyn Wire) {
        let mut ack = Packet::ack(self.flow, wire.local(), self.peer, self.rcv_nxt);
        ack.ece = self.ce_state;
        ack.ts_echo = self.last_ts;
        wire.send(ack);
        if wire.trace_enabled() {
            wire.trace(TraceKind::AckSent {
                flow: self.flow.0,
                ack: self.rcv_nxt,
                ece: self.ce_state,
            });
        }
        self.stats.acks_sent += 1;
        self.pending = 0;
    }

    fn arm_delack(&mut self, wire: &mut dyn Wire) {
        self.delack_deadline = wire.now() + self.cfg.delack_timeout;
        if self.delack_timer == TimerToken::NONE {
            self.delack_timer = wire.arm(self.cfg.delack_timeout, TimerKind::DelAck);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::MockWire;
    use dctcp_sim::{Ecn, SimDuration};

    const MSS: u32 = 1000;

    fn make() -> (Receiver, MockWire) {
        let mut cfg = TcpConfig::dctcp(1.0 / 16.0);
        cfg.mss = MSS;
        cfg.delayed_ack = 2;
        let r = Receiver::new(FlowId(1), NodeId::from_index(0), cfg);
        let w = MockWire::new(NodeId::from_index(9));
        (r, w)
    }

    fn data(seq: u64, ce: bool) -> Packet {
        let mut p = Packet::data(
            FlowId(1),
            NodeId::from_index(0),
            NodeId::from_index(9),
            seq,
            MSS,
        );
        p.ecn = if ce { Ecn::Ce } else { Ecn::Ect };
        p.sent_at = SimTime::from_nanos(42);
        p
    }

    #[test]
    fn delayed_ack_every_second_packet() {
        let (mut r, mut w) = make();
        r.on_data(data(0, false), &mut w);
        assert!(w.sent.is_empty(), "first packet held for delack");
        r.on_data(data(MSS as u64, false), &mut w);
        let acks = w.take_sent();
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].ack, 2 * MSS as u64);
        assert!(!acks[0].ece);
        assert_eq!(acks[0].ts_echo, Some(SimTime::from_nanos(42)));
    }

    #[test]
    fn ce_state_change_flushes_with_old_state() {
        let (mut r, mut w) = make();
        r.on_data(data(0, false), &mut w);
        assert!(w.sent.is_empty());
        // CE flips: immediate ACK for the first packet with ECE = false,
        // then the CE packet is held with the new state.
        r.on_data(data(MSS as u64, true), &mut w);
        let acks = w.take_sent();
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].ack, MSS as u64);
        assert!(!acks[0].ece, "flush carries the old CE state");
        // Next packet (still CE) completes the delayed pair -> ECE ack.
        r.on_data(data(2 * MSS as u64, true), &mut w);
        let acks = w.take_sent();
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].ack, 3 * MSS as u64);
        assert!(acks[0].ece);
    }

    #[test]
    fn per_packet_ack_mode() {
        let mut cfg = TcpConfig::dctcp(1.0 / 16.0);
        cfg.delayed_ack = 1;
        let mut r = Receiver::new(FlowId(1), NodeId::from_index(0), cfg);
        let mut w = MockWire::new(NodeId::from_index(9));
        for i in 0..5u64 {
            r.on_data(data(i * MSS as u64, false), &mut w);
        }
        assert_eq!(w.take_sent().len(), 5);
    }

    #[test]
    fn out_of_order_triggers_immediate_dup_ack() {
        let (mut r, mut w) = make();
        r.on_data(data(0, false), &mut w);
        w.take_sent();
        // Packet 2 arrives before packet 1.
        r.on_data(data(2 * MSS as u64, false), &mut w);
        let acks = w.take_sent();
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].ack, MSS as u64, "dup ack at the hole");
        // The hole fills: cumulative ack jumps over the buffered range.
        r.on_data(data(MSS as u64, false), &mut w);
        let acks = w.take_sent();
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].ack, 3 * MSS as u64);
        assert_eq!(r.bytes_received(), 3 * MSS as u64);
        assert_eq!(r.stats().out_of_order_segments, 1);
    }

    #[test]
    fn duplicate_data_acked_immediately() {
        let (mut r, mut w) = make();
        r.on_data(data(0, false), &mut w);
        r.on_data(data(MSS as u64, false), &mut w);
        w.take_sent();
        r.on_data(data(0, false), &mut w);
        let acks = w.take_sent();
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].ack, 2 * MSS as u64);
        assert_eq!(r.stats().duplicate_segments, 1);
    }

    #[test]
    fn push_segment_is_acked_immediately() {
        let (mut r, mut w) = make();
        let mut p = data(0, false);
        p.push = true;
        r.on_data(p, &mut w);
        let acks = w.take_sent();
        assert_eq!(acks.len(), 1, "PSH must not wait for the delack timer");
        assert_eq!(acks[0].ack, MSS as u64);
        assert!(w.pending_timer(TimerKind::DelAck).is_none());
    }

    #[test]
    fn delack_timer_flushes_odd_packet() {
        let (mut r, mut w) = make();
        r.on_data(data(0, false), &mut w);
        assert!(w.sent.is_empty());
        let (_, at) = w.pending_timer(TimerKind::DelAck).expect("delack armed");
        w.set_now(at);
        r.on_delack(&mut w);
        let acks = w.take_sent();
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].ack, MSS as u64);
    }

    #[test]
    fn stale_delack_timer_rearms() {
        let (mut r, mut w) = make();
        r.on_data(data(0, false), &mut w);
        // Fire "early" (deadline in the future is impossible here since
        // arming set deadline = now + timeout; simulate staleness by
        // moving the deadline out with a fresh packet pair).
        r.on_data(data(MSS as u64, false), &mut w); // flushes, pending = 0
        w.take_sent();
        r.on_data(data(2 * MSS as u64, false), &mut w); // pending = 1, rearms deadline
        w.set_now(SimTime::ZERO); // pretend the old timer fires at t=0
        r.on_delack(&mut w);
        assert!(w.sent.is_empty(), "stale fire must not ack early");
        // A re-arm for the remainder exists.
        assert!(w.pending_timer(TimerKind::DelAck).is_some());
    }

    #[test]
    fn delack_with_nothing_pending_is_noop() {
        let (mut r, mut w) = make();
        w.advance(SimDuration::from_millis(1));
        r.on_delack(&mut w);
        assert!(w.sent.is_empty());
    }

    #[test]
    fn stats_track_arrivals_and_ce() {
        let (mut r, mut w) = make();
        w.set_now(SimTime::from_nanos(100));
        r.on_data(data(0, true), &mut w);
        w.set_now(SimTime::from_nanos(300));
        r.on_data(data(MSS as u64, false), &mut w);
        let s = r.stats();
        assert_eq!(s.segments_received, 2);
        assert_eq!(s.ce_segments, 1);
        assert_eq!(s.first_arrival, Some(SimTime::from_nanos(100)));
        assert_eq!(s.last_arrival, Some(SimTime::from_nanos(300)));
        assert_eq!(s.bytes_received, 2 * MSS as u64);
    }
}
