//! The interface connections use to reach the network and timers.

use dctcp_sim::{NodeId, Packet, SimDuration, SimTime, TimerToken};
use dctcp_trace::TraceKind;

/// Timers a connection can arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// Retransmission timeout (sender).
    Rto,
    /// Delayed-acknowledgement deadline (receiver).
    DelAck,
}

/// What a connection needs from its host: the clock, packet output, and
/// timers. The production implementation wraps the simulator's
/// [`Context`](dctcp_sim::Context); [`testing::MockWire`](crate::testing::MockWire)
/// records actions for state-machine unit tests.
pub trait Wire {
    /// Current simulation time.
    fn now(&self) -> SimTime;

    /// The local host's node id.
    fn local(&self) -> NodeId;

    /// Transmits a packet from the local host.
    fn send(&mut self, pkt: Packet);

    /// Arms a timer of the given kind for this connection.
    fn arm(&mut self, delay: SimDuration, kind: TimerKind) -> TimerToken;

    /// Cancels a previously armed timer (no-op when already fired).
    fn cancel(&mut self, token: TimerToken);

    /// Whether the host is recording transport trace events. Connections
    /// check this before building a [`TraceKind`] payload so tracing
    /// costs one branch when off.
    fn trace_enabled(&self) -> bool {
        false
    }

    /// Records a transport trace event at the current time. The default
    /// discards it (unit-test wires); the production wire forwards to the
    /// simulator's tracer.
    fn trace(&mut self, kind: TraceKind) {
        let _ = kind;
    }
}
