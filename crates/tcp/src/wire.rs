//! The interface connections use to reach the network and timers.

use dctcp_sim::{NodeId, Packet, SimDuration, SimTime, TimerToken};

/// Timers a connection can arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// Retransmission timeout (sender).
    Rto,
    /// Delayed-acknowledgement deadline (receiver).
    DelAck,
}

/// What a connection needs from its host: the clock, packet output, and
/// timers. The production implementation wraps the simulator's
/// [`Context`](dctcp_sim::Context); [`testing::MockWire`](crate::testing::MockWire)
/// records actions for state-machine unit tests.
pub trait Wire {
    /// Current simulation time.
    fn now(&self) -> SimTime;

    /// The local host's node id.
    fn local(&self) -> NodeId;

    /// Transmits a packet from the local host.
    fn send(&mut self, pkt: Packet);

    /// Arms a timer of the given kind for this connection.
    fn arm(&mut self, delay: SimDuration, kind: TimerKind) -> TimerToken;

    /// Cancels a previously armed timer (no-op when already fired).
    fn cancel(&mut self, token: TimerToken);
}
